//! Workspace integration tests for the serving subsystem: the freeze pass
//! must structurally handle the whole model zoo, and frozen-graph inference
//! must match the training executor's eval-mode (running-statistics)
//! forward within 1e-5 for CIFAR-scale zoo models at every measured fusion
//! level (0–3: Baseline, RCF, RCF+MVF, BNFF), bit-identically across
//! `BNFF_THREADS` 1 and 4.

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::graph::passes::freeze;
use bnff::graph::plan::ExecutionPlan;
use bnff::graph::Graph;
use bnff::models::zoo::{build, Model};
use bnff::models::{densenet_cifar, resnet_cifar};
use bnff::parallel::with_threads;
use bnff::serve::ServeEngine;
use bnff::tensor::init::Initializer;
use bnff::tensor::{Shape, Tensor};
use bnff::train::validate::score_divergence;
use bnff::train::Executor;

/// Prepares a trained-ish executor (moved running statistics) and an input
/// batch for one graph.
fn conditioned(graph: &Graph, seed: u64) -> (Executor, Tensor, Vec<usize>) {
    let input_shape = graph
        .input_nodes()
        .into_iter()
        .map(|id| graph.node(id).unwrap().output_shape.clone())
        .find(Shape::is_nchw)
        .expect("graph has a data input");
    let mut exec = Executor::new(graph.clone(), seed).unwrap();
    let mut init = Initializer::seeded(seed ^ 0xbadc0de);
    let labels: Vec<usize> = (0..input_shape.n()).map(|i| i % 4).collect();
    let data = init.uniform(input_shape, -1.0, 1.0);
    let fwd = exec.forward(&data, &labels).unwrap();
    exec.update_running_stats(&fwd).unwrap();
    (exec, data, labels)
}

/// Frozen inference vs eval-mode forward, within 1e-5 and bit-identical
/// across thread counts.
fn check_frozen_equivalence(graph: &Graph, context: &str) {
    let (exec, data, labels) = conditioned(graph, 171);
    let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
    let mut per_thread_bits: Vec<Vec<u32>> = Vec::new();
    for threads in [1usize, 4] {
        with_threads(threads, || {
            let eval = exec.forward_eval(&data, &labels).unwrap();
            let scores = model.executor(data.shape().n()).unwrap().infer(&data).unwrap();
            let div = score_divergence(&eval.scores, &scores).unwrap();
            assert!(div < 1e-5, "{context} t{threads}: frozen diverges from eval by {div}");
            per_thread_bits.push(scores.as_slice().iter().map(|v| v.to_bits()).collect());
        });
    }
    assert_eq!(
        per_thread_bits[0], per_thread_bits[1],
        "{context}: frozen scores differ between 1 and 4 threads"
    );
}

#[test]
fn cifar_densenet_frozen_matches_eval_at_levels_0_to_3() {
    let baseline = densenet_cifar(4, 6, 2, 4).unwrap();
    for level in FusionLevel::measured() {
        let graph = BnffOptimizer::new(level).apply(&baseline).unwrap();
        check_frozen_equivalence(&graph, &format!("densenet-cifar {level}"));
    }
}

#[test]
fn cifar_resnet_frozen_matches_eval_at_levels_0_to_3() {
    let baseline = resnet_cifar(4, 1, 4).unwrap();
    for level in FusionLevel::measured() {
        let graph = BnffOptimizer::new(level).apply(&baseline).unwrap();
        check_frozen_equivalence(&graph, &format!("resnet-cifar {level}"));
    }
}

#[test]
fn the_whole_zoo_freezes_structurally_at_every_level() {
    // ImageNet-scale models are too slow to execute numerically in tier-1,
    // but the freeze pass must still handle their structure: validate the
    // frozen graph, plan it for inference, and check recipe coverage.
    for model in [
        Model::AlexNet,
        Model::Vgg16,
        Model::ResNet18,
        Model::ResNet50,
        Model::DenseNet121,
        Model::DenseNet169,
        Model::DenseNetCifar,
        Model::ResNetCifar,
    ] {
        let baseline = build(model, 2).unwrap();
        for level in FusionLevel::measured() {
            let graph = BnffOptimizer::new(level).apply(&baseline).unwrap();
            let context = format!("{} {level}", model.display_name());
            let frozen = freeze::freeze(&graph).unwrap();
            frozen.graph.validate().unwrap_or_else(|e| panic!("{context}: {e}"));
            for node in frozen.graph.nodes() {
                assert!(!node.op.is_bn_related(), "{context}: {} survived the freeze", node.op);
                if node.op.has_parameters() {
                    assert!(
                        frozen.recipes.contains_key(&node.id.index()),
                        "{context}: no fold recipe for '{}'",
                        node.name
                    );
                }
            }
            let plan = ExecutionPlan::for_inference(&frozen.graph).unwrap();
            assert!(
                plan.planned_peak_bytes() < plan.naive_total_bytes(),
                "{context}: inference plan does not reuse buffers"
            );
        }
    }
}

/// Exhaustive numeric sweep over the executable zoo — slow, so opt-in:
/// `cargo test --test serve_equivalence -- --ignored`.
#[test]
#[ignore = "minutes-long ImageNet-scale numeric sweep; run explicitly"]
fn full_zoo_frozen_matches_eval_numerically() {
    for model in [Model::AlexNet, Model::ResNet18, Model::ResNet50, Model::DenseNet121] {
        let baseline = build(model, 1).unwrap();
        for level in FusionLevel::measured() {
            let graph = BnffOptimizer::new(level).apply(&baseline).unwrap();
            check_frozen_equivalence(&graph, &format!("{} {level}", model.display_name()));
        }
    }
}
