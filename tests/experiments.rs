//! Workspace integration tests over the experiment drivers: the headline
//! claims of the paper must hold in the reproduction, end to end.

use bnff::core::experiments as exp;
use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::memsim::MachineProfile;
use bnff::models::{densenet121, resnet50};

/// Batch large enough that mini-batch feature maps exceed the LLC, as in the
/// paper (the analytical model is shape-driven, so this is cheap).
const BATCH: usize = 120;

#[test]
fn headline_densenet_speedup_is_reproduced_in_shape() {
    let graph = densenet121(BATCH).unwrap();
    let machine = MachineProfile::skylake_xeon_2s();
    let optimizer = BnffOptimizer::new(FusionLevel::Bnff);
    let restructured = optimizer.apply(&graph).unwrap();
    let report = optimizer.compare(&graph, &restructured, &machine).unwrap();
    // Paper: 25.7% overall, 47.9% forward, 15.4% backward, 19.1% less traffic.
    assert!(
        (0.15..=0.45).contains(&report.improvement()),
        "DenseNet-121 BNFF improvement {} out of band",
        report.improvement()
    );
    assert!(report.forward_improvement() > report.backward_improvement());
    assert!(report.traffic_reduction() > 0.1);
}

#[test]
fn resnet_gains_are_present_but_smaller() {
    let machine = MachineProfile::skylake_xeon_2s();
    let dense = {
        let g = densenet121(BATCH).unwrap();
        let o = BnffOptimizer::new(FusionLevel::Bnff);
        let r = o.apply(&g).unwrap();
        o.compare(&g, &r, &machine).unwrap().improvement()
    };
    let res = {
        let g = resnet50(BATCH).unwrap();
        let o = BnffOptimizer::new(FusionLevel::Bnff);
        let r = o.apply(&g).unwrap();
        o.compare(&g, &r, &machine).unwrap().improvement()
    };
    assert!(res > 0.05, "ResNet-50 gain {res}");
    assert!(dense > res, "DenseNet gain {dense} should exceed ResNet gain {res}");
}

#[test]
fn figure_drivers_produce_complete_row_sets() {
    assert_eq!(exp::table1().len(), 3);
    assert_eq!(exp::figure1(BATCH).unwrap().len(), 4);
    assert_eq!(exp::figure4(BATCH).unwrap().len(), 2);
    assert_eq!(exp::figure6(1.0).unwrap().len(), 3);
    let fig7 = exp::figure7(BATCH).unwrap();
    assert_eq!(fig7.len(), 9); // 5 DenseNet scenarios + 4 ResNet scenarios
    assert_eq!(exp::figure8(BATCH).unwrap().len(), 4);
    assert_eq!(exp::gpu_cutlass(28).unwrap().len(), 6);
}

#[test]
fn icf_extends_bnff_on_densenet() {
    let graph = densenet121(BATCH).unwrap();
    let machine = MachineProfile::skylake_xeon_2s();
    let bnff = {
        let o = BnffOptimizer::new(FusionLevel::Bnff);
        let r = o.apply(&graph).unwrap();
        o.compare(&graph, &r, &machine).unwrap().improvement()
    };
    let icf = {
        let o = BnffOptimizer::new(FusionLevel::BnffIcf);
        let r = o.apply(&graph).unwrap();
        o.compare(&graph, &r, &machine).unwrap().improvement()
    };
    assert!(icf > bnff, "ICF ({icf}) must extend BNFF ({bnff})");
}
