//! End-to-end deployment-path equivalence at every measured fusion level
//! (0–3: Baseline, RCF, RCF+MVF, BNFF): train a little, checkpoint,
//! convert to a binary artifact and back bit-identically, then prove a
//! model served from the artifact file scores exactly like one served
//! from the JSON checkpoint file — and within 1e-5 of the training
//! executor's eval-mode forward.

use bnff::artifact::Artifact;
use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::graph::builder::GraphBuilder;
use bnff::graph::op::Conv2dAttrs;
use bnff::graph::Graph;
use bnff::serve::ServeEngine;
use bnff::tensor::init::Initializer;
use bnff::tensor::{Shape, Tensor};
use bnff::train::checkpoint::Checkpoint;
use bnff::train::validate::score_divergence;
use bnff::train::Executor;

fn classifier(batch: usize, classes: usize) -> Graph {
    let mut b = GraphBuilder::new("deploy-cls");
    let x = b.input("data", Shape::nchw(batch, 3, 8, 8)).unwrap();
    let labels = b.input("labels", Shape::vector(batch)).unwrap();
    let stem = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(8), "stem").unwrap();
    let c1 = b.bn_relu_conv(stem, Conv2dAttrs::pointwise(8), "mid").unwrap();
    let sum = b.eltwise_sum(vec![stem, c1], "sum").unwrap();
    let gap = b.global_avg_pool(sum, "gap").unwrap();
    let fc = b.fully_connected(gap, classes, "fc").unwrap();
    b.softmax_loss(fc, labels, "loss").unwrap();
    b.finish()
}

/// An executor with moved running statistics, plus a probe input.
fn conditioned(graph: Graph, seed: u64) -> (Executor, Tensor, Vec<usize>) {
    let mut exec = Executor::new(graph, seed).unwrap();
    let mut init = Initializer::seeded(seed ^ 0xf00d);
    let labels = vec![0usize, 1, 2, 0];
    let mut data = Tensor::zeros(Shape::scalar());
    for _ in 0..2 {
        data = init.uniform(Shape::nchw(4, 3, 8, 8), -1.0, 1.0);
        let fwd = exec.forward(&data, &labels).unwrap();
        exec.update_running_stats(&fwd).unwrap();
    }
    (exec, data, labels)
}

#[test]
fn artifact_deployment_is_equivalent_at_every_fusion_level() {
    let dir = std::env::temp_dir().join(format!("bnff-deploy-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = classifier(4, 3);

    for level in FusionLevel::measured() {
        let graph = BnffOptimizer::new(level).apply(&baseline).unwrap();
        let (exec, data, labels) = conditioned(graph, 37 + level as u64);
        let eval = exec.forward_eval(&data, &labels).unwrap();

        // Checkpoint ↔ artifact conversion is lossless.
        let checkpoint = Checkpoint::capture(&exec);
        let bytes = checkpoint.to_artifact_bytes().unwrap();
        let restored = Checkpoint::from_artifact(&Artifact::from_bytes(&bytes).unwrap()).unwrap();
        assert_eq!(
            checkpoint.to_json().unwrap(),
            restored.to_json().unwrap(),
            "{level}: artifact round trip changed the checkpoint"
        );

        // Both on-disk formats freeze to bit-identical scoring models.
        let artifact_path = dir.join(format!("model-{level}.bnff"));
        let json_path = dir.join(format!("model-{level}.json"));
        checkpoint.write_artifact(&artifact_path).unwrap();
        checkpoint.save(&json_path).unwrap();

        let from_artifact =
            ServeEngine::builder().model_file(&artifact_path).build_model().unwrap();
        let from_json = ServeEngine::builder().model_file(&json_path).build_model().unwrap();
        let artifact_scores = from_artifact.executor(4).unwrap().infer(&data).unwrap();
        let json_scores = from_json.executor(4).unwrap().infer(&data).unwrap();
        let artifact_bits: Vec<u32> =
            artifact_scores.as_slice().iter().map(|v| v.to_bits()).collect();
        let json_bits: Vec<u32> = json_scores.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            artifact_bits, json_bits,
            "{level}: artifact-served and checkpoint-served scores differ"
        );

        // And the deployed model still tracks the training-time eval pass.
        let div = score_divergence(&eval.scores, &artifact_scores).unwrap();
        assert!(div < 1e-5, "{level}: deployed model diverges from eval by {div}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
