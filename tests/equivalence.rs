//! Workspace integration tests: numerical equivalence of the restructured
//! training graphs, spanning the models, graph, kernels and train crates.

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::models::{densenet_cifar, resnet_cifar};
use bnff::tensor::init::Initializer;
use bnff::tensor::Shape;
use bnff::train::data::SyntheticDataset;
use bnff::train::validate::{compare_training, mvf_divergence};
use bnff::train::{Executor, TrainConfig};

#[test]
fn mvf_is_numerically_harmless_on_a_small_densenet() {
    let batch = 8;
    let graph = densenet_cifar(batch, 8, 2, 4).unwrap();
    let mut init = Initializer::seeded(3);
    let data = init.uniform(Shape::nchw(batch, 3, 32, 32), -1.0, 1.0);
    let labels: Vec<usize> = (0..batch).map(|i| i % 4).collect();
    let div = mvf_divergence(&graph, &data, &labels, 11).unwrap();
    assert!(div.loss_diff < 1e-3, "MVF changed the loss by {}", div.loss_diff);
    assert!(div.max_grad_diff < 5e-2, "MVF changed gradients by {}", div.max_grad_diff);
}

#[test]
fn bnff_restructured_densenet_produces_finite_training_signals() {
    let batch = 8;
    let baseline = densenet_cifar(batch, 8, 2, 4).unwrap();
    let restructured = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline).unwrap();
    // The restructuring merges layers but never drops a convolution.
    let convs = |g: &bnff::graph::Graph| g.nodes().filter(|n| n.op.contains_conv()).count();
    assert_eq!(convs(&baseline), convs(&restructured));

    let exec = Executor::new(restructured, 5).unwrap();
    let mut init = Initializer::seeded(9);
    let data = init.uniform(Shape::nchw(batch, 3, 32, 32), -1.0, 1.0);
    let labels: Vec<usize> = (0..batch).map(|i| i % 4).collect();
    let fwd = exec.forward(&data, &labels).unwrap();
    assert!(fwd.loss.is_finite() && fwd.loss > 0.0);
    let grads = exec.backward(&fwd).unwrap();
    assert!(grads.global_norm().is_finite());
    assert!(grads.global_norm() > 0.0);
}

#[test]
fn baseline_and_bnff_training_reach_similar_losses() {
    let batch = 8;
    let classes = 3;
    let baseline = densenet_cifar(batch, 6, 1, classes).unwrap();
    let restructured = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline).unwrap();
    let dataset = SyntheticDataset::new(classes, 3, 32, 0.05, 77).unwrap();
    let config = TrainConfig {
        batch_size: batch,
        steps: 12,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        seed: 2,
    };
    let cmp = compare_training(&baseline, &restructured, &dataset, &config).unwrap();
    assert!(cmp.loss_a.is_finite() && cmp.loss_b.is_finite());
    assert!(cmp.accuracy_a > 1.0 / classes as f32);
    assert!(cmp.accuracy_b > 1.0 / classes as f32);
}

#[test]
fn resnet_style_graphs_survive_the_full_pipeline_too() {
    let batch = 4;
    let baseline = resnet_cifar(batch, 1, 4).unwrap();
    let restructured = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline).unwrap();
    assert!(restructured.validate().is_ok());
    let exec = Executor::new(restructured, 1).unwrap();
    let mut init = Initializer::seeded(13);
    let data = init.uniform(Shape::nchw(batch, 3, 32, 32), -1.0, 1.0);
    let labels: Vec<usize> = (0..batch).map(|i| i % 4).collect();
    let fwd = exec.forward(&data, &labels).unwrap();
    assert!(fwd.loss.is_finite());
}
