//! Workspace integration tests for the memory planner and the plan-driven
//! executor: buffer reuse must be invisible to the numerics (bit-identical
//! losses and gradients against the naive reference executor, across thread
//! counts and across training steps), and the planned peak activation
//! footprint must beat naive per-node allocation on the model zoo.

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::graph::plan::ExecutionPlan;
use bnff::graph::Graph;
use bnff::models::zoo::{build, Model};
use bnff::models::{densenet_cifar, resnet_cifar};
use bnff::parallel::with_threads;
use bnff::tensor::init::Initializer;
use bnff::tensor::{Shape, Tensor};
use bnff::train::{Executor, Gradients};

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn vec_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Asserts two gradient sets are bit-identical, node by node.
fn assert_grads_bit_identical(a: &Gradients, b: &Gradients, context: &str) {
    use bnff::train::params::NodeParamGrads as G;
    assert_eq!(a.per_node.len(), b.per_node.len(), "{context}: gradient node sets differ");
    let mut keys: Vec<usize> = a.per_node.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let (ga, gb) = (&a.per_node[&key], &b.per_node[&key]);
        match (ga, gb) {
            (G::Conv { d_weights: wa, d_bias: ba }, G::Conv { d_weights: wb, d_bias: bb }) => {
                assert_eq!(bits(wa), bits(wb), "{context}: conv weights of node {key}");
                assert_eq!(vec_bits(ba), vec_bits(bb), "{context}: conv bias of node {key}");
            }
            (G::Bn { d_gamma: ga_, d_beta: ba }, G::Bn { d_gamma: gb_, d_beta: bb }) => {
                assert_eq!(vec_bits(ga_), vec_bits(gb_), "{context}: gamma of node {key}");
                assert_eq!(vec_bits(ba), vec_bits(bb), "{context}: beta of node {key}");
            }
            (
                G::ConvBn { d_weights: wa, d_bias: ba, d_gamma: gga, d_beta: bba },
                G::ConvBn { d_weights: wb, d_bias: bb, d_gamma: ggb, d_beta: bbb },
            ) => {
                assert_eq!(bits(wa), bits(wb), "{context}: fused weights of node {key}");
                assert_eq!(vec_bits(ba), vec_bits(bb), "{context}: fused bias of node {key}");
                assert_eq!(vec_bits(gga), vec_bits(ggb), "{context}: fused gamma of node {key}");
                assert_eq!(vec_bits(bba), vec_bits(bbb), "{context}: fused beta of node {key}");
            }
            (G::Fc { d_weights: wa, d_bias: ba }, G::Fc { d_weights: wb, d_bias: bb }) => {
                assert_eq!(bits(wa), bits(wb), "{context}: fc weights of node {key}");
                assert_eq!(vec_bits(ba), vec_bits(bb), "{context}: fc bias of node {key}");
            }
            _ => panic!("{context}: gradient variants of node {key} differ"),
        }
    }
    match (&a.d_data, &b.d_data) {
        (Some(da), Some(db)) => assert_eq!(bits(da), bits(db), "{context}: d_data"),
        (None, None) => {}
        _ => panic!("{context}: d_data presence differs"),
    }
}

/// Runs planned-vs-naive on one graph under one thread count; the planned
/// path runs twice so cross-step buffer recycling is exercised.
fn check_equivalence(graph: &Graph, threads: usize, context: &str) {
    let exec = Executor::new(graph.clone(), 41).unwrap();
    let batch = 6;
    let mut init = Initializer::seeded(42);
    let data = init.uniform(Shape::nchw(batch, 3, 32, 32), -1.0, 1.0);
    let labels: Vec<usize> = (0..batch).map(|i| i % 4).collect();

    with_threads(threads, || {
        let naive_fwd = exec.forward_naive(&data, &labels).unwrap();
        let naive_grads = exec.backward(&naive_fwd).unwrap();

        for step in 0..2 {
            let fwd = exec.forward(&data, &labels).unwrap();
            let step_ctx = format!("{context} t{threads} step{step}");
            assert_eq!(fwd.loss.to_bits(), naive_fwd.loss.to_bits(), "{step_ctx}: loss");
            assert_eq!(
                fwd.accuracy.to_bits(),
                naive_fwd.accuracy.to_bits(),
                "{step_ctx}: accuracy"
            );
            assert_eq!(bits(&fwd.scores), bits(&naive_fwd.scores), "{step_ctx}: scores");
            let grads = exec.backward(&fwd).unwrap();
            assert_grads_bit_identical(&grads, &naive_grads, &step_ctx);
        }
    });
}

#[test]
fn planned_execution_is_bit_identical_on_the_baseline_densenet() {
    let graph = densenet_cifar(6, 6, 2, 4).unwrap();
    for threads in [1usize, 4] {
        check_equivalence(&graph, threads, "densenet baseline");
    }
}

#[test]
fn planned_execution_is_bit_identical_on_the_bnff_densenet() {
    let baseline = densenet_cifar(6, 6, 2, 4).unwrap();
    let restructured = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline).unwrap();
    for threads in [1usize, 4] {
        check_equivalence(&restructured, threads, "densenet bnff");
    }
}

#[test]
fn planned_execution_is_bit_identical_on_resnet_graphs() {
    let baseline = resnet_cifar(6, 1, 4).unwrap();
    check_equivalence(&baseline, 4, "resnet baseline");
    let restructured = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline).unwrap();
    check_equivalence(&restructured, 4, "resnet bnff");
}

#[test]
fn planned_execution_is_bit_identical_with_split_maxpool_and_eltwise() {
    // The zoo's executed models cover conv/BN/ReLU/avg-pool/concat/FC; this
    // graph adds the remaining executor arms — Split aliasing, max pooling
    // and the residual element-wise sum — to the planned-vs-naive check.
    use bnff::graph::builder::GraphBuilder;
    use bnff::graph::op::{Conv2dAttrs, PoolAttrs};
    let mut b = GraphBuilder::new("mixed");
    let x = b.input("data", Shape::nchw(6, 3, 32, 32)).unwrap();
    let labels = b.input("labels", Shape::vector(6)).unwrap();
    let c1 = b.conv2d(x, Conv2dAttrs::same_3x3(8), "conv1").unwrap();
    let bn = b.batch_norm_default(c1, "bn1").unwrap();
    let s = b.split(bn, 2, "split").unwrap();
    let r = b.relu(s, "relu").unwrap();
    let c2 = b.conv2d(r, Conv2dAttrs::pointwise(8), "conv2").unwrap();
    let ews = b.eltwise_sum(vec![c2, s], "ews").unwrap();
    let mp = b.max_pool(ews, PoolAttrs::new(2, 2, 0), "maxpool").unwrap();
    let gap = b.global_avg_pool(mp, "gap").unwrap();
    let fc = b.fully_connected(gap, 4, "fc").unwrap();
    b.softmax_loss(fc, labels, "loss").unwrap();
    let graph = b.finish();
    for threads in [1usize, 4] {
        check_equivalence(&graph, threads, "mixed ops");
    }
}

#[test]
fn planned_peak_never_exceeds_the_naive_total_across_the_zoo() {
    for model in [
        Model::AlexNet,
        Model::Vgg16,
        Model::ResNet18,
        Model::ResNet50,
        Model::DenseNet121,
        Model::DenseNet169,
        Model::DenseNetCifar,
        Model::ResNetCifar,
    ] {
        let graph = build(model, 2).unwrap();
        let plan = ExecutionPlan::for_graph(&graph).unwrap();
        assert!(
            plan.planned_peak_bytes() <= plan.naive_total_bytes(),
            "{}: planned {} exceeds naive {}",
            model.display_name(),
            plan.planned_peak_bytes(),
            plan.naive_total_bytes()
        );
    }
}

#[test]
fn planned_peak_is_strictly_below_naive_for_resnet_and_densenet() {
    for model in [Model::ResNet50, Model::DenseNet121, Model::ResNetCifar, Model::DenseNetCifar] {
        let graph = build(model, 2).unwrap();
        let plan = ExecutionPlan::for_graph(&graph).unwrap();
        assert!(
            plan.planned_peak_bytes() < plan.naive_total_bytes(),
            "{}: planned {} not strictly below naive {}",
            model.display_name(),
            plan.planned_peak_bytes(),
            plan.naive_total_bytes()
        );
        // The plan must actually pack transient tensors into shared slots.
        assert!(plan.slot_count() >= 1, "{}: no reuse slots", model.display_name());
    }
}

#[test]
fn restructured_graphs_still_plan_their_memory() {
    // Every fusion level's graph must be plannable, and the planner must
    // keep beating naive allocation after restructuring.
    let baseline = densenet_cifar(4, 8, 2, 4).unwrap();
    for level in FusionLevel::all() {
        let graph = BnffOptimizer::new(level).apply(&baseline).unwrap();
        let plan = ExecutionPlan::for_graph(&graph).unwrap();
        assert!(
            plan.planned_peak_bytes() < plan.naive_total_bytes(),
            "{level:?}: planned {} vs naive {}",
            plan.planned_peak_bytes(),
            plan.naive_total_bytes()
        );
    }
}
