//! Workspace integration tests for the linear instruction tape: for the
//! CIFAR-scale zoo models at every measured fusion level (0–3: Baseline,
//! RCF, RCF+MVF, BNFF), the compiled tape must produce **bit-identical**
//! scores to the per-node interpreted walk of the same frozen graph, at
//! batch sizes 1, 4 and 8 and across `BNFF_THREADS` 1 and 4 — the tape is
//! a dispatch optimization, never a numerics change.

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::graph::Graph;
use bnff::models::{densenet_cifar, resnet_cifar};
use bnff::parallel::with_threads;
use bnff::serve::ServeEngine;
use bnff::tensor::init::Initializer;
use bnff::tensor::{Shape, Tensor};
use bnff::train::Executor;

/// Prepares a trained-ish executor (moved running statistics) for a graph.
fn conditioned(graph: &Graph, seed: u64) -> Executor {
    let input_shape = graph
        .input_nodes()
        .into_iter()
        .map(|id| graph.node(id).unwrap().output_shape.clone())
        .find(Shape::is_nchw)
        .expect("graph has a data input");
    let mut exec = Executor::new(graph.clone(), seed).unwrap();
    let mut init = Initializer::seeded(seed ^ 0xbadc0de);
    let labels: Vec<usize> = (0..input_shape.n()).map(|i| i % 4).collect();
    let data = init.uniform(input_shape, -1.0, 1.0);
    let fwd = exec.forward(&data, &labels).unwrap();
    exec.update_running_stats(&fwd).unwrap();
    exec
}

fn to_bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Tape vs interpreted walk, bitwise, at batch sizes 1/4/8 and thread
/// counts 1/4.
fn check_tape_matches_interpreted(graph: &Graph, context: &str) {
    let exec = conditioned(graph, 23);
    let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
    for batch in [1usize, 4, 8] {
        let executor = model.executor(batch).unwrap();
        let mut init = Initializer::seeded(0x7a9e ^ batch as u64);
        let data = init.uniform(executor.input_shape(), -1.0, 1.0);
        let mut per_thread_bits: Vec<Vec<u32>> = Vec::new();
        for threads in [1usize, 4] {
            with_threads(threads, || {
                let tape = executor.infer(&data).unwrap();
                let interpreted = executor.infer_interpreted(&data).unwrap();
                assert_eq!(
                    to_bits(&tape),
                    to_bits(&interpreted),
                    "{context} b{batch} t{threads}: tape diverges from interpreted walk"
                );
                per_thread_bits.push(to_bits(&tape));
            });
        }
        assert_eq!(
            per_thread_bits[0], per_thread_bits[1],
            "{context} b{batch}: tape scores differ between 1 and 4 threads"
        );
    }
}

#[test]
fn cifar_densenet_tape_matches_interpreted_at_levels_0_to_3() {
    let baseline = densenet_cifar(4, 6, 2, 4).unwrap();
    for level in FusionLevel::measured() {
        let graph = BnffOptimizer::new(level).apply(&baseline).unwrap();
        check_tape_matches_interpreted(&graph, &format!("densenet-cifar {level}"));
    }
}

#[test]
fn cifar_resnet_tape_matches_interpreted_at_levels_0_to_3() {
    let baseline = resnet_cifar(4, 1, 4).unwrap();
    for level in FusionLevel::measured() {
        let graph = BnffOptimizer::new(level).apply(&baseline).unwrap();
        check_tape_matches_interpreted(&graph, &format!("resnet-cifar {level}"));
    }
}
