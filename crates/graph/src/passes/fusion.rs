//! The two Fusion halves of BN Fission-n-Fusion.
//!
//! After [`FissionPass`](crate::passes::FissionPass) has split each BN layer
//! into `sub-BN1` (statistics) and `sub-BN2` (normalization):
//!
//! * [`FuseStatsIntoConvPass`] glues `sub-BN1` onto the *preceding*
//!   convolution, which then accumulates Σx and Σx² while writing its output
//!   feature map (`CONV1-(sub-BN1)` in the paper, [`OpKind::ConvStats`]).
//! * [`FuseNormReluConvPass`] glues `sub-BN2` onto the *following* ReLU and
//!   convolution, which normalizes and clips while reading its input feature
//!   map (`(sub-BN2)-ReLU-CONV2`, [`OpKind::NormReluConv`]). When no
//!   convolution follows, the normalization and ReLU are still merged into a
//!   single [`OpKind::NormRelu`] sweep.

use crate::graph::Graph;
use crate::node::NodeId;
use crate::op::OpKind;
use crate::passes::Pass;
use crate::Result;
use std::collections::HashSet;

/// Fuses each `sub-BN1` statistics node into the convolution that produces
/// its input, yielding [`OpKind::ConvStats`].
#[derive(Debug, Default, Clone, Copy)]
pub struct FuseStatsIntoConvPass;

impl FuseStatsIntoConvPass {
    /// Creates the pass.
    pub fn new() -> Self {
        FuseStatsIntoConvPass
    }
}

impl Pass for FuseStatsIntoConvPass {
    fn name(&self) -> &'static str {
        "fuse-stats-into-conv"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut out = graph.clone();
        let mut removed: HashSet<NodeId> = HashSet::new();

        let stats_nodes: Vec<NodeId> =
            graph.nodes().filter(|n| matches!(n.op, OpKind::SubBnStats(_))).map(|n| n.id).collect();

        for stats_id in stats_nodes {
            let (bn_attrs, producer_id) = {
                let node = out.node(stats_id)?;
                let attrs = match node.op {
                    OpKind::SubBnStats(a) => a,
                    _ => continue,
                };
                (attrs, node.inputs[0])
            };
            let producer_op = out.node(producer_id)?.op.clone();
            let fused_op = match producer_op {
                OpKind::Conv2d(conv) => OpKind::ConvStats { conv, bn: bn_attrs },
                // A convolution that already normalizes its inputs can still
                // accumulate statistics on its outputs (fused on both sides).
                OpKind::NormReluConv { conv, bn } => {
                    OpKind::NormReluConvStats { conv, bn_in: bn, bn_out: bn_attrs }
                }
                // Anything else (Concat, Pool, Input, an already-fused
                // statistics producer) cannot absorb the accumulator here;
                // Concat is handled by the ICF pass.
                _ => continue,
            };
            out.set_op(producer_id, fused_op)?;
            let producer_name = out.node(producer_id)?.name.clone();
            out.set_node_name(producer_id, format!("{producer_name}+stats"))?;
            // Consumers of the statistics (the sub-BN2 node) now read them
            // from the fused convolution's on-chip accumulator.
            out.rewire_consumers(stats_id, producer_id)?;
            removed.insert(stats_id);
        }
        out.compacted(&removed)
    }
}

/// Fuses each `sub-BN2` normalization node with the ReLU and convolution
/// that consume it, yielding [`OpKind::NormReluConv`] (or [`OpKind::NormRelu`]
/// when no convolution follows).
#[derive(Debug, Default, Clone, Copy)]
pub struct FuseNormReluConvPass;

impl FuseNormReluConvPass {
    /// Creates the pass.
    pub fn new() -> Self {
        FuseNormReluConvPass
    }
}

impl Pass for FuseNormReluConvPass {
    fn name(&self) -> &'static str {
        "fuse-norm-relu-conv"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut out = graph.clone();
        let mut removed: HashSet<NodeId> = HashSet::new();

        let norm_nodes: Vec<NodeId> =
            graph.nodes().filter(|n| matches!(n.op, OpKind::SubBnNorm(_))).map(|n| n.id).collect();

        for norm_id in norm_nodes {
            let (bn_attrs, norm_inputs) = {
                let node = out.node(norm_id)?;
                let attrs = match node.op {
                    OpKind::SubBnNorm(a) => a,
                    _ => continue,
                };
                (attrs, node.inputs.clone())
            };
            let consumers = out.consumers(norm_id);
            if consumers.len() != 1 {
                continue;
            }
            let relu_id = consumers[0];
            if !matches!(out.node(relu_id)?.op, OpKind::Relu) {
                continue;
            }
            let relu_consumers = out.consumers(relu_id);
            if relu_consumers.len() == 1 {
                let conv_id = relu_consumers[0];
                let fused_op = match out.node(conv_id)?.op.clone() {
                    // Full fusion: sub-BN2 + ReLU + CONV2.
                    OpKind::Conv2d(conv) => Some(OpKind::NormReluConv { conv, bn: bn_attrs }),
                    // The following convolution already accumulates the next
                    // BN's statistics: fuse on both sides.
                    OpKind::ConvStats { conv, bn } => {
                        Some(OpKind::NormReluConvStats { conv, bn_in: bn_attrs, bn_out: bn })
                    }
                    _ => None,
                };
                if let Some(fused_op) = fused_op {
                    out.set_op(conv_id, fused_op)?;
                    out.set_inputs(conv_id, norm_inputs.clone())?;
                    let conv_name = out.node(conv_id)?.name.clone();
                    out.set_node_name(conv_id, format!("{conv_name}+norm+relu"))?;
                    removed.insert(norm_id);
                    removed.insert(relu_id);
                    continue;
                }
            }
            // Tail case: no single following convolution. Merge the
            // normalization with the ReLU so the pair still costs a single
            // read + write sweep.
            out.set_op(norm_id, OpKind::NormRelu(bn_attrs))?;
            let norm_name = out.node(norm_id)?.name.clone();
            out.set_node_name(norm_id, format!("{norm_name}+relu"))?;
            out.rewire_consumers(relu_id, norm_id)?;
            removed.insert(relu_id);
        }
        out.compacted(&removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::builder::GraphBuilder;
    use crate::op::Conv2dAttrs;
    use crate::passes::FissionPass;
    use bnff_tensor::Shape;

    /// CONV1 -> BN -> ReLU -> CONV2, the canonical DenseNet CPL interior.
    fn cpl_graph() -> Graph {
        let mut b = GraphBuilder::new("cpl");
        let x = b.input("in", Shape::nchw(8, 64, 16, 16)).unwrap();
        let c1 = b.conv2d(x, Conv2dAttrs::pointwise(128), "conv1").unwrap();
        let bn = b.batch_norm_default(c1, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        b.conv2d(r, Conv2dAttrs::same_3x3(32), "conv2").unwrap();
        b.finish()
    }

    #[test]
    fn stats_fuse_into_preceding_conv() {
        let g = FissionPass::new().run(&cpl_graph()).unwrap();
        let out = FuseStatsIntoConvPass::new().run(&g).unwrap();
        assert!(out.validate().is_ok());
        let hist = out.op_histogram();
        assert!(!hist.contains_key("SubBnStats"));
        assert_eq!(hist["ConvStats"], 1);
        // The normalization node now reads its statistics from the fused conv.
        let norm = out.nodes().find(|n| matches!(n.op, OpKind::SubBnNorm(_))).unwrap();
        let stats_src = out.node(norm.inputs[1]).unwrap();
        assert!(matches!(stats_src.op, OpKind::ConvStats { .. }));
    }

    #[test]
    fn norm_relu_conv_full_fusion() {
        let g = FissionPass::new().run(&cpl_graph()).unwrap();
        let g = FuseStatsIntoConvPass::new().run(&g).unwrap();
        let out = FuseNormReluConvPass::new().run(&g).unwrap();
        assert!(out.validate().is_ok());
        let hist = out.op_histogram();
        assert!(!hist.contains_key("SubBnNorm"));
        assert!(!hist.contains_key("ReLU"));
        assert_eq!(hist["NormReluConv"], 1);
        assert_eq!(hist["ConvStats"], 1);
        // Input, ConvStats, NormReluConv: 3 nodes.
        assert_eq!(out.node_count(), 3);
    }

    #[test]
    fn full_fusion_reduces_activation_sweeps() {
        let baseline = cpl_graph();
        let before = analysis::activation_sweep_count(&baseline).unwrap();
        let g = FissionPass::new().run(&baseline).unwrap();
        let g = FuseStatsIntoConvPass::new().run(&g).unwrap();
        let out = FuseNormReluConvPass::new().run(&g).unwrap();
        let after = analysis::activation_sweep_count(&out).unwrap();
        assert!(after < before, "BNFF fusion must reduce sweeps ({after} vs {before})");
    }

    #[test]
    fn stats_after_non_conv_producer_stay() {
        // BN directly after a pooling layer: sub-BN1 cannot fuse.
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(2, 8, 8, 8)).unwrap();
        let p = b.max_pool(x, crate::op::PoolAttrs::new(2, 2, 0), "pool").unwrap();
        b.batch_norm_default(p, "bn").unwrap();
        let g = FissionPass::new().run(&b.finish()).unwrap();
        let out = FuseStatsIntoConvPass::new().run(&g).unwrap();
        assert_eq!(out.op_histogram()["SubBnStats"], 1);
    }

    #[test]
    fn norm_without_following_conv_becomes_norm_relu() {
        // BN -> ReLU -> GlobalAvgPool (the DenseNet classifier tail).
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(2, 8, 8, 8)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::pointwise(16), "conv").unwrap();
        let bn = b.batch_norm_default(c, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        b.global_avg_pool(r, "gap").unwrap();
        let g = FissionPass::new().run(&b.finish()).unwrap();
        let g = FuseStatsIntoConvPass::new().run(&g).unwrap();
        let out = FuseNormReluConvPass::new().run(&g).unwrap();
        assert!(out.validate().is_ok());
        let hist = out.op_histogram();
        assert_eq!(hist["NormRelu"], 1);
        assert!(!hist.contains_key("ReLU"));
        assert!(!hist.contains_key("SubBnNorm"));
    }

    #[test]
    fn norm_without_relu_is_left_alone() {
        // ResNet residual-branch tail: CONV -> BN -> EltwiseSum.
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(2, 8, 8, 8)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::pointwise(8), "conv").unwrap();
        let bn = b.batch_norm_default(c, "bn").unwrap();
        b.eltwise_sum(vec![bn, x], "ews").unwrap();
        let g = FissionPass::new().run(&b.finish()).unwrap();
        let g = FuseStatsIntoConvPass::new().run(&g).unwrap();
        let out = FuseNormReluConvPass::new().run(&g).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.op_histogram()["SubBnNorm"], 1);
    }
}
