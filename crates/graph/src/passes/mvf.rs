//! Mean/Variance Fusion: compute BN statistics in a single sweep.

use crate::graph::Graph;
use crate::op::OpKind;
use crate::passes::Pass;
use crate::Result;

/// Switches every Batch Normalization (or BN-derived) node to single-sweep
/// statistics based on the identity `Var[X] = E[X²] − E[X]²`.
///
/// In the baseline, computing the variance requires the mean, so the ifmaps
/// are swept twice before normalization; MVF merges the two sweeps
/// (Section 3.2). The pass is purely an attribute flip — the structural
/// fusion with the preceding convolution is done by
/// [`FuseStatsIntoConvPass`](crate::passes::FuseStatsIntoConvPass).
#[derive(Debug, Default, Clone, Copy)]
pub struct MvfPass;

impl MvfPass {
    /// Creates the pass.
    pub fn new() -> Self {
        MvfPass
    }
}

impl Pass for MvfPass {
    fn name(&self) -> &'static str {
        "mean-variance-fusion"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut out = graph.clone();
        let updates: Vec<_> = graph
            .nodes()
            .filter_map(|n| {
                let new_op = match &n.op {
                    OpKind::BatchNorm(a) => {
                        let mut a = *a;
                        a.one_pass_stats = true;
                        Some(OpKind::BatchNorm(a))
                    }
                    OpKind::SubBnStats(a) => {
                        let mut a = *a;
                        a.one_pass_stats = true;
                        Some(OpKind::SubBnStats(a))
                    }
                    OpKind::ConvStats { conv, bn } => {
                        let mut bn = *bn;
                        bn.one_pass_stats = true;
                        Some(OpKind::ConvStats { conv: *conv, bn })
                    }
                    OpKind::NormReluConvStats { conv, bn_in, bn_out } => {
                        let mut bn_out = *bn_out;
                        bn_out.one_pass_stats = true;
                        Some(OpKind::NormReluConvStats { conv: *conv, bn_in: *bn_in, bn_out })
                    }
                    OpKind::ConcatStats(a) => {
                        let mut a = *a;
                        a.one_pass_stats = true;
                        Some(OpKind::ConcatStats(a))
                    }
                    _ => None,
                };
                new_op.map(|op| (n.id, op))
            })
            .collect();
        for (id, op) in updates {
            out.set_op(id, op)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::builder::GraphBuilder;
    use crate::op::{BatchNormAttrs, Conv2dAttrs};
    use bnff_tensor::Shape;

    fn bn_graph() -> Graph {
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(4, 16, 8, 8)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::pointwise(32), "conv").unwrap();
        b.batch_norm(c, BatchNormAttrs::default(), "bn").unwrap();
        b.finish()
    }

    #[test]
    fn flips_every_bn_to_one_pass() {
        let g = bn_graph();
        let out = MvfPass::new().run(&g).unwrap();
        for node in out.nodes() {
            if let OpKind::BatchNorm(a) = &node.op {
                assert!(a.one_pass_stats);
            }
        }
    }

    #[test]
    fn reduces_forward_sweeps() {
        let g = bn_graph();
        let before = analysis::activation_sweep_count(&g).unwrap();
        let out = MvfPass::new().run(&g).unwrap();
        let after = analysis::activation_sweep_count(&out).unwrap();
        assert_eq!(after, before - 1, "MVF removes exactly one read sweep per BN");
    }

    #[test]
    fn applies_to_fissioned_stats_nodes() {
        let g = bn_graph();
        let fissioned = crate::passes::FissionPass::new().run(&g).unwrap();
        let out = MvfPass::new().run(&fissioned).unwrap();
        let stats = out.nodes().find(|n| matches!(n.op, OpKind::SubBnStats(_))).unwrap();
        match stats.op {
            OpKind::SubBnStats(a) => assert!(a.one_pass_stats),
            _ => unreachable!(),
        }
    }

    #[test]
    fn idempotent() {
        let g = bn_graph();
        let once = MvfPass::new().run(&g).unwrap();
        let twice = MvfPass::new().run(&once).unwrap();
        assert_eq!(once, twice);
    }
}
