//! BN Fission: split every Batch Normalization layer into a statistics
//! sub-layer (`sub-BN1`) and a normalization sub-layer (`sub-BN2`).

use crate::graph::Graph;
use crate::node::NodeId;
use crate::op::OpKind;
use crate::passes::Pass;
use crate::Result;

/// Splits each [`OpKind::BatchNorm`] node into an [`OpKind::SubBnStats`]
/// node (per-channel Σx/Σx² over the mini-batch) and an
/// [`OpKind::SubBnNorm`] node (γ/β normalization).
///
/// Fission by itself does not change the number of memory sweeps — the
/// statistics sub-layer still reads the ifmaps and the normalization
/// sub-layer reads them again — but it exposes the two halves to the fusion
/// passes so each can be absorbed by an adjacent convolution (Section 3.2 of
/// the paper).
#[derive(Debug, Default, Clone, Copy)]
pub struct FissionPass;

impl FissionPass {
    /// Creates the pass.
    pub fn new() -> Self {
        FissionPass
    }
}

impl Pass for FissionPass {
    fn name(&self) -> &'static str {
        "bn-fission"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut out = graph.clone();
        let bn_nodes: Vec<(NodeId, OpKind, NodeId, String)> = graph
            .nodes()
            .filter_map(|n| match &n.op {
                OpKind::BatchNorm(attrs) => {
                    Some((n.id, OpKind::BatchNorm(*attrs), *n.inputs.first()?, n.name.clone()))
                }
                _ => None,
            })
            .collect();

        for (bn_id, op, input, name) in bn_nodes {
            let attrs = match op {
                OpKind::BatchNorm(a) => a,
                _ => unreachable!("filtered to BatchNorm above"),
            };
            let stats =
                out.add_node(format!("{name}/stats"), OpKind::SubBnStats(attrs), vec![input])?;
            out.set_op(bn_id, OpKind::SubBnNorm(attrs))?;
            out.set_inputs(bn_id, vec![input, stats])?;
            out.set_node_name(bn_id, format!("{name}/norm"))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::builder::GraphBuilder;
    use crate::op::{BatchNormAttrs, Conv2dAttrs};
    use bnff_tensor::Shape;

    fn bn_graph() -> Graph {
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(4, 16, 8, 8)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::pointwise(32), "conv").unwrap();
        let bn = b.batch_norm(c, BatchNormAttrs::default(), "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        b.conv2d(r, Conv2dAttrs::same_3x3(8), "conv2").unwrap();
        b.finish()
    }

    #[test]
    fn splits_bn_into_two_sub_layers() {
        let g = bn_graph();
        let out = FissionPass::new().run(&g).unwrap();
        assert!(out.validate().is_ok());
        let hist = out.op_histogram();
        assert!(!hist.contains_key("BatchNorm"));
        assert_eq!(hist["SubBnStats"], 1);
        assert_eq!(hist["SubBnNorm"], 1);
        // One extra node: BN became two.
        assert_eq!(out.node_count(), g.node_count() + 1);
    }

    #[test]
    fn norm_sub_layer_keeps_consumers() {
        let g = bn_graph();
        let out = FissionPass::new().run(&g).unwrap();
        // The ReLU must still read from the (renamed) normalization node,
        // which re-uses the original BN node id.
        let relu = out.nodes().find(|n| n.name == "relu").unwrap();
        let norm = out.node(relu.inputs[0]).unwrap();
        assert!(matches!(norm.op, OpKind::SubBnNorm(_)));
        assert!(norm.name.ends_with("/norm"));
    }

    #[test]
    fn fission_alone_does_not_reduce_sweeps() {
        let g = bn_graph();
        let before = analysis::activation_sweep_count(&g).unwrap();
        let out = FissionPass::new().run(&g).unwrap();
        let after = analysis::activation_sweep_count(&out).unwrap();
        assert_eq!(before, after, "fission must be traffic-neutral");
    }

    #[test]
    fn graph_without_bn_is_unchanged() {
        let mut b = GraphBuilder::new("nobn");
        let x = b.input("in", Shape::nchw(1, 3, 4, 4)).unwrap();
        b.conv2d(x, Conv2dAttrs::same_3x3(4), "conv").unwrap();
        let g = b.finish();
        let out = FissionPass::new().run(&g).unwrap();
        assert_eq!(out.node_count(), g.node_count());
    }

    #[test]
    fn preserves_one_pass_attribute() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(2, 8, 4, 4)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::pointwise(8), "conv").unwrap();
        b.batch_norm(c, BatchNormAttrs::one_pass(), "bn").unwrap();
        let g = b.finish();
        let out = FissionPass::new().run(&g).unwrap();
        let stats = out.nodes().find(|n| matches!(n.op, OpKind::SubBnStats(_))).unwrap();
        match stats.op {
            OpKind::SubBnStats(a) => assert!(a.one_pass_stats),
            _ => unreachable!(),
        }
    }
}
