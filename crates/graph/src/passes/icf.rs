//! Inter-Composite-layer Fusion (ICF).
//!
//! After BNFF, the only standalone BN statistics sub-layers left are those
//! whose producing layer is not a convolution — in DenseNet these are the
//! BN layers at composite-layer boundaries, whose inputs come from the
//! Concat (forward) / Split (backward) of the dense connectivity. ICF fuses
//! those `sub-BN1` layers into the Concat itself, removing the last
//! dedicated BN memory sweeps (Section 3.2, evaluated as an estimate in
//! Section 5 of the paper).

use crate::graph::Graph;
use crate::node::NodeId;
use crate::op::OpKind;
use crate::passes::Pass;
use crate::Result;
use std::collections::HashSet;

/// Fuses boundary `sub-BN1` statistics nodes into their producing Concat
/// (yielding [`OpKind::ConcatStats`]).
///
/// The pass only applies to statistics nodes whose producer is a plain
/// [`OpKind::Concat`] with no other statistics consumer; everything else is
/// left untouched. Run it after [`BnffPass`](crate::passes::BnffPass).
#[derive(Debug, Default, Clone, Copy)]
pub struct IcfPass;

impl IcfPass {
    /// Creates the pass.
    pub fn new() -> Self {
        IcfPass
    }
}

impl Pass for IcfPass {
    fn name(&self) -> &'static str {
        "inter-composite-layer-fusion"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut out = graph.clone();
        let mut removed: HashSet<NodeId> = HashSet::new();
        let mut claimed_concats: HashSet<NodeId> = HashSet::new();

        let stats_nodes: Vec<NodeId> =
            graph.nodes().filter(|n| matches!(n.op, OpKind::SubBnStats(_))).map(|n| n.id).collect();

        for stats_id in stats_nodes {
            let (bn_attrs, producer_id) = {
                let node = out.node(stats_id)?;
                let attrs = match node.op {
                    OpKind::SubBnStats(a) => a,
                    _ => continue,
                };
                (attrs, node.inputs[0])
            };
            if claimed_concats.contains(&producer_id) {
                continue;
            }
            if !matches!(out.node(producer_id)?.op, OpKind::Concat) {
                continue;
            }
            out.set_op(producer_id, OpKind::ConcatStats(bn_attrs))?;
            let name = out.node(producer_id)?.name.clone();
            out.set_node_name(producer_id, format!("{name}+stats"))?;
            out.rewire_consumers(stats_id, producer_id)?;
            removed.insert(stats_id);
            claimed_concats.insert(producer_id);
        }
        out.compacted(&removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::builder::GraphBuilder;
    use crate::op::Conv2dAttrs;
    use crate::passes::BnffPass;
    use bnff_tensor::Shape;

    /// Dense-block fragment whose boundary BN reads from a Concat.
    fn dense_boundary_graph() -> Graph {
        let mut b = GraphBuilder::new("boundary");
        let x = b.input("in", Shape::nchw(8, 64, 16, 16)).unwrap();
        let c0 = b.conv2d(x, Conv2dAttrs::same_3x3(32), "prev_conv").unwrap();
        let cat = b.concat(vec![x, c0], "concat").unwrap();
        let c1 = b.bn_relu_conv(cat, Conv2dAttrs::pointwise(128), "cpl/a").unwrap();
        let c2 = b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(32), "cpl/b").unwrap();
        b.concat(vec![cat, c2], "concat_out").unwrap();
        b.finish()
    }

    #[test]
    fn fuses_boundary_stats_into_concat() {
        let g = dense_boundary_graph();
        let bnff = BnffPass::new().run(&g).unwrap();
        assert_eq!(bnff.op_histogram()["SubBnStats"], 1);
        let icf = IcfPass::new().run(&bnff).unwrap();
        assert!(icf.validate().is_ok());
        let hist = icf.op_histogram();
        assert!(!hist.contains_key("SubBnStats"));
        assert_eq!(hist["ConcatStats"], 1);
        assert_eq!(hist["Concat"], 1);
    }

    #[test]
    fn icf_reduces_sweeps_beyond_bnff() {
        let g = dense_boundary_graph();
        let bnff = BnffPass::new().run(&g).unwrap();
        let icf = IcfPass::new().run(&bnff).unwrap();
        let bnff_sweeps = analysis::activation_sweep_count(&bnff).unwrap();
        let icf_sweeps = analysis::activation_sweep_count(&icf).unwrap();
        assert!(icf_sweeps < bnff_sweeps);
    }

    #[test]
    fn leaves_non_concat_producers_alone() {
        // The standalone stats node after an Input producer must stay.
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(2, 8, 8, 8)).unwrap();
        let c = b.bn_relu_conv(x, Conv2dAttrs::pointwise(16), "cpl").unwrap();
        let _ = c;
        let g = BnffPass::new().run(&b.finish()).unwrap();
        let out = IcfPass::new().run(&g).unwrap();
        assert_eq!(out.op_histogram()["SubBnStats"], 1);
    }

    #[test]
    fn icf_without_bnff_is_identity() {
        let g = dense_boundary_graph();
        let out = IcfPass::new().run(&g).unwrap();
        assert_eq!(out.node_count(), g.node_count());
    }

    #[test]
    fn idempotent() {
        let g = dense_boundary_graph();
        let bnff = BnffPass::new().run(&g).unwrap();
        let once = IcfPass::new().run(&bnff).unwrap();
        let twice = IcfPass::new().run(&once).unwrap();
        assert_eq!(once.node_count(), twice.node_count());
    }
}
