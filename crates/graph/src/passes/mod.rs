//! Graph restructuring passes.
//!
//! The paper evaluates four cumulative scenarios (Figure 7), each of which
//! corresponds to a pass (or pass pipeline) here:
//!
//! * **RCF** ([`RcfPass`]) — ReLU–CONV fusion: apply the ReLU while reading
//!   the ifmaps of the following convolution.
//! * **MVF** ([`MvfPass`]) — mean/variance fusion: compute the per-channel
//!   variance as `E[X²] − E[X]²` so BN statistics need a single sweep.
//! * **BNFF** ([`BnffPass`]) — BN Fission-n-Fusion: split every BN into
//!   `sub-BN1` / `sub-BN2` ([`FissionPass`]), fuse `sub-BN1` into the
//!   preceding convolution and `sub-BN2` (+ ReLU) into the following
//!   convolution ([`FuseStatsIntoConvPass`], [`FuseNormReluConvPass`]);
//!   includes MVF and RCF.
//! * **ICF** ([`IcfPass`]) — inter-composite-layer fusion: additionally fuse
//!   `sub-BN1` layers that sit at composite-layer boundaries into the
//!   producing Concat.
//!
//! Beyond the paper's training-time passes, [`freeze()`] rewrites a trained
//! graph (at any of the levels above) for *inference*: BN and its fission
//! products collapse into per-channel affines over running statistics,
//! which fold into the adjacent convolutions — the serve crate applies the
//! resulting [`FoldRecipe`] plan numerically.

mod bnff;
mod fission;
pub mod freeze;
mod fusion;
mod icf;
mod mvf;
mod rcf;

pub use bnff::BnffPass;
pub use fission::FissionPass;
pub use freeze::{freeze, AffineSource, FoldRecipe, FrozenGraph};
pub use fusion::{FuseNormReluConvPass, FuseStatsIntoConvPass};
pub use icf::IcfPass;
pub use mvf::MvfPass;
pub use rcf::RcfPass;

use crate::graph::Graph;
use crate::Result;

/// A graph-to-graph restructuring pass.
///
/// Passes never mutate their input; they return a new, validated graph.
pub trait Pass {
    /// Short name used in diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the pass.
    ///
    /// # Errors
    /// Returns an error if the input graph is structurally invalid or a
    /// rewrite cannot be applied consistently.
    fn run(&self, graph: &Graph) -> Result<Graph>;
}

/// Runs a sequence of passes in order.
#[derive(Default)]
pub struct PassPipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl std::fmt::Debug for PassPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassPipeline").field("passes", &names).finish()
    }
}

impl PassPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        PassPipeline { passes: Vec::new() }
    }

    /// Appends a pass to the pipeline.
    #[must_use]
    pub fn with(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Number of passes in the pipeline.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline holds no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs every pass in order, validating after each step.
    ///
    /// # Errors
    /// Returns the first error produced by any pass or validation step.
    pub fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut current = graph.clone();
        for pass in &self.passes {
            current = pass.run(&current)?;
            current.validate()?;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::Conv2dAttrs;
    use bnff_tensor::Shape;

    #[test]
    fn empty_pipeline_is_identity() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(1, 3, 8, 8)).unwrap();
        b.conv2d(x, Conv2dAttrs::same_3x3(4), "conv").unwrap();
        let g = b.finish();
        let pipeline = PassPipeline::new();
        assert!(pipeline.is_empty());
        let out = pipeline.run(&g).unwrap();
        assert_eq!(out.node_count(), g.node_count());
    }

    #[test]
    fn pipeline_composes_passes() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(2, 8, 8, 8)).unwrap();
        let c1 = b.conv2d(x, Conv2dAttrs::pointwise(16), "conv1").unwrap();
        let bn = b.batch_norm_default(c1, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        b.conv2d(r, Conv2dAttrs::same_3x3(8), "conv2").unwrap();
        let g = b.finish();

        let pipeline =
            PassPipeline::new().with(Box::new(MvfPass::new())).with(Box::new(RcfPass::new()));
        assert_eq!(pipeline.len(), 2);
        let out = pipeline.run(&g).unwrap();
        assert!(out.validate().is_ok());
        // RCF removed the standalone ReLU.
        assert!(!out.op_histogram().contains_key("ReLU"));
    }
}
