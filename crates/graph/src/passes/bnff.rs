//! The complete BN Fission-n-Fusion pipeline.

use crate::graph::Graph;
use crate::passes::{
    FissionPass, FuseNormReluConvPass, FuseStatsIntoConvPass, MvfPass, Pass, PassPipeline, RcfPass,
};
use crate::Result;

/// The paper's full BNFF restructuring: Fission, MVF, both Fusion halves,
/// and RCF for the ReLUs that are not adjacent to a BN layer.
///
/// The order matters:
///
/// 1. [`FissionPass`] exposes `sub-BN1` / `sub-BN2`.
/// 2. [`MvfPass`] makes the statistics single-sweep so they can ride along
///    the preceding convolution's output sweep.
/// 3. [`FuseStatsIntoConvPass`] produces `CONV1-(sub-BN1)`.
/// 4. [`FuseNormReluConvPass`] produces `(sub-BN2)-ReLU-CONV2`.
/// 5. [`RcfPass`] fuses any remaining standalone ReLU into its following
///    convolution (e.g. ResNet's post-shortcut ReLUs).
#[derive(Debug, Default, Clone, Copy)]
pub struct BnffPass;

impl BnffPass {
    /// Creates the pass.
    pub fn new() -> Self {
        BnffPass
    }

    fn pipeline() -> PassPipeline {
        PassPipeline::new()
            .with(Box::new(FissionPass::new()))
            .with(Box::new(MvfPass::new()))
            .with(Box::new(FuseStatsIntoConvPass::new()))
            .with(Box::new(FuseNormReluConvPass::new()))
            .with(Box::new(RcfPass::new()))
    }
}

impl Pass for BnffPass {
    fn name(&self) -> &'static str {
        "bn-fission-n-fusion"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        Self::pipeline().run(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::builder::GraphBuilder;
    use crate::op::{Conv2dAttrs, OpKind, PoolAttrs};
    use bnff_tensor::Shape;

    /// Two chained DenseNet-style composite layers with a Concat in between.
    fn two_cpl_graph() -> Graph {
        let mut b = GraphBuilder::new("two-cpl");
        let x = b.input("in", Shape::nchw(8, 64, 16, 16)).unwrap();

        // CPL 1: BN -> ReLU -> 1x1 CONV -> BN -> ReLU -> 3x3 CONV
        let c1 = b.bn_relu_conv(x, Conv2dAttrs::pointwise(128), "cpl1/a").unwrap();
        let c1 = b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(32), "cpl1/b").unwrap();
        let cat1 = b.concat(vec![x, c1], "concat1").unwrap();

        // CPL 2
        let c2 = b.bn_relu_conv(cat1, Conv2dAttrs::pointwise(128), "cpl2/a").unwrap();
        let c2 = b.bn_relu_conv(c2, Conv2dAttrs::same_3x3(32), "cpl2/b").unwrap();
        b.concat(vec![cat1, c2], "concat2").unwrap();
        b.finish()
    }

    #[test]
    fn bnff_restructures_dense_block() {
        let g = two_cpl_graph();
        let out = BnffPass::new().run(&g).unwrap();
        assert!(out.validate().is_ok());
        let hist = out.op_histogram();
        // No unfissioned BN, no standalone ReLU remains.
        assert!(!hist.contains_key("BatchNorm"));
        assert!(!hist.contains_key("ReLU"));
        // The two interior BNs (those preceded by the 1x1 convs) are fully
        // fused on both sides; because the 1x1 convolutions both absorb the
        // next BN's statistics *and* the previous BN's normalization they
        // become NormReluConvStats. The two boundary BNs (preceded by the
        // input / Concat) keep a standalone statistics sub-layer (removed
        // only by ICF).
        assert_eq!(hist["NormReluConvStats"], 2);
        assert_eq!(hist["NormReluConv"], 2);
        assert_eq!(hist["SubBnStats"], 2);
        assert!(!hist.contains_key("ConvStats"));
        assert!(!hist.contains_key("SubBnNorm"));
    }

    #[test]
    fn bnff_reduces_sweeps_and_bytes() {
        let g = two_cpl_graph();
        let out = BnffPass::new().run(&g).unwrap();
        let sweeps_before = analysis::activation_sweep_count(&g).unwrap();
        let sweeps_after = analysis::activation_sweep_count(&out).unwrap();
        assert!(sweeps_after < sweeps_before);

        let cost_before = analysis::graph_cost(&g).unwrap();
        let cost_after = analysis::graph_cost(&out).unwrap();
        assert!(cost_after.bytes_total() < cost_before.bytes_total());
        // Forward savings are proportionally larger than backward savings
        // (Section 5: 47.9% vs 15.4% for DenseNet-121).
        let fwd_saving = 1.0 - cost_after.bytes_fwd as f64 / cost_before.bytes_fwd as f64;
        let bwd_saving = 1.0 - cost_after.bytes_bwd as f64 / cost_before.bytes_bwd as f64;
        assert!(fwd_saving > bwd_saving);
    }

    #[test]
    fn bnff_preserves_arithmetic_structure() {
        // The number of convolution-bearing nodes must not change: fusion
        // merges layers, it does not delete convolutions.
        let g = two_cpl_graph();
        let out = BnffPass::new().run(&g).unwrap();
        let convs_before = g.nodes().filter(|n| n.op.contains_conv()).count();
        let convs_after = out.nodes().filter(|n| n.op.contains_conv()).count();
        assert_eq!(convs_before, convs_after);
    }

    #[test]
    fn bnff_on_resnet_style_block() {
        // CONV-BN-ReLU x2 + CONV-BN + shortcut EWS + ReLU -> next CONV.
        let mut b = GraphBuilder::new("res-block");
        let x = b.input("in", Shape::nchw(4, 64, 16, 16)).unwrap();
        let r1 = b.conv_bn_relu(x, Conv2dAttrs::pointwise(64), "b1").unwrap();
        let r2 = b.conv_bn_relu(r1, Conv2dAttrs::same_3x3(64), "b2").unwrap();
        let bn3 = b.conv_bn(r2, Conv2dAttrs::pointwise(256), "b3").unwrap();
        let short = b.conv_bn(x, Conv2dAttrs::pointwise(256), "short").unwrap();
        let ews = b.eltwise_sum(vec![bn3, short], "ews").unwrap();
        let relu = b.relu(ews, "relu_out").unwrap();
        b.conv2d(relu, Conv2dAttrs::pointwise(128), "next_conv").unwrap();
        let g = b.finish();

        let out = BnffPass::new().run(&g).unwrap();
        assert!(out.validate().is_ok());
        let hist = out.op_histogram();
        assert!(!hist.contains_key("BatchNorm"));
        // All four BN statistics sub-layers ride on their preceding convs;
        // the two interior convolutions are additionally fused with the
        // previous BN's normalization + ReLU.
        assert_eq!(hist["ConvStats"], 2);
        assert_eq!(hist["NormReluConvStats"], 2);
        // The two residual-branch tail BNs (followed by EWS, not ReLU+CONV)
        // keep their normalization sub-layer.
        assert_eq!(hist["SubBnNorm"], 2);
        // The post-EWS ReLU fuses with next_conv through RCF.
        assert_eq!(hist["ReluConv"], 1);
        assert!(!hist.contains_key("ReLU"));
    }

    #[test]
    fn bnff_is_idempotent_on_node_count() {
        let g = two_cpl_graph();
        let once = BnffPass::new().run(&g).unwrap();
        let twice = BnffPass::new().run(&once).unwrap();
        assert_eq!(once.node_count(), twice.node_count());
    }

    #[test]
    fn bnff_handles_models_with_pooling_stem() {
        let mut b = GraphBuilder::new("stem");
        let x = b.input("in", Shape::nchw(4, 3, 64, 64)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::new(64, 7, 2, 3), "stem_conv").unwrap();
        let bn = b.batch_norm_default(c, "stem_bn").unwrap();
        let r = b.relu(bn, "stem_relu").unwrap();
        b.max_pool(r, PoolAttrs::new(3, 2, 1), "stem_pool").unwrap();
        let g = b.finish();
        let out = BnffPass::new().run(&g).unwrap();
        assert!(out.validate().is_ok());
        // Stats fuse into the stem conv; norm+relu cannot fuse into the pool,
        // so they collapse into a NormRelu node.
        let hist = out.op_histogram();
        assert_eq!(hist["ConvStats"], 1);
        assert_eq!(hist["NormRelu"], 1);
    }

    #[test]
    fn fused_graph_contains_no_plain_conv_after_bn() {
        let g = two_cpl_graph();
        let out = BnffPass::new().run(&g).unwrap();
        // Every convolution that followed a BN+ReLU pair must now be a fused
        // NormReluConv; the only plain Conv2d allowed is one not preceded by
        // BN (none in this graph).
        for node in out.nodes() {
            if let OpKind::Conv2d(_) = node.op {
                panic!("unexpected plain Conv2d '{}' after BNFF", node.name);
            }
        }
    }
}
