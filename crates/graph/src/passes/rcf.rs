//! ReLU–CONV Fusion: apply the ReLU while reading the ifmaps of the
//! following convolution.

use crate::graph::Graph;
use crate::node::NodeId;
use crate::op::OpKind;
use crate::passes::Pass;
use crate::Result;
use std::collections::HashSet;

/// Fuses a ReLU into the convolution that consumes it.
///
/// The MKL-DNN baseline can only fuse a ReLU into its *preceding*
/// convolution's epilogue, which does not apply to DenseNet's
/// BN → ReLU → CONV ordering; the paper's RCF instead clips values while the
/// following convolution reads its ifmaps, removing the ReLU's read and
/// write sweeps (Section 3.2).
///
/// Only ReLU nodes with exactly one consumer that is a plain [`OpKind::Conv2d`]
/// are fused; anything else is left untouched.
#[derive(Debug, Default, Clone, Copy)]
pub struct RcfPass;

impl RcfPass {
    /// Creates the pass.
    pub fn new() -> Self {
        RcfPass
    }
}

impl Pass for RcfPass {
    fn name(&self) -> &'static str {
        "relu-conv-fusion"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut out = graph.clone();
        let mut removed: HashSet<NodeId> = HashSet::new();

        let relu_nodes: Vec<NodeId> =
            graph.nodes().filter(|n| matches!(n.op, OpKind::Relu)).map(|n| n.id).collect();

        for relu_id in relu_nodes {
            let consumers = out.consumers(relu_id);
            if consumers.len() != 1 {
                continue;
            }
            let conv_id = consumers[0];
            let conv_attrs = match &out.node(conv_id)?.op {
                OpKind::Conv2d(a) => *a,
                _ => continue,
            };
            let relu_input = out.node(relu_id)?.inputs[0];
            out.set_op(conv_id, OpKind::ReluConv(conv_attrs))?;
            out.set_inputs(conv_id, vec![relu_input])?;
            let conv_name = out.node(conv_id)?.name.clone();
            out.set_node_name(conv_id, format!("{conv_name}+relu"))?;
            removed.insert(relu_id);
        }
        out.compacted(&removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::builder::GraphBuilder;
    use crate::op::Conv2dAttrs;
    use bnff_tensor::Shape;

    fn relu_conv_graph() -> Graph {
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(4, 16, 8, 8)).unwrap();
        let bn = b.batch_norm_default(x, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        b.conv2d(r, Conv2dAttrs::same_3x3(8), "conv").unwrap();
        b.finish()
    }

    #[test]
    fn fuses_relu_into_following_conv() {
        let g = relu_conv_graph();
        let out = RcfPass::new().run(&g).unwrap();
        assert!(out.validate().is_ok());
        let hist = out.op_histogram();
        assert!(!hist.contains_key("ReLU"));
        assert_eq!(hist["ReluConv"], 1);
        assert_eq!(out.node_count(), g.node_count() - 1);
    }

    #[test]
    fn reduces_two_sweeps_per_fused_relu() {
        let g = relu_conv_graph();
        let before = analysis::activation_sweep_count(&g).unwrap();
        let out = RcfPass::new().run(&g).unwrap();
        let after = analysis::activation_sweep_count(&out).unwrap();
        // Forward: ReLU read + write disappear. Backward: the standalone
        // ReLU backward (read d_ofmap, read mask, write d_ifmap) disappears
        // as it is handled during the convolution's backward sweeps.
        assert!(after < before);
        assert_eq!(before - after, 5);
    }

    #[test]
    fn relu_with_multiple_consumers_is_kept() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(2, 8, 8, 8)).unwrap();
        let r = b.relu(x, "relu").unwrap();
        b.conv2d(r, Conv2dAttrs::same_3x3(8), "conv_a").unwrap();
        b.conv2d(r, Conv2dAttrs::pointwise(4), "conv_b").unwrap();
        let g = b.finish();
        let out = RcfPass::new().run(&g).unwrap();
        assert_eq!(out.op_histogram()["ReLU"], 1);
        assert!(!out.op_histogram().contains_key("ReluConv"));
    }

    #[test]
    fn relu_followed_by_pool_is_kept() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("in", Shape::nchw(2, 8, 8, 8)).unwrap();
        let r = b.relu(x, "relu").unwrap();
        b.global_avg_pool(r, "gap").unwrap();
        let g = b.finish();
        let out = RcfPass::new().run(&g).unwrap();
        assert_eq!(out.op_histogram()["ReLU"], 1);
    }

    #[test]
    fn idempotent_on_already_fused_graph() {
        let g = relu_conv_graph();
        let once = RcfPass::new().run(&g).unwrap();
        let twice = RcfPass::new().run(&once).unwrap();
        assert_eq!(once.node_count(), twice.node_count());
    }
}
