//! The freeze pass: rewrites a *training* graph (at any fusion level) into
//! an *inference* graph plus a fold plan.
//!
//! At inference time the paper's whole restructuring collapses: Batch
//! Normalization no longer depends on the mini-batch — it normalizes with
//! *running* statistics, which makes it a per-channel affine
//! `y = scale[c]·x + shift[c]` with
//!
//! ```text
//! scale[c] = γ[c] / √(running_var[c] + ε)
//! shift[c] = β[c] − scale[c] · running_mean[c]
//! ```
//!
//! An affine that directly follows a convolution (or fully-connected layer)
//! folds into its weights and bias — `scale ⊙ W` rows and
//! `scale·b + shift` — so the frozen graph runs with **zero** normalization
//! cost. The pass works in three stages:
//!
//! 1. **Lower** — every training operator is rewritten to its inference
//!    form: `BatchNorm`/`SubBnNorm`/`NormRelu` become [`OpKind::ChannelAffine`]
//!    nodes, the fused BNFF operators (`ConvStats`, `NormReluConv`,
//!    `NormReluConvStats`, `ConcatStats`, `ReluConv`) are de-fused into
//!    affine/ReLU/conv chains, statistics nodes (`SubBnStats`) and the
//!    `SoftmaxLoss` head are stripped (the frozen output is the classifier
//!    scores).
//! 2. **Fold** — every `ChannelAffine` whose producer is a `Conv2d` or
//!    `FullyConnected` with no other consumer is absorbed into that
//!    producer's [`FoldRecipe`]; the conv gains a bias term. Affines that
//!    cannot fold (after a `Concat` or an `EltwiseSum`) stay as explicit
//!    `ChannelAffine` nodes.
//! 3. **Fuse** — a `Relu` that is the sole consumer of a `Conv2d` is fused
//!    into it as [`OpKind::ConvRelu`], clamping while the output is written.
//!
//! The pass is purely *structural*: recipes reference nodes of the original
//! training graph, and `bnff-serve` applies them numerically against a
//! trained parameter set and its running statistics.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::op::OpKind;
use crate::Result;
use std::collections::{HashMap, HashSet};

/// Where the numbers of a folded (or standalone) affine come from in the
/// *training* graph: the node owning γ/β and the node whose running
/// statistics feed the normalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineSource {
    /// Training-graph node that owns the γ/β parameters (a `BatchNorm`,
    /// `SubBnNorm`, `NormRelu`, or a fused `NormReluConv*` whose `ConvBn`
    /// parameters carry the absorbed γ/β).
    pub gamma_beta: NodeId,
    /// Training-graph node whose running statistics normalize the
    /// activation (the statistics producer: the BN itself, a `SubBnStats`,
    /// `ConvStats`, `ConcatStats` or `NormReluConvStats`).
    pub stats: NodeId,
    /// The ε of the folded normalization.
    pub epsilon: f32,
}

/// How one frozen-graph node derives its parameters from the training
/// graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FoldRecipe {
    /// A convolution: weights (and optional bias) come from `source`; when
    /// `affine` is set, the following normalization was folded in — scale
    /// the filters per output channel and absorb the shift into the bias.
    Conv {
        /// Training-graph node owning the filters.
        source: NodeId,
        /// The folded normalization, if any.
        affine: Option<AffineSource>,
    },
    /// A fully-connected layer, same folding rule over weight rows.
    Fc {
        /// Training-graph node owning the weights.
        source: NodeId,
        /// The folded normalization, if any.
        affine: Option<AffineSource>,
    },
    /// A standalone per-channel affine that could not be folded into a
    /// producer.
    Affine(AffineSource),
}

/// A training graph rewritten for inference: the restructured topology plus
/// the fold plan that maps every parameterised frozen node back to the
/// training-graph nodes its numbers are derived from.
#[derive(Debug, Clone)]
pub struct FrozenGraph {
    /// The inference graph (no BN, no statistics nodes, no loss head).
    pub graph: Graph,
    /// Frozen-node index → parameter derivation recipe.
    pub recipes: HashMap<usize, FoldRecipe>,
    /// The data input of the frozen graph.
    pub input: NodeId,
    /// The score output of the frozen graph (the tensor that fed the
    /// training graph's `SoftmaxLoss`).
    pub output: NodeId,
}

/// Freezes a training graph for inference. See the module docs for the
/// three stages.
///
/// # Errors
/// Returns [`GraphError::PassError`] if the graph has no 4-D data input, no
/// unambiguous output, or contains an edge the lowering cannot express.
pub fn freeze(graph: &Graph) -> Result<FrozenGraph> {
    let lowered = lower(graph)?;
    let folded = fold_and_fuse(lowered)?;
    folded.graph.validate()?;
    Ok(folded)
}

fn pass_err(reason: impl Into<String>) -> GraphError {
    GraphError::PassError { pass: "freeze".to_string(), reason: reason.into() }
}

/// Stage 1 output: the lowered graph plus recipes, before folding.
struct Lowered {
    graph: Graph,
    recipes: HashMap<usize, FoldRecipe>,
    input: NodeId,
    output: NodeId,
}

fn lower(graph: &Graph) -> Result<Lowered> {
    graph.validate()?;
    let order = graph.topo_order()?;
    let mut out = Graph::new(format!("{}-frozen", graph.name()));
    let mut recipes: HashMap<usize, FoldRecipe> = HashMap::new();
    // Training node index → the frozen node carrying its activation.
    let mut map: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut input: Option<NodeId> = None;
    let mut scores_source: Option<NodeId> = None;

    let mapped = |map: &[Option<NodeId>], id: NodeId| -> Result<NodeId> {
        map[id.index()]
            .ok_or_else(|| pass_err(format!("node {id} consumed by the frozen graph was dropped")))
    };

    for &id in &order {
        let node = graph.node(id)?;
        let new_id = match &node.op {
            OpKind::Input => {
                if node.output_shape.is_nchw() {
                    let data = out.add_input(&node.name, node.output_shape.clone());
                    input = Some(data);
                    Some(data)
                } else {
                    None // Label inputs have no inference counterpart.
                }
            }
            OpKind::Conv2d(a) | OpKind::ConvStats { conv: a, .. } => {
                let x = mapped(&map, node.inputs[0])?;
                let conv = out.add_node(&node.name, OpKind::Conv2d(*a), vec![x])?;
                recipes.insert(conv.index(), FoldRecipe::Conv { source: id, affine: None });
                Some(conv)
            }
            OpKind::ReluConv(a) => {
                let x = mapped(&map, node.inputs[0])?;
                let relu = out.add_node(format!("{}/relu", node.name), OpKind::Relu, vec![x])?;
                let conv = out.add_node(&node.name, OpKind::Conv2d(*a), vec![relu])?;
                recipes.insert(conv.index(), FoldRecipe::Conv { source: id, affine: None });
                Some(conv)
            }
            OpKind::BatchNorm(attrs) => {
                let x = mapped(&map, node.inputs[0])?;
                let affine = out.add_node(&node.name, OpKind::ChannelAffine, vec![x])?;
                recipes.insert(
                    affine.index(),
                    FoldRecipe::Affine(AffineSource {
                        gamma_beta: id,
                        stats: id,
                        epsilon: attrs.epsilon,
                    }),
                );
                Some(affine)
            }
            OpKind::SubBnStats(_) => None, // Running stats replace batch stats.
            OpKind::SubBnNorm(attrs) => {
                let x = mapped(&map, node.inputs[0])?;
                let affine = out.add_node(&node.name, OpKind::ChannelAffine, vec![x])?;
                recipes.insert(
                    affine.index(),
                    FoldRecipe::Affine(AffineSource {
                        gamma_beta: id,
                        stats: node.inputs[1],
                        epsilon: attrs.epsilon,
                    }),
                );
                Some(affine)
            }
            OpKind::NormRelu(attrs) => {
                let x = mapped(&map, node.inputs[0])?;
                let affine =
                    out.add_node(format!("{}/affine", node.name), OpKind::ChannelAffine, vec![x])?;
                recipes.insert(
                    affine.index(),
                    FoldRecipe::Affine(AffineSource {
                        gamma_beta: id,
                        stats: node.inputs[1],
                        epsilon: attrs.epsilon,
                    }),
                );
                let relu = out.add_node(&node.name, OpKind::Relu, vec![affine])?;
                Some(relu)
            }
            OpKind::NormReluConv { conv, bn }
            | OpKind::NormReluConvStats { conv, bn_in: bn, .. } => {
                let x = mapped(&map, node.inputs[0])?;
                let affine =
                    out.add_node(format!("{}/affine", node.name), OpKind::ChannelAffine, vec![x])?;
                recipes.insert(
                    affine.index(),
                    FoldRecipe::Affine(AffineSource {
                        gamma_beta: id,
                        stats: node.inputs[1],
                        epsilon: bn.epsilon,
                    }),
                );
                let relu =
                    out.add_node(format!("{}/relu", node.name), OpKind::Relu, vec![affine])?;
                let conv_id = out.add_node(&node.name, OpKind::Conv2d(*conv), vec![relu])?;
                recipes.insert(conv_id.index(), FoldRecipe::Conv { source: id, affine: None });
                Some(conv_id)
            }
            OpKind::ConcatStats(_) | OpKind::Concat => {
                let inputs = node
                    .inputs
                    .iter()
                    .map(|i| mapped(&map, *i))
                    .collect::<Result<Vec<NodeId>>>()?;
                Some(out.add_node(&node.name, OpKind::Concat, inputs)?)
            }
            OpKind::FullyConnected { out_features } => {
                let x = mapped(&map, node.inputs[0])?;
                let fc = out.add_node(
                    &node.name,
                    OpKind::FullyConnected { out_features: *out_features },
                    vec![x],
                )?;
                recipes.insert(fc.index(), FoldRecipe::Fc { source: id, affine: None });
                Some(fc)
            }
            OpKind::SoftmaxLoss => {
                scores_source = Some(node.inputs[0]);
                None
            }
            OpKind::Relu
            | OpKind::Pool { .. }
            | OpKind::GlobalAvgPool
            | OpKind::Split { .. }
            | OpKind::EltwiseSum => {
                let inputs = node
                    .inputs
                    .iter()
                    .map(|i| mapped(&map, *i))
                    .collect::<Result<Vec<NodeId>>>()?;
                Some(out.add_node(&node.name, node.op.clone(), inputs)?)
            }
            OpKind::ConvRelu(_) | OpKind::ChannelAffine => {
                return Err(pass_err(format!(
                    "node '{}' is already an inference operator; freeze expects a training graph",
                    node.name
                )));
            }
        };
        map[id.index()] = new_id;
    }

    let input = input.ok_or_else(|| pass_err("graph has no 4-D data input"))?;
    let output = match scores_source {
        Some(src) => mapped(&map, src)?,
        None => {
            let outputs = out.output_nodes();
            match outputs.as_slice() {
                [single] => *single,
                _ => {
                    return Err(pass_err(format!(
                        "graph has {} output candidates and no SoftmaxLoss head",
                        outputs.len()
                    )))
                }
            }
        }
    };
    Ok(Lowered { graph: out, recipes, input, output })
}

/// Stages 2 + 3: fold affines into their producing conv/FC, fuse trailing
/// ReLUs into convs, then compact the graph and remap recipe keys.
fn fold_and_fuse(lowered: Lowered) -> Result<FrozenGraph> {
    let Lowered { mut graph, mut recipes, input, mut output } = lowered;
    let mut removed: HashSet<NodeId> = HashSet::new();

    // Live consumers of a node (edges from removed nodes don't count — a
    // folded affine's stale input edge must not block further rewrites).
    let live_consumers = |graph: &Graph, removed: &HashSet<NodeId>, id: NodeId| -> Vec<NodeId> {
        graph.consumers(id).into_iter().filter(|c| !removed.contains(c)).collect()
    };

    // Stage 2: fold ChannelAffine into a sole-consumer Conv2d/FC producer.
    let ids: Vec<NodeId> = graph.nodes().map(|n| n.id).collect();
    for id in &ids {
        let node = graph.node(*id)?.clone();
        if !matches!(node.op, OpKind::ChannelAffine) {
            continue;
        }
        let producer = node.inputs[0];
        if live_consumers(&graph, &removed, producer) != vec![*id] {
            continue;
        }
        let source = match recipes.get(&id.index()) {
            Some(FoldRecipe::Affine(src)) => *src,
            _ => continue,
        };
        let folded = match (&graph.node(producer)?.op, recipes.get(&producer.index())) {
            (OpKind::Conv2d(a), Some(FoldRecipe::Conv { source: conv_src, affine: None })) => {
                let with_bias = OpKind::Conv2d(a.with_bias());
                let conv_src = *conv_src;
                graph.set_op(producer, with_bias)?;
                recipes.insert(
                    producer.index(),
                    FoldRecipe::Conv { source: conv_src, affine: Some(source) },
                );
                true
            }
            (
                OpKind::FullyConnected { .. },
                Some(FoldRecipe::Fc { source: fc_src, affine: None }),
            ) => {
                let fc_src = *fc_src;
                recipes.insert(
                    producer.index(),
                    FoldRecipe::Fc { source: fc_src, affine: Some(source) },
                );
                true
            }
            _ => false,
        };
        if folded {
            graph.rewire_consumers(*id, producer)?;
            removed.insert(*id);
            recipes.remove(&id.index());
            if output == *id {
                output = producer;
            }
        }
    }

    // Stage 3: fuse a sole-consumer trailing ReLU into its Conv2d producer.
    for id in &ids {
        if removed.contains(id) {
            continue;
        }
        let node = graph.node(*id)?.clone();
        if !matches!(node.op, OpKind::Relu) {
            continue;
        }
        let producer = node.inputs[0];
        if live_consumers(&graph, &removed, producer) != vec![*id] {
            continue;
        }
        if let OpKind::Conv2d(a) = graph.node(producer)?.op {
            graph.set_op(producer, OpKind::ConvRelu(a))?;
            graph.rewire_consumers(*id, producer)?;
            removed.insert(*id);
            if output == *id {
                output = producer;
            }
        }
    }

    // Compact: drop removed nodes, re-assign dense ids, remap recipe keys
    // (Graph::compacted assigns new ids in retained insertion order, so the
    // mapping is reproducible here).
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut next = 0usize;
    for node in graph.nodes() {
        if !removed.contains(&node.id) {
            remap.insert(node.id.index(), next);
            next += 1;
        }
    }
    let compacted = graph.compacted(&removed)?;
    let recipes = recipes
        .into_iter()
        .map(|(idx, recipe)| {
            remap
                .get(&idx)
                .map(|new| (*new, recipe))
                .ok_or_else(|| pass_err(format!("recipe for removed node {idx}")))
        })
        .collect::<Result<HashMap<usize, FoldRecipe>>>()?;
    let map_id = |id: NodeId| -> Result<NodeId> {
        remap
            .get(&id.index())
            .map(|new| NodeId::new(*new))
            .ok_or_else(|| pass_err(format!("{id} was removed but is still referenced")))
    };

    Ok(FrozenGraph { graph: compacted, recipes, input: map_id(input)?, output: map_id(output)? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::Conv2dAttrs;
    use crate::passes::{BnffPass, IcfPass, Pass, RcfPass};
    use bnff_tensor::Shape;

    fn classifier(batch: usize) -> Graph {
        let mut b = GraphBuilder::new("cls");
        let x = b.input("data", Shape::nchw(batch, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(batch)).unwrap();
        let c0 = b.conv2d(x, Conv2dAttrs::same_3x3(8), "stem").unwrap();
        let c1 = b.bn_relu_conv(c0, Conv2dAttrs::pointwise(16), "cpl/a").unwrap();
        let c2 = b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(8), "cpl/b").unwrap();
        let cat = b.concat(vec![c0, c2], "concat").unwrap();
        let bn = b.batch_norm_default(cat, "tailbn").unwrap();
        let r = b.relu(bn, "tailrelu").unwrap();
        let gap = b.global_avg_pool(r, "gap").unwrap();
        let fc = b.fully_connected(gap, 4, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        b.finish()
    }

    fn assert_inference_only(frozen: &FrozenGraph) {
        for node in frozen.graph.nodes() {
            assert!(
                !node.op.is_bn_related()
                    && !matches!(
                        node.op,
                        OpKind::SoftmaxLoss
                            | OpKind::ConvStats { .. }
                            | OpKind::NormReluConv { .. }
                            | OpKind::NormReluConvStats { .. }
                            | OpKind::ReluConv(_)
                            | OpKind::ConcatStats(_)
                    ),
                "training op {} survived the freeze",
                node.op
            );
        }
    }

    #[test]
    fn freezes_the_baseline_graph() {
        let frozen = freeze(&classifier(4)).unwrap();
        assert_inference_only(&frozen);
        assert!(frozen.graph.validate().is_ok());
        // cpl/b's BN folds into cpl/a's conv (its sole consumer); the BN on
        // the stem (whose conv also feeds the concat) and the BN behind the
        // concat must survive as standalone affines.
        let hist = frozen.graph.op_histogram();
        assert_eq!(hist.get("ChannelAffine").copied().unwrap_or(0), 2);
        // The folded conv picked up a bias term.
        let biased = frozen
            .graph
            .nodes()
            .filter(|n| matches!(n.op, OpKind::Conv2d(a) | OpKind::ConvRelu(a) if a.bias))
            .count();
        assert!(biased >= 1, "expected folded convs with bias, got {biased}");
        // The output is the FC scores, not a loss scalar.
        let out = frozen.graph.node(frozen.output).unwrap();
        assert!(matches!(out.op, OpKind::FullyConnected { .. }));
        assert_eq!(out.output_shape, Shape::matrix(4, 4));
    }

    #[test]
    fn freezes_every_fusion_level_to_the_same_shape() {
        let base = classifier(2);
        let variants = [
            base.clone(),
            RcfPass::new().run(&base).unwrap(),
            BnffPass::new().run(&base).unwrap(),
            IcfPass::new().run(&BnffPass::new().run(&base).unwrap()).unwrap(),
        ];
        for graph in &variants {
            let frozen = freeze(graph).unwrap();
            assert_inference_only(&frozen);
            let out = frozen.graph.node(frozen.output).unwrap();
            assert_eq!(out.output_shape, Shape::matrix(2, 4), "{}", graph.name());
            // Every parameterised frozen node has a recipe.
            for node in frozen.graph.nodes() {
                if node.op.has_parameters() {
                    assert!(
                        frozen.recipes.contains_key(&node.id.index()),
                        "{}: no recipe for {}",
                        graph.name(),
                        node.name
                    );
                }
            }
        }
    }

    #[test]
    fn relu_fuses_into_the_folded_conv() {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("data", Shape::nchw(2, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        let c = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(4), "block").unwrap();
        let gap = b.global_avg_pool(c, "gap").unwrap();
        let fc = b.fully_connected(gap, 2, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let frozen = freeze(&b.finish()).unwrap();
        let hist = frozen.graph.op_histogram();
        assert_eq!(hist.get("ConvRelu").copied().unwrap_or(0), 1);
        assert_eq!(hist.get("ChannelAffine").copied().unwrap_or(0), 0);
        assert_eq!(hist.get("ReLU").copied().unwrap_or(0), 0);
        // The fused conv carries the folded affine recipe.
        let conv =
            frozen.graph.nodes().find(|n| matches!(n.op, OpKind::ConvRelu(_))).expect("fused conv");
        assert!(matches!(
            frozen.recipes.get(&conv.id.index()),
            Some(FoldRecipe::Conv { affine: Some(_), .. })
        ));
    }

    #[test]
    fn freeze_rejects_already_frozen_graphs() {
        let frozen = freeze(&classifier(2)).unwrap();
        assert!(freeze(&frozen.graph).is_err());
    }

    #[test]
    fn inference_plan_recycles_everything_but_the_output() {
        let frozen = freeze(&classifier(2)).unwrap();
        let plan = crate::plan::ExecutionPlan::for_inference(&frozen.graph).unwrap();
        // Only the pinned output survives; peak memory sits well below the
        // keep-everything total.
        assert!(plan.planned_peak_bytes() < plan.naive_total_bytes());
        assert!(plan.is_saved(frozen.output));
        let interior =
            frozen.graph.nodes().filter(|n| n.id != frozen.output && plan.is_saved(n.id)).count();
        assert_eq!(interior, 0, "inference plans must retain nothing for backward");
    }
}
