//! Error types for graph construction and restructuring.

use crate::node::NodeId;
use std::fmt;

/// Errors produced while building, validating or restructuring a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist in the graph.
    UnknownNode(NodeId),
    /// An operation received the wrong number of inputs.
    ArityMismatch {
        /// The operation's display name.
        op: String,
        /// Number of inputs the operation requires.
        expected: usize,
        /// Number of inputs actually wired.
        got: usize,
    },
    /// Shape inference failed for a node.
    ShapeInference {
        /// Name of the node that failed.
        node: String,
        /// Why inference failed.
        reason: String,
    },
    /// The graph contains a cycle and cannot be topologically ordered.
    CyclicGraph,
    /// A restructuring pass encountered a structural precondition violation.
    PassError {
        /// Name of the pass.
        pass: String,
        /// What went wrong.
        reason: String,
    },
    /// An error bubbled up from the tensor substrate.
    Tensor(bnff_tensor::TensorError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            GraphError::ArityMismatch { op, expected, got } => {
                write!(f, "{op} expects {expected} inputs, got {got}")
            }
            GraphError::ShapeInference { node, reason } => {
                write!(f, "shape inference failed for node '{node}': {reason}")
            }
            GraphError::CyclicGraph => write!(f, "graph contains a cycle"),
            GraphError::PassError { pass, reason } => write!(f, "pass '{pass}' failed: {reason}"),
            GraphError::Tensor(err) => write!(f, "tensor error: {err}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(err) => Some(err),
            _ => None,
        }
    }
}

impl From<bnff_tensor::TensorError> for GraphError {
    fn from(err: bnff_tensor::TensorError) -> Self {
        GraphError::Tensor(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::ArityMismatch { op: "Concat".into(), expected: 2, got: 1 };
        assert!(e.to_string().contains("Concat"));
        let e = GraphError::UnknownNode(NodeId::new(7));
        assert!(e.to_string().contains('7'));
        let e = GraphError::CyclicGraph;
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn tensor_error_conversion() {
        let te = bnff_tensor::TensorError::InvalidArgument("x".into());
        let ge: GraphError = te.into();
        assert!(matches!(ge, GraphError::Tensor(_)));
        assert!(std::error::Error::source(&ge).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<GraphError>();
    }
}
