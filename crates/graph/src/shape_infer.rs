//! Output-shape inference for every operation kind.

use crate::error::GraphError;
use crate::op::{OpKind, PoolAttrs};
use crate::Result;
use bnff_tensor::Shape;

fn conv_spatial(dim: usize, kernel: usize, stride: usize, pad: usize) -> Result<usize> {
    let padded = dim + 2 * pad;
    if padded < kernel || stride == 0 {
        return Err(GraphError::ShapeInference {
            node: String::new(),
            reason: format!(
                "window {kernel} with stride {stride} does not fit extent {dim} (pad {pad})"
            ),
        });
    }
    Ok((padded - kernel) / stride + 1)
}

fn pool_output(input: &Shape, attrs: &PoolAttrs) -> Result<Shape> {
    input.expect_nchw()?;
    Ok(Shape::nchw(
        input.n(),
        input.c(),
        conv_spatial(input.h(), attrs.kernel, attrs.stride, attrs.pad)?,
        conv_spatial(input.w(), attrs.kernel, attrs.stride, attrs.pad)?,
    ))
}

fn expect_arity(op: &OpKind, inputs: &[&Shape]) -> Result<()> {
    if let Some(expected) = op.fixed_arity() {
        if inputs.len() != expected {
            return Err(GraphError::ArityMismatch {
                op: op.name().to_string(),
                expected,
                got: inputs.len(),
            });
        }
    } else if inputs.is_empty() {
        return Err(GraphError::ArityMismatch { op: op.name().to_string(), expected: 1, got: 0 });
    }
    Ok(())
}

/// Infers the output shape of `op` given its input shapes (in argument
/// order).
///
/// # Errors
/// Returns [`GraphError::ArityMismatch`] when the number of inputs is wrong
/// and [`GraphError::ShapeInference`] when the input shapes are structurally
/// incompatible with the operation.
pub fn infer_output_shape(op: &OpKind, inputs: &[&Shape]) -> Result<Shape> {
    expect_arity(op, inputs)?;
    match op {
        OpKind::Input => Err(GraphError::ShapeInference {
            node: String::new(),
            reason: "input nodes carry an explicit shape".to_string(),
        }),
        OpKind::Conv2d(a) | OpKind::ReluConv(a) | OpKind::ConvRelu(a) => {
            let x = inputs[0];
            x.expect_nchw()?;
            Ok(Shape::nchw(
                x.n(),
                a.out_channels,
                conv_spatial(x.h(), a.kernel_h, a.stride, a.pad)?,
                conv_spatial(x.w(), a.kernel_w, a.stride, a.pad)?,
            ))
        }
        OpKind::ConvStats { conv: a, .. } => {
            let x = inputs[0];
            x.expect_nchw()?;
            Ok(Shape::nchw(
                x.n(),
                a.out_channels,
                conv_spatial(x.h(), a.kernel_h, a.stride, a.pad)?,
                conv_spatial(x.w(), a.kernel_w, a.stride, a.pad)?,
            ))
        }
        OpKind::NormReluConv { conv: a, .. } | OpKind::NormReluConvStats { conv: a, .. } => {
            let x = inputs[0];
            x.expect_nchw()?;
            Ok(Shape::nchw(
                x.n(),
                a.out_channels,
                conv_spatial(x.h(), a.kernel_h, a.stride, a.pad)?,
                conv_spatial(x.w(), a.kernel_w, a.stride, a.pad)?,
            ))
        }
        OpKind::FullyConnected { out_features } => {
            let x = inputs[0];
            let n = x.dim(0)?;
            Ok(Shape::matrix(n, *out_features))
        }
        OpKind::BatchNorm(_) | OpKind::Relu | OpKind::ChannelAffine => Ok(inputs[0].clone()),
        OpKind::SubBnNorm(_) | OpKind::NormRelu(_) => Ok(inputs[0].clone()),
        OpKind::SubBnStats(_) => {
            let x = inputs[0];
            x.expect_nchw()?;
            Ok(Shape::matrix(2, x.c()))
        }
        OpKind::Pool { attrs, .. } => pool_output(inputs[0], attrs),
        OpKind::GlobalAvgPool => {
            let x = inputs[0];
            x.expect_nchw()?;
            Ok(Shape::nchw(x.n(), x.c(), 1, 1))
        }
        OpKind::Concat | OpKind::ConcatStats(_) => {
            let first = inputs[0];
            first.expect_nchw()?;
            let mut channels = 0usize;
            for s in inputs {
                s.expect_nchw()?;
                if s.n() != first.n() || s.h() != first.h() || s.w() != first.w() {
                    return Err(GraphError::ShapeInference {
                        node: String::new(),
                        reason: format!("concat inputs disagree: {first} vs {s}"),
                    });
                }
                channels += s.c();
            }
            Ok(Shape::nchw(first.n(), channels, first.h(), first.w()))
        }
        OpKind::Split { .. } => Ok(inputs[0].clone()),
        OpKind::EltwiseSum => {
            let first = inputs[0];
            for s in inputs.iter().skip(1) {
                if *s != first {
                    return Err(GraphError::ShapeInference {
                        node: String::new(),
                        reason: format!("element-wise sum inputs disagree: {first} vs {s}"),
                    });
                }
            }
            Ok(first.clone())
        }
        OpKind::SoftmaxLoss => {
            let scores = inputs[0];
            let labels = inputs[1];
            let n = scores.dim(0)?;
            if labels.dim(0)? != n {
                return Err(GraphError::ShapeInference {
                    node: String::new(),
                    reason: format!("scores batch {n} does not match labels {labels}"),
                });
            }
            Ok(Shape::scalar())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BatchNormAttrs, Conv2dAttrs, PoolKind};

    #[test]
    fn conv_shapes() {
        let x = Shape::nchw(4, 3, 224, 224);
        let op = OpKind::Conv2d(Conv2dAttrs::new(64, 7, 2, 3));
        let out = infer_output_shape(&op, &[&x]).unwrap();
        assert_eq!(out, Shape::nchw(4, 64, 112, 112));

        let op = OpKind::Conv2d(Conv2dAttrs::same_3x3(32));
        let out = infer_output_shape(&op, &[&Shape::nchw(2, 16, 56, 56)]).unwrap();
        assert_eq!(out, Shape::nchw(2, 32, 56, 56));

        let op = OpKind::Conv2d(Conv2dAttrs::pointwise(128));
        let out = infer_output_shape(&op, &[&Shape::nchw(2, 256, 28, 28)]).unwrap();
        assert_eq!(out, Shape::nchw(2, 128, 28, 28));
    }

    #[test]
    fn conv_too_small_input_fails() {
        let op = OpKind::Conv2d(Conv2dAttrs::new(8, 7, 2, 0));
        assert!(infer_output_shape(&op, &[&Shape::nchw(1, 3, 4, 4)]).is_err());
    }

    #[test]
    fn pool_shapes() {
        let op = OpKind::Pool { kind: PoolKind::Max, attrs: PoolAttrs::new(3, 2, 1) };
        let out = infer_output_shape(&op, &[&Shape::nchw(4, 64, 112, 112)]).unwrap();
        assert_eq!(out, Shape::nchw(4, 64, 56, 56));

        let op = OpKind::Pool { kind: PoolKind::Average, attrs: PoolAttrs::new(2, 2, 0) };
        let out = infer_output_shape(&op, &[&Shape::nchw(4, 64, 56, 56)]).unwrap();
        assert_eq!(out, Shape::nchw(4, 64, 28, 28));
    }

    #[test]
    fn global_avg_pool() {
        let out =
            infer_output_shape(&OpKind::GlobalAvgPool, &[&Shape::nchw(4, 1024, 7, 7)]).unwrap();
        assert_eq!(out, Shape::nchw(4, 1024, 1, 1));
    }

    #[test]
    fn elementwise_ops_preserve_shape() {
        let x = Shape::nchw(2, 8, 4, 4);
        assert_eq!(infer_output_shape(&OpKind::Relu, &[&x]).unwrap(), x);
        assert_eq!(
            infer_output_shape(&OpKind::BatchNorm(BatchNormAttrs::default()), &[&x]).unwrap(),
            x
        );
        assert_eq!(infer_output_shape(&OpKind::Split { consumers: 3 }, &[&x]).unwrap(), x);
    }

    #[test]
    fn sub_bn_stats_shape() {
        let x = Shape::nchw(8, 32, 14, 14);
        let out =
            infer_output_shape(&OpKind::SubBnStats(BatchNormAttrs::one_pass()), &[&x]).unwrap();
        assert_eq!(out, Shape::matrix(2, 32));
    }

    #[test]
    fn sub_bn_norm_takes_two_inputs() {
        let x = Shape::nchw(8, 32, 14, 14);
        let stats = Shape::matrix(2, 32);
        let out = infer_output_shape(&OpKind::SubBnNorm(BatchNormAttrs::default()), &[&x, &stats])
            .unwrap();
        assert_eq!(out, x);
        assert!(infer_output_shape(&OpKind::SubBnNorm(BatchNormAttrs::default()), &[&x]).is_err());
    }

    #[test]
    fn concat_sums_channels() {
        let a = Shape::nchw(2, 32, 8, 8);
        let b = Shape::nchw(2, 64, 8, 8);
        let out = infer_output_shape(&OpKind::Concat, &[&a, &b]).unwrap();
        assert_eq!(out, Shape::nchw(2, 96, 8, 8));
        let bad = Shape::nchw(2, 64, 4, 4);
        assert!(infer_output_shape(&OpKind::Concat, &[&a, &bad]).is_err());
    }

    #[test]
    fn eltwise_sum_requires_same_shapes() {
        let a = Shape::nchw(2, 32, 8, 8);
        assert_eq!(infer_output_shape(&OpKind::EltwiseSum, &[&a, &a]).unwrap(), a);
        let b = Shape::nchw(2, 16, 8, 8);
        assert!(infer_output_shape(&OpKind::EltwiseSum, &[&a, &b]).is_err());
    }

    #[test]
    fn fully_connected_and_softmax() {
        let feats = Shape::nchw(8, 1024, 1, 1);
        let out =
            infer_output_shape(&OpKind::FullyConnected { out_features: 1000 }, &[&feats]).unwrap();
        assert_eq!(out, Shape::matrix(8, 1000));
        let labels = Shape::vector(8);
        let loss = infer_output_shape(&OpKind::SoftmaxLoss, &[&out, &labels]).unwrap();
        assert_eq!(loss, Shape::scalar());
        let bad_labels = Shape::vector(4);
        assert!(infer_output_shape(&OpKind::SoftmaxLoss, &[&out, &bad_labels]).is_err());
    }

    #[test]
    fn fused_ops_shapes() {
        let x = Shape::nchw(2, 128, 28, 28);
        let stats = Shape::matrix(2, 128);
        let op = OpKind::NormReluConv {
            conv: Conv2dAttrs::same_3x3(32),
            bn: BatchNormAttrs::one_pass(),
        };
        let out = infer_output_shape(&op, &[&x, &stats]).unwrap();
        assert_eq!(out, Shape::nchw(2, 32, 28, 28));

        let op =
            OpKind::ConvStats { conv: Conv2dAttrs::pointwise(128), bn: BatchNormAttrs::one_pass() };
        let out = infer_output_shape(&op, &[&Shape::nchw(2, 256, 28, 28)]).unwrap();
        assert_eq!(out, Shape::nchw(2, 128, 28, 28));

        let a = Shape::nchw(2, 32, 8, 8);
        let b = Shape::nchw(2, 64, 8, 8);
        let out = infer_output_shape(&OpKind::ConcatStats(BatchNormAttrs::one_pass()), &[&a, &b])
            .unwrap();
        assert_eq!(out, Shape::nchw(2, 96, 8, 8));
    }

    #[test]
    fn input_nodes_are_not_inferred() {
        assert!(infer_output_shape(&OpKind::Input, &[]).is_err());
    }

    #[test]
    fn arity_is_checked() {
        let x = Shape::nchw(1, 1, 2, 2);
        assert!(matches!(
            infer_output_shape(&OpKind::Relu, &[&x, &x]),
            Err(GraphError::ArityMismatch { .. })
        ));
        assert!(matches!(
            infer_output_shape(&OpKind::Concat, &[]),
            Err(GraphError::ArityMismatch { .. })
        ));
    }
}
