//! The linear IR: a frozen inference graph compiled to a flat instruction
//! tape.
//!
//! The interpreted frozen executor re-derives everything at request time —
//! it walks the graph, matches on every node's `OpKind`, looks parameters up
//! in hash maps, resolves Split aliases and queries the memory plan's
//! liveness tables for every node it visits. None of that depends on the
//! request: for a fixed graph at a fixed batch size the answers never
//! change. [`LinearProgram::lower`] asks every question **once**, at compile
//! time, and records the answers as a `Vec<`[`Instr`]`>` in topological
//! order:
//!
//! * each instruction carries a fully-resolved kernel recipe (a [`Kernel`]
//!   with concrete attributes, the fused-ReLU flag, and — for convolutions —
//!   the pre-chosen lowering strategy),
//! * operands are *virtual registers* ([`Reg`]): dense indices into a
//!   register file whose slots come straight from the memory plan's
//!   buffer-slot assignment, with pre-computed byte sizes and arena offsets
//!   ([`LinearProgram::reg_offsets`]) — no slot `HashMap`, no shape
//!   inference, no liveness queries remain on the request path,
//! * shapes are batch-specialized: a program lowered for batch `N` hardcodes
//!   every loop bound and buffer size for that `N`, and small programs carry
//!   a serial-execution hint ([`LinearProgram::prefers_serial`]) so a tape
//!   walker can skip per-kernel thread fan-out when the whole forward pass
//!   is cheaper than the spawns.
//!
//! Lowering also runs a peephole over the tape: a `ChannelAffine` or
//! `Conv2d` whose sole consumer is the immediately following `Relu`
//! collapses into one fused instruction (bit-exact — the clamp is the same
//! `max(v, 0)` sweep either way; the convolution case is skipped when the
//! ReLU's register is one of the convolution's inputs, since a convolution
//! cannot run in place), and every convolution picks between the
//! materialized im2col lowering and the gather-fused packing by its
//! geometry.
//!
//! [`LinearProgram::validate`] replays the tape symbolically and proves that
//! no register is read after being clobbered — the register-file analogue of
//! the memory plan's no-aliasing guarantee — and runs automatically at the
//! end of every [`LinearProgram::lower`].

use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::op::{Conv2dAttrs, OpKind, PoolAttrs, PoolKind};
use crate::passes::freeze::FrozenGraph;
use crate::plan::ExecutionPlan;
use crate::Result;
use bnff_tensor::Shape;
use serde::Serialize;

/// A virtual register: a dense index into the tape executor's register file.
pub type Reg = usize;

/// Register/arena offsets are aligned to cache lines.
pub const REG_ALIGN: usize = 64;

/// Programs whose whole forward pass is below this many estimated FLOPs
/// prefer serial execution: per-kernel thread fan-out costs more than it
/// buys (kernels are thread-count bit-identical, so the choice is free).
const SERIAL_FLOPS_THRESHOLD: u64 = 100_000_000;

/// A fully-resolved kernel recipe: which entry point to dispatch and every
/// compile-time decision it needs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Kernel {
    /// 2-D convolution.
    Conv {
        /// Concrete convolution attributes.
        attrs: Conv2dAttrs,
        /// Clamp the output with a fused ReLU.
        fused_relu: bool,
        /// Use the gather-fused im2col lowering (window elements packed
        /// straight from the input sample) instead of materializing the
        /// column matrix. Chosen at compile time from the geometry; both
        /// lowerings are bit-identical.
        gather: bool,
    },
    /// Per-channel affine `y = scale[c]·x + shift[c]`.
    Affine {
        /// Clamp the output with a fused ReLU.
        fused_relu: bool,
    },
    /// Standalone ReLU.
    Relu,
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window attributes.
        attrs: PoolAttrs,
    },
    /// Global average pooling to `N × C × 1 × 1`.
    GlobalAvgPool,
    /// Channel concatenation.
    Concat,
    /// Element-wise sum.
    EltwiseSum,
    /// Fully-connected classifier head.
    FullyConnected,
}

impl Kernel {
    /// A stable label for the kernel's op kind — the aggregation key the
    /// serving profiler groups per-instruction timings by.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Kernel::Conv { .. } => "conv",
            Kernel::Affine { .. } => "affine",
            Kernel::Relu => "relu",
            Kernel::Pool { .. } => "pool",
            Kernel::GlobalAvgPool => "global_avg_pool",
            Kernel::Concat => "concat",
            Kernel::EltwiseSum => "eltwise_sum",
            Kernel::FullyConnected => "fully_connected",
        }
    }
}

/// One instruction of the tape: a kernel recipe plus resolved operands.
#[derive(Debug, Clone, Serialize)]
pub struct Instr {
    /// The graph node this instruction computes (for the fused
    /// affine+ReLU peephole, the *ReLU* node — the value consumers read).
    pub node: NodeId,
    /// The node whose operator (and parameters) drive the kernel — differs
    /// from `node` only for fused instructions, where it names the producer
    /// (the affine) rather than the value (the ReLU).
    pub op_node: NodeId,
    /// The node's diagnostic name.
    pub name: String,
    /// The resolved kernel recipe.
    pub kernel: Kernel,
    /// Input registers, in operand order (Split aliases already resolved).
    pub inputs: Vec<Reg>,
    /// Producer node of each input register, for validation/diagnostics.
    pub input_nodes: Vec<NodeId>,
    /// Pre-computed arena byte offset of each input register.
    pub input_offsets: Vec<usize>,
    /// Output register.
    pub out: Reg,
    /// Pre-computed arena byte offset of the output register.
    pub out_offset: usize,
    /// Concrete (batch-specialized) output shape.
    pub out_shape: Shape,
    /// `out_shape.volume()`, pre-computed.
    pub out_volume: usize,
    /// Estimated FLOPs of this instruction.
    pub flops: u64,
}

/// A frozen graph compiled to a flat instruction tape for one batch size.
#[derive(Debug, Clone, Serialize)]
pub struct LinearProgram {
    name: String,
    batch: usize,
    instrs: Vec<Instr>,
    input_reg: Reg,
    input_node: NodeId,
    input_shape: Shape,
    output_reg: Reg,
    output_node: NodeId,
    /// Capacity in bytes of every register (slot-backed registers first,
    /// pinned outputs after).
    reg_bytes: Vec<usize>,
    /// Byte offset of every register in one contiguous virtual arena
    /// ([`REG_ALIGN`]-aligned prefix sums of `reg_bytes`).
    reg_offsets: Vec<usize>,
    flops_estimate: u64,
}

/// Estimated FLOPs of one node's forward kernel (2·MACs for the GEMM-backed
/// ops, one combined read+write sweep for the rest).
fn node_flops(graph: &Graph, node_id: NodeId) -> Result<u64> {
    let node = graph.node(node_id)?;
    let out = &node.output_shape;
    Ok(match &node.op {
        OpKind::Conv2d(a) | OpKind::ConvRelu(a) => {
            let in_c = graph.node(node.inputs[0])?.output_shape.c();
            2 * (out.volume() * in_c * a.kernel_h * a.kernel_w) as u64
        }
        OpKind::FullyConnected { .. } => {
            let in_features =
                graph.node(node.inputs[0])?.output_shape.volume() / out.dim(0).unwrap_or(1).max(1);
            2 * (out.volume() * in_features) as u64
        }
        _ => 2 * out.volume() as u64,
    })
}

/// Whether a convolution should use the gather-fused im2col lowering: the
/// fusion saves one full write + read of the `(C·Kh·Kw) × (Ho·Wo)` column
/// matrix, which pays off once the matrix is deep (enough reuse per input
/// element) *and* wide (enough packed strips to amortize the per-strip
/// window-origin setup). Measured on the serving shapes: the big stride-1
/// feature-map convs win ~1.25×, shallow stems lose.
fn gather_pays_off(rows: usize, cols: usize) -> bool {
    rows >= 64 && cols >= 512
}

/// The register assigned to a node's (alias-resolved) output tensor.
fn lookup_reg(reg_of: &[Option<Reg>], plan: &ExecutionPlan, id: NodeId) -> Result<Reg> {
    reg_of[plan.resolve(id).index()].ok_or_else(|| GraphError::PassError {
        pass: "linearize".to_string(),
        reason: format!("node {id} owns no register"),
    })
}

/// Whether a kernel may legally run in place (output register equal to its
/// first input register): true for the pointwise kernels, where element `i`
/// of the output depends only on element `i` of the input.
fn kernel_is_pointwise(kernel: &Kernel) -> bool {
    matches!(kernel, Kernel::Affine { .. } | Kernel::Relu)
}

impl LinearProgram {
    /// Lowers a frozen graph and its inference memory plan into a tape.
    ///
    /// `input`/`output` are the graph's data input and final output nodes
    /// (as recorded by the freeze pass). The program is specialized to the
    /// batch size baked into the graph's shapes.
    ///
    /// # Errors
    /// Returns an error when the graph contains a training-only operator or
    /// the lowered tape fails its register-clobber validation.
    pub fn lower(
        graph: &Graph,
        plan: &ExecutionPlan,
        input: NodeId,
        output: NodeId,
    ) -> Result<LinearProgram> {
        let n = graph.node_count();
        let input_shape = graph.node(input)?.output_shape.clone();
        let batch = input_shape.dim(0).unwrap_or(1);

        // Register file: one register per plan slot, then one dedicated
        // register per pinned (final-output) tensor.
        let mut reg_bytes: Vec<usize> = plan.slot_sizes().to_vec();
        let mut reg_of: Vec<Option<Reg>> = vec![None; n];
        for &id in plan.order() {
            let idx = id.index();
            if let Some(slot) = plan.slot(id) {
                reg_of[idx] = Some(slot);
            } else if plan.liveness(id).map(|l| l.saved_for_backward).unwrap_or(false) {
                reg_of[idx] = Some(reg_bytes.len());
                reg_bytes.push(graph.node(id)?.output_shape.bytes_f32());
            }
        }
        let reg_offsets = aligned_prefix_sums(&reg_bytes);
        debug_assert_eq!(
            reg_offsets[..plan.slot_count()],
            plan.slot_offsets(REG_ALIGN)[..],
            "slot-backed registers must sit at the plan's resolved offsets"
        );

        // The peephole marks ReLU nodes fused into their producer (an
        // affine or a convolution).
        let mut fused_into_producer = vec![false; n];
        let mut instrs = Vec::new();
        let mut flops_estimate = 0u64;
        for (pos, &id) in plan.order().iter().enumerate() {
            let node = graph.node(id)?;
            if fused_into_producer[id.index()] {
                continue;
            }
            let (kernel, value_node) = match &node.op {
                OpKind::Input | OpKind::Split { .. } => continue,
                OpKind::Conv2d(a) | OpKind::ConvRelu(a) => {
                    let in_shape = &graph.node(node.inputs[0])?.output_shape;
                    let rows = in_shape.c() * a.kernel_h * a.kernel_w;
                    let cols = node.output_shape.h() * node.output_shape.w();
                    let mut fused_relu = matches!(node.op, OpKind::ConvRelu(_));
                    let mut value_node = id;
                    // Fuse a sole-consumer ReLU that executes immediately
                    // next into the convolution's epilogue — the same
                    // `max(v, 0)` sweep, run while the output is cache-hot.
                    // Unlike the affine peephole below, the fused write must
                    // not land on one of the convolution's own input
                    // registers (a convolution cannot run in place), so the
                    // pair stays unfused when the planner recycled an input
                    // slot for the ReLU.
                    if !fused_relu {
                        let consumers = graph.consumers(id);
                        if consumers.len() == 1
                            && matches!(graph.node(consumers[0])?.op, OpKind::Relu)
                            && plan.position(consumers[0]) == pos + 1
                        {
                            let relu_reg = lookup_reg(&reg_of, plan, consumers[0])?;
                            let mut collides = false;
                            for &input in &node.inputs {
                                collides |= lookup_reg(&reg_of, plan, input)? == relu_reg;
                            }
                            if !collides {
                                fused_relu = true;
                                value_node = consumers[0];
                                fused_into_producer[consumers[0].index()] = true;
                            }
                        }
                    }
                    let kernel =
                        Kernel::Conv { attrs: *a, fused_relu, gather: gather_pays_off(rows, cols) };
                    (kernel, value_node)
                }
                OpKind::ChannelAffine => {
                    // Fuse a sole-consumer ReLU that executes immediately
                    // next: no instruction can observe the unclamped value,
                    // and no other tensor is defined in between, so writing
                    // the ReLU's register at the affine's position clobbers
                    // nothing. When the planner recycled the affine input's
                    // slot for the ReLU (it can: the input dies at the
                    // affine), the fused instruction becomes an in-place
                    // sweep — legal because the kernel is pointwise.
                    let consumers = graph.consumers(id);
                    let fusable = consumers.len() == 1
                        && matches!(graph.node(consumers[0])?.op, OpKind::Relu)
                        && plan.position(consumers[0]) == pos + 1;
                    if fusable {
                        fused_into_producer[consumers[0].index()] = true;
                        (Kernel::Affine { fused_relu: true }, consumers[0])
                    } else {
                        (Kernel::Affine { fused_relu: false }, id)
                    }
                }
                OpKind::Relu => (Kernel::Relu, id),
                OpKind::Pool { kind, attrs } => (Kernel::Pool { kind: *kind, attrs: *attrs }, id),
                OpKind::GlobalAvgPool => (Kernel::GlobalAvgPool, id),
                OpKind::Concat => (Kernel::Concat, id),
                OpKind::EltwiseSum => (Kernel::EltwiseSum, id),
                OpKind::FullyConnected { .. } => (Kernel::FullyConnected, id),
                other => {
                    return Err(GraphError::PassError {
                        pass: "linearize".to_string(),
                        reason: format!(
                            "training-only operator {other} in node '{}' cannot be lowered",
                            node.name
                        ),
                    })
                }
            };
            let value = graph.node(value_node)?;
            let input_nodes: Vec<NodeId> = node.inputs.iter().map(|&i| plan.resolve(i)).collect();
            let inputs: Vec<Reg> =
                input_nodes.iter().map(|&i| lookup_reg(&reg_of, plan, i)).collect::<Result<_>>()?;
            let input_offsets: Vec<usize> = inputs.iter().map(|&r| reg_offsets[r]).collect();
            let out = lookup_reg(&reg_of, plan, value_node)?;
            let flops = node_flops(graph, id)?
                + if value_node == id { 0 } else { node_flops(graph, value_node)? };
            flops_estimate += flops;
            instrs.push(Instr {
                node: value_node,
                op_node: id,
                name: node.name.clone(),
                kernel,
                inputs,
                input_nodes,
                input_offsets,
                out,
                out_offset: reg_offsets[out],
                out_shape: value.output_shape.clone(),
                out_volume: value.output_shape.volume(),
                flops,
            });
        }

        let program = LinearProgram {
            name: graph.name().to_string(),
            batch,
            instrs,
            input_reg: lookup_reg(&reg_of, plan, input)?,
            input_node: input,
            input_shape,
            output_reg: lookup_reg(&reg_of, plan, output)?,
            output_node: plan.resolve(output),
            reg_bytes,
            reg_offsets,
            flops_estimate,
        };
        program.validate()?;
        Ok(program)
    }

    /// Plans and lowers a freshly frozen graph in one step (the batch size
    /// is the one baked into the frozen graph's shapes).
    ///
    /// # Errors
    /// Returns an error when planning or lowering fails.
    pub fn lower_for_inference(frozen: &FrozenGraph) -> Result<LinearProgram> {
        let plan = ExecutionPlan::for_inference(&frozen.graph)?;
        Self::lower(&frozen.graph, &plan, frozen.input, frozen.output)
    }

    /// The lowered graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The batch size this program is specialized to.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The instruction tape, in execution order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The register the caller seeds with the input batch.
    pub fn input_reg(&self) -> Reg {
        self.input_reg
    }

    /// The concrete input shape (batch included).
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The register holding the final output after the tape runs.
    pub fn output_reg(&self) -> Reg {
        self.output_reg
    }

    /// Number of registers in the file.
    pub fn reg_count(&self) -> usize {
        self.reg_bytes.len()
    }

    /// Capacity in bytes of every register.
    pub fn reg_bytes(&self) -> &[usize] {
        &self.reg_bytes
    }

    /// Byte offset of every register in the contiguous virtual arena.
    pub fn reg_offsets(&self) -> &[usize] {
        &self.reg_offsets
    }

    /// Total bytes of the virtual arena backing the register file.
    pub fn arena_bytes(&self) -> usize {
        self.reg_offsets.last().map_or(0, |&off| off) + self.reg_bytes.last().map_or(0, |&b| b)
    }

    /// Estimated FLOPs of one forward pass.
    pub fn flops_estimate(&self) -> u64 {
        self.flops_estimate
    }

    /// Whether the whole pass is cheap enough that per-kernel thread
    /// fan-out costs more than it buys. Kernels are thread-count
    /// bit-identical, so honouring (or ignoring) the hint never changes
    /// results.
    pub fn prefers_serial(&self) -> bool {
        self.flops_estimate < SERIAL_FLOPS_THRESHOLD
    }

    /// Replays the tape symbolically and checks that every instruction
    /// reads registers still holding the values it expects: no register is
    /// written while a not-yet-consumed value lives in it, instructions
    /// never read their own output register, and register byte ranges never
    /// overlap in the virtual arena.
    ///
    /// # Errors
    /// Returns an error describing the first clobber found.
    pub fn validate(&self) -> Result<()> {
        let (input, output) = (self.input_node, self.output_node);
        let clobber = |reason: String| GraphError::PassError {
            pass: "linearize/validate".to_string(),
            reason,
        };
        // Disjoint, aligned arena ranges per register.
        let mut end = 0usize;
        for (reg, (&off, &bytes)) in self.reg_offsets.iter().zip(self.reg_bytes.iter()).enumerate()
        {
            if off % REG_ALIGN != 0 {
                return Err(clobber(format!("register {reg} offset {off} is unaligned")));
            }
            if off < end {
                return Err(clobber(format!(
                    "register {reg} at [{off}, {}) overlaps the previous register ending at {end}",
                    off + bytes
                )));
            }
            end = off + bytes;
        }
        // Symbolic replay: which node's value does each register hold?
        let mut holds: Vec<Option<NodeId>> = vec![None; self.reg_bytes.len()];
        if self.input_reg >= holds.len() {
            return Err(clobber(format!("input register {} out of range", self.input_reg)));
        }
        holds[self.input_reg] = Some(input);
        for instr in &self.instrs {
            for (slot, (&reg, &expect)) in
                instr.inputs.iter().zip(instr.input_nodes.iter()).enumerate()
            {
                // Pointwise kernels may run in place on their first
                // operand; any other self-read is a clobber.
                if reg == instr.out && !(slot == 0 && kernel_is_pointwise(&instr.kernel)) {
                    return Err(clobber(format!(
                        "'{}' reads its own output register {reg} (operand {slot})",
                        instr.name
                    )));
                }
                match holds.get(reg).copied().flatten() {
                    Some(held) if held == expect => {}
                    held => {
                        return Err(clobber(format!(
                            "'{}' operand {slot} expects the value of {expect} in register \
                             {reg}, which holds {held:?}",
                            instr.name
                        )))
                    }
                }
            }
            if instr.out >= holds.len() {
                return Err(clobber(format!(
                    "'{}' writes out-of-range register {}",
                    instr.name, instr.out
                )));
            }
            if instr.out_offset != self.reg_offsets[instr.out] {
                return Err(clobber(format!("'{}' carries a stale output offset", instr.name)));
            }
            holds[instr.out] = Some(instr.node);
        }
        match holds.get(self.output_reg).copied().flatten() {
            Some(held) if held == output => Ok(()),
            held => Err(clobber(format!(
                "output register {} holds {held:?}, expected the value of {output}",
                self.output_reg
            ))),
        }
    }
}

/// [`REG_ALIGN`]-aligned exclusive prefix sums.
fn aligned_prefix_sums(bytes: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(bytes.len());
    let mut off = 0usize;
    for &b in bytes {
        offsets.push(off);
        off += b.div_ceil(REG_ALIGN) * REG_ALIGN;
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::passes::freeze::freeze;
    use crate::passes::{BnffPass, Pass};

    fn frozen_fragment() -> FrozenGraph {
        let mut b = GraphBuilder::new("frag");
        let x = b.input("in", Shape::nchw(2, 3, 8, 8)).unwrap();
        let c = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(4), "block").unwrap();
        let p = b.max_pool(c, PoolAttrs::new(2, 2, 0), "pool").unwrap();
        let gap = b.global_avg_pool(p, "gap").unwrap();
        let fc = b.fully_connected(gap, 5, "fc").unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        freeze(&b.finish()).unwrap()
    }

    #[test]
    fn lowers_a_frozen_fragment() {
        let frozen = frozen_fragment();
        let program = LinearProgram::lower_for_inference(&frozen).unwrap();
        assert_eq!(program.batch(), 2);
        assert!(!program.is_empty());
        // Every instruction's operands are fully resolved.
        for instr in program.instrs() {
            assert_eq!(instr.inputs.len(), instr.input_offsets.len());
            assert_eq!(instr.out_volume, instr.out_shape.volume());
            assert!(instr.out_offset + instr.out_volume * 4 <= program.arena_bytes());
        }
        assert!(program.validate().is_ok());
        assert!(program.flops_estimate() > 0);
        assert!(program.prefers_serial());
    }

    #[test]
    fn adjacent_affine_relu_pairs_fuse_in_place() {
        // An input-adjacent BN freezes to a standalone ChannelAffine
        // followed by its sole-consumer ReLU on the very next position. The
        // planner recycles the input's slot for the ReLU, so the fused
        // instruction must run in place on that register.
        let mut b = GraphBuilder::new("affine-relu");
        let x = b.input("in", Shape::nchw(1, 4, 6, 6)).unwrap();
        let bn = b.batch_norm_default(x, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        let c = b.conv2d(r, Conv2dAttrs::pointwise(2), "conv").unwrap();
        let gap = b.global_avg_pool(c, "gap").unwrap();
        let fc = b.fully_connected(gap, 2, "fc").unwrap();
        let labels = b.input("labels", Shape::vector(1)).unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let frozen = freeze(&b.finish()).unwrap();
        let program = LinearProgram::lower_for_inference(&frozen).unwrap();
        let fused: Vec<&Instr> = program
            .instrs()
            .iter()
            .filter(|i| matches!(i.kernel, Kernel::Affine { fused_relu: true }))
            .collect();
        assert_eq!(fused.len(), 1, "affine→relu should fuse: {:?}", program.instrs());
        // No standalone Relu instruction survives.
        assert!(!program.instrs().iter().any(|i| matches!(i.kernel, Kernel::Relu)));
    }

    #[test]
    fn baseline_conv_relu_pairs_fuse_into_the_conv() {
        // A baseline (graph-level-unfused) conv→bn→relu block freezes to a
        // folded Conv2d followed by a standalone Relu. The second consumer
        // of the input keeps the input's slot alive past `c1`, so the
        // planner cannot recycle it for `r1` and the peephole's collision
        // guard lets the pair fuse.
        let mut b = GraphBuilder::new("conv-relu");
        let x = b.input("in", Shape::nchw(1, 3, 8, 8)).unwrap();
        let c1 = b.conv2d(x, Conv2dAttrs::same_3x3(4), "c1").unwrap();
        let r1 = b.relu(c1, "r1").unwrap();
        let c2 = b.conv2d(x, Conv2dAttrs::same_3x3(4), "c2").unwrap();
        let cat = b.concat(vec![r1, c2], "cat").unwrap();
        let gap = b.global_avg_pool(cat, "gap").unwrap();
        let fc = b.fully_connected(gap, 2, "fc").unwrap();
        let labels = b.input("labels", Shape::vector(1)).unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let frozen = freeze(&b.finish()).unwrap();
        let program = LinearProgram::lower_for_inference(&frozen).unwrap();
        assert!(
            program
                .instrs()
                .iter()
                .any(|i| matches!(i.kernel, Kernel::Conv { fused_relu: true, .. })),
            "c1→r1 should fuse into the conv's epilogue: {:?}",
            program.instrs()
        );
        // A fused convolution never writes one of its own input registers.
        for instr in program.instrs() {
            if matches!(instr.kernel, Kernel::Conv { .. }) {
                assert!(!instr.inputs.contains(&instr.out), "'{}' runs in place", instr.name);
            }
        }
    }

    #[test]
    fn non_adjacent_relu_stays_standalone() {
        // A second consumer of the input makes the freeze pass schedule
        // another conv between the affine and its ReLU — the peephole must
        // leave the pair unfused and the tape must still validate.
        let mut b = GraphBuilder::new("affine-relu-gap");
        let x = b.input("in", Shape::nchw(1, 4, 6, 6)).unwrap();
        let bn = b.batch_norm_default(x, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        let c1 = b.conv2d(r, Conv2dAttrs::pointwise(2), "c1").unwrap();
        let c2 = b.conv2d(x, Conv2dAttrs::pointwise(2), "c2").unwrap();
        let cat = b.concat(vec![c1, c2], "cat").unwrap();
        let gap = b.global_avg_pool(cat, "gap").unwrap();
        let fc = b.fully_connected(gap, 2, "fc").unwrap();
        let labels = b.input("labels", Shape::vector(1)).unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let frozen = freeze(&b.finish()).unwrap();
        let program = LinearProgram::lower_for_inference(&frozen).unwrap();
        program.validate().unwrap();
        if program.instrs().iter().any(|i| matches!(i.kernel, Kernel::Relu)) {
            // Unfused: the affine stays plain.
            assert!(program
                .instrs()
                .iter()
                .any(|i| matches!(i.kernel, Kernel::Affine { fused_relu: false })));
        }
    }

    #[test]
    fn conv_strategy_follows_geometry() {
        assert!(gather_pays_off(288, 1024));
        assert!(!gather_pays_off(27, 1024), "shallow stem stays materialized");
        assert!(!gather_pays_off(288, 64), "narrow maps stay materialized");
    }

    #[test]
    fn registers_are_disjoint_and_aligned() {
        let frozen = frozen_fragment();
        let program = LinearProgram::lower_for_inference(&frozen).unwrap();
        let offsets = program.reg_offsets();
        let bytes = program.reg_bytes();
        for r in 0..program.reg_count() {
            assert_eq!(offsets[r] % REG_ALIGN, 0);
            for s in r + 1..program.reg_count() {
                let disjoint =
                    offsets[r] + bytes[r] <= offsets[s] || offsets[s] + bytes[s] <= offsets[r];
                assert!(disjoint, "registers {r} and {s} overlap");
            }
        }
        assert!(program.arena_bytes() >= bytes.iter().sum::<usize>());
    }

    #[test]
    fn bnff_levels_lower_too() {
        let mut b = GraphBuilder::new("bnff");
        let x = b.input("in", Shape::nchw(2, 3, 16, 16)).unwrap();
        let c1 = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(8), "a").unwrap();
        let c2 = b.conv_bn_relu(c1, Conv2dAttrs::pointwise(4), "b").unwrap();
        let gap = b.global_avg_pool(c2, "gap").unwrap();
        let fc = b.fully_connected(gap, 3, "fc").unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let graph = BnffPass::new().run(&b.finish()).unwrap();
        let frozen = freeze(&graph).unwrap();
        let program = LinearProgram::lower_for_inference(&frozen).unwrap();
        assert!(program.validate().is_ok());
    }

    #[test]
    fn training_graphs_are_rejected() {
        let mut b = GraphBuilder::new("training");
        let x = b.input("in", Shape::nchw(1, 2, 4, 4)).unwrap();
        let bn = b.batch_norm_default(x, "bn").unwrap();
        let gap = b.global_avg_pool(bn, "gap").unwrap();
        let fc = b.fully_connected(gap, 2, "fc").unwrap();
        let labels = b.input("labels", Shape::vector(1)).unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let graph = b.finish();
        let plan = ExecutionPlan::for_inference(&graph).unwrap();
        let input = graph.input_nodes()[0];
        let err = LinearProgram::lower(&graph, &plan, input, fc);
        assert!(err.is_err(), "BatchNorm must not lower");
    }
}
