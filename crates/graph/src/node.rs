//! Graph nodes and node identifiers.

use crate::op::OpKind;
use bnff_tensor::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable identifier for a node within one [`Graph`](crate::Graph).
///
/// Ids are dense indices assigned in insertion order; restructuring passes
/// that remove nodes produce a new graph with re-assigned ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One layer (operation) instance in a computational graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// Human-readable name (e.g. `"denseblock1/cpl3/conv1"`).
    pub name: String,
    /// The operation this node performs.
    pub op: OpKind,
    /// Producer nodes whose outputs feed this node, in argument order.
    pub inputs: Vec<NodeId>,
    /// Shape of this node's (primary) output tensor.
    pub output_shape: Shape,
}

impl Node {
    /// Creates a node.
    pub fn new(
        id: NodeId,
        name: impl Into<String>,
        op: OpKind,
        inputs: Vec<NodeId>,
        output_shape: Shape,
    ) -> Self {
        Node { id, name: name.into(), op, inputs, output_shape }
    }

    /// Number of elements in the node's output tensor.
    pub fn output_volume(&self) -> usize {
        self.output_shape.volume()
    }

    /// Number of bytes of the node's single-precision output tensor.
    pub fn output_bytes(&self) -> usize {
        self.output_shape.bytes_f32()
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {} -> {}", self.id, self.name, self.op, self.output_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Conv2dAttrs;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn node_volume_and_bytes() {
        let n = Node::new(
            NodeId::new(0),
            "conv",
            OpKind::Conv2d(Conv2dAttrs::same_3x3(8)),
            vec![],
            Shape::nchw(2, 8, 4, 4),
        );
        assert_eq!(n.output_volume(), 2 * 8 * 4 * 4);
        assert_eq!(n.output_bytes(), 2 * 8 * 4 * 4 * 4);
        assert!(n.to_string().contains("conv"));
    }

    #[test]
    fn node_ids_order() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
