//! A convenience builder for constructing model graphs.

use crate::graph::Graph;
use crate::node::NodeId;
use crate::op::{BatchNormAttrs, Conv2dAttrs, OpKind, PoolAttrs, PoolKind};
use crate::Result;
use bnff_tensor::Shape;

/// Fluent builder over [`Graph`] used by the model zoo.
///
/// Every method adds one layer node and returns its [`NodeId`], so model
/// definitions read like the layer listings in the paper:
///
/// ```rust
/// use bnff_graph::builder::GraphBuilder;
/// use bnff_graph::op::Conv2dAttrs;
/// use bnff_tensor::Shape;
///
/// # fn main() -> Result<(), bnff_graph::GraphError> {
/// let mut b = GraphBuilder::new("tiny");
/// let x = b.input("data", Shape::nchw(4, 3, 32, 32))?;
/// let c = b.conv2d(x, Conv2dAttrs::same_3x3(16), "conv")?;
/// let bn = b.batch_norm_default(c, "bn")?;
/// let r = b.relu(bn, "relu")?;
/// let p = b.global_avg_pool(r, "gap")?;
/// let fc = b.fully_connected(p, 10, "fc")?;
/// let labels = b.input("labels", Shape::vector(4))?;
/// b.softmax_loss(fc, labels, "loss")?;
/// let graph = b.finish();
/// assert_eq!(graph.node_count(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// Creates a builder for a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder { graph: Graph::new(name) }
    }

    /// Finishes building, returning the graph.
    pub fn finish(self) -> Graph {
        self.graph
    }

    /// Read-only access to the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Adds an input node.
    ///
    /// # Errors
    /// Infallible today; returns `Result` for uniformity with other methods.
    pub fn input(&mut self, name: &str, shape: Shape) -> Result<NodeId> {
        Ok(self.graph.add_input(name, shape))
    }

    /// Adds a 2-D convolution.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn conv2d(&mut self, input: NodeId, attrs: Conv2dAttrs, name: &str) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::Conv2d(attrs), vec![input])
    }

    /// Adds a Batch Normalization layer with explicit attributes.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn batch_norm(
        &mut self,
        input: NodeId,
        attrs: BatchNormAttrs,
        name: &str,
    ) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::BatchNorm(attrs), vec![input])
    }

    /// Adds a Batch Normalization layer with default (two-pass) attributes.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn batch_norm_default(&mut self, input: NodeId, name: &str) -> Result<NodeId> {
        self.batch_norm(input, BatchNormAttrs::default(), name)
    }

    /// Adds a ReLU activation.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn relu(&mut self, input: NodeId, name: &str) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::Relu, vec![input])
    }

    /// Adds a max-pooling layer.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn max_pool(&mut self, input: NodeId, attrs: PoolAttrs, name: &str) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::Pool { kind: PoolKind::Max, attrs }, vec![input])
    }

    /// Adds an average-pooling layer.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn avg_pool(&mut self, input: NodeId, attrs: PoolAttrs, name: &str) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::Pool { kind: PoolKind::Average, attrs }, vec![input])
    }

    /// Adds a global average pooling layer.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn global_avg_pool(&mut self, input: NodeId, name: &str) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::GlobalAvgPool, vec![input])
    }

    /// Adds a channel concatenation (DenseNet dense connectivity).
    ///
    /// # Errors
    /// Returns an error if the inputs' batch or spatial dimensions disagree.
    pub fn concat(&mut self, inputs: Vec<NodeId>, name: &str) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::Concat, inputs)
    }

    /// Adds an explicit split/replication node feeding `consumers` readers.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn split(&mut self, input: NodeId, consumers: usize, name: &str) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::Split { consumers }, vec![input])
    }

    /// Adds an element-wise sum (ResNet shortcut join).
    ///
    /// # Errors
    /// Returns an error if the input shapes differ.
    pub fn eltwise_sum(&mut self, inputs: Vec<NodeId>, name: &str) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::EltwiseSum, inputs)
    }

    /// Adds a fully-connected layer.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn fully_connected(
        &mut self,
        input: NodeId,
        out_features: usize,
        name: &str,
    ) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::FullyConnected { out_features }, vec![input])
    }

    /// Adds a softmax + cross-entropy loss head.
    ///
    /// # Errors
    /// Returns an error if the scores/labels batch sizes disagree.
    pub fn softmax_loss(&mut self, scores: NodeId, labels: NodeId, name: &str) -> Result<NodeId> {
        self.graph.add_node(name, OpKind::SoftmaxLoss, vec![scores, labels])
    }

    /// Adds the BN → ReLU → CONV sequence that forms half of a DenseNet
    /// composite layer, returning the CONV's node id.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn bn_relu_conv(
        &mut self,
        input: NodeId,
        conv: Conv2dAttrs,
        prefix: &str,
    ) -> Result<NodeId> {
        let bn = self.batch_norm_default(input, &format!("{prefix}/bn"))?;
        let relu = self.relu(bn, &format!("{prefix}/relu"))?;
        self.conv2d(relu, conv, &format!("{prefix}/conv"))
    }

    /// Adds the CONV → BN → ReLU sequence used by ResNet, returning the
    /// ReLU's node id.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn conv_bn_relu(
        &mut self,
        input: NodeId,
        conv: Conv2dAttrs,
        prefix: &str,
    ) -> Result<NodeId> {
        let c = self.conv2d(input, conv, &format!("{prefix}/conv"))?;
        let bn = self.batch_norm_default(c, &format!("{prefix}/bn"))?;
        self.relu(bn, &format!("{prefix}/relu"))
    }

    /// Adds the CONV → BN sequence (no activation) used on ResNet's residual
    /// branch tail and projection shortcuts, returning the BN's node id.
    ///
    /// # Errors
    /// Returns an error if shape inference fails.
    pub fn conv_bn(&mut self, input: NodeId, conv: Conv2dAttrs, prefix: &str) -> Result<NodeId> {
        let c = self.conv2d(input, conv, &format!("{prefix}/conv"))?;
        self.batch_norm_default(c, &format!("{prefix}/bn"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_classifier() {
        let mut b = GraphBuilder::new("clf");
        let x = b.input("data", Shape::nchw(2, 3, 8, 8)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::same_3x3(4), "conv").unwrap();
        let bn = b.batch_norm_default(c, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        let p = b.global_avg_pool(r, "gap").unwrap();
        let fc = b.fully_connected(p, 10, "fc").unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        let loss = b.softmax_loss(fc, labels, "loss").unwrap();
        let g = b.finish();
        assert!(g.validate().is_ok());
        assert_eq!(g.node(loss).unwrap().output_shape, Shape::scalar());
        assert_eq!(g.output_nodes(), vec![loss]);
    }

    #[test]
    fn composite_helpers() {
        let mut b = GraphBuilder::new("helpers");
        let x = b.input("data", Shape::nchw(2, 16, 8, 8)).unwrap();
        let dense_branch = b.bn_relu_conv(x, Conv2dAttrs::pointwise(32), "cpl").unwrap();
        let res_branch = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(16), "res").unwrap();
        let tail = b.conv_bn(res_branch, Conv2dAttrs::pointwise(16), "tail").unwrap();
        let g = b.finish();
        assert!(g.validate().is_ok());
        assert_eq!(g.node(dense_branch).unwrap().output_shape, Shape::nchw(2, 32, 8, 8));
        assert_eq!(g.node(tail).unwrap().output_shape, Shape::nchw(2, 16, 8, 8));
        assert_eq!(g.op_histogram()["BatchNorm"], 3);
    }

    #[test]
    fn concat_and_eltwise() {
        let mut b = GraphBuilder::new("join");
        let x = b.input("a", Shape::nchw(1, 8, 4, 4)).unwrap();
        let y = b.input("b", Shape::nchw(1, 8, 4, 4)).unwrap();
        let cat = b.concat(vec![x, y], "cat").unwrap();
        let ews = b.eltwise_sum(vec![x, y], "sum").unwrap();
        let g = b.finish();
        assert_eq!(g.node(cat).unwrap().output_shape, Shape::nchw(1, 16, 4, 4));
        assert_eq!(g.node(ews).unwrap().output_shape, Shape::nchw(1, 8, 4, 4));
    }

    #[test]
    fn pooling_and_split() {
        let mut b = GraphBuilder::new("pool");
        let x = b.input("a", Shape::nchw(1, 8, 8, 8)).unwrap();
        let mp = b.max_pool(x, PoolAttrs::new(2, 2, 0), "max").unwrap();
        let ap = b.avg_pool(x, PoolAttrs::new(2, 2, 0), "avg").unwrap();
        let sp = b.split(x, 2, "split").unwrap();
        let g = b.finish();
        assert_eq!(g.node(mp).unwrap().output_shape, Shape::nchw(1, 8, 4, 4));
        assert_eq!(g.node(ap).unwrap().output_shape, Shape::nchw(1, 8, 4, 4));
        assert_eq!(g.node(sp).unwrap().output_shape, Shape::nchw(1, 8, 8, 8));
    }
}
