//! The computational graph container.

use crate::error::GraphError;
use crate::node::{Node, NodeId};
use crate::op::OpKind;
use crate::shape_infer::infer_output_shape;
use crate::Result;
use bnff_tensor::Shape;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A directed acyclic graph of layer nodes.
///
/// Nodes are stored in insertion order; [`NodeId`]s are dense indices into
/// that storage. Each node produces exactly one primary output tensor;
/// operators that also produce auxiliary values (e.g. the Σx/Σx² statistics
/// of a fused [`OpKind::ConvStats`]) expose those through the executor's
/// side channel, not through extra graph edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph { name: name.into(), nodes: Vec::new() }
    }

    /// The graph's name (typically the model name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all nodes in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Looks a node up by id.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] if the id is not in this graph.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.index()).ok_or(GraphError::UnknownNode(id))
    }

    /// Adds an input node with an explicit shape.
    pub fn add_input(&mut self, name: impl Into<String>, shape: Shape) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node::new(id, name, OpKind::Input, vec![], shape));
        id
    }

    /// Adds an operation node, inferring its output shape from its inputs.
    ///
    /// # Errors
    /// Returns an error if an input id is unknown, the arity is wrong or
    /// shape inference fails.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        inputs: Vec<NodeId>,
    ) -> Result<NodeId> {
        let name = name.into();
        let mut shapes = Vec::with_capacity(inputs.len());
        for id in &inputs {
            shapes.push(self.node(*id)?.output_shape.clone());
        }
        let shape_refs: Vec<&Shape> = shapes.iter().collect();
        let output_shape = infer_output_shape(&op, &shape_refs).map_err(|e| match e {
            GraphError::ShapeInference { reason, .. } => {
                GraphError::ShapeInference { node: name.clone(), reason }
            }
            other => other,
        })?;
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node::new(id, name, op, inputs, output_shape));
        Ok(id)
    }

    /// Adds an operation node with an explicitly provided output shape,
    /// bypassing inference. Used by restructuring passes for fused operators
    /// whose shape is inherited from the nodes they replace.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] if an input id is unknown.
    pub fn add_node_with_shape(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        inputs: Vec<NodeId>,
        output_shape: Shape,
    ) -> Result<NodeId> {
        for id in &inputs {
            self.node(*id)?;
        }
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node::new(id, name, op, inputs, output_shape));
        Ok(id)
    }

    /// Replaces the operation of an existing node (shape is kept).
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] if the id is not in this graph.
    pub fn set_op(&mut self, id: NodeId, op: OpKind) -> Result<()> {
        let idx = id.index();
        if idx >= self.nodes.len() {
            return Err(GraphError::UnknownNode(id));
        }
        self.nodes[idx].op = op;
        Ok(())
    }

    /// Replaces the inputs of an existing node.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] if any id is not in this graph.
    pub fn set_inputs(&mut self, id: NodeId, inputs: Vec<NodeId>) -> Result<()> {
        for i in &inputs {
            self.node(*i)?;
        }
        let idx = id.index();
        if idx >= self.nodes.len() {
            return Err(GraphError::UnknownNode(id));
        }
        self.nodes[idx].inputs = inputs;
        Ok(())
    }

    /// Renames an existing node.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] if the id is not in this graph.
    pub fn set_node_name(&mut self, id: NodeId, name: impl Into<String>) -> Result<()> {
        let idx = id.index();
        if idx >= self.nodes.len() {
            return Err(GraphError::UnknownNode(id));
        }
        self.nodes[idx].name = name.into();
        Ok(())
    }

    /// Rewires every consumer of `old` to read from `new` instead.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] if either id is not in this graph.
    pub fn rewire_consumers(&mut self, old: NodeId, new: NodeId) -> Result<()> {
        self.node(old)?;
        self.node(new)?;
        for node in self.nodes.iter_mut() {
            for input in node.inputs.iter_mut() {
                if *input == old {
                    *input = new;
                }
            }
        }
        Ok(())
    }

    /// Map from node id to the ids of the nodes that consume its output.
    pub fn consumer_map(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut map: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for node in &self.nodes {
            for input in &node.inputs {
                map.entry(*input).or_default().push(node.id);
            }
        }
        map
    }

    /// The ids of the nodes that consume `id`'s output.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.inputs.contains(&id)).map(|n| n.id).collect()
    }

    /// All [`OpKind::Input`] nodes.
    pub fn input_nodes(&self) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| matches!(n.op, OpKind::Input)).map(|n| n.id).collect()
    }

    /// All nodes whose output is not consumed by any other node.
    pub fn output_nodes(&self) -> Vec<NodeId> {
        let consumed: HashSet<NodeId> =
            self.nodes.iter().flat_map(|n| n.inputs.iter().copied()).collect();
        self.nodes.iter().filter(|n| !consumed.contains(&n.id)).map(|n| n.id).collect()
    }

    /// Topological order of the graph (inputs first).
    ///
    /// # Errors
    /// Returns [`GraphError::CyclicGraph`] if the graph contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let mut in_degree: Vec<usize> = self.nodes.iter().map(|n| n.inputs.len()).collect();
        let consumer_map = self.consumer_map();
        let mut queue: Vec<NodeId> =
            self.nodes.iter().filter(|n| n.inputs.is_empty()).map(|n| n.id).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut head = 0usize;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            if let Some(consumers) = consumer_map.get(&id) {
                // The consumer map lists a consumer once per edge, so a node
                // that reads the same producer twice (e.g. a fused node
                // consuming both the activation and the auxiliary statistics
                // of one producer) appears twice and each occurrence retires
                // one unit of in-degree.
                for &c in consumers {
                    in_degree[c.index()] -= 1;
                    if in_degree[c.index()] == 0 {
                        queue.push(c);
                    }
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(GraphError::CyclicGraph);
        }
        Ok(order)
    }

    /// Validates the structural integrity of the graph: every referenced
    /// node exists, the graph is acyclic and every non-input node's recorded
    /// output shape matches re-inference from its inputs (fused operators
    /// are exempt from re-inference only in that their shape was provided at
    /// construction, but they still must re-infer consistently).
    ///
    /// # Errors
    /// Returns the first structural error found.
    pub fn validate(&self) -> Result<()> {
        for node in &self.nodes {
            for input in &node.inputs {
                self.node(*input)?;
            }
        }
        self.topo_order()?;
        for node in &self.nodes {
            if matches!(node.op, OpKind::Input) {
                continue;
            }
            let shapes: Vec<Shape> = node
                .inputs
                .iter()
                .map(|i| self.node(*i).map(|n| n.output_shape.clone()))
                .collect::<Result<_>>()?;
            let refs: Vec<&Shape> = shapes.iter().collect();
            let inferred = infer_output_shape(&node.op, &refs).map_err(|e| match e {
                GraphError::ShapeInference { reason, .. } => {
                    GraphError::ShapeInference { node: node.name.clone(), reason }
                }
                other => other,
            })?;
            if inferred != node.output_shape {
                return Err(GraphError::ShapeInference {
                    node: node.name.clone(),
                    reason: format!(
                        "recorded output shape {} disagrees with inferred {}",
                        node.output_shape, inferred
                    ),
                });
            }
        }
        Ok(())
    }

    /// Returns a new graph that omits the nodes in `removed`, with node ids
    /// re-assigned densely and all edges remapped.
    ///
    /// # Errors
    /// Returns [`GraphError::PassError`] if a retained node still references
    /// a removed node.
    pub fn compacted(&self, removed: &HashSet<NodeId>) -> Result<Graph> {
        let mut mapping: HashMap<NodeId, NodeId> = HashMap::new();
        let mut new_graph = Graph::new(self.name.clone());
        for node in &self.nodes {
            if removed.contains(&node.id) {
                continue;
            }
            let new_id = NodeId::new(new_graph.nodes.len());
            mapping.insert(node.id, new_id);
            let mut new_node = node.clone();
            new_node.id = new_id;
            new_graph.nodes.push(new_node);
        }
        for node in new_graph.nodes.iter_mut() {
            for input in node.inputs.iter_mut() {
                *input = *mapping.get(input).ok_or_else(|| GraphError::PassError {
                    pass: "compact".to_string(),
                    reason: format!("node '{}' references removed node {}", node.name, input),
                })?;
            }
        }
        Ok(new_graph)
    }

    /// Counts nodes per operation name (e.g. `"Conv2d" -> 120`).
    pub fn op_histogram(&self) -> HashMap<&'static str, usize> {
        let mut hist = HashMap::new();
        for node in &self.nodes {
            *hist.entry(node.op.name()).or_insert(0) += 1;
        }
        hist
    }

    /// Total number of learnable parameters in the graph.
    ///
    /// Convolution weights are `Cout × Cin × Kh × Kw` (+ `Cout` bias when
    /// enabled), fully-connected weights are `in × out + out`, and every BN
    /// (or BN-derived) layer owns `2 × C` parameters (γ and β).
    pub fn parameter_count(&self) -> usize {
        let mut total = 0usize;
        for node in &self.nodes {
            total += self.node_parameter_count(node);
        }
        total
    }

    /// Number of learnable parameters owned by one node.
    pub fn node_parameter_count(&self, node: &Node) -> usize {
        let in_shape =
            node.inputs.first().and_then(|id| self.node(*id).ok()).map(|n| n.output_shape.clone());
        match &node.op {
            OpKind::Conv2d(a) | OpKind::ReluConv(a) | OpKind::ConvRelu(a) => {
                let in_c = in_shape.map(|s| s.c()).unwrap_or(0);
                a.weight_elems(in_c) + if a.bias { a.out_channels } else { 0 }
            }
            OpKind::ChannelAffine => {
                // Channels are dim 1 for NCHW activations and the feature
                // axis for a 2-D (batch × features) input.
                2 * node.output_shape.dim(1).unwrap_or(0)
            }
            OpKind::ConvStats { conv: a, .. } => {
                let in_c = in_shape.map(|s| s.c()).unwrap_or(0);
                a.weight_elems(in_c) + if a.bias { a.out_channels } else { 0 }
            }
            OpKind::NormReluConv { conv: a, .. } | OpKind::NormReluConvStats { conv: a, .. } => {
                // The fused op owns both the convolution weights and the γ/β
                // of the absorbed normalization (whose channel count equals
                // the fused op's input channel count).
                let in_c = in_shape.map(|s| s.c()).unwrap_or(0);
                a.weight_elems(in_c) + if a.bias { a.out_channels } else { 0 } + 2 * in_c
            }
            OpKind::NormRelu(_) => {
                let in_c = in_shape.map(|s| s.c()).unwrap_or(0);
                2 * in_c
            }
            OpKind::FullyConnected { out_features } => {
                let in_features =
                    in_shape.map(|s| s.volume() / s.dim(0).unwrap_or(1).max(1)).unwrap_or(0);
                in_features * out_features + out_features
            }
            OpKind::BatchNorm(_) | OpKind::SubBnNorm(_) => {
                let c = node.output_shape.c();
                2 * c
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BatchNormAttrs, Conv2dAttrs};

    fn chain_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new("chain");
        let input = g.add_input("in", Shape::nchw(4, 16, 8, 8));
        let conv1 =
            g.add_node("conv1", OpKind::Conv2d(Conv2dAttrs::pointwise(32)), vec![input]).unwrap();
        let bn =
            g.add_node("bn", OpKind::BatchNorm(BatchNormAttrs::default()), vec![conv1]).unwrap();
        let relu = g.add_node("relu", OpKind::Relu, vec![bn]).unwrap();
        let conv2 =
            g.add_node("conv2", OpKind::Conv2d(Conv2dAttrs::same_3x3(8)), vec![relu]).unwrap();
        (g, vec![input, conv1, bn, relu, conv2])
    }

    #[test]
    fn build_and_lookup() {
        let (g, ids) = chain_graph();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.node(ids[1]).unwrap().output_shape, Shape::nchw(4, 32, 8, 8));
        assert_eq!(g.node(ids[4]).unwrap().output_shape, Shape::nchw(4, 8, 8, 8));
        assert!(g.node(NodeId::new(99)).is_err());
    }

    #[test]
    fn consumers_and_io_nodes() {
        let (g, ids) = chain_graph();
        assert_eq!(g.consumers(ids[0]), vec![ids[1]]);
        assert_eq!(g.consumers(ids[4]), vec![]);
        assert_eq!(g.input_nodes(), vec![ids[0]]);
        assert_eq!(g.output_nodes(), vec![ids[4]]);
    }

    #[test]
    fn topo_order_is_consistent() {
        let (g, ids) = chain_graph();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 5);
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for node in g.nodes() {
            for input in &node.inputs {
                assert!(pos[input] < pos[&node.id]);
            }
        }
        assert_eq!(order[0], ids[0]);
    }

    #[test]
    fn cycle_detection() {
        let (mut g, ids) = chain_graph();
        // Introduce a cycle: conv1 also reads conv2.
        g.set_inputs(ids[1], vec![ids[0], ids[4]]).ok();
        // conv1 has fixed arity 1, so wire the cycle through set_inputs on
        // the bn node instead (BatchNorm arity is 1 too); emulate a raw
        // cycle by pointing relu at conv2.
        g.set_inputs(ids[3], vec![ids[4]]).unwrap();
        assert!(matches!(g.topo_order(), Err(GraphError::CyclicGraph)));
    }

    #[test]
    fn validate_detects_stale_shapes() {
        let (mut g, ids) = chain_graph();
        assert!(g.validate().is_ok());
        // Corrupt: change conv1's op to output fewer channels without
        // updating the recorded shape.
        g.set_op(ids[1], OpKind::Conv2d(Conv2dAttrs::pointwise(16))).unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn rewire_and_compact() {
        let (mut g, ids) = chain_graph();
        // Bypass the ReLU: conv2 reads bn directly, then drop relu.
        g.rewire_consumers(ids[3], ids[2]).unwrap();
        let mut removed = HashSet::new();
        removed.insert(ids[3]);
        let compacted = g.compacted(&removed).unwrap();
        assert_eq!(compacted.node_count(), 4);
        assert!(compacted.validate().is_ok());
        assert_eq!(compacted.op_histogram().get("ReLU"), None);
    }

    #[test]
    fn compact_rejects_dangling_references() {
        let (g, ids) = chain_graph();
        let mut removed = HashSet::new();
        removed.insert(ids[2]); // bn is still consumed by relu
        assert!(g.compacted(&removed).is_err());
    }

    #[test]
    fn histogram_counts() {
        let (g, _) = chain_graph();
        let hist = g.op_histogram();
        assert_eq!(hist["Conv2d"], 2);
        assert_eq!(hist["BatchNorm"], 1);
        assert_eq!(hist["ReLU"], 1);
        assert_eq!(hist["Input"], 1);
    }

    #[test]
    fn parameter_counts() {
        let (g, _) = chain_graph();
        // conv1: 32*16*1*1, bn: 2*32, conv2: 8*32*3*3
        let expected = 32 * 16 + 64 + 8 * 32 * 9;
        assert_eq!(g.parameter_count(), expected);
    }

    #[test]
    fn add_node_with_shape_checks_inputs() {
        let mut g = Graph::new("g");
        let input = g.add_input("in", Shape::nchw(1, 4, 4, 4));
        assert!(g
            .add_node_with_shape("x", OpKind::Relu, vec![NodeId::new(42)], Shape::nchw(1, 4, 4, 4))
            .is_err());
        assert!(g
            .add_node_with_shape("x", OpKind::Relu, vec![input], Shape::nchw(1, 4, 4, 4))
            .is_ok());
    }

    #[test]
    fn unknown_node_mutations_fail() {
        let (mut g, _) = chain_graph();
        assert!(g.set_op(NodeId::new(77), OpKind::Relu).is_err());
        assert!(g.set_inputs(NodeId::new(77), vec![]).is_err());
        assert!(g.set_node_name(NodeId::new(77), "x").is_err());
        assert!(g.rewire_consumers(NodeId::new(77), NodeId::new(0)).is_err());
    }
}
