//! Machine-independent cost analysis: FLOPs and whole-tensor memory sweeps.
//!
//! The paper's argument is made in terms of *memory sweeps*: whole-tensor
//! reads or writes of mini-batch feature maps that cannot be captured by
//! on-chip buffers (Section 3.1, Figure 5). This module computes, for every
//! node of a graph, the forward- and backward-pass FLOPs and the list of
//! memory sweeps it performs. The accounting follows Figure 5 of the paper:
//!
//! | op (forward)        | activation sweeps                                   |
//! |---------------------|-----------------------------------------------------|
//! | `Conv2d`            | read ifmap, write ofmap                             |
//! | `BatchNorm` 2-pass  | read ifmap ×3 (mean, var, normalize), write ofmap   |
//! | `BatchNorm` 1-pass  | read ifmap ×2 (fused mean+var, normalize), write    |
//! | `ReLU`              | read ifmap, write ofmap                             |
//! | `SubBnStats`        | read ifmap ×2 (×1 with MVF)                         |
//! | `SubBnNorm`         | read ifmap, write ofmap                             |
//! | `ReluConv` (RCF)    | read ifmap, write ofmap                             |
//! | `ConvStats` (BNFF)  | read ifmap, write ofmap (Σx/Σx² stay on chip)        |
//! | `NormReluConv`      | read ifmap, write normalized ifmap (for backward),  |
//! |                     | write ofmap                                         |
//! | `Concat`            | read every input, write output                      |
//! | `Split`             | nothing (pointer pass)                              |
//!
//! Backward sweeps follow the same style; convolutions need twice the
//! forward work (gradient w.r.t. inputs *and* weights), BN needs five sweeps
//! (two passes over ∂ofmap and the saved input for ∂γ/∂β, then ∂ifmap), and
//! Split must physically sum the gradients of its consumers.

use crate::graph::Graph;
use crate::node::{Node, NodeId};
use crate::op::{Conv2dAttrs, LayerCategory, OpKind, PoolKind};
use crate::Result;
use bnff_tensor::Shape;
use serde::Serialize;
use std::collections::HashMap;

/// Direction of a memory sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SweepDirection {
    /// The tensor is read.
    Read,
    /// The tensor is written.
    Write,
}

/// What kind of tensor a sweep touches. The cache model treats these
/// differently: weights are small and stay resident, mini-batch activations
/// and their gradients do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum TensorClass {
    /// A mini-batch activation (feature map).
    Activation,
    /// Layer weights (filters, FC matrices, γ/β).
    Weight,
    /// A gradient with the size of an activation.
    Gradient,
    /// A gradient with the size of the layer's weights.
    WeightGradient,
    /// Tiny per-channel statistics (Σx, Σx², μ, σ²).
    Statistics,
}

/// One whole-tensor memory sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Sweep {
    /// Number of bytes traversed.
    pub bytes: usize,
    /// Read or write.
    pub direction: SweepDirection,
    /// The tensor class being swept.
    pub class: TensorClass,
    /// Short description (e.g. `"ifmap"`, `"d_ofmap"`).
    pub label: &'static str,
}

impl Sweep {
    fn new(
        bytes: usize,
        direction: SweepDirection,
        class: TensorClass,
        label: &'static str,
    ) -> Self {
        Sweep { bytes, direction, class, label }
    }

    fn read_act(bytes: usize, label: &'static str) -> Self {
        Self::new(bytes, SweepDirection::Read, TensorClass::Activation, label)
    }

    fn write_act(bytes: usize, label: &'static str) -> Self {
        Self::new(bytes, SweepDirection::Write, TensorClass::Activation, label)
    }

    fn read_grad(bytes: usize, label: &'static str) -> Self {
        Self::new(bytes, SweepDirection::Read, TensorClass::Gradient, label)
    }

    fn write_grad(bytes: usize, label: &'static str) -> Self {
        Self::new(bytes, SweepDirection::Write, TensorClass::Gradient, label)
    }

    fn read_weight(bytes: usize, label: &'static str) -> Self {
        Self::new(bytes, SweepDirection::Read, TensorClass::Weight, label)
    }

    fn write_wgrad(bytes: usize, label: &'static str) -> Self {
        Self::new(bytes, SweepDirection::Write, TensorClass::WeightGradient, label)
    }
}

/// FLOPs and memory sweeps of one node, for forward and backward.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NodeCost {
    /// Floating point operations in the forward pass.
    pub flops_fwd: f64,
    /// Floating point operations in the backward pass.
    pub flops_bwd: f64,
    /// Memory sweeps performed in the forward pass.
    pub sweeps_fwd: Vec<Sweep>,
    /// Memory sweeps performed in the backward pass.
    pub sweeps_bwd: Vec<Sweep>,
}

impl NodeCost {
    /// Total bytes swept in the forward pass.
    pub fn bytes_fwd(&self) -> usize {
        self.sweeps_fwd.iter().map(|s| s.bytes).sum()
    }

    /// Total bytes swept in the backward pass.
    pub fn bytes_bwd(&self) -> usize {
        self.sweeps_bwd.iter().map(|s| s.bytes).sum()
    }

    /// Total bytes swept per training iteration (forward + backward).
    pub fn bytes_total(&self) -> usize {
        self.bytes_fwd() + self.bytes_bwd()
    }

    /// Bytes swept in the forward pass restricted to activation-sized
    /// tensors (the traffic BNFF targets).
    pub fn activation_bytes_fwd(&self) -> usize {
        self.sweeps_fwd
            .iter()
            .filter(|s| matches!(s.class, TensorClass::Activation | TensorClass::Gradient))
            .map(|s| s.bytes)
            .sum()
    }
}

/// The shape of one GEMM a node's im2col / inner-product lowering executes
/// (`C: m×n`, `A: m×k`, `B: k×n`), and how many times it runs per pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct GemmShape {
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
    /// Executions per pass (once per mini-batch sample for convolutions).
    pub count: usize,
}

impl GemmShape {
    /// FLOPs of all `count` executions.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64 * self.count as f64
    }
}

/// The GEMMs a node's forward and backward passes lower to. Empty for
/// nodes that never reach the GEMM engine (BN, pooling, ReLU, …).
#[derive(Debug, Clone, Default, Serialize)]
pub struct NodeGemms {
    /// Forward-pass GEMMs.
    pub fwd: Vec<GemmShape>,
    /// Backward-pass GEMMs (`∂ifmap` and `∂weights` lowerings).
    pub bwd: Vec<GemmShape>,
}

/// The GEMMs `node` lowers to: convolutions run one
/// `Cout × (Ho·Wo) × (Cin·Kh·Kw)` multiply per sample (plus the two adjoint
/// multiplies backward), fully-connected layers one batch-sized multiply
/// per pass. The cache model uses these shapes to charge the blocked
/// kernel's actual tile-level DRAM behaviour instead of guessing from
/// whole-tensor sweeps.
///
/// # Errors
/// Returns an error if the node's inputs cannot be resolved in `graph`.
pub fn node_gemms(graph: &Graph, node: &Node) -> Result<NodeGemms> {
    let input_shape = match node.inputs.first() {
        Some(id) => graph.node(*id)?.output_shape.clone(),
        None => return Ok(NodeGemms::default()),
    };
    let out = &node.output_shape;
    Ok(match &node.op {
        OpKind::Conv2d(a)
        | OpKind::ReluConv(a)
        | OpKind::ConvRelu(a)
        | OpKind::ConvStats { conv: a, .. }
        | OpKind::NormReluConv { conv: a, .. }
        | OpKind::NormReluConvStats { conv: a, .. } => {
            if !input_shape.is_nchw() || !out.is_nchw() {
                return Ok(NodeGemms::default());
            }
            let batch = input_shape.n();
            let rows = input_shape.c() * a.kernel_h * a.kernel_w;
            let cols = out.h() * out.w();
            NodeGemms {
                // out_sample = W (Cout × rows) · col (rows × cols)
                fwd: vec![GemmShape { m: a.out_channels, n: cols, k: rows, count: batch }],
                bwd: vec![
                    // d_col = Wᵀ (rows × Cout) · d_out_sample (Cout × cols)
                    GemmShape { m: rows, n: cols, k: a.out_channels, count: batch },
                    // d_W += d_out_sample (Cout × cols) · colᵀ (cols × rows)
                    GemmShape { m: a.out_channels, n: rows, k: cols, count: batch },
                ],
            }
        }
        OpKind::FullyConnected { out_features } => {
            let batch = input_shape.dim(0).unwrap_or(1);
            let in_features = input_shape.volume() / batch.max(1);
            NodeGemms {
                // y = x (N × in) · Wᵀ (in × out)
                fwd: vec![GemmShape { m: batch, n: *out_features, k: in_features, count: 1 }],
                bwd: vec![
                    // d_x = d_y (N × out) · W (out × in)
                    GemmShape { m: batch, n: in_features, k: *out_features, count: 1 },
                    // d_W = d_yᵀ (out × N) · x (N × in)
                    GemmShape { m: *out_features, n: in_features, k: batch, count: 1 },
                ],
            }
        }
        _ => NodeGemms::default(),
    })
}

/// Weight bytes owned by a convolution given its input channel count.
fn conv_weight_bytes(attrs: &Conv2dAttrs, in_channels: usize) -> usize {
    attrs.weight_elems(in_channels) * 4
}

fn conv_flops(attrs: &Conv2dAttrs, in_channels: usize, out_shape: &Shape) -> f64 {
    2.0 * out_shape.volume() as f64 * (in_channels * attrs.kernel_h * attrs.kernel_w) as f64
}

/// Computes the cost of a single node.
///
/// # Errors
/// Returns an error if the node's inputs cannot be resolved in `graph`.
pub fn node_cost(graph: &Graph, node: &Node) -> Result<NodeCost> {
    let input_shapes: Vec<Shape> = node
        .inputs
        .iter()
        .map(|id| graph.node(*id).map(|n| n.output_shape.clone()))
        .collect::<Result<_>>()?;
    let out = &node.output_shape;
    let out_bytes = out.bytes_f32();
    let in_bytes = input_shapes.first().map(|s| s.bytes_f32()).unwrap_or(0);
    let in_elems = input_shapes.first().map(|s| s.volume()).unwrap_or(0) as f64;
    let out_elems = out.volume() as f64;
    let in_channels =
        input_shapes.first().map(|s| if s.is_nchw() { s.c() } else { 0 }).unwrap_or(0);
    let consumers = graph.consumers(node.id).len().max(1);

    let cost = match &node.op {
        OpKind::Input => {
            NodeCost { flops_fwd: 0.0, flops_bwd: 0.0, sweeps_fwd: vec![], sweeps_bwd: vec![] }
        }
        OpKind::Conv2d(a) | OpKind::ReluConv(a) | OpKind::ConvRelu(a) => {
            let wbytes = conv_weight_bytes(a, in_channels);
            let flops = conv_flops(a, in_channels, out);
            NodeCost {
                flops_fwd: flops,
                flops_bwd: 2.0 * flops,
                sweeps_fwd: vec![
                    Sweep::read_act(in_bytes, "ifmap"),
                    Sweep::read_weight(wbytes, "weights"),
                    Sweep::write_act(out_bytes, "ofmap"),
                ],
                sweeps_bwd: vec![
                    Sweep::read_grad(out_bytes, "d_ofmap (d_ifmap pass)"),
                    Sweep::read_weight(wbytes, "weights"),
                    Sweep::write_grad(in_bytes, "d_ifmap"),
                    Sweep::read_grad(out_bytes, "d_ofmap (d_weight pass)"),
                    Sweep::read_act(in_bytes, "saved ifmap"),
                    Sweep::write_wgrad(wbytes, "d_weights"),
                ],
            }
        }
        OpKind::ConvStats { conv: a, .. } => {
            let wbytes = conv_weight_bytes(a, in_channels);
            let flops = conv_flops(a, in_channels, out);
            NodeCost {
                // Accumulating x and x² adds ~3 flops per output element.
                flops_fwd: flops + 3.0 * out_elems,
                flops_bwd: 2.0 * flops,
                sweeps_fwd: vec![
                    Sweep::read_act(in_bytes, "ifmap"),
                    Sweep::read_weight(wbytes, "weights"),
                    Sweep::write_act(out_bytes, "ofmap (+Σx/Σx² on chip)"),
                ],
                sweeps_bwd: vec![
                    Sweep::read_grad(out_bytes, "d_ofmap (d_ifmap pass, +sub-BN1')"),
                    Sweep::read_weight(wbytes, "weights"),
                    Sweep::write_grad(in_bytes, "d_ifmap"),
                    Sweep::read_grad(out_bytes, "d_ofmap (d_weight pass)"),
                    Sweep::read_act(in_bytes, "saved ifmap"),
                    Sweep::write_wgrad(wbytes, "d_weights"),
                ],
            }
        }
        OpKind::NormReluConv { conv: a, .. } | OpKind::NormReluConvStats { conv: a, .. } => {
            let wbytes = conv_weight_bytes(a, in_channels);
            let flops = conv_flops(a, in_channels, out);
            let stats_flops = if matches!(node.op, OpKind::NormReluConvStats { .. }) {
                3.0 * out_elems
            } else {
                0.0
            };
            NodeCost {
                // Normalization (~4 flops/elem) and clipping (1) happen while
                // streaming the ifmap into the convolution.
                flops_fwd: flops + 5.0 * in_elems + stats_flops,
                flops_bwd: 2.0 * flops + 8.0 * in_elems,
                sweeps_fwd: vec![
                    Sweep::read_act(in_bytes, "raw ifmap (I2')"),
                    Sweep::read_weight(wbytes, "weights"),
                    Sweep::write_act(in_bytes, "normalized ifmap (O2', kept for backward)"),
                    Sweep::write_act(out_bytes, "ofmap"),
                ],
                sweeps_bwd: vec![
                    Sweep::read_grad(out_bytes, "d_ofmap (d_ifmap pass)"),
                    Sweep::read_weight(wbytes, "weights"),
                    // The ∂γ/∂β reduction of the absorbed sub-BN2 needs the
                    // saved normalized activation alongside the gradient.
                    Sweep::read_act(in_bytes, "saved normalized ifmap (∂γ/∂β)"),
                    // The per-channel reductions must complete before the
                    // final d_ifmap can be formed, so the gradient w.r.t. the
                    // normalized activations is materialized once and
                    // re-read (the strict dependency of Figure 5(b)).
                    Sweep::write_grad(in_bytes, "d_x̂ (reduction pass)"),
                    Sweep::read_grad(in_bytes, "d_x̂ (apply pass)"),
                    Sweep::write_grad(in_bytes, "d_ifmap"),
                    Sweep::read_grad(out_bytes, "d_ofmap (d_weight pass)"),
                    Sweep::read_act(in_bytes, "saved normalized ifmap"),
                    Sweep::write_wgrad(wbytes, "d_weights"),
                ],
            }
        }
        OpKind::FullyConnected { out_features } => {
            let in_features = input_shapes
                .first()
                .map(|s| s.volume() / s.dim(0).unwrap_or(1).max(1))
                .unwrap_or(0);
            let n = input_shapes.first().map(|s| s.dim(0).unwrap_or(1)).unwrap_or(1);
            let wbytes = (in_features * out_features + out_features) * 4;
            let flops = 2.0 * n as f64 * in_features as f64 * *out_features as f64;
            NodeCost {
                flops_fwd: flops,
                flops_bwd: 2.0 * flops,
                sweeps_fwd: vec![
                    Sweep::read_act(in_bytes, "ifmap"),
                    Sweep::read_weight(wbytes, "weights"),
                    Sweep::write_act(out_bytes, "ofmap"),
                ],
                sweeps_bwd: vec![
                    Sweep::read_grad(out_bytes, "d_ofmap (d_ifmap pass)"),
                    Sweep::read_weight(wbytes, "weights"),
                    Sweep::write_grad(in_bytes, "d_ifmap"),
                    Sweep::read_grad(out_bytes, "d_ofmap (d_weight pass)"),
                    Sweep::read_act(in_bytes, "saved ifmap"),
                    Sweep::write_wgrad(wbytes, "d_weights"),
                ],
            }
        }
        OpKind::BatchNorm(attrs) => {
            let stat_reads = if attrs.one_pass_stats { 2 } else { 3 };
            let mut sweeps_fwd = Vec::new();
            for i in 0..stat_reads {
                let label = match (attrs.one_pass_stats, i) {
                    (true, 0) => "ifmap (fused mean+var)",
                    (true, _) => "ifmap (normalize)",
                    (false, 0) => "ifmap (mean)",
                    (false, 1) => "ifmap (variance)",
                    (false, _) => "ifmap (normalize)",
                };
                sweeps_fwd.push(Sweep::read_act(in_bytes, label));
            }
            sweeps_fwd.push(Sweep::write_act(out_bytes, "ofmap"));
            NodeCost {
                flops_fwd: 7.0 * in_elems,
                flops_bwd: 11.0 * in_elems,
                sweeps_fwd,
                sweeps_bwd: vec![
                    Sweep::read_grad(out_bytes, "d_ofmap (∂γ/∂β)"),
                    Sweep::read_act(in_bytes, "saved ifmap (∂γ/∂β)"),
                    Sweep::read_grad(out_bytes, "d_ofmap (d_ifmap)"),
                    Sweep::read_act(in_bytes, "saved ifmap (d_ifmap)"),
                    Sweep::write_grad(in_bytes, "d_ifmap"),
                ],
            }
        }
        OpKind::SubBnStats(attrs) => {
            let reads = if attrs.one_pass_stats { 1 } else { 2 };
            let mut sweeps_fwd = Vec::new();
            for i in 0..reads {
                let label = if attrs.one_pass_stats {
                    "ifmap (fused mean+var)"
                } else if i == 0 {
                    "ifmap (mean)"
                } else {
                    "ifmap (variance)"
                };
                sweeps_fwd.push(Sweep::read_act(in_bytes, label));
            }
            sweeps_fwd.push(Sweep::new(
                out.bytes_f32(),
                SweepDirection::Write,
                TensorClass::Statistics,
                "μ/σ²",
            ));
            NodeCost {
                flops_fwd: 3.0 * in_elems,
                // The backward counterpart of the statistics sub-layer is the
                // ∂γ/∂β reduction (sub-BN2' in the paper's figure 5(b)).
                flops_bwd: 4.0 * in_elems,
                sweeps_fwd,
                sweeps_bwd: vec![
                    Sweep::read_grad(in_bytes, "d_ofmap (∂γ/∂β)"),
                    Sweep::read_act(in_bytes, "saved ifmap (∂γ/∂β)"),
                ],
            }
        }
        OpKind::SubBnNorm(_) | OpKind::NormRelu(_) => NodeCost {
            flops_fwd: 5.0 * in_elems,
            flops_bwd: 7.0 * in_elems,
            sweeps_fwd: vec![
                Sweep::read_act(in_bytes, "ifmap (normalize)"),
                Sweep::write_act(out_bytes, "ofmap"),
            ],
            sweeps_bwd: vec![
                Sweep::read_grad(out_bytes, "d_ofmap"),
                Sweep::read_act(in_bytes, "saved ifmap"),
                Sweep::write_grad(in_bytes, "d_ifmap"),
            ],
        },
        OpKind::ChannelAffine => NodeCost {
            // Inference-only per-channel scale+shift: one read, one write,
            // no backward (frozen graphs never train).
            flops_fwd: 2.0 * out_elems,
            flops_bwd: 0.0,
            sweeps_fwd: vec![
                Sweep::read_act(in_bytes, "ifmap"),
                Sweep::write_act(out_bytes, "affine out"),
            ],
            sweeps_bwd: vec![],
        },
        OpKind::Relu => NodeCost {
            flops_fwd: in_elems,
            flops_bwd: in_elems,
            sweeps_fwd: vec![
                Sweep::read_act(in_bytes, "ifmap"),
                Sweep::write_act(out_bytes, "ofmap"),
            ],
            sweeps_bwd: vec![
                Sweep::read_grad(out_bytes, "d_ofmap"),
                Sweep::read_act(out_bytes, "saved ofmap (mask)"),
                Sweep::write_grad(in_bytes, "d_ifmap"),
            ],
        },
        OpKind::Pool { kind, attrs } => {
            let window = (attrs.kernel * attrs.kernel) as f64;
            let bwd_sweeps = match kind {
                PoolKind::Max => vec![
                    Sweep::read_grad(out_bytes, "d_ofmap"),
                    Sweep::read_act(in_bytes, "saved ifmap (argmax)"),
                    Sweep::write_grad(in_bytes, "d_ifmap"),
                ],
                PoolKind::Average => vec![
                    Sweep::read_grad(out_bytes, "d_ofmap"),
                    Sweep::write_grad(in_bytes, "d_ifmap"),
                ],
            };
            NodeCost {
                flops_fwd: out_elems * window,
                flops_bwd: in_elems,
                sweeps_fwd: vec![
                    Sweep::read_act(in_bytes, "ifmap"),
                    Sweep::write_act(out_bytes, "ofmap"),
                ],
                sweeps_bwd: bwd_sweeps,
            }
        }
        OpKind::GlobalAvgPool => NodeCost {
            flops_fwd: in_elems,
            flops_bwd: in_elems,
            sweeps_fwd: vec![
                Sweep::read_act(in_bytes, "ifmap"),
                Sweep::write_act(out_bytes, "ofmap"),
            ],
            sweeps_bwd: vec![
                Sweep::read_grad(out_bytes, "d_ofmap"),
                Sweep::write_grad(in_bytes, "d_ifmap"),
            ],
        },
        OpKind::Concat | OpKind::ConcatStats(_) => {
            let mut sweeps_fwd: Vec<Sweep> =
                input_shapes.iter().map(|s| Sweep::read_act(s.bytes_f32(), "ifmap")).collect();
            sweeps_fwd.push(Sweep::write_act(out_bytes, "ofmap"));
            let flops_fwd =
                if matches!(node.op, OpKind::ConcatStats(_)) { 3.0 * out_elems } else { 0.0 };
            let mut sweeps_bwd = vec![Sweep::read_grad(out_bytes, "d_ofmap")];
            for s in &input_shapes {
                sweeps_bwd.push(Sweep::write_grad(s.bytes_f32(), "d_ifmap slice"));
            }
            NodeCost { flops_fwd, flops_bwd: 0.0, sweeps_fwd, sweeps_bwd }
        }
        OpKind::Split { consumers: declared } => {
            let fanout = (*declared).max(consumers);
            // Forward Split is a pointer pass in the reference implementation.
            let mut sweeps_bwd = Vec::new();
            for _ in 0..fanout {
                sweeps_bwd.push(Sweep::read_grad(out_bytes, "consumer d_ofmap"));
            }
            sweeps_bwd.push(Sweep::write_grad(in_bytes, "summed d_ifmap"));
            NodeCost {
                flops_fwd: 0.0,
                flops_bwd: out_elems * fanout as f64,
                sweeps_fwd: vec![],
                sweeps_bwd,
            }
        }
        OpKind::EltwiseSum => {
            let mut sweeps_fwd: Vec<Sweep> =
                input_shapes.iter().map(|s| Sweep::read_act(s.bytes_f32(), "ifmap")).collect();
            sweeps_fwd.push(Sweep::write_act(out_bytes, "ofmap"));
            let mut sweeps_bwd = vec![Sweep::read_grad(out_bytes, "d_ofmap")];
            for s in &input_shapes {
                sweeps_bwd.push(Sweep::write_grad(s.bytes_f32(), "d_ifmap"));
            }
            NodeCost {
                flops_fwd: out_elems * (input_shapes.len().saturating_sub(1)) as f64,
                flops_bwd: 0.0,
                sweeps_fwd,
                sweeps_bwd,
            }
        }
        OpKind::SoftmaxLoss => NodeCost {
            flops_fwd: 5.0 * in_elems,
            flops_bwd: 2.0 * in_elems,
            sweeps_fwd: vec![Sweep::read_act(in_bytes, "scores")],
            sweeps_bwd: vec![
                Sweep::read_act(in_bytes, "saved scores"),
                Sweep::write_grad(in_bytes, "d_scores"),
            ],
        },
    };
    Ok(cost)
}

/// Aggregate costs of an entire graph, by node and by layer category.
#[derive(Debug, Clone, Serialize)]
pub struct GraphCost {
    /// Per-node costs, keyed by node id index.
    pub per_node: HashMap<usize, NodeCost>,
    /// Total forward FLOPs.
    pub flops_fwd: f64,
    /// Total backward FLOPs.
    pub flops_bwd: f64,
    /// Total bytes swept forward.
    pub bytes_fwd: usize,
    /// Total bytes swept backward.
    pub bytes_bwd: usize,
}

impl GraphCost {
    /// Total FLOPs per training iteration.
    pub fn flops_total(&self) -> f64 {
        self.flops_fwd + self.flops_bwd
    }

    /// Total bytes swept per training iteration.
    pub fn bytes_total(&self) -> usize {
        self.bytes_fwd + self.bytes_bwd
    }

    /// Cost of a single node.
    pub fn node(&self, id: NodeId) -> Option<&NodeCost> {
        self.per_node.get(&id.index())
    }
}

/// Computes the cost of every node in the graph.
///
/// # Errors
/// Returns an error if the graph is structurally inconsistent.
pub fn graph_cost(graph: &Graph) -> Result<GraphCost> {
    let mut per_node = HashMap::new();
    let mut flops_fwd = 0.0;
    let mut flops_bwd = 0.0;
    let mut bytes_fwd = 0usize;
    let mut bytes_bwd = 0usize;
    for node in graph.nodes() {
        let cost = node_cost(graph, node)?;
        flops_fwd += cost.flops_fwd;
        flops_bwd += cost.flops_bwd;
        bytes_fwd += cost.bytes_fwd();
        bytes_bwd += cost.bytes_bwd();
        per_node.insert(node.id.index(), cost);
    }
    Ok(GraphCost { per_node, flops_fwd, flops_bwd, bytes_fwd, bytes_bwd })
}

/// Aggregates bytes swept per layer category (used for the CONV/FC vs
/// non-CONV breakdowns of Figures 1 and 6).
///
/// # Errors
/// Returns an error if the graph is structurally inconsistent.
pub fn bytes_by_category(graph: &Graph) -> Result<HashMap<LayerCategory, usize>> {
    let mut map = HashMap::new();
    for node in graph.nodes() {
        let cost = node_cost(graph, node)?;
        *map.entry(node.op.category()).or_insert(0) += cost.bytes_total();
    }
    Ok(map)
}

/// Counts whole-activation memory sweeps (reads + writes of mini-batch
/// feature maps and gradients) for the entire graph, forward + backward.
///
/// # Errors
/// Returns an error if the graph is structurally inconsistent.
pub fn activation_sweep_count(graph: &Graph) -> Result<usize> {
    let mut count = 0usize;
    for node in graph.nodes() {
        let cost = node_cost(graph, node)?;
        count += cost
            .sweeps_fwd
            .iter()
            .chain(cost.sweeps_bwd.iter())
            .filter(|s| matches!(s.class, TensorClass::Activation | TensorClass::Gradient))
            .count();
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::BatchNormAttrs;

    fn fragment() -> Graph {
        let mut b = GraphBuilder::new("frag");
        let x = b.input("in", Shape::nchw(8, 64, 16, 16)).unwrap();
        let c1 = b.conv2d(x, Conv2dAttrs::pointwise(128), "conv1").unwrap();
        let bn = b.batch_norm_default(c1, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        let _c2 = b.conv2d(r, Conv2dAttrs::same_3x3(32), "conv2").unwrap();
        b.finish()
    }

    fn find(graph: &Graph, name: &str) -> Node {
        graph.nodes().find(|n| n.name == name).unwrap().clone()
    }

    #[test]
    fn conv_flops_match_formula() {
        let g = fragment();
        let conv1 = find(&g, "conv1");
        let cost = node_cost(&g, &conv1).unwrap();
        // 2 * N*Cout*H*W * Cin*Kh*Kw
        let expected = 2.0 * (8 * 128 * 16 * 16) as f64 * 64.0;
        assert!((cost.flops_fwd - expected).abs() < 1.0);
        assert!((cost.flops_bwd - 2.0 * expected).abs() < 1.0);
    }

    #[test]
    fn batchnorm_two_pass_has_three_reads() {
        let g = fragment();
        let bn = find(&g, "bn");
        let cost = node_cost(&g, &bn).unwrap();
        let reads = cost.sweeps_fwd.iter().filter(|s| s.direction == SweepDirection::Read).count();
        assert_eq!(reads, 3);
        assert_eq!(cost.sweeps_fwd.len(), 4);
        assert_eq!(cost.sweeps_bwd.len(), 5);
    }

    #[test]
    fn batchnorm_one_pass_saves_a_read() {
        let mut g = fragment();
        let bn = find(&g, "bn");
        g.set_op(bn.id, OpKind::BatchNorm(BatchNormAttrs::one_pass())).unwrap();
        let bn = find(&g, "bn");
        let cost = node_cost(&g, &bn).unwrap();
        let reads = cost.sweeps_fwd.iter().filter(|s| s.direction == SweepDirection::Read).count();
        assert_eq!(reads, 2);
    }

    #[test]
    fn conv_backward_doubles_memory() {
        let g = fragment();
        let conv2 = find(&g, "conv2");
        let cost = node_cost(&g, &conv2).unwrap();
        let fwd_act: usize = cost
            .sweeps_fwd
            .iter()
            .filter(|s| s.class == TensorClass::Activation)
            .map(|s| s.bytes)
            .sum();
        let bwd_act: usize = cost
            .sweeps_bwd
            .iter()
            .filter(|s| matches!(s.class, TensorClass::Activation | TensorClass::Gradient))
            .map(|s| s.bytes)
            .sum();
        assert!(bwd_act > fwd_act, "backward conv must sweep more than forward");
    }

    #[test]
    fn split_forward_is_free() {
        let mut b = GraphBuilder::new("split");
        let x = b.input("in", Shape::nchw(2, 8, 4, 4)).unwrap();
        let s = b.split(x, 3, "split").unwrap();
        let _r1 = b.relu(s, "r1").unwrap();
        let _r2 = b.relu(s, "r2").unwrap();
        let g = b.finish();
        let split = find(&g, "split");
        let cost = node_cost(&g, &split).unwrap();
        assert!(cost.sweeps_fwd.is_empty());
        // Backward must read a gradient per declared consumer (3) plus one write.
        assert_eq!(cost.sweeps_bwd.len(), 4);
    }

    #[test]
    fn conv_and_fc_nodes_report_their_gemm_lowerings() {
        let g = fragment();
        let conv1 = find(&g, "conv1");
        let gemms = node_gemms(&g, &conv1).unwrap();
        // 1×1 conv over (8, 64, 16, 16) -> 128 channels: one
        // 128 × 256 × 64 multiply per sample.
        assert_eq!(gemms.fwd, vec![GemmShape { m: 128, n: 256, k: 64, count: 8 }]);
        assert_eq!(gemms.bwd.len(), 2);
        // The forward lowering's FLOPs match the conv FLOP formula.
        let cost = node_cost(&g, &conv1).unwrap();
        assert!((gemms.fwd[0].flops() - cost.flops_fwd).abs() < 1.0);
        // Non-GEMM nodes lower to nothing.
        let bn = find(&g, "bn");
        assert!(node_gemms(&g, &bn).unwrap().fwd.is_empty());
        let input = find(&g, "in");
        assert!(node_gemms(&g, &input).unwrap().fwd.is_empty());
    }

    #[test]
    fn graph_cost_aggregates() {
        let g = fragment();
        let cost = graph_cost(&g).unwrap();
        assert_eq!(cost.per_node.len(), g.node_count());
        assert!(cost.flops_fwd > 0.0);
        assert!(cost.bytes_fwd > 0);
        assert!(cost.bytes_bwd > cost.bytes_fwd);
        assert!(cost.flops_total() > cost.flops_fwd);
        assert!(cost.bytes_total() > cost.bytes_bwd);
    }

    #[test]
    fn categories_split_conv_and_nonconv() {
        let g = fragment();
        let by_cat = bytes_by_category(&g).unwrap();
        assert!(by_cat[&LayerCategory::ConvFc] > 0);
        assert!(by_cat[&LayerCategory::NonConv] > 0);
    }

    #[test]
    fn sweep_counts_drop_after_manual_fusion() {
        // Manually emulate what BNFF does to check the accounting: a
        // ConvStats + NormReluConv pair must sweep fewer activation bytes
        // than CONV + BN + ReLU + CONV.
        let baseline = fragment();
        let baseline_sweeps = activation_sweep_count(&baseline).unwrap();

        let mut b = GraphBuilder::new("fused");
        let x = b.input("in", Shape::nchw(8, 64, 16, 16)).unwrap();
        let g = {
            let mut g = b.graph().clone();
            let cs = g
                .add_node(
                    "conv1+stats",
                    OpKind::ConvStats {
                        conv: Conv2dAttrs::pointwise(128),
                        bn: BatchNormAttrs::one_pass(),
                    },
                    vec![x],
                )
                .unwrap();
            let _nrc = g
                .add_node(
                    "norm+relu+conv2",
                    OpKind::NormReluConv {
                        conv: Conv2dAttrs::same_3x3(32),
                        bn: BatchNormAttrs::one_pass(),
                    },
                    vec![cs, cs],
                )
                .unwrap();
            g
        };
        let fused_sweeps = activation_sweep_count(&g).unwrap();
        assert!(
            fused_sweeps < baseline_sweeps,
            "fused {fused_sweeps} must be below baseline {baseline_sweeps}"
        );
    }

    #[test]
    fn input_nodes_cost_nothing() {
        let g = fragment();
        let input = find(&g, "in");
        let cost = node_cost(&g, &input).unwrap();
        assert_eq!(cost.bytes_total(), 0);
        assert_eq!(cost.flops_fwd, 0.0);
    }
}
