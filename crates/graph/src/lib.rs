//! # bnff-graph — layer-level computational graph IR and BN restructuring
//!
//! The paper's contribution — **BN Fission-n-Fusion (BNFF)** — is a
//! *restructuring of the training computational graph*: a Batch
//! Normalization layer is split into a statistics sub-layer and a
//! normalization sub-layer, and the two halves are fused into the
//! surrounding convolution / ReLU layers so that no dedicated memory sweep
//! over the mini-batch feature maps remains.
//!
//! This crate provides:
//!
//! * an [`OpKind`] vocabulary covering every layer type in
//!   DenseNet / ResNet training plus the fused operators BNFF introduces,
//! * a [`Graph`] of layer nodes with shape inference,
//!   topological ordering and validation,
//! * a [`GraphBuilder`] used by the model zoo,
//! * the restructuring passes of the paper — Fission, RCF, MVF, BNFF and ICF
//!   — in [`passes`],
//! * a machine-independent cost analysis ([`analysis`]) that reports FLOPs
//!   and whole-tensor memory sweeps per node, for both the forward and the
//!   backward pass.
//!
//! ## Example
//!
//! ```rust
//! use bnff_graph::builder::GraphBuilder;
//! use bnff_graph::op::{BatchNormAttrs, Conv2dAttrs};
//! use bnff_graph::passes::{self, Pass};
//! use bnff_tensor::Shape;
//!
//! # fn main() -> Result<(), bnff_graph::GraphError> {
//! // A DenseNet-style composite-layer fragment: CONV -> BN -> ReLU -> CONV.
//! let mut b = GraphBuilder::new("fragment");
//! let input = b.input("in", Shape::nchw(8, 64, 16, 16))?;
//! let c1 = b.conv2d(input, Conv2dAttrs::pointwise(128), "conv1")?;
//! let bn = b.batch_norm(c1, BatchNormAttrs::default(), "bn")?;
//! let relu = b.relu(bn, "relu")?;
//! let _c2 = b.conv2d(relu, Conv2dAttrs::same_3x3(32), "conv2")?;
//! let graph = b.finish();
//!
//! // Apply the full BN Fission-n-Fusion restructuring.
//! let restructured = passes::BnffPass::new().run(&graph)?;
//! assert!(restructured.node_count() < graph.node_count());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod error;
pub mod graph;
pub mod linear;
pub mod node;
pub mod op;
pub mod passes;
pub mod plan;
pub mod shape_infer;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::Graph;
pub use linear::{Instr, Kernel, LinearProgram, Reg, REG_ALIGN};
pub use node::{Node, NodeId};
pub use op::OpKind;
pub use plan::{ExecutionPlan, MemoryPlanSummary};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
