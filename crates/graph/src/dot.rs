//! Graphviz DOT export for computational graphs.
//!
//! Useful for inspecting what the restructuring passes did to a model, e.g.
//! by piping the output of [`to_dot`] into `dot -Tsvg`.

use crate::graph::Graph;
use crate::op::LayerCategory;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax.
///
/// Convolution-bearing nodes are drawn as boxes, BN-related nodes as
/// ellipses with a highlight colour, and everything else as plain ellipses,
/// so the effect of the fusion passes is visually obvious.
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\", fontsize=10];");
    for node in graph.nodes() {
        let (shape, color) = match node.op.category() {
            LayerCategory::ConvFc => ("box", "lightblue"),
            LayerCategory::FusedConv => ("box", "palegreen"),
            LayerCategory::NonConv => {
                if node.op.is_bn_related() {
                    ("ellipse", "lightsalmon")
                } else {
                    ("ellipse", "white")
                }
            }
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{}\\n{}\", shape={}, style=filled, fillcolor={}];",
            node.id.index(),
            escape(&node.name),
            node.op,
            node.output_shape,
            shape,
            color
        );
    }
    for node in graph.nodes() {
        for input in &node.inputs {
            let _ = writeln!(out, "  {} -> {};", input.index(), node.id.index());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::Conv2dAttrs;
    use crate::passes::{BnffPass, Pass};
    use bnff_tensor::Shape;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new("dot-sample");
        let x = b.input("in", Shape::nchw(2, 8, 8, 8)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::pointwise(16), "conv").unwrap();
        let bn = b.batch_norm_default(c, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        b.conv2d(r, Conv2dAttrs::same_3x3(8), "conv2").unwrap();
        b.finish()
    }

    #[test]
    fn renders_every_node_and_edge() {
        let g = sample();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        for node in g.nodes() {
            assert!(dot.contains(&node.name));
        }
        let edges = g.nodes().map(|n| n.inputs.len()).sum::<usize>();
        assert_eq!(dot.matches(" -> ").count(), edges);
    }

    #[test]
    fn fused_nodes_get_highlighted() {
        let g = BnffPass::new().run(&sample()).unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("palegreen"));
    }

    #[test]
    fn escapes_quotes_in_names() {
        let mut b = GraphBuilder::new("q");
        b.input("weird\"name", Shape::vector(4)).unwrap();
        let dot = to_dot(&b.finish());
        assert!(dot.contains("weird\\\"name"));
    }
}
