//! The operation vocabulary of the computational graph.
//!
//! [`OpKind`] covers every layer type the paper's CNNs use during training
//! (CONV, FC, BN, ReLU, pooling, Concat, Split, element-wise sum, softmax
//! loss) **plus** the restructured operators that the Fission and Fusion
//! passes introduce: BN sub-layers, and the fused `CONV+stats`,
//! `ReLU+CONV`, `norm+ReLU+CONV` and `Concat+stats` operators.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Attributes of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dAttrs {
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Filter height.
    pub kernel_h: usize,
    /// Filter width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Whether the convolution adds a per-channel bias.
    pub bias: bool,
}

impl Conv2dAttrs {
    /// A `k × k` convolution with stride 1 and "same" padding.
    pub fn same(out_channels: usize, kernel: usize) -> Self {
        Conv2dAttrs {
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride: 1,
            pad: kernel / 2,
            bias: false,
        }
    }

    /// The ubiquitous `3 × 3`, stride-1, pad-1 convolution.
    pub fn same_3x3(out_channels: usize) -> Self {
        Self::same(out_channels, 3)
    }

    /// A `1 × 1` pointwise (bottleneck) convolution.
    pub fn pointwise(out_channels: usize) -> Self {
        Conv2dAttrs { out_channels, kernel_h: 1, kernel_w: 1, stride: 1, pad: 0, bias: false }
    }

    /// Generic constructor.
    pub fn new(out_channels: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        Conv2dAttrs { out_channels, kernel_h: kernel, kernel_w: kernel, stride, pad, bias: false }
    }

    /// Returns a copy with a bias term enabled.
    pub fn with_bias(mut self) -> Self {
        self.bias = true;
        self
    }

    /// Number of weight elements given the input channel count.
    pub fn weight_elems(&self, in_channels: usize) -> usize {
        self.out_channels * in_channels * self.kernel_h * self.kernel_w
    }
}

/// Attributes of a pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolAttrs {
    /// Pooling window size (square).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl PoolAttrs {
    /// Creates pooling attributes.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        PoolAttrs { kernel, stride, pad }
    }
}

/// Attributes of a Batch Normalization layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchNormAttrs {
    /// The numerical-stability epsilon added to the variance.
    pub epsilon: f32,
    /// When `true` the statistics are computed in a single sweep using
    /// `Var[X] = E[X²] − E[X]²` (the paper's Mean/Variance Fusion); when
    /// `false` the baseline two-pass computation is modelled.
    pub one_pass_stats: bool,
}

impl Default for BatchNormAttrs {
    fn default() -> Self {
        BatchNormAttrs { epsilon: 1e-5, one_pass_stats: false }
    }
}

impl BatchNormAttrs {
    /// Attributes with single-sweep (MVF) statistics enabled.
    pub fn one_pass() -> Self {
        BatchNormAttrs { epsilon: 1e-5, one_pass_stats: true }
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Average,
}

/// High-level layer category used for the paper's execution-time breakdowns
/// (Figure 1 and Figure 6 distinguish CONV/FC from non-CONV layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerCategory {
    /// Convolutional and fully-connected layers.
    ConvFc,
    /// Every other layer type (BN, ReLU, pooling, Concat, Split, EWS, ...).
    NonConv,
    /// Fused layers that contain a convolution; the paper accounts for them
    /// as CONV layers because the convolution dominates their arithmetic.
    FusedConv,
}

/// One operation (layer) in the computational graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// A graph input (the mini-batch of images or labels).
    Input,
    /// 2-D convolution.
    Conv2d(Conv2dAttrs),
    /// Fully-connected (inner-product) layer producing `out_features`.
    FullyConnected {
        /// Number of output features.
        out_features: usize,
    },
    /// Training-mode Batch Normalization over the mini-batch.
    BatchNorm(BatchNormAttrs),
    /// BN fission product: per-channel Σx / Σx² (and mean/variance) over the
    /// mini-batch. Output is a per-channel statistics vector.
    SubBnStats(BatchNormAttrs),
    /// BN fission product: normalization `γ·(x−μ)/√(σ²+ε) + β`, consuming
    /// the activations and a statistics node.
    SubBnNorm(BatchNormAttrs),
    /// Rectified linear unit.
    Relu,
    /// Spatial pooling.
    Pool {
        /// Max or average pooling.
        kind: PoolKind,
        /// Window/stride/padding attributes.
        attrs: PoolAttrs,
    },
    /// Global average pooling down to `1 × 1` spatial size.
    GlobalAvgPool,
    /// Channel-axis concatenation (DenseNet dense connectivity).
    Concat,
    /// Feature-map split / replication towards multiple consumers. In the
    /// reference implementation a forward Split is a pointer copy, but its
    /// backward pass must sum gradients from all consumers.
    Split {
        /// Number of consumers the value is forwarded to.
        consumers: usize,
    },
    /// Element-wise sum (ResNet identity shortcut).
    EltwiseSum,
    /// Softmax + cross-entropy loss head.
    SoftmaxLoss,
    // ---- Fused operators introduced by the restructuring passes ----
    /// RCF: ReLU applied while reading the ifmaps of the following
    /// convolution.
    ReluConv(Conv2dAttrs),
    /// BNFF: convolution that also accumulates Σx / Σx² of its output
    /// feature map (CONV1 + sub-BN1).
    ConvStats {
        /// The convolution attributes.
        conv: Conv2dAttrs,
        /// The BN attributes the statistics will be used with.
        bn: BatchNormAttrs,
    },
    /// BNFF: normalization + ReLU applied while reading the ifmaps of the
    /// following convolution (sub-BN2 + ReLU + CONV2). Also writes the
    /// normalized activation once for reuse in the backward pass.
    NormReluConv {
        /// The convolution attributes.
        conv: Conv2dAttrs,
        /// The BN attributes used for normalization.
        bn: BatchNormAttrs,
    },
    /// BNFF tail case: normalization + ReLU with no following convolution to
    /// fuse into (e.g. before a pooling or EWS layer).
    NormRelu(BatchNormAttrs),
    /// BNFF: convolution fused on both sides — it normalizes + clips its
    /// inputs (sub-BN2 + ReLU of the *preceding* BN) and accumulates
    /// Σx / Σx² of its outputs (sub-BN1 of the *following* BN). This arises
    /// in back-to-back composite layers where one convolution sits between
    /// two BN layers.
    NormReluConvStats {
        /// The convolution attributes.
        conv: Conv2dAttrs,
        /// BN attributes of the normalization applied to the inputs.
        bn_in: BatchNormAttrs,
        /// BN attributes of the statistics accumulated over the outputs.
        bn_out: BatchNormAttrs,
    },
    /// ICF: channel concatenation that also accumulates Σx / Σx² of its
    /// output (Concat + sub-BN1 across a composite-layer boundary).
    ConcatStats(BatchNormAttrs),
    // ---- Inference-only operators introduced by the freeze pass ----
    /// Frozen-graph convolution with the following ReLU fused into its
    /// output write. The bias (folded BN shift) lives in the conv attrs'
    /// `bias` flag like any other convolution.
    ConvRelu(Conv2dAttrs),
    /// Frozen-graph per-channel affine `y = scale[c]·x + shift[c]`: the
    /// residue of a Batch Normalization whose running statistics could not
    /// be folded into a preceding convolution (e.g. after a Concat or an
    /// element-wise sum).
    ChannelAffine,
}

impl OpKind {
    /// Short human-readable name of the operation.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Input => "Input",
            OpKind::Conv2d(_) => "Conv2d",
            OpKind::FullyConnected { .. } => "FullyConnected",
            OpKind::BatchNorm(_) => "BatchNorm",
            OpKind::SubBnStats(_) => "SubBnStats",
            OpKind::SubBnNorm(_) => "SubBnNorm",
            OpKind::Relu => "ReLU",
            OpKind::Pool { kind: PoolKind::Max, .. } => "MaxPool",
            OpKind::Pool { kind: PoolKind::Average, .. } => "AvgPool",
            OpKind::GlobalAvgPool => "GlobalAvgPool",
            OpKind::Concat => "Concat",
            OpKind::Split { .. } => "Split",
            OpKind::EltwiseSum => "EltwiseSum",
            OpKind::SoftmaxLoss => "SoftmaxLoss",
            OpKind::ReluConv(_) => "ReluConv",
            OpKind::ConvStats { .. } => "ConvStats",
            OpKind::NormReluConv { .. } => "NormReluConv",
            OpKind::NormReluConvStats { .. } => "NormReluConvStats",
            OpKind::NormRelu(_) => "NormRelu",
            OpKind::ConcatStats(_) => "ConcatStats",
            OpKind::ConvRelu(_) => "ConvRelu",
            OpKind::ChannelAffine => "ChannelAffine",
        }
    }

    /// The layer category used for CONV/FC vs non-CONV breakdowns.
    pub fn category(&self) -> LayerCategory {
        match self {
            OpKind::Conv2d(_) | OpKind::FullyConnected { .. } => LayerCategory::ConvFc,
            OpKind::ReluConv(_)
            | OpKind::ConvStats { .. }
            | OpKind::NormReluConv { .. }
            | OpKind::NormReluConvStats { .. }
            | OpKind::ConvRelu(_) => LayerCategory::FusedConv,
            _ => LayerCategory::NonConv,
        }
    }

    /// Whether the operation contains a convolution (fused or not).
    pub fn contains_conv(&self) -> bool {
        matches!(
            self,
            OpKind::Conv2d(_)
                | OpKind::ReluConv(_)
                | OpKind::ConvStats { .. }
                | OpKind::NormReluConv { .. }
                | OpKind::NormReluConvStats { .. }
                | OpKind::ConvRelu(_)
        )
    }

    /// Whether the operation is Batch Normalization or one of its fission
    /// products.
    pub fn is_bn_related(&self) -> bool {
        matches!(
            self,
            OpKind::BatchNorm(_)
                | OpKind::SubBnStats(_)
                | OpKind::SubBnNorm(_)
                | OpKind::NormRelu(_)
        )
    }

    /// The convolution attributes if the op contains a convolution.
    pub fn conv_attrs(&self) -> Option<Conv2dAttrs> {
        match self {
            OpKind::Conv2d(a) | OpKind::ReluConv(a) | OpKind::ConvRelu(a) => Some(*a),
            OpKind::ConvStats { conv, .. }
            | OpKind::NormReluConv { conv, .. }
            | OpKind::NormReluConvStats { conv, .. } => Some(*conv),
            _ => None,
        }
    }

    /// Whether the operation learns parameters (weights, γ/β).
    pub fn has_parameters(&self) -> bool {
        matches!(
            self,
            OpKind::Conv2d(_)
                | OpKind::FullyConnected { .. }
                | OpKind::BatchNorm(_)
                | OpKind::SubBnNorm(_)
                | OpKind::ReluConv(_)
                | OpKind::ConvStats { .. }
                | OpKind::NormReluConv { .. }
                | OpKind::NormReluConvStats { .. }
                | OpKind::NormRelu(_)
                | OpKind::ConvRelu(_)
                | OpKind::ChannelAffine
        )
    }

    /// Number of tensor inputs this operation requires, when fixed.
    ///
    /// Returns `None` for variadic operations (Concat, EltwiseSum).
    pub fn fixed_arity(&self) -> Option<usize> {
        match self {
            OpKind::Input => Some(0),
            OpKind::Concat | OpKind::ConcatStats(_) | OpKind::EltwiseSum => None,
            OpKind::SubBnNorm(_) => Some(2),
            OpKind::NormReluConv { .. }
            | OpKind::NormReluConvStats { .. }
            | OpKind::NormRelu(_) => Some(2),
            OpKind::SoftmaxLoss => Some(2),
            _ => Some(1),
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Conv2d(a) => {
                write!(
                    f,
                    "Conv2d({}x{}, s{}, oc{})",
                    a.kernel_h, a.kernel_w, a.stride, a.out_channels
                )
            }
            OpKind::ReluConv(a) => {
                write!(
                    f,
                    "ReluConv({}x{}, s{}, oc{})",
                    a.kernel_h, a.kernel_w, a.stride, a.out_channels
                )
            }
            OpKind::ConvRelu(a) => {
                write!(
                    f,
                    "ConvRelu({}x{}, s{}, oc{})",
                    a.kernel_h, a.kernel_w, a.stride, a.out_channels
                )
            }
            OpKind::ConvStats { conv: a, .. } => {
                write!(
                    f,
                    "ConvStats({}x{}, s{}, oc{})",
                    a.kernel_h, a.kernel_w, a.stride, a.out_channels
                )
            }
            OpKind::NormReluConv { conv: a, .. } => {
                write!(
                    f,
                    "NormReluConv({}x{}, s{}, oc{})",
                    a.kernel_h, a.kernel_w, a.stride, a.out_channels
                )
            }
            OpKind::NormReluConvStats { conv: a, .. } => {
                write!(
                    f,
                    "NormReluConvStats({}x{}, s{}, oc{})",
                    a.kernel_h, a.kernel_w, a.stride, a.out_channels
                )
            }
            OpKind::FullyConnected { out_features } => write!(f, "FullyConnected({out_features})"),
            other => write!(f, "{}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_attr_constructors() {
        let p = Conv2dAttrs::pointwise(128);
        assert_eq!((p.kernel_h, p.kernel_w, p.stride, p.pad), (1, 1, 1, 0));
        let s = Conv2dAttrs::same_3x3(32);
        assert_eq!((s.kernel_h, s.pad), (3, 1));
        let b = Conv2dAttrs::new(64, 7, 2, 3).with_bias();
        assert!(b.bias);
        assert_eq!(b.weight_elems(3), 64 * 3 * 7 * 7);
    }

    #[test]
    fn categories() {
        assert_eq!(OpKind::Conv2d(Conv2dAttrs::same_3x3(8)).category(), LayerCategory::ConvFc);
        assert_eq!(OpKind::Relu.category(), LayerCategory::NonConv);
        assert_eq!(OpKind::BatchNorm(BatchNormAttrs::default()).category(), LayerCategory::NonConv);
        assert_eq!(
            OpKind::NormReluConv { conv: Conv2dAttrs::same_3x3(8), bn: BatchNormAttrs::default() }
                .category(),
            LayerCategory::FusedConv
        );
    }

    #[test]
    fn bn_related_ops() {
        assert!(OpKind::BatchNorm(BatchNormAttrs::default()).is_bn_related());
        assert!(OpKind::SubBnStats(BatchNormAttrs::one_pass()).is_bn_related());
        assert!(OpKind::SubBnNorm(BatchNormAttrs::default()).is_bn_related());
        assert!(!OpKind::Relu.is_bn_related());
        assert!(!OpKind::Conv2d(Conv2dAttrs::pointwise(4)).is_bn_related());
    }

    #[test]
    fn conv_attrs_extraction() {
        let attrs = Conv2dAttrs::same_3x3(16);
        assert_eq!(OpKind::Conv2d(attrs).conv_attrs(), Some(attrs));
        assert_eq!(OpKind::ReluConv(attrs).conv_attrs(), Some(attrs));
        assert_eq!(
            OpKind::ConvStats { conv: attrs, bn: BatchNormAttrs::default() }.conv_attrs(),
            Some(attrs)
        );
        assert_eq!(OpKind::Relu.conv_attrs(), None);
    }

    #[test]
    fn arity() {
        assert_eq!(OpKind::Input.fixed_arity(), Some(0));
        assert_eq!(OpKind::Relu.fixed_arity(), Some(1));
        assert_eq!(OpKind::SubBnNorm(BatchNormAttrs::default()).fixed_arity(), Some(2));
        assert_eq!(OpKind::Concat.fixed_arity(), None);
        assert_eq!(OpKind::SoftmaxLoss.fixed_arity(), Some(2));
    }

    #[test]
    fn display_names() {
        let attrs = Conv2dAttrs::new(64, 3, 2, 1);
        assert_eq!(OpKind::Conv2d(attrs).to_string(), "Conv2d(3x3, s2, oc64)");
        assert_eq!(OpKind::Relu.to_string(), "ReLU");
        assert_eq!(
            OpKind::FullyConnected { out_features: 1000 }.to_string(),
            "FullyConnected(1000)"
        );
        assert_eq!(
            OpKind::Pool { kind: PoolKind::Max, attrs: PoolAttrs::new(3, 2, 1) }.name(),
            "MaxPool"
        );
    }

    #[test]
    fn one_pass_default() {
        assert!(!BatchNormAttrs::default().one_pass_stats);
        assert!(BatchNormAttrs::one_pass().one_pass_stats);
    }

    #[test]
    fn parameterized_ops() {
        assert!(OpKind::BatchNorm(BatchNormAttrs::default()).has_parameters());
        assert!(OpKind::Conv2d(Conv2dAttrs::pointwise(2)).has_parameters());
        assert!(!OpKind::Relu.has_parameters());
        assert!(!OpKind::Concat.has_parameters());
        assert!(!OpKind::SubBnStats(BatchNormAttrs::default()).has_parameters());
    }
}
