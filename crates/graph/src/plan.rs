//! Memory planning: liveness analysis over the topological order and greedy
//! interval-based buffer-slot assignment.
//!
//! The cost analysis ([`crate::analysis`]) counts how many bytes a training
//! iteration *sweeps*; this module plans how many bytes it must *hold*. A
//! naive executor materializes one output buffer per node and keeps all of
//! them until the backward pass finishes. Most of those tensors are dead
//! long before that: once the last forward consumer has read an activation
//! that the backward pass does not revisit, its buffer can be recycled.
//!
//! The planner walks the topological order and computes, per node output:
//!
//! 1. **Forward liveness** — the interval from the producing node to its
//!    last forward consumer (Split outputs are aliases of their input and
//!    extend the producer's interval instead of owning one).
//! 2. **Backward retention** — whether the backward pass re-reads the
//!    tensor. Convolutions, fully-connected layers and ReLU masks re-read
//!    their saved inputs; BN-derived layers keep `x̂` in their own state and
//!    do *not* retain their input; pooling and concat need only shapes.
//!    Retained tensors stay live through the backward pass and are excluded
//!    from reuse.
//! 3. **Slot assignment** — transient tensors are packed into reusable
//!    buffer slots with a greedy best-fit over their live intervals, giving
//!    the arena capacity an executor needs and the planned peak bytes
//!    reported next to the naive per-node-allocation total.

use crate::graph::Graph;
use crate::node::NodeId;
use crate::op::OpKind;
use crate::Result;
use serde::Serialize;

/// Liveness of one node's output tensor within a training step.
#[derive(Debug, Clone, Serialize)]
pub struct TensorLiveness {
    /// Topological position at which the tensor is produced.
    pub def: usize,
    /// Topological position of the last forward read.
    pub last_use: usize,
    /// Size of the tensor in bytes.
    pub bytes: usize,
    /// Whether the backward pass re-reads the tensor (keeping it alive for
    /// the whole step).
    pub saved_for_backward: bool,
}

/// Compact, serializable view of a plan's memory accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MemoryPlanSummary {
    /// Peak bytes the planned execution holds at once: tensors retained for
    /// the backward pass plus the reuse arena's slot capacities.
    pub planned_peak_bytes: usize,
    /// Bytes a naive one-buffer-per-node execution holds (the sum of every
    /// node output, all alive simultaneously at the end of forward).
    pub naive_total_bytes: usize,
    /// Bytes retained for the backward pass.
    pub saved_bytes: usize,
    /// Total capacity of the reusable buffer slots.
    pub arena_bytes: usize,
    /// Number of reusable buffer slots.
    pub slots: usize,
    /// Number of planned (tensor-producing) nodes.
    pub tensors: usize,
}

/// The memory plan of one graph: execution order, per-output liveness,
/// buffer-slot assignment and release schedule.
///
/// Both metrics cover the node *output* tensors the executor materializes;
/// auxiliary backward state (BN `x̂`, pooling argmax) is identical between
/// the naive and the planned execution and is not part of the comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ExecutionPlan {
    order: Vec<NodeId>,
    /// Node index → topological position.
    position: Vec<usize>,
    /// Node index → alias target (Split nodes forward their input tensor).
    alias_of: Vec<Option<usize>>,
    /// Node index → liveness of its own output (None for non-producers and
    /// aliases).
    liveness: Vec<Option<TensorLiveness>>,
    /// Node index → assigned reuse slot (None for saved / non-producers).
    slot: Vec<Option<usize>>,
    /// Topological position → producer node indices whose buffers die after
    /// that position executes.
    release_at: Vec<Vec<usize>>,
    slot_bytes: Vec<usize>,
    naive_bytes: usize,
    saved_bytes: usize,
}

/// Whether a node materializes an output tensor at run time.
///
/// Label inputs carry no tensor and Split is a pointer pass (an alias of
/// its input), so neither owns a buffer.
fn produces_tensor(graph: &Graph, id: NodeId) -> bool {
    match graph.node(id) {
        Ok(node) => match &node.op {
            OpKind::Input => node.output_shape.is_nchw(),
            OpKind::Split { .. } => false,
            _ => true,
        },
        Err(_) => false,
    }
}

/// How the planner decides which tensors outlive their last forward use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanMode {
    /// Training: tensors the backward pass re-reads are retained.
    Training,
    /// Inference: nothing is retained for a backward pass; only the graph's
    /// final outputs are pinned (so the executor can hand them back instead
    /// of recycling their buffers).
    Inference,
}

/// Whether `op`'s backward pass re-reads the output tensor of its first
/// input (the saved ifmap of the cost analysis).
fn backward_reads_first_input(op: &OpKind) -> bool {
    matches!(
        op,
        OpKind::Conv2d(_)
            | OpKind::ConvStats { .. }
            | OpKind::ReluConv(_)
            | OpKind::Relu
            | OpKind::FullyConnected { .. }
    )
}

/// Whether `op`'s backward pass re-reads the node's *own* output tensor.
fn backward_reads_own_output(op: &OpKind) -> bool {
    // NormRelu recovers its ReLU mask from the forward output.
    matches!(op, OpKind::NormRelu(_))
}

impl ExecutionPlan {
    /// Plans buffer reuse for one training graph (backward-pass reads keep
    /// their tensors alive through the whole step).
    ///
    /// # Errors
    /// Returns an error if the graph is cyclic or references unknown nodes.
    pub fn for_graph(graph: &Graph) -> Result<ExecutionPlan> {
        Self::plan(graph, PlanMode::Training)
    }

    /// Plans buffer reuse for a forward-only (inference) execution: no
    /// tensor is retained for a backward pass, so every intermediate
    /// activation recycles through the arena; only the graph's final
    /// outputs are pinned.
    ///
    /// # Errors
    /// Returns an error if the graph is cyclic or references unknown nodes.
    pub fn for_inference(graph: &Graph) -> Result<ExecutionPlan> {
        Self::plan(graph, PlanMode::Inference)
    }

    fn plan(graph: &Graph, mode: PlanMode) -> Result<ExecutionPlan> {
        let order = graph.topo_order()?;
        let n = graph.node_count();
        let mut position = vec![0usize; n];
        for (pos, id) in order.iter().enumerate() {
            position[id.index()] = pos;
        }

        // Split nodes alias their input's tensor (chains collapse to the
        // first real producer).
        let mut alias_of: Vec<Option<usize>> = vec![None; n];
        for &id in &order {
            let node = graph.node(id)?;
            if let OpKind::Split { .. } = node.op {
                let target = node.inputs[0].index();
                alias_of[id.index()] = Some(alias_of[target].unwrap_or(target));
            }
        }
        let resolve = |idx: usize| alias_of[idx].unwrap_or(idx);

        // Liveness: producers start at their own position; every consumer
        // edge extends the resolved producer's last forward use; backward
        // retention pins the tensor for the whole step.
        let mut liveness: Vec<Option<TensorLiveness>> = vec![None; n];
        for &id in &order {
            if alias_of[id.index()].is_some() || !produces_tensor(graph, id) {
                continue;
            }
            let node = graph.node(id)?;
            let pos = position[id.index()];
            let saved = match mode {
                PlanMode::Training => backward_reads_own_output(&node.op),
                // Pin final outputs so the inference executor can return
                // them instead of releasing them into the arena.
                PlanMode::Inference => graph.consumers(id).is_empty(),
            };
            liveness[id.index()] = Some(TensorLiveness {
                def: pos,
                last_use: pos,
                bytes: node.output_shape.bytes_f32(),
                saved_for_backward: saved,
            });
        }
        for &id in &order {
            let node = graph.node(id)?;
            let pos = position[id.index()];
            for (slot, input) in node.inputs.iter().enumerate() {
                let producer = resolve(input.index());
                let Some(live) = liveness[producer].as_mut() else { continue };
                live.last_use = live.last_use.max(pos);
                if slot == 0 && mode == PlanMode::Training && backward_reads_first_input(&node.op) {
                    live.saved_for_backward = true;
                }
            }
        }

        // Greedy best-fit interval packing of the transient tensors into
        // reusable slots. A slot whose occupant died at position `p` is
        // available to tensors defined strictly after `p`.
        let mut slot: Vec<Option<usize>> = vec![None; n];
        let mut slots: Vec<(usize, usize)> = Vec::new(); // (bytes, free_from)
        let mut release_at: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
        let mut naive_bytes = 0usize;
        let mut saved_bytes = 0usize;
        for &id in &order {
            let idx = id.index();
            let Some(live) = liveness[idx].as_ref() else { continue };
            naive_bytes += live.bytes;
            if live.saved_for_backward {
                saved_bytes += live.bytes;
                continue;
            }
            release_at[live.last_use].push(idx);
            let mut best: Option<usize> = None;
            for (si, &(bytes, free_from)) in slots.iter().enumerate() {
                if free_from >= live.def {
                    continue;
                }
                best = match best {
                    // A slot that already fits beats one that must grow;
                    // among fitting slots take the smallest, among
                    // non-fitting the largest (least growth).
                    Some(b) => {
                        let (bb, _) = slots[b];
                        let better = if bytes >= live.bytes && bb >= live.bytes {
                            bytes < bb
                        } else if bytes >= live.bytes {
                            true
                        } else if bb >= live.bytes {
                            false
                        } else {
                            bytes > bb
                        };
                        Some(if better { si } else { b })
                    }
                    None => Some(si),
                };
            }
            let si = match best {
                Some(si) => {
                    slots[si].0 = slots[si].0.max(live.bytes);
                    slots[si].1 = live.last_use;
                    si
                }
                None => {
                    slots.push((live.bytes, live.last_use));
                    slots.len() - 1
                }
            };
            slot[idx] = Some(si);
        }

        Ok(ExecutionPlan {
            order,
            position,
            alias_of,
            liveness,
            slot,
            release_at,
            slot_bytes: slots.into_iter().map(|(bytes, _)| bytes).collect(),
            naive_bytes,
            saved_bytes,
        })
    }

    /// The topological execution order the plan was computed over.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The topological position of a node.
    pub fn position(&self, id: NodeId) -> usize {
        self.position[id.index()]
    }

    /// Resolves Split aliases to the node whose tensor is actually read.
    pub fn resolve(&self, id: NodeId) -> NodeId {
        match self.alias_of[id.index()] {
            Some(target) => NodeId::new(target),
            None => id,
        }
    }

    /// Whether a node's output tensor is an alias of another node's.
    pub fn is_alias(&self, id: NodeId) -> bool {
        self.alias_of[id.index()].is_some()
    }

    /// Liveness of a node's own output tensor, if it produces one.
    pub fn liveness(&self, id: NodeId) -> Option<&TensorLiveness> {
        self.liveness.get(id.index()).and_then(Option::as_ref)
    }

    /// Whether a node's output must be retained for the backward pass.
    pub fn is_saved(&self, id: NodeId) -> bool {
        self.liveness(self.resolve(id)).map(|l| l.saved_for_backward).unwrap_or(false)
    }

    /// The reuse slot assigned to a transient node output.
    pub fn slot(&self, id: NodeId) -> Option<usize> {
        self.slot.get(id.index()).copied().flatten()
    }

    /// Producer node indices whose buffers die once the node at topological
    /// position `pos` has executed.
    pub fn released_after(&self, pos: usize) -> &[usize] {
        self.release_at.get(pos).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of reusable buffer slots.
    pub fn slot_count(&self) -> usize {
        self.slot_bytes.len()
    }

    /// Capacity in bytes of each reusable buffer slot.
    pub fn slot_sizes(&self) -> &[usize] {
        &self.slot_bytes
    }

    /// Byte offset of each reuse slot when the slots are laid out back to
    /// back in one contiguous arena, each aligned to `align` bytes. A tape
    /// compiler resolves these once so no slot lookup survives to request
    /// time.
    pub fn slot_offsets(&self, align: usize) -> Vec<usize> {
        let align = align.max(1);
        let mut offsets = Vec::with_capacity(self.slot_bytes.len());
        let mut off = 0usize;
        for &bytes in &self.slot_bytes {
            offsets.push(off);
            off += bytes.div_ceil(align) * align;
        }
        offsets
    }

    /// Peak bytes of node outputs the planned execution holds at once.
    pub fn planned_peak_bytes(&self) -> usize {
        self.saved_bytes + self.slot_bytes.iter().sum::<usize>()
    }

    /// Bytes of node outputs a naive one-buffer-per-node execution holds.
    pub fn naive_total_bytes(&self) -> usize {
        self.naive_bytes
    }

    /// Bytes retained for the backward pass.
    pub fn saved_bytes(&self) -> usize {
        self.saved_bytes
    }

    /// The plan's memory accounting in one serializable record.
    pub fn summary(&self) -> MemoryPlanSummary {
        MemoryPlanSummary {
            planned_peak_bytes: self.planned_peak_bytes(),
            naive_total_bytes: self.naive_total_bytes(),
            saved_bytes: self.saved_bytes,
            arena_bytes: self.slot_bytes.iter().sum(),
            slots: self.slot_bytes.len(),
            tensors: self.liveness.iter().flatten().count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::{Conv2dAttrs, PoolAttrs};
    use bnff_tensor::Shape;

    fn conv_chain() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("in", Shape::nchw(2, 8, 8, 8)).unwrap();
        let c1 = b.conv2d(x, Conv2dAttrs::pointwise(16), "conv1").unwrap();
        let bn = b.batch_norm_default(c1, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        let c2 = b.conv2d(r, Conv2dAttrs::pointwise(8), "conv2").unwrap();
        (b.finish(), vec![x, c1, bn, r, c2])
    }

    #[test]
    fn backward_retention_follows_op_semantics() {
        let (g, ids) = conv_chain();
        let plan = ExecutionPlan::for_graph(&g).unwrap();
        // The data input is re-read by conv1's weight-gradient pass.
        assert!(plan.is_saved(ids[0]));
        // conv1's output feeds only BN, whose backward uses its own state.
        assert!(!plan.is_saved(ids[1]));
        // bn's output is the ReLU mask; relu's output is conv2's saved ifmap.
        assert!(plan.is_saved(ids[2]));
        assert!(plan.is_saved(ids[3]));
        // conv2's output has no consumer and no backward reader.
        assert!(!plan.is_saved(ids[4]));
    }

    #[test]
    fn transient_tensors_are_released_at_their_last_use() {
        let (g, ids) = conv_chain();
        let plan = ExecutionPlan::for_graph(&g).unwrap();
        // conv1's output dies once bn has executed.
        let bn_pos = plan.position(ids[2]);
        assert!(plan.released_after(bn_pos).contains(&ids[1].index()));
        // Saved tensors are never released during forward.
        for pos in 0..g.node_count() {
            assert!(!plan.released_after(pos).contains(&ids[3].index()));
        }
    }

    #[test]
    fn slot_offsets_are_aligned_disjoint_prefix_sums() {
        let (g, _) = conv_chain();
        let plan = ExecutionPlan::for_graph(&g).unwrap();
        let offsets = plan.slot_offsets(64);
        let sizes = plan.slot_sizes();
        assert_eq!(offsets.len(), sizes.len());
        for (i, (&off, &bytes)) in offsets.iter().zip(sizes.iter()).enumerate() {
            assert_eq!(off % 64, 0, "slot {i} offset {off} unaligned");
            if let Some(&next) = offsets.get(i + 1) {
                assert!(off + bytes <= next, "slot {i} overlaps its successor");
            }
        }
        // Degenerate alignment of 0 is clamped rather than dividing by zero.
        let tight = plan.slot_offsets(0);
        assert_eq!(tight.len(), sizes.len());
    }

    #[test]
    fn pool_chain_reuses_slots() {
        // Average pooling keeps nothing for backward, so a chain of pools
        // needs only two live buffers at any time (input + output).
        let mut b = GraphBuilder::new("pools");
        let mut prev = b.input("in", Shape::nchw(1, 4, 32, 32)).unwrap();
        for i in 0..4 {
            prev = b.avg_pool(prev, PoolAttrs::new(2, 2, 0), &format!("pool{i}")).unwrap();
        }
        let g = b.finish();
        let plan = ExecutionPlan::for_graph(&g).unwrap();
        assert!(plan.slot_count() <= 2, "pool chain used {} slots", plan.slot_count());
        assert!(plan.planned_peak_bytes() < plan.naive_total_bytes());
    }

    #[test]
    fn split_outputs_alias_their_producer() {
        let mut b = GraphBuilder::new("split");
        let x = b.input("in", Shape::nchw(1, 4, 8, 8)).unwrap();
        let s = b.split(x, 2, "split").unwrap();
        let r1 = b.relu(s, "r1").unwrap();
        let _r2 = b.relu(s, "r2").unwrap();
        let g = b.finish();
        let plan = ExecutionPlan::for_graph(&g).unwrap();
        assert!(plan.is_alias(s));
        assert_eq!(plan.resolve(s), x);
        assert!(plan.liveness(s).is_none());
        // The ReLU consumers read the input through the alias, which also
        // makes the input a saved ReLU mask.
        assert!(plan.is_saved(x));
        assert!(plan.is_saved(s));
        let _ = r1;
    }

    #[test]
    fn planned_peak_is_below_naive_for_a_composite_fragment() {
        let mut b = GraphBuilder::new("frag");
        let x = b.input("in", Shape::nchw(8, 32, 16, 16)).unwrap();
        let c1 = b.bn_relu_conv(x, Conv2dAttrs::pointwise(64), "cpl/a").unwrap();
        let c2 = b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(16), "cpl/b").unwrap();
        b.concat(vec![x, c2], "concat").unwrap();
        let g = b.finish();
        let plan = ExecutionPlan::for_graph(&g).unwrap();
        assert!(
            plan.planned_peak_bytes() < plan.naive_total_bytes(),
            "planned {} vs naive {}",
            plan.planned_peak_bytes(),
            plan.naive_total_bytes()
        );
        let summary = plan.summary();
        assert_eq!(summary.planned_peak_bytes, summary.saved_bytes + summary.arena_bytes);
        assert!(summary.slots >= 1);
        assert!(summary.tensors > 0);
    }

    #[test]
    fn label_inputs_produce_no_tensor() {
        let mut b = GraphBuilder::new("labelled");
        let x = b.input("data", Shape::nchw(2, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        let gap = b.global_avg_pool(x, "gap").unwrap();
        let fc = b.fully_connected(gap, 4, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let g = b.finish();
        let plan = ExecutionPlan::for_graph(&g).unwrap();
        assert!(plan.liveness(labels).is_none());
        assert!(plan.liveness(x).is_some());
        // GAP keeps nothing; FC saves its input.
        assert!(!plan.is_saved(x));
        assert!(plan.is_saved(gap));
    }
}
