//! Property tests for the linear-IR lowering: across randomly shaped
//! chain/residual/dense graphs, the arena offsets a [`LinearProgram`]
//! assigns must never alias two simultaneously-live values. Register reuse
//! is legal only once the previous occupant's last reader has run (the
//! boundary case — a pointwise kernel consuming its own output register in
//! place — shares exactly one position and no more).

use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_graph::passes::freeze::freeze;
use bnff_graph::{Graph, LinearProgram, REG_ALIGN};
use bnff_tensor::Shape;
use proptest::prelude::*;

/// Builds a trainable graph with `blocks` body blocks of the requested
/// topology: 0 = plain chain, 1 = residual (eltwise sum), 2 = dense
/// (channel concat). All three stress slot reuse differently — chains free
/// aggressively, residuals hold a value across a block, concats grow.
fn build_graph(
    batch: usize,
    channels: usize,
    blocks: usize,
    kind: usize,
    classes: usize,
    spatial: usize,
) -> Graph {
    let mut b = GraphBuilder::new("linear-prop");
    let x = b.input("in", Shape::nchw(batch, 3, spatial, spatial)).unwrap();
    let mut cur = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(channels), "stem").unwrap();
    for i in 0..blocks {
        cur = match kind {
            0 => b.conv_bn_relu(cur, Conv2dAttrs::same_3x3(channels), &format!("c{i}")).unwrap(),
            1 => {
                let branch =
                    b.conv_bn_relu(cur, Conv2dAttrs::same_3x3(channels), &format!("r{i}")).unwrap();
                b.eltwise_sum(vec![cur, branch], &format!("sum{i}")).unwrap()
            }
            _ => {
                let branch = b
                    .conv_bn_relu(cur, Conv2dAttrs::pointwise(channels), &format!("d{i}"))
                    .unwrap();
                b.concat(vec![cur, branch], &format!("cat{i}")).unwrap()
            }
        };
    }
    let gap = b.global_avg_pool(cur, "gap").unwrap();
    let fc = b.fully_connected(gap, classes, "fc").unwrap();
    let labels = b.input("labels", Shape::vector(batch)).unwrap();
    b.softmax_loss(fc, labels, "loss").unwrap();
    b.finish()
}

/// One value's occupancy of a register: defined at `def`, last read at
/// `last_use` (positions are 0 for the seeded input, `i + 1` for
/// instruction `i`).
struct LiveRange {
    reg: usize,
    def: usize,
    last_use: usize,
}

/// Replays the tape symbolically and checks that no two values whose live
/// ranges overlap were assigned overlapping arena byte ranges.
fn check_no_aliasing(program: &LinearProgram) -> Result<(), TestCaseError> {
    let offsets = program.reg_offsets();
    let bytes = program.reg_bytes();
    prop_assert_eq!(offsets.len(), program.reg_count());
    for r in 0..program.reg_count() {
        prop_assert!(
            offsets[r].is_multiple_of(REG_ALIGN),
            "register {} offset {} unaligned",
            r,
            offsets[r]
        );
        for s in r + 1..program.reg_count() {
            let disjoint =
                offsets[r] + bytes[r] <= offsets[s] || offsets[s] + bytes[s] <= offsets[r];
            prop_assert!(disjoint, "registers {} and {} share arena bytes", r, s);
        }
    }

    // Replay: which value (index into `ranges`) each register holds.
    let mut held: Vec<Option<usize>> = vec![None; program.reg_count()];
    let mut ranges: Vec<LiveRange> = Vec::new();
    held[program.input_reg()] = Some(0);
    ranges.push(LiveRange { reg: program.input_reg(), def: 0, last_use: 0 });
    for (i, instr) in program.instrs().iter().enumerate() {
        let pos = i + 1;
        for (&reg, &off) in instr.inputs.iter().zip(&instr.input_offsets) {
            prop_assert_eq!(off, offsets[reg]);
            let vid = held[reg];
            prop_assert!(vid.is_some(), "'{}' reads register {} before any def", instr.name, reg);
            ranges[vid.unwrap()].last_use = pos;
        }
        prop_assert_eq!(instr.out_offset, offsets[instr.out]);
        prop_assert!(
            instr.out_volume * 4 <= bytes[instr.out],
            "'{}' writes {} bytes into register {} of {} bytes",
            instr.name,
            instr.out_volume * 4,
            instr.out,
            bytes[instr.out]
        );
        held[instr.out] = Some(ranges.len());
        ranges.push(LiveRange { reg: instr.out, def: pos, last_use: pos });
    }
    // The final output must survive to the end of the tape.
    let out_vid = held[program.output_reg()];
    prop_assert!(out_vid.is_some(), "output register never written");
    ranges[out_vid.unwrap()].last_use = program.len() + 1;

    // Two values sharing a register must have non-overlapping live ranges;
    // `last_use == def` of the successor is the legal in-place boundary
    // (the defining instruction reads the predecessor as it overwrites it).
    for (a_idx, a) in ranges.iter().enumerate() {
        for b in ranges.iter().skip(a_idx + 1) {
            if a.reg != b.reg {
                continue;
            }
            let (first, second) = if a.def <= b.def { (a, b) } else { (b, a) };
            prop_assert!(
                first.last_use <= second.def,
                "register {} aliases live ranges [{}, {}] and [{}, {}]",
                a.reg,
                first.def,
                first.last_use,
                second.def,
                second.last_use
            );
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn linearized_offsets_never_alias_live_ranges(
        batch in 1usize..3,
        channels in 2usize..7,
        blocks in 1usize..4,
        kind in 0usize..3,
        classes in 2usize..6,
        spatial in 6usize..11,
    ) {
        let graph = build_graph(batch, channels, blocks, kind, classes, spatial);
        let frozen = freeze(&graph).unwrap();
        let program = LinearProgram::lower_for_inference(&frozen).unwrap();
        prop_assert!(!program.is_empty());
        program.validate().unwrap();
        check_no_aliasing(&program)?;
    }
}
