//! Core-topology partitioning for multi-worker serving.
//!
//! The serving engine runs several *task-parallel* worker threads, and every
//! worker drives the same `bnff-parallel` kernel pool when it executes a
//! batch. Left alone, each worker would fan its kernels out to the full
//! `BNFF_THREADS` worth of threads: `workers × BNFF_THREADS` runnable
//! threads fighting over `BNFF_THREADS` cores, which is exactly the
//! oversubscription that made serve throughput *drop* as workers were
//! added. This module computes the fix: a disjoint partition of the kernel
//! thread budget, one slice per worker, so the total number of runnable
//! kernel threads never exceeds the budget. Workers install their slice
//! with [`with_threads`](crate::with_threads) before entering their serve
//! loop; the OS scheduler then places `budget` runnable threads on `budget`
//! cores instead of time-slicing `workers × budget`.
//!
//! Partitions are *budgets*, not hard CPU affinities — the standard library
//! has no portable pinning API — but because the pool spawns exactly as
//! many runnable threads as the budget allows, the scheduler's steady-state
//! placement is the disjoint partition.

/// Splits a total kernel-thread budget into one disjoint slice per worker.
///
/// Every worker receives at least one thread. When the budget exceeds the
/// worker count, the remainder is distributed one thread at a time from the
/// first worker, so slice sizes differ by at most one and
/// `sum == max(total, workers)`. When there are more workers than budget
/// (an oversubscribed configuration the caller asked for explicitly), each
/// worker still gets the minimum viable slice of one.
///
/// ```rust
/// use bnff_parallel::partition_threads;
///
/// assert_eq!(partition_threads(8, 3), vec![3, 3, 2]);
/// assert_eq!(partition_threads(4, 4), vec![1, 1, 1, 1]);
/// assert_eq!(partition_threads(1, 3), vec![1, 1, 1]);
/// assert_eq!(partition_threads(4, 1), vec![4]);
/// ```
#[must_use]
pub fn partition_threads(total: usize, workers: usize) -> Vec<usize> {
    let workers = workers.max(1);
    let total = total.max(1);
    let base = total / workers;
    let extra = total % workers;
    (0..workers).map(|w| (base + usize::from(w < extra)).max(1)).collect()
}

/// The kernel-thread budget a pool of `workers` serve workers should
/// partition: the caller's effective thread count
/// ([`current_threads`](crate::current_threads) — a `with_threads` scope,
/// `BNFF_THREADS`, or the machine's available parallelism, in that order).
#[must_use]
pub fn worker_thread_budgets(workers: usize) -> Vec<usize> {
    partition_threads(crate::current_threads(), workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;

    #[test]
    fn partitions_are_disjoint_and_balanced() {
        for total in 1..=17 {
            for workers in 1..=9 {
                let slices = partition_threads(total, workers);
                assert_eq!(slices.len(), workers, "total {total} workers {workers}");
                assert!(slices.iter().all(|&s| s >= 1), "empty slice: {slices:?}");
                let max = slices.iter().copied().max().unwrap();
                let min = slices.iter().copied().min().unwrap();
                assert!(max - min <= 1, "unbalanced {slices:?}");
                assert_eq!(
                    slices.iter().sum::<usize>(),
                    total.max(workers),
                    "budget not conserved for total {total} workers {workers}: {slices:?}"
                );
            }
        }
    }

    #[test]
    fn zero_inputs_clamp_to_one() {
        assert_eq!(partition_threads(0, 0), vec![1]);
        assert_eq!(partition_threads(0, 2), vec![1, 1]);
        assert_eq!(partition_threads(3, 0), vec![3]);
    }

    #[test]
    fn budgets_follow_the_scoped_thread_override() {
        let slices = with_threads(6, || worker_thread_budgets(4));
        assert_eq!(slices, vec![2, 2, 1, 1]);
        let slices = with_threads(1, || worker_thread_budgets(2));
        assert_eq!(slices, vec![1, 1]);
    }
}
