//! # bnff-parallel — hand-rolled scoped data-parallelism for the kernels
//!
//! The paper argues that training-time Batch Normalization is
//! memory-bandwidth-bound; demonstrating that on a host CPU requires the
//! baseline kernels to actually *saturate* the hardware, which a
//! single-core implementation never does. This crate is the workspace's
//! threading substrate: a scoped, `std::thread`-based fork-join pool (the
//! build environment has no crates.io access, so — like the `shims/`
//! crates — it is hand-rolled on the standard library alone) plus the
//! chunked-range and two-pass tree-reduction primitives the kernels
//! partition their work with.
//!
//! ## Thread count
//!
//! The worker count is resolved, in order, from:
//!
//! 1. a scoped per-thread override installed with [`with_threads`] (used by
//!    the determinism tests and the serial-vs-parallel benches),
//! 2. the `BNFF_THREADS` environment variable (read once per process),
//! 3. [`std::thread::available_parallelism`].
//!
//! ## Determinism
//!
//! Every primitive partitions work at a granularity fixed by the *problem*
//! (rows, channel planes, indices), never by the thread count; reductions
//! compute one partial per work item and combine them in index order. A
//! kernel built on these primitives therefore produces bit-identical
//! results whether `BNFF_THREADS` is 1 or 64 — the property the
//! `parallel_determinism` test-suite in `bnff-kernels` locks in.
//!
//! ## Example
//!
//! ```rust
//! use bnff_parallel::{parallel_reduce, parallel_rows_mut, with_threads};
//!
//! // Square 4-element rows in parallel, then reduce a sum over indices.
//! let mut data = vec![2.0f64; 16];
//! parallel_rows_mut(&mut data, 4, 1, |_first_row, block| {
//!     for v in block.iter_mut() {
//!         *v *= *v;
//!     }
//! });
//! assert_eq!(data, vec![4.0; 16]);
//!
//! let total = parallel_reduce(16, 1, |i| data[i], |a, b| a + b).unwrap();
//! assert_eq!(total, 64.0);
//!
//! // The same computation pinned to one worker gives the same answer.
//! let serial = with_threads(1, || {
//!     parallel_reduce(16, 1, |i| data[i], |a, b| a + b).unwrap()
//! });
//! assert_eq!(serial, total);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pool;
pub mod range;
pub mod topology;

pub use pool::{
    current_grain, current_threads, is_nested, min_items_per_thread, parallel_for,
    parallel_map_collect, parallel_reduce, parallel_row_blocks_mut, parallel_rows_mut,
    parallel_rows_mut2, tree_reduce, with_grain, with_threads,
};
pub use range::chunk_ranges;
pub use topology::{partition_threads, worker_thread_budgets};
