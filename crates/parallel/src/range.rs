//! Balanced chunked-range partitioning.

use std::ops::Range;

/// Splits `0..len` into at most `chunks` contiguous, non-empty ranges whose
/// concatenation covers every index exactly once.
///
/// The naive `len / chunks` chunk size silently drops the `len % chunks`
/// tail items (or forces an unbalanced final chunk); this implementation
/// instead hands the first `len % chunks` ranges one extra item each, so
/// all ranges differ in length by at most one and nothing is lost.
///
/// Edge cases: `len == 0` or `chunks == 0` yields no ranges; `chunks > len`
/// yields `len` single-item ranges.
///
/// ```rust
/// use bnff_parallel::chunk_ranges;
/// let ranges = chunk_ranges(10, 4);
/// assert_eq!(ranges.len(), 4);
/// let covered: usize = ranges.iter().map(|r| r.len()).sum();
/// assert_eq!(covered, 10); // no silent drop when 10 % 4 != 0
/// assert_eq!(ranges[0], 0..3);
/// assert_eq!(ranges[3], 8..10);
/// ```
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Concatenated ranges must cover `0..len` exactly, in order, for every
    /// combination — including the `len % chunks != 0` cases that a
    /// truncating `len / chunks` split silently drops.
    #[test]
    fn ranges_partition_exactly() {
        for len in 0..64usize {
            for chunks in 0..17usize {
                let ranges = chunk_ranges(len, chunks);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap/overlap at len={len} chunks={chunks}");
                    assert!(!r.is_empty(), "empty range at len={len} chunks={chunks}");
                    next = r.end;
                }
                if len == 0 || chunks == 0 {
                    assert!(ranges.is_empty());
                } else {
                    assert_eq!(next, len, "tail dropped at len={len} chunks={chunks}");
                }
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        for len in 1..100usize {
            for chunks in 1..12usize {
                let ranges = chunk_ranges(len, chunks);
                let min = ranges.iter().map(Range::len).min().unwrap();
                let max = ranges.iter().map(Range::len).max().unwrap();
                assert!(max - min <= 1, "imbalance at len={len} chunks={chunks}");
            }
        }
    }

    #[test]
    fn more_chunks_than_items_yields_singletons() {
        let ranges = chunk_ranges(3, 8);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn single_item() {
        assert_eq!(chunk_ranges(1, 4), vec![0..1]);
    }
}
