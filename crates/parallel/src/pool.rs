//! The scoped fork-join pool and the data-parallel primitives built on it.
//!
//! Every dispatch partitions its work into per-task chunks with
//! [`chunk_ranges`], runs one chunk on the
//! calling thread and the rest on freshly scoped `std::thread` workers
//! ([`std::thread::scope`] lets the closures borrow the caller's slices
//! without `'static` bounds or `unsafe`). Worker panics propagate to the
//! caller when the scope joins. Calls issued from *inside* a worker run
//! serially instead of spawning again, so nested kernels (a convolution
//! calling a GEMM, say) cannot oversubscribe the machine or deadlock.

use crate::range::chunk_ranges;
use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;
use std::thread;

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Scoped override installed by [`with_grain`].
    static GRAIN_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while the current thread is executing a chunk on behalf of a
    /// dispatch, to force nested dispatches onto the serial path.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Default number of scalar operations a worker must amortize before a
/// dispatch spawns it: below this, thread-spawn latency exceeds the work.
const DEFAULT_GRAIN: usize = 1 << 16;

fn default_parallelism() -> usize {
    thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// The process-wide default worker count: `BNFF_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
/// The environment variable is read once per process.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("BNFF_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(default_parallelism)
    })
}

/// The worker count a dispatch issued from this thread would use:
/// the innermost [`with_threads`] override if one is active, otherwise
/// `BNFF_THREADS`, otherwise the machine's available parallelism.
pub fn current_threads() -> usize {
    THREAD_OVERRIDE.with(Cell::get).unwrap_or_else(env_threads)
}

/// Whether the current thread is already executing inside a pool dispatch
/// (in which case further dispatches run serially).
pub fn is_nested() -> bool {
    IN_POOL.with(Cell::get)
}

/// The spawn-amortization grain in effect on this thread: the innermost
/// [`with_grain`] override, or the built-in default (2¹⁶ scalar ops).
pub fn current_grain() -> usize {
    GRAIN_OVERRIDE.with(Cell::get).unwrap_or(DEFAULT_GRAIN)
}

/// The minimum number of work items one worker must own before a dispatch
/// fans out, given an estimate of the scalar work per item. This is the
/// single knob every kernel derives its `min_per_thread` argument from.
pub fn min_items_per_thread(per_item_cost: usize) -> usize {
    (current_grain() / per_item_cost.max(1)).max(1)
}

/// Runs `f` with the spawn-amortization grain pinned to `grain` (clamped to
/// at least 1), restoring the previous setting afterwards — also on panic.
/// `with_grain(1, ...)` forces maximal partitioning, which the determinism
/// tests use so small fixtures genuinely split across workers.
pub fn with_grain<R>(grain: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            GRAIN_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = GRAIN_OVERRIDE.with(|o| o.replace(Some(grain.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Runs `f` with the calling thread's worker count pinned to `threads`
/// (clamped to at least 1), restoring the previous setting afterwards —
/// also on panic. Used by the determinism tests and the serial-vs-parallel
/// benches; nests correctly.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Marks the current thread as executing pool work for the guard's
/// lifetime (panic-safe restore).
struct NestGuard(bool);

impl NestGuard {
    fn enter() -> Self {
        NestGuard(IN_POOL.with(|f| f.replace(true)))
    }
}

impl Drop for NestGuard {
    fn drop(&mut self) {
        IN_POOL.with(|f| f.set(self.0));
    }
}

/// How many workers a dispatch over `items` work items should use, keeping
/// at least `min_per_thread` items per worker so tiny inputs do not pay
/// thread-spawn latency. Nested dispatches always get 1.
fn planned_threads(items: usize, min_per_thread: usize) -> usize {
    if items == 0 {
        return 0;
    }
    if is_nested() {
        return 1;
    }
    let cap = (items / min_per_thread.max(1)).max(1);
    current_threads().clamp(1, cap)
}

/// Executes one task per worker: the first on the calling thread, the rest
/// on scoped threads. A single task short-circuits to a plain call with no
/// scope (and no nesting flag, so inner dispatches may still fan out).
fn run_tasks<T, F>(tasks: Vec<T>, run: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let mut iter = tasks.into_iter();
    let Some(first) = iter.next() else { return };
    let rest: Vec<T> = iter.collect();
    if rest.is_empty() {
        run(first);
        return;
    }
    let run = &run;
    thread::scope(|s| {
        for task in rest {
            s.spawn(move || {
                let _nested = NestGuard::enter();
                run(task);
            });
        }
        let _nested = NestGuard::enter();
        run(first);
    });
}

/// Splits `0..items` into one balanced contiguous range per worker and runs
/// `f` on each range in parallel. `f` sees every index exactly once
/// regardless of `items % workers` (see
/// [`chunk_ranges`]).
///
/// `min_per_thread` bounds the fan-out: no worker is spawned for fewer than
/// that many items.
pub fn parallel_for<F>(items: usize, min_per_thread: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let ranges = chunk_ranges(items, planned_threads(items, min_per_thread));
    run_tasks(ranges, &f);
}

/// Splits `data` into per-worker blocks of whole `row_len`-sized rows and
/// runs `f(first_row, block)` on each block in parallel. Row boundaries are
/// fixed by the problem (not the worker count), so per-row results are
/// identical for any thread count.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn parallel_rows_mut<T, F>(data: &mut [T], row_len: usize, min_rows_per_thread: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        row_len > 0 && data.len().is_multiple_of(row_len),
        "parallel_rows_mut: {} elements is not a whole number of rows of {row_len}",
        data.len()
    );
    let rows = data.len() / row_len;
    let ranges = chunk_ranges(rows, planned_threads(rows, min_rows_per_thread));
    let mut tasks = Vec::with_capacity(ranges.len());
    let mut rest = data;
    for r in &ranges {
        let (block, tail) = rest.split_at_mut(r.len() * row_len);
        tasks.push((r.start, block));
        rest = tail;
    }
    run_tasks(tasks, |(first_row, block)| f(first_row, block));
}

/// Like [`parallel_rows_mut`], but worker boundaries are additionally
/// aligned to multiples of `block_rows` rows: every worker receives a
/// contiguous run of *whole blocks* (the final block may be ragged when
/// `rows % block_rows != 0`, and always lands in one piece on the last
/// worker that owns it).
///
/// This is the partition the cache-blocked GEMM uses: `block_rows` is the
/// `MC` register/cache tile height, a property of the *problem*, so the
/// set of block boundaries — and therefore every per-block computation —
/// is identical for any worker count. `f(first_row, rows_block)` may be
/// handed several consecutive blocks at once and is expected to iterate
/// them in `block_rows` steps.
///
/// # Panics
/// Panics if `data.len()` is not a whole number of rows of `row_len` or
/// `block_rows` is zero.
pub fn parallel_row_blocks_mut<T, F>(
    data: &mut [T],
    row_len: usize,
    block_rows: usize,
    min_rows_per_thread: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        row_len > 0 && data.len().is_multiple_of(row_len),
        "parallel_row_blocks_mut: {} elements is not a whole number of rows of {row_len}",
        data.len()
    );
    assert!(block_rows > 0, "parallel_row_blocks_mut: block_rows must be positive");
    let rows = data.len() / row_len;
    let blocks = rows.div_ceil(block_rows);
    let min_blocks = min_rows_per_thread.div_ceil(block_rows).max(1);
    let ranges = chunk_ranges(blocks, planned_threads(blocks, min_blocks));
    let mut tasks = Vec::with_capacity(ranges.len());
    let mut rest = data;
    for r in &ranges {
        // Whole blocks, except the workspace-final ragged block.
        let first_row = r.start * block_rows;
        let last_row = (r.end * block_rows).min(rows);
        let (block, tail) = rest.split_at_mut((last_row - first_row) * row_len);
        tasks.push((first_row, block));
        rest = tail;
    }
    run_tasks(tasks, |(first_row, block)| f(first_row, block));
}

/// Like [`parallel_rows_mut`] for two buffers sharing the same row count
/// but possibly different row lengths: `f(first_row, a_block, b_block)`
/// receives the matching blocks of both. Used when a kernel writes two
/// outputs in lockstep (max-pool's values and argmax, BN's `x̂` and `y`).
///
/// # Panics
/// Panics if either buffer is not a whole number of rows or the row counts
/// differ.
pub fn parallel_rows_mut2<A, B, F>(
    a: &mut [A],
    a_row_len: usize,
    b: &mut [B],
    b_row_len: usize,
    min_rows_per_thread: usize,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    if a.is_empty() && b.is_empty() {
        return;
    }
    assert!(
        a_row_len > 0
            && b_row_len > 0
            && a.len().is_multiple_of(a_row_len)
            && b.len().is_multiple_of(b_row_len),
        "parallel_rows_mut2: buffers are not whole numbers of rows"
    );
    let rows = a.len() / a_row_len;
    assert_eq!(rows, b.len() / b_row_len, "parallel_rows_mut2: row counts differ");
    let ranges = chunk_ranges(rows, planned_threads(rows, min_rows_per_thread));
    let mut tasks = Vec::with_capacity(ranges.len());
    let (mut rest_a, mut rest_b) = (a, b);
    for r in &ranges {
        let (block_a, tail_a) = rest_a.split_at_mut(r.len() * a_row_len);
        let (block_b, tail_b) = rest_b.split_at_mut(r.len() * b_row_len);
        tasks.push((r.start, block_a, block_b));
        rest_a = tail_a;
        rest_b = tail_b;
    }
    run_tasks(tasks, |(first_row, block_a, block_b)| f(first_row, block_a, block_b));
}

/// Evaluates `f(i)` for every `i in 0..items` in parallel and returns the
/// results in index order. The per-index partials are computed identically
/// whatever thread ran them, so the output is independent of the worker
/// count.
pub fn parallel_map_collect<T, F>(items: usize, min_per_thread: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..items).map(|_| None).collect();
    parallel_rows_mut(&mut slots, 1, min_per_thread, |first, block| {
        for (offset, slot) in block.iter_mut().enumerate() {
            *slot = Some(f(first + offset));
        }
    });
    slots.into_iter().map(|slot| slot.expect("parallel_map_collect fills every slot")).collect()
}

/// Combines `values` pairwise in index order until one remains — a balanced
/// binary reduction tree whose shape depends only on `values.len()`, never
/// on the thread count. Returns `None` for an empty input.
pub fn tree_reduce<T>(mut values: Vec<T>, fold: impl Fn(T, T) -> T) -> Option<T> {
    while values.len() > 1 {
        let mut next = Vec::with_capacity(values.len().div_ceil(2));
        let mut iter = values.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(fold(a, b)),
                None => next.push(a),
            }
        }
        values = next;
    }
    values.into_iter().next()
}

/// Two-pass tree reduction: pass one maps every index to a partial in
/// parallel ([`parallel_map_collect`]), pass two combines the partials with
/// [`tree_reduce`]. Deterministic for any thread count. Returns `None` when
/// `items == 0`.
pub fn parallel_reduce<T, M, F>(items: usize, min_per_thread: usize, map: M, fold: F) -> Option<T>
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    F: Fn(T, T) -> T,
{
    tree_reduce(parallel_map_collect(items, min_per_thread, map), fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outside);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        with_threads(0, || assert_eq!(current_threads(), 1));
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        for threads in [1usize, 2, 3, 7, 16] {
            for items in [0usize, 1, 2, 5, 10, 33] {
                let hits: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
                with_threads(threads, || {
                    parallel_for(items, 1, |range| {
                        for i in range {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    });
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        1,
                        "index {i} items {items} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_per_thread_limits_fanout() {
        // 10 items at >=8 per thread can use at most 1 worker: the closure
        // must see the whole range at once.
        let calls = AtomicUsize::new(0);
        with_threads(8, || {
            parallel_for(10, 8, |range| {
                calls.fetch_add(1, Ordering::Relaxed);
                assert_eq!(range, 0..10);
            });
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn row_blocks_cover_every_row_once_and_align_to_blocks() {
        for threads in [1usize, 2, 3, 7, 16] {
            for rows in [1usize, 2, 5, 12, 13, 33] {
                for block_rows in [1usize, 4, 5, 64] {
                    let row_len = 3;
                    let mut data = vec![0u32; rows * row_len];
                    with_threads(threads, || {
                        parallel_row_blocks_mut(&mut data, row_len, block_rows, 1, |first, blk| {
                            // Task boundaries sit on block multiples.
                            assert_eq!(first % block_rows, 0, "unaligned start {first}");
                            for v in blk.iter_mut() {
                                *v += 1;
                            }
                        });
                    });
                    assert!(
                        data.iter().all(|&v| v == 1),
                        "rows {rows} block {block_rows} threads {threads}: {data:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_blocks_keep_the_ragged_tail_in_one_task() {
        // 10 rows in blocks of 4 -> blocks are [0..4), [4..8), [8..10); the
        // ragged tail must never be split below the block boundary.
        let starts = std::sync::Mutex::new(Vec::new());
        let mut data = vec![0u8; 10];
        with_threads(16, || {
            parallel_row_blocks_mut(&mut data, 1, 4, 1, |first, blk| {
                starts.lock().unwrap().push((first, blk.len()));
            });
        });
        let mut seen = starts.into_inner().unwrap();
        seen.sort_unstable();
        for (first, len) in &seen {
            assert_eq!(first % 4, 0);
            assert!(*len == 4 || first + len == 10, "task ({first}, {len}) breaks a block");
        }
        assert_eq!(seen.iter().map(|(_, l)| l).sum::<usize>(), 10);
    }

    #[test]
    fn map_collect_preserves_order() {
        for threads in [1usize, 4, 9] {
            let out = with_threads(threads, || parallel_map_collect(23, 1, |i| i * i));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reduce_is_identical_across_thread_counts() {
        // f64 addition is not associative, but the reduction tree is fixed
        // by the item count, so any worker count gives bit-identical sums.
        let reference = with_threads(1, || {
            parallel_reduce(1000, 1, |i| (i as f64).sqrt(), |a, b| a + b).unwrap()
        });
        for threads in [2usize, 3, 8, 64] {
            let sum = with_threads(threads, || {
                parallel_reduce(1000, 1, |i| (i as f64).sqrt(), |a, b| a + b).unwrap()
            });
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads {threads}");
        }
    }

    #[test]
    fn reduce_empty_is_none() {
        assert_eq!(parallel_reduce(0, 1, |i| i, |a, b| a + b), None);
    }

    #[test]
    fn tree_reduce_small_cases() {
        assert_eq!(tree_reduce(Vec::<i32>::new(), |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7], |a, b| a + b), Some(7));
        assert_eq!(tree_reduce(vec![1, 2, 3], |a, b| a + b), Some(6));
    }
}
