//! Behavioural tests of the pool itself: panic propagation, zero-length
//! inputs, nested use, and the `len % threads != 0` chunking edges.

use bnff_parallel::{
    chunk_ranges, is_nested, parallel_for, parallel_map_collect, parallel_reduce,
    parallel_rows_mut, parallel_rows_mut2, with_threads,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn worker_panic_propagates_to_caller() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_threads(4, || {
            parallel_for(8, 1, |range| {
                if range.contains(&5) {
                    panic!("worker exploded");
                }
            });
        });
    }));
    assert!(result.is_err(), "a panic on a worker thread must reach the caller");
}

#[test]
fn caller_chunk_panic_propagates_too() {
    // Chunk 0 runs on the calling thread; its panic must also surface (and
    // the scope must still join the workers first).
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_threads(4, || {
            parallel_for(8, 1, |range| {
                if range.contains(&0) {
                    panic!("caller chunk exploded");
                }
            });
        });
    }));
    assert!(result.is_err());
}

#[test]
fn pool_is_usable_after_a_panic() {
    let _ = catch_unwind(AssertUnwindSafe(|| {
        with_threads(2, || parallel_for(4, 1, |_| panic!("boom")));
    }));
    // The nesting flag and the thread override must have been restored.
    assert!(!is_nested());
    let sum = parallel_reduce(10, 1, |i| i, |a, b| a + b).unwrap();
    assert_eq!(sum, 45);
}

#[test]
fn zero_length_input_never_invokes_the_closure() {
    parallel_for(0, 1, |_| panic!("must not run"));
    parallel_rows_mut(&mut [] as &mut [f32], 4, 1, |_, _| panic!("must not run"));
    assert!(parallel_map_collect(0, 1, |i| i).is_empty());
    assert_eq!(parallel_reduce(0, 1, |i| i, |a, b| a + b), None);
}

#[test]
fn single_element_works() {
    let mut data = [41.0f32];
    parallel_rows_mut(&mut data, 1, 1, |first, block| {
        assert_eq!(first, 0);
        block[0] += 1.0;
    });
    assert_eq!(data, [42.0]);
}

#[test]
fn more_threads_than_work_items() {
    let mut data = vec![0usize; 3];
    with_threads(16, || {
        parallel_rows_mut(&mut data, 1, 1, |first, block| {
            for (offset, v) in block.iter_mut().enumerate() {
                *v = first + offset + 1;
            }
        });
    });
    assert_eq!(data, vec![1, 2, 3]);
}

#[test]
fn non_divisible_row_counts_lose_nothing() {
    // 7 rows over 3 threads: 3 + 2 + 2. Every row must be visited once.
    let mut data = vec![0u8; 7 * 5];
    with_threads(3, || {
        parallel_rows_mut(&mut data, 5, 1, |_, block| {
            for v in block.iter_mut() {
                *v += 1;
            }
        });
    });
    assert!(data.iter().all(|&v| v == 1));
}

#[test]
fn nested_dispatch_runs_serially_and_correctly() {
    let inner_parallel = AtomicUsize::new(0);
    let results = with_threads(4, || {
        parallel_map_collect(6, 1, |i| {
            // A dispatch from inside a worker must not spawn again…
            let nested_sum = parallel_reduce(100, 1, |j| j as u64, |a, b| a + b).unwrap();
            if is_nested() {
                inner_parallel.fetch_add(1, Ordering::Relaxed);
            }
            // …but it must still compute the right answer.
            assert_eq!(nested_sum, 4950);
            i * 10
        })
    });
    assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
    // With 4 workers over 6 items every chunk executes under the nesting
    // flag (including the caller's own chunk).
    assert_eq!(inner_parallel.load(Ordering::Relaxed), 6);
}

#[test]
fn rows_mut2_blocks_stay_in_lockstep() {
    // 5 rows; a has rows of 2, b rows of 3. Blocks handed to the closure
    // must always correspond to the same row range.
    let mut a = vec![0usize; 5 * 2];
    let mut b = vec![0usize; 5 * 3];
    with_threads(2, || {
        parallel_rows_mut2(&mut a, 2, &mut b, 3, 1, |first_row, block_a, block_b| {
            assert_eq!(block_a.len() / 2, block_b.len() / 3);
            for (offset, v) in block_a.iter_mut().enumerate() {
                *v = first_row + offset / 2;
            }
            for (offset, v) in block_b.iter_mut().enumerate() {
                *v = first_row + offset / 3;
            }
        });
    });
    for row in 0..5 {
        assert!(a[row * 2..(row + 1) * 2].iter().all(|&v| v == row));
        assert!(b[row * 3..(row + 1) * 3].iter().all(|&v| v == row));
    }
}

#[test]
#[should_panic(expected = "whole number of rows")]
fn ragged_rows_are_rejected_loudly() {
    // 10 elements cannot be rows of 4 — this must panic, not silently drop
    // the 2-element tail.
    let mut data = vec![0.0f32; 10];
    parallel_rows_mut(&mut data, 4, 1, |_, _| {});
}

#[test]
fn chunk_ranges_edge_cases() {
    assert!(chunk_ranges(0, 4).is_empty());
    assert!(chunk_ranges(4, 0).is_empty());
    assert_eq!(chunk_ranges(1, 100), vec![0..1]);
    // len % chunks != 0: all indices covered, sizes within one of each other.
    let ranges = chunk_ranges(11, 4);
    assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 11);
    assert_eq!(ranges.first().unwrap().start, 0);
    assert_eq!(ranges.last().unwrap().end, 11);
}
