//! The cumulative restructuring scenarios evaluated in the paper.

use bnff_graph::passes::{BnffPass, IcfPass, MvfPass, PassPipeline, RcfPass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four scenarios of Figure 7 (plus the unmodified baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionLevel {
    /// The reference implementation: no restructuring.
    Baseline,
    /// ReLU–CONV fusion only.
    Rcf,
    /// RCF + mean/variance fusion.
    RcfMvf,
    /// Full BN Fission-n-Fusion (includes MVF and RCF).
    Bnff,
    /// BNFF + inter-composite-layer fusion (Concat absorbs boundary stats).
    BnffIcf,
}

impl FusionLevel {
    /// All levels in the order the paper presents them.
    pub fn all() -> Vec<FusionLevel> {
        vec![
            FusionLevel::Baseline,
            FusionLevel::Rcf,
            FusionLevel::RcfMvf,
            FusionLevel::Bnff,
            FusionLevel::BnffIcf,
        ]
    }

    /// The levels measured (not estimated) on the CPU in the paper.
    pub fn measured() -> Vec<FusionLevel> {
        vec![FusionLevel::Baseline, FusionLevel::Rcf, FusionLevel::RcfMvf, FusionLevel::Bnff]
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            FusionLevel::Baseline => "Baseline",
            FusionLevel::Rcf => "RCF",
            FusionLevel::RcfMvf => "RCF+MVF",
            FusionLevel::Bnff => "BNFF",
            FusionLevel::BnffIcf => "BNFF+ICF",
        }
    }

    /// Builds the pass pipeline that realises this level.
    pub fn pipeline(self) -> PassPipeline {
        match self {
            FusionLevel::Baseline => PassPipeline::new(),
            FusionLevel::Rcf => PassPipeline::new().with(Box::new(RcfPass::new())),
            FusionLevel::RcfMvf => {
                PassPipeline::new().with(Box::new(MvfPass::new())).with(Box::new(RcfPass::new()))
            }
            FusionLevel::Bnff => PassPipeline::new().with(Box::new(BnffPass::new())),
            FusionLevel::BnffIcf => {
                PassPipeline::new().with(Box::new(BnffPass::new())).with(Box::new(IcfPass::new()))
            }
        }
    }
}

impl fmt::Display for FusionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_tensor::Shape;

    fn sample() -> bnff_graph::Graph {
        let mut b = GraphBuilder::new("s");
        let x = b.input("in", Shape::nchw(4, 16, 16, 16)).unwrap();
        let c1 = b.bn_relu_conv(x, Conv2dAttrs::pointwise(32), "a").unwrap();
        let c2 = b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(16), "b").unwrap();
        b.concat(vec![x, c2], "cat").unwrap();
        b.finish()
    }

    #[test]
    fn ordering_and_labels() {
        assert_eq!(FusionLevel::all().len(), 5);
        assert_eq!(FusionLevel::measured().len(), 4);
        assert_eq!(FusionLevel::Bnff.label(), "BNFF");
        assert_eq!(FusionLevel::RcfMvf.to_string(), "RCF+MVF");
    }

    #[test]
    fn baseline_pipeline_is_identity() {
        let g = sample();
        let out = FusionLevel::Baseline.pipeline().run(&g).unwrap();
        assert_eq!(out.node_count(), g.node_count());
    }

    #[test]
    fn deeper_levels_remove_more_sweeps() {
        let g = sample();
        let sweeps: Vec<usize> = FusionLevel::all()
            .into_iter()
            .map(|level| {
                let out = level.pipeline().run(&g).unwrap();
                bnff_graph::analysis::activation_sweep_count(&out).unwrap()
            })
            .collect();
        for window in sweeps.windows(2) {
            assert!(
                window[1] <= window[0],
                "sweeps must be monotonically non-increasing across levels: {sweeps:?}"
            );
        }
        assert!(sweeps[4] < sweeps[0]);
    }
}
