//! The user-facing optimizer: apply a fusion level to a model graph and
//! quantify the effect on a machine.

use crate::fusion_level::FusionLevel;
use crate::Result;
use bnff_graph::Graph;
use bnff_memsim::{simulate_iteration, IterationReport, MachineProfile};
use serde::Serialize;

/// Applies a [`FusionLevel`] to model graphs and compares the result on a
/// [`MachineProfile`].
#[derive(Debug, Clone, Copy)]
pub struct BnffOptimizer {
    level: FusionLevel,
}

impl BnffOptimizer {
    /// Creates an optimizer for the given fusion level.
    pub fn new(level: FusionLevel) -> Self {
        BnffOptimizer { level }
    }

    /// The configured fusion level.
    pub fn level(&self) -> FusionLevel {
        self.level
    }

    /// Applies the configured restructuring to a graph.
    ///
    /// # Errors
    /// Returns an error if a pass fails or produces an invalid graph.
    pub fn apply(&self, graph: &Graph) -> Result<Graph> {
        let out = self.level.pipeline().run(graph)?;
        out.validate()?;
        Ok(out)
    }

    /// Simulates both graphs on the machine and reports the comparison.
    ///
    /// # Errors
    /// Returns an error if the machine profile is invalid or simulation
    /// fails.
    pub fn compare(
        &self,
        baseline: &Graph,
        restructured: &Graph,
        machine: &MachineProfile,
    ) -> Result<ComparisonReport> {
        let base = simulate_iteration(baseline, machine)?;
        let opt = simulate_iteration(restructured, machine)?;
        Ok(ComparisonReport { level: self.level, baseline: base, restructured: opt })
    }
}

/// Side-by-side performance-model results for a baseline graph and its
/// restructured twin.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonReport {
    /// The fusion level that produced the restructured graph.
    pub level: FusionLevel,
    /// Simulation of the baseline graph.
    pub baseline: IterationReport,
    /// Simulation of the restructured graph.
    pub restructured: IterationReport,
}

impl ComparisonReport {
    /// Iteration-time speedup (baseline / restructured).
    pub fn speedup(&self) -> f64 {
        self.restructured.speedup_over(&self.baseline)
    }

    /// Relative execution-time improvement (`1 − restructured/baseline`),
    /// the way the paper quotes its gains.
    pub fn improvement(&self) -> f64 {
        self.restructured.improvement_over(&self.baseline)
    }

    /// Relative improvement of the forward pass only.
    pub fn forward_improvement(&self) -> f64 {
        1.0 - self.restructured.fwd_seconds / self.baseline.fwd_seconds
    }

    /// Relative improvement of the backward pass only.
    pub fn backward_improvement(&self) -> f64 {
        1.0 - self.restructured.bwd_seconds / self.baseline.bwd_seconds
    }

    /// Relative DRAM-traffic reduction.
    pub fn traffic_reduction(&self) -> f64 {
        self.restructured.traffic_reduction_over(&self.baseline)
    }
}

/// Convenience: apply `level` to `graph` and compare against the unmodified
/// graph on `machine` in one call.
///
/// # Errors
/// Returns an error if restructuring or simulation fails.
pub fn evaluate_level(
    graph: &Graph,
    level: FusionLevel,
    machine: &MachineProfile,
) -> Result<ComparisonReport> {
    let optimizer = BnffOptimizer::new(level);
    let restructured = optimizer.apply(graph)?;
    optimizer.compare(graph, &restructured, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_models::densenet_cifar;

    #[test]
    fn bnff_speeds_up_a_dense_block() {
        let graph = densenet_cifar(64, 12, 4, 10).unwrap();
        let machine = MachineProfile::skylake_xeon_2s();
        let report = evaluate_level(&graph, FusionLevel::Bnff, &machine).unwrap();
        assert!(report.speedup() > 1.0);
        assert!(report.improvement() > 0.0);
        assert!(report.traffic_reduction() > 0.0);
        assert!(report.forward_improvement() > report.backward_improvement());
    }

    #[test]
    fn levels_are_monotonic_on_densenet() {
        let graph = densenet_cifar(64, 12, 3, 10).unwrap();
        let machine = MachineProfile::skylake_xeon_2s();
        let mut last = 0.0;
        for level in FusionLevel::all() {
            let report = evaluate_level(&graph, level, &machine).unwrap();
            assert!(
                report.improvement() >= last - 1e-9,
                "{level} improvement {} dropped below previous {last}",
                report.improvement()
            );
            last = report.improvement();
        }
        assert!(last > 0.1, "BNFF+ICF should give a double-digit improvement, got {last}");
    }

    #[test]
    fn baseline_level_is_neutral() {
        let graph = densenet_cifar(32, 12, 2, 10).unwrap();
        let machine = MachineProfile::skylake_xeon_2s();
        let report = evaluate_level(&graph, FusionLevel::Baseline, &machine).unwrap();
        assert!((report.speedup() - 1.0).abs() < 1e-9);
        assert_eq!(report.level, FusionLevel::Baseline);
    }
}
