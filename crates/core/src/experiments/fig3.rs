//! Figure 3: memory-bandwidth utilization of DenseNet-121 layers over time.

use crate::Result;
use bnff_memsim::timeline::{bandwidth_series, simulate_timeline};
use bnff_memsim::MachineProfile;
use bnff_models::densenet121;
use serde::Serialize;

/// The bandwidth-utilization series of one training iteration.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Series {
    /// Mini-batch size used.
    pub batch: usize,
    /// Peak bandwidth of the machine in GB/s.
    pub peak_bandwidth_gbs: f64,
    /// Average bandwidth utilization per time bucket (0..=1).
    pub utilization: Vec<f64>,
    /// Average utilization of forward-pass non-CONV layers.
    pub non_conv_avg_utilization: f64,
    /// Average utilization of forward-pass CONV layers.
    pub conv_avg_utilization: f64,
    /// Total number of layer executions in the timeline.
    pub events: usize,
}

/// Reproduces Figure 3: the layer-by-layer bandwidth timeline of
/// DenseNet-121 on the Skylake profile.
///
/// # Errors
/// Returns an error if the model cannot be built or simulated.
pub fn figure3(batch: usize, buckets: usize) -> Result<Fig3Series> {
    let machine = MachineProfile::skylake_xeon_2s();
    let graph = densenet121(batch)?;
    let events = simulate_timeline(&graph, &machine)?;
    let utilization = bandwidth_series(&events, buckets);
    // Duration-weighted averages over forward events that actually move
    // data (Split forwards a pointer and is excluded, as in the paper).
    let mut conv_sum = 0.0;
    let mut conv_n = 0.0f64;
    let mut nc_sum = 0.0;
    let mut nc_n = 0.0f64;
    for e in events.iter().filter(|e| !e.backward && e.dram_bytes > 0.0) {
        if e.category == bnff_graph::op::LayerCategory::NonConv {
            nc_sum += e.bandwidth_utilization * e.duration;
            nc_n += e.duration;
        } else {
            conv_sum += e.bandwidth_utilization * e.duration;
            conv_n += e.duration;
        }
    }
    Ok(Fig3Series {
        batch,
        peak_bandwidth_gbs: machine.mem_bandwidth / 1e9,
        utilization,
        non_conv_avg_utilization: if nc_n > 0.0 { nc_sum / nc_n } else { 0.0 },
        conv_avg_utilization: if conv_n > 0.0 { conv_sum / conv_n } else { 0.0 },
        events: events.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::QUICK_BATCH;

    #[test]
    fn non_conv_layers_saturate_bandwidth_conv_layers_do_not() {
        let series = figure3(QUICK_BATCH, 64).unwrap();
        assert_eq!(series.utilization.len(), 64);
        assert!(series.events > 400, "DenseNet-121 should produce many layer events");
        // The paper: non-CONV layers are pinned at peak bandwidth while CONV
        // layers use at most ~half of it.
        assert!(
            series.non_conv_avg_utilization > 0.6,
            "non-CONV utilization {}",
            series.non_conv_avg_utilization
        );
        assert!(
            series.conv_avg_utilization < 0.55,
            "CONV utilization {}",
            series.conv_avg_utilization
        );
        assert!(series.non_conv_avg_utilization > series.conv_avg_utilization);
        assert!((series.peak_bandwidth_gbs - 230.4).abs() < 0.5);
    }
}
