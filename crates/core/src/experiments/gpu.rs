//! Section 5 (GPU): scenario improvements on a Pascal Titan X with a
//! CUTLASS-style open-source GEMM library.
//!
//! The paper implements RCF, MVF+RCF and BNFF on top of CUTLASS and reports
//! 0.7% / 1.8% / 17.5% improvements for DenseNet-121 (0.3% / 0.9% / 7.8% for
//! ResNet-50) at mini-batch 28. We reproduce the *shape* of this result with
//! the GPU machine profile: the gains are much smaller than on the CPU
//! (smaller batch → smaller feature maps relative to bandwidth, lower
//! per-layer launch overhead), BNFF still dominates the partial fusions, and
//! DenseNet gains more than ResNet.

use crate::fusion_level::FusionLevel;
use crate::optimizer::evaluate_level;
use crate::Result;
use bnff_memsim::MachineProfile;
use bnff_models::{build, Model};
use serde::Serialize;

/// One (model, scenario) improvement entry of the GPU evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct GpuRow {
    /// Model name.
    pub model: String,
    /// Scenario label.
    pub scenario: String,
    /// Relative execution-time improvement over the CUTLASS-style baseline.
    pub improvement: f64,
}

/// Reproduces the GPU scenario sweep at the given mini-batch size
/// (the paper uses 28).
///
/// # Errors
/// Returns an error if a model cannot be built, restructured or simulated.
pub fn gpu_cutlass(batch: usize) -> Result<Vec<GpuRow>> {
    let machine = MachineProfile::pascal_titan_x();
    let mut rows = Vec::new();
    for model in [Model::DenseNet121, Model::ResNet50] {
        let graph = build(model, batch)?;
        for level in [FusionLevel::Rcf, FusionLevel::RcfMvf, FusionLevel::Bnff] {
            let report = evaluate_level(&graph, level, &machine)?;
            rows.push(GpuRow {
                model: model.display_name().to_string(),
                scenario: level.label().to_string(),
                improvement: report.improvement(),
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn improvement(rows: &[GpuRow], model: &str, scenario: &str) -> f64 {
        rows.iter().find(|r| r.model == model && r.scenario == scenario).unwrap().improvement
    }

    #[test]
    fn gpu_gains_follow_the_papers_ordering() {
        let rows = gpu_cutlass(28).unwrap();
        assert_eq!(rows.len(), 6);
        let d_rcf = improvement(&rows, "DenseNet-121", "RCF");
        let d_mvf = improvement(&rows, "DenseNet-121", "RCF+MVF");
        let d_bnff = improvement(&rows, "DenseNet-121", "BNFF");
        let r_bnff = improvement(&rows, "ResNet-50", "BNFF");
        // RCF < RCF+MVF < BNFF, with BNFF delivering the bulk of the gain.
        assert!(d_rcf >= 0.0);
        assert!(d_mvf >= d_rcf);
        assert!(d_bnff > d_mvf);
        assert!(d_bnff > 1.3 * d_mvf, "BNFF ({d_bnff}) should clearly exceed RCF+MVF ({d_mvf})");
        // DenseNet gains more than ResNet.
        assert!(d_bnff > r_bnff);
        assert!(r_bnff > 0.0);
    }
}
