//! Figure 6: CONV/FC vs non-CONV execution time of DenseNet-121 across the
//! three data-parallel architectures (GPU, KNL, Skylake).

use crate::Result;
use bnff_memsim::{simulate_iteration, MachineProfile};
use bnff_models::densenet121;
use serde::Serialize;

/// One machine's bar of Figure 6.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Machine name.
    pub machine: String,
    /// Mini-batch size used on that machine in the paper.
    pub batch: usize,
    /// Time per iteration spent in CONV/FC layers (seconds).
    pub conv_seconds: f64,
    /// Time per iteration spent in non-CONV layers (seconds).
    pub non_conv_seconds: f64,
    /// Total time per iteration (seconds).
    pub total_seconds: f64,
    /// Total time per image (seconds), i.e. normalized by the batch.
    pub per_image_seconds: f64,
}

/// Reproduces Figure 6 with the paper's per-machine mini-batch sizes
/// (28 for the GPU, 128 for KNL, 120 for Skylake). Pass `scale` < 1.0 to
/// shrink every batch proportionally for quick runs.
///
/// # Errors
/// Returns an error if the model cannot be built or simulated.
pub fn figure6(scale: f64) -> Result<Vec<Fig6Row>> {
    let machines = [
        MachineProfile::pascal_titan_x(),
        MachineProfile::knights_landing(),
        MachineProfile::skylake_xeon_2s(),
    ];
    let mut rows = Vec::new();
    for machine in &machines {
        let batch = ((machine.default_batch as f64 * scale).round() as usize).max(1);
        let graph = densenet121(batch)?;
        let report = simulate_iteration(&graph, machine)?;
        let by_cat = report.seconds_by_category();
        let conv = by_cat.get(&bnff_graph::op::LayerCategory::ConvFc).copied().unwrap_or(0.0)
            + by_cat.get(&bnff_graph::op::LayerCategory::FusedConv).copied().unwrap_or(0.0);
        let non_conv = by_cat.get(&bnff_graph::op::LayerCategory::NonConv).copied().unwrap_or(0.0);
        rows.push(Fig6Row {
            machine: machine.name.clone(),
            batch,
            conv_seconds: conv,
            non_conv_seconds: non_conv,
            total_seconds: report.total_seconds(),
            per_image_seconds: report.total_seconds() / batch as f64,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_architectures_spend_more_time_in_non_conv_layers() {
        let rows = figure6(1.0).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.non_conv_seconds > row.conv_seconds,
                "{}: non-CONV {} should exceed CONV {}",
                row.machine,
                row.non_conv_seconds,
                row.conv_seconds
            );
            assert!(row.per_image_seconds > 0.0);
        }
        // Per-image execution time is of the same order across machines
        // (the paper's Figure 6(b)): max/min within a factor of ~3.
        let per_image: Vec<f64> = rows.iter().map(|r| r.per_image_seconds).collect();
        let max = per_image.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_image.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 3.0, "per-image times too far apart: {per_image:?}");
    }
}
