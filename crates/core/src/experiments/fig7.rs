//! Figure 7: execution time and memory accesses per training iteration for
//! the cumulative restructuring scenarios on DenseNet-121 and ResNet-50.

use crate::fusion_level::FusionLevel;
use crate::optimizer::evaluate_level;
use crate::Result;
use bnff_memsim::MachineProfile;
use bnff_models::{build, Model};
use serde::Serialize;

/// One (model, scenario) entry of Figure 7.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Model name.
    pub model: String,
    /// Scenario label (Baseline, RCF, RCF+MVF, BNFF, BNFF+ICF).
    pub scenario: String,
    /// Forward-pass time per iteration (seconds).
    pub fwd_seconds: f64,
    /// Backward-pass time per iteration (seconds).
    pub bwd_seconds: f64,
    /// Total time per iteration (seconds).
    pub total_seconds: f64,
    /// DRAM traffic per iteration (GB).
    pub dram_gb: f64,
    /// Relative execution-time improvement over the baseline.
    pub improvement: f64,
    /// Relative forward-pass improvement over the baseline.
    pub fwd_improvement: f64,
    /// Relative backward-pass improvement over the baseline.
    pub bwd_improvement: f64,
    /// Relative DRAM-traffic reduction over the baseline.
    pub traffic_reduction: f64,
    /// Peak activation bytes (GB) the memory planner needs for this
    /// scenario's graph.
    pub planned_peak_gb: f64,
    /// Activation bytes (GB) a naive one-buffer-per-node executor holds.
    pub naive_activation_gb: f64,
    /// Fraction of activation memory the planner saves over the naive
    /// executor for this scenario (`1 − planned/naive`).
    pub planner_reduction: f64,
    /// DRAM traffic (GB) of the CONV/FC GEMM lowerings under the
    /// cache-blocked packed engine.
    pub gemm_blocked_gb: f64,
    /// Fraction of GEMM DRAM traffic the blocked engine saves over
    /// whole-matrix streaming (`1 − blocked/streamed`).
    pub gemm_locality_reduction: f64,
}

/// Runs the Figure 7 scenario sweep for one model.
///
/// # Errors
/// Returns an error if the model cannot be built, restructured or simulated.
pub fn figure7_for_model(model: Model, batch: usize) -> Result<Vec<Fig7Row>> {
    let machine = MachineProfile::skylake_xeon_2s();
    let graph = build(model, batch)?;
    let mut rows = Vec::new();
    for level in FusionLevel::all() {
        // ICF only applies to DenseNet's composite-layer boundaries; the
        // paper evaluates it for DenseNet only.
        if level == FusionLevel::BnffIcf
            && !matches!(model, Model::DenseNet121 | Model::DenseNet169 | Model::DenseNetCifar)
        {
            continue;
        }
        let report = evaluate_level(&graph, level, &machine)?;
        rows.push(Fig7Row {
            model: model.display_name().to_string(),
            scenario: level.label().to_string(),
            fwd_seconds: report.restructured.fwd_seconds,
            bwd_seconds: report.restructured.bwd_seconds,
            total_seconds: report.restructured.total_seconds(),
            dram_gb: report.restructured.total_dram_bytes() / 1e9,
            improvement: report.improvement(),
            fwd_improvement: report.forward_improvement(),
            bwd_improvement: report.backward_improvement(),
            traffic_reduction: report.traffic_reduction(),
            planned_peak_gb: report.restructured.planned_peak_activation_bytes as f64 / 1e9,
            naive_activation_gb: report.restructured.naive_activation_bytes as f64 / 1e9,
            planner_reduction: report.restructured.planned_memory_reduction(),
            gemm_blocked_gb: report.restructured.gemm_dram_bytes_blocked / 1e9,
            gemm_locality_reduction: report.restructured.gemm_locality_reduction(),
        });
    }
    Ok(rows)
}

/// Reproduces Figure 7 for DenseNet-121 and ResNet-50.
///
/// # Errors
/// Returns an error if a model cannot be built, restructured or simulated.
pub fn figure7(batch: usize) -> Result<Vec<Fig7Row>> {
    let mut rows = figure7_for_model(Model::DenseNet121, batch)?;
    rows.extend(figure7_for_model(Model::ResNet50, batch)?);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::QUICK_BATCH;

    fn row<'a>(rows: &'a [Fig7Row], model: &str, scenario: &str) -> &'a Fig7Row {
        rows.iter().find(|r| r.model == model && r.scenario == scenario).unwrap()
    }

    #[test]
    fn densenet_scenarios_reproduce_the_papers_shape() {
        let rows = figure7_for_model(Model::DenseNet121, QUICK_BATCH).unwrap();
        assert_eq!(rows.len(), 5);
        let baseline = row(&rows, "DenseNet-121", "Baseline");
        let rcf = row(&rows, "DenseNet-121", "RCF");
        let rcf_mvf = row(&rows, "DenseNet-121", "RCF+MVF");
        let bnff = row(&rows, "DenseNet-121", "BNFF");
        let icf = row(&rows, "DenseNet-121", "BNFF+ICF");

        // Monotonically better scenarios.
        assert!(baseline.improvement.abs() < 1e-9);
        assert!(rcf.improvement > 0.02, "RCF improvement {}", rcf.improvement);
        assert!(rcf_mvf.improvement > rcf.improvement);
        assert!(bnff.improvement > rcf_mvf.improvement);
        assert!(icf.improvement > bnff.improvement);

        // Headline numbers: the paper reports 25.7% for BNFF and 43.7% for
        // BNFF+ICF on DenseNet-121; the model should land in the same band.
        assert!(
            (0.15..=0.45).contains(&bnff.improvement),
            "BNFF improvement {} outside the expected band",
            bnff.improvement
        );
        assert!(
            (0.25..=0.60).contains(&icf.improvement),
            "BNFF+ICF improvement {} outside the expected band",
            icf.improvement
        );

        // Forward gains dominate backward gains (47.9% vs 15.4% in the
        // paper; our analytical baseline omits the reference library's
        // im2col/workspace traffic, so the backward gap is narrower here).
        assert!(bnff.fwd_improvement > 1.2 * bnff.bwd_improvement);
        assert!(bnff.fwd_improvement > bnff.improvement);

        // Memory traffic drops (19.1% in the paper for BNFF).
        assert!(bnff.traffic_reduction > 0.10);
        assert!(bnff.dram_gb < baseline.dram_gb);

        // The blocked GEMM engine's traffic never exceeds what streaming
        // would move, and the lowering totals are populated.
        for r in &rows {
            assert!(r.gemm_blocked_gb > 0.0, "{}: no GEMM lowering traffic", r.scenario);
            assert!(
                (0.0..1.0).contains(&r.gemm_locality_reduction),
                "{}: locality reduction {} out of range",
                r.scenario,
                r.gemm_locality_reduction
            );
        }

        // The memory planner beats naive per-node allocation at every
        // fusion level.
        for r in &rows {
            assert!(
                r.planned_peak_gb < r.naive_activation_gb,
                "{}: planned {} GB vs naive {} GB",
                r.scenario,
                r.planned_peak_gb,
                r.naive_activation_gb
            );
            assert!(r.planner_reduction > 0.0);
        }
    }

    #[test]
    fn resnet_gains_are_smaller_than_densenet_gains() {
        let dense = figure7_for_model(Model::DenseNet121, QUICK_BATCH).unwrap();
        let res = figure7_for_model(Model::ResNet50, QUICK_BATCH).unwrap();
        // ResNet has no composite-layer boundaries, so no BNFF+ICF row.
        assert_eq!(res.len(), 4);
        let d_bnff = row(&dense, "DenseNet-121", "BNFF");
        let r_bnff = row(&res, "ResNet-50", "BNFF");
        assert!(
            d_bnff.improvement > r_bnff.improvement,
            "DenseNet BNFF gain {} should exceed ResNet gain {}",
            d_bnff.improvement,
            r_bnff.improvement
        );
        assert!(r_bnff.improvement > 0.05, "ResNet BNFF gain {}", r_bnff.improvement);
    }
}
