//! Table 1: peak single-precision performance and peak memory bandwidth of
//! the evaluated data-parallel architectures.

use bnff_memsim::MachineProfile;
use serde::Serialize;

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Machine name.
    pub machine: String,
    /// Peak single-precision TFLOPS.
    pub tflops: f64,
    /// Peak main-memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Compute-to-bandwidth ratio in FLOP per byte.
    pub flop_per_byte: f64,
    /// Mini-batch size the paper uses on this machine.
    pub batch: usize,
}

impl From<&MachineProfile> for Table1Row {
    fn from(m: &MachineProfile) -> Self {
        Table1Row {
            machine: m.name.clone(),
            tflops: m.peak_flops / 1e12,
            bandwidth_gbs: m.mem_bandwidth / 1e9,
            flop_per_byte: m.flop_per_byte(),
            batch: m.default_batch,
        }
    }
}

/// Reproduces Table 1.
pub fn table1() -> Vec<Table1Row> {
    [
        MachineProfile::skylake_xeon_2s(),
        MachineProfile::knights_landing(),
        MachineProfile::pascal_titan_x(),
    ]
    .iter()
    .map(Table1Row::from)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_values() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        assert!((rows[0].tflops - 3.34).abs() < 0.01);
        assert!((rows[0].bandwidth_gbs - 230.4).abs() < 0.5);
        assert!((rows[1].tflops - 5.30).abs() < 0.01);
        assert!((rows[1].bandwidth_gbs - 400.0).abs() < 0.5);
        assert!((rows[2].tflops - 10.0).abs() < 0.01);
        assert!((rows[2].bandwidth_gbs - 480.0).abs() < 0.5);
    }

    #[test]
    fn flop_per_byte_increases_towards_gpu() {
        let rows = table1();
        assert!(rows[2].flop_per_byte > rows[0].flop_per_byte);
    }
}
