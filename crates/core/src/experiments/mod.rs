//! One driver per table / figure of the paper's evaluation section.
//!
//! Every driver returns plain serializable rows so the `bnff-bench` binaries
//! can print them as tables and dump them as JSON, and `EXPERIMENTS.md` can
//! record paper-vs-measured values.
//!
//! | driver | paper artefact |
//! |---|---|
//! | [`figure1`] | Figure 1 — CONV/FC vs non-CONV execution-time breakdown |
//! | [`table1`]  | Table 1 — peak FLOPS / bandwidth of the three machines |
//! | [`figure3`] | Figure 3 — bandwidth-utilization timeline of DenseNet-121 |
//! | [`figure4`] | Figure 4 — BN/ReLU time with finite vs infinite bandwidth |
//! | [`figure6`] | Figure 6 — CONV vs non-CONV across GPU / KNL / Skylake |
//! | [`figure7`] | Figure 7 — execution time & memory accesses per scenario |
//! | [`figure8`] | Figure 8 — baseline vs BNFF at full and half bandwidth |
//! | [`gpu_cutlass`] | Section 5 — GPU (CUTLASS-style) scenario improvements |

mod fig1;
mod fig3;
mod fig4;
mod fig6;
mod fig7;
mod fig8;
mod gpu;
mod table1;

pub use fig1::{figure1, Fig1Row};
pub use fig3::{figure3, Fig3Series};
pub use fig4::{figure4, Fig4Row};
pub use fig6::{figure6, Fig6Row};
pub use fig7::{figure7, figure7_for_model, Fig7Row};
pub use fig8::{figure8, Fig8Row};
pub use gpu::{gpu_cutlass, GpuRow};
pub use table1::{table1, Table1Row};

/// The mini-batch size the paper uses on the Skylake system.
pub const PAPER_CPU_BATCH: usize = 120;

/// The batch used by the experiment tests. The performance model is driven
/// by shapes only, so analysing the ImageNet-scale graphs at the paper's
/// mini-batch size is cheap; using a smaller batch would shrink the feature
/// maps below the last-level cache and break the premise of Section 3.1.
pub const QUICK_BATCH: usize = PAPER_CPU_BATCH;
