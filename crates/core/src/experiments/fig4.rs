//! Figure 4: execution time of BN and ReLU layers with finite vs infinite
//! (hypothetical) memory bandwidth.

use crate::Result;
use bnff_memsim::{simulate_iteration, IterationReport, MachineProfile};
use bnff_models::densenet121;
use serde::Serialize;

/// One bar pair of Figure 4.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Layer type (`"BatchNorm"` or `"ReLU"`).
    pub layer: String,
    /// Time per iteration with the real memory system, in seconds.
    pub finite_seconds: f64,
    /// Time per iteration with infinite bandwidth, in seconds.
    pub infinite_seconds: f64,
    /// The resulting speedup.
    pub speedup: f64,
}

fn seconds_for(report: &IterationReport, op: &str) -> f64 {
    report.seconds_by_op().get(op).copied().unwrap_or(0.0)
}

/// Reproduces Figure 4 on DenseNet-121: BN and ReLU layer time with the real
/// Skylake memory system vs a hypothetical infinite-bandwidth machine
/// (the paper observes roughly a 20× speedup; Concat/Split are excluded as
/// in the paper).
///
/// # Errors
/// Returns an error if the model cannot be built or simulated.
pub fn figure4(batch: usize) -> Result<Vec<Fig4Row>> {
    let graph = densenet121(batch)?;
    let finite = simulate_iteration(&graph, &MachineProfile::skylake_xeon_2s())?;
    let infinite =
        simulate_iteration(&graph, &MachineProfile::skylake_xeon_2s().with_infinite_bandwidth())?;
    let mut rows = Vec::new();
    for layer in ["BatchNorm", "ReLU"] {
        let f = seconds_for(&finite, layer);
        let i = seconds_for(&infinite, layer);
        rows.push(Fig4Row {
            layer: layer.to_string(),
            finite_seconds: f,
            infinite_seconds: i,
            speedup: if i > 0.0 { f / i } else { 0.0 },
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::QUICK_BATCH;

    #[test]
    fn infinite_bandwidth_gives_order_of_magnitude_speedup() {
        let rows = figure4(QUICK_BATCH).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.finite_seconds > row.infinite_seconds);
            assert!(
                row.speedup > 5.0,
                "{} speedup {} too small to match the paper's ~20x observation",
                row.layer,
                row.speedup
            );
        }
        // BN is the heavier of the two non-CONV layer types.
        assert!(rows[0].finite_seconds > rows[1].finite_seconds);
    }
}
