//! Figure 8: baseline vs BNFF at full (230.4 GB/s) and halved (115.2 GB/s)
//! memory bandwidth.

use crate::fusion_level::FusionLevel;
use crate::optimizer::evaluate_level;
use crate::Result;
use bnff_memsim::{simulate_iteration, MachineProfile};
use bnff_models::densenet121;
use serde::Serialize;

/// One (bandwidth, scenario) entry of Figure 8.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Peak memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Scenario label ("Baseline" or "BNFF").
    pub scenario: String,
    /// Total time per iteration in seconds.
    pub total_seconds: f64,
    /// Fraction of time spent in non-CONV layers.
    pub non_conv_fraction: f64,
    /// BNFF's improvement over the baseline at this bandwidth (repeated on
    /// both rows of a bandwidth for convenience).
    pub bnff_improvement: f64,
}

/// Reproduces Figure 8 on DenseNet-121.
///
/// # Errors
/// Returns an error if the model cannot be built, restructured or simulated.
pub fn figure8(batch: usize) -> Result<Vec<Fig8Row>> {
    let graph = densenet121(batch)?;
    let mut rows = Vec::new();
    for bandwidth in [230.4e9, 115.2e9] {
        let machine = MachineProfile::skylake_xeon_2s().with_bandwidth(bandwidth);
        let baseline_report = simulate_iteration(&graph, &machine)?;
        let comparison = evaluate_level(&graph, FusionLevel::Bnff, &machine)?;
        let improvement = comparison.improvement();
        rows.push(Fig8Row {
            bandwidth_gbs: bandwidth / 1e9,
            scenario: "Baseline".to_string(),
            total_seconds: baseline_report.total_seconds(),
            non_conv_fraction: baseline_report.non_conv_fraction(),
            bnff_improvement: improvement,
        });
        rows.push(Fig8Row {
            bandwidth_gbs: bandwidth / 1e9,
            scenario: "BNFF".to_string(),
            total_seconds: comparison.restructured.total_seconds(),
            non_conv_fraction: comparison.restructured.non_conv_fraction(),
            bnff_improvement: improvement,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::QUICK_BATCH;

    #[test]
    fn halving_bandwidth_increases_bnff_gain_and_non_conv_share() {
        let rows = figure8(QUICK_BATCH).unwrap();
        assert_eq!(rows.len(), 4);
        let full_base = &rows[0];
        let full_bnff = &rows[1];
        let half_base = &rows[2];
        let half_bnff = &rows[3];

        // Halving bandwidth slows everything down.
        assert!(half_base.total_seconds > full_base.total_seconds);
        assert!(half_bnff.total_seconds > full_bnff.total_seconds);
        // The baseline's non-CONV share grows when bandwidth shrinks
        // (58.9% -> 63.0% in the paper).
        assert!(half_base.non_conv_fraction > full_base.non_conv_fraction);
        // And BNFF's advantage grows (25.7% -> 30.1% in the paper).
        assert!(
            half_base.bnff_improvement > full_base.bnff_improvement,
            "half-bandwidth gain {} should exceed full-bandwidth gain {}",
            half_base.bnff_improvement,
            full_base.bnff_improvement
        );
    }
}
