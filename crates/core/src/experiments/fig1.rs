//! Figure 1: execution-time breakdown of popular CNN models over layer
//! types (CONV/FC vs non-CONV) during training.

use crate::Result;
use bnff_memsim::{simulate_iteration, MachineProfile};
use bnff_models::{build, Model};
use serde::Serialize;

/// One bar of Figure 1.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Row {
    /// Model name.
    pub model: String,
    /// Fraction of iteration time spent in CONV/FC (and fused-CONV) layers.
    pub conv_fc_fraction: f64,
    /// Fraction spent in non-CONV layers.
    pub non_conv_fraction: f64,
    /// Absolute simulated iteration time in seconds.
    pub total_seconds: f64,
}

/// Reproduces Figure 1 on the Skylake profile at the given mini-batch size.
///
/// # Errors
/// Returns an error if a model cannot be built or simulated.
pub fn figure1(batch: usize) -> Result<Vec<Fig1Row>> {
    let machine = MachineProfile::skylake_xeon_2s();
    let mut rows = Vec::new();
    for model in Model::figure1_models() {
        let graph = build(model, batch)?;
        let report = simulate_iteration(&graph, &machine)?;
        rows.push(Fig1Row {
            model: model.display_name().to_string(),
            conv_fc_fraction: report.conv_fraction(),
            non_conv_fraction: report.non_conv_fraction(),
            total_seconds: report.total_seconds(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::QUICK_BATCH;

    #[test]
    fn early_models_are_conv_dominated_recent_ones_are_not() {
        let rows = figure1(QUICK_BATCH).unwrap();
        assert_eq!(rows.len(), 4);
        let by_name = |name: &str| rows.iter().find(|r| r.model == name).unwrap();
        let alexnet = by_name("AlexNet");
        let vgg = by_name("VGG-16");
        let densenet = by_name("DenseNet-121");
        let resnet = by_name("ResNet-50");
        // The paper: CONV/FC dominates the early models (up to ~95%)...
        assert!(alexnet.conv_fc_fraction > 0.75, "AlexNet {}", alexnet.conv_fc_fraction);
        assert!(vgg.conv_fc_fraction > 0.80, "VGG {}", vgg.conv_fc_fraction);
        // ...while DenseNet-121 spends more than half its time in non-CONV
        // layers, and ResNet-50 sits in between.
        assert!(densenet.non_conv_fraction > 0.5, "DenseNet {}", densenet.non_conv_fraction);
        assert!(densenet.non_conv_fraction > resnet.non_conv_fraction);
        assert!(resnet.non_conv_fraction > vgg.non_conv_fraction);
        for row in &rows {
            assert!((row.conv_fc_fraction + row.non_conv_fraction - 1.0).abs() < 1e-9);
            assert!(row.total_seconds > 0.0);
        }
    }
}
