//! Error type of the public API.

use std::fmt;

/// Errors produced by the BNFF optimizer and the experiment drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error bubbled up from the graph crate.
    Graph(bnff_graph::GraphError),
    /// An error bubbled up from the performance model.
    Memsim(bnff_memsim::MemsimError),
    /// An error bubbled up from the training substrate.
    Train(String),
    /// An invalid experiment configuration.
    InvalidArgument(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(err) => write!(f, "graph error: {err}"),
            CoreError::Memsim(err) => write!(f, "performance model error: {err}"),
            CoreError::Train(msg) => write!(f, "training error: {msg}"),
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(err) => Some(err),
            CoreError::Memsim(err) => Some(err),
            _ => None,
        }
    }
}

impl From<bnff_graph::GraphError> for CoreError {
    fn from(err: bnff_graph::GraphError) -> Self {
        CoreError::Graph(err)
    }
}

impl From<bnff_memsim::MemsimError> for CoreError {
    fn from(err: bnff_memsim::MemsimError) -> Self {
        CoreError::Memsim(err)
    }
}

impl From<bnff_train::TrainError> for CoreError {
    fn from(err: bnff_train::TrainError) -> Self {
        CoreError::Train(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = bnff_graph::GraphError::CyclicGraph.into();
        assert!(e.to_string().contains("cycle"));
        let e: CoreError = bnff_memsim::MemsimError::InvalidProfile("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = bnff_train::TrainError::InvalidArgument("y".into()).into();
        assert!(e.to_string().contains("training"));
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
