//! # bnff-core — BN Fission-n-Fusion as a public API + the paper's experiments
//!
//! This crate is the user-facing entry point of the reproduction. It wraps
//! the restructuring passes behind a [`BnffOptimizer`] configured with a
//! [`FusionLevel`] (the four cumulative scenarios of the paper's Figure 7),
//! and provides one driver per table/figure of the evaluation section in
//! [`experiments`].
//!
//! ```rust
//! use bnff_core::{BnffOptimizer, FusionLevel};
//! use bnff_memsim::MachineProfile;
//! use bnff_models::densenet_cifar;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = densenet_cifar(16, 12, 4, 10)?;
//! let optimizer = BnffOptimizer::new(FusionLevel::Bnff);
//! let restructured = optimizer.apply(&graph)?;
//! let report = optimizer.compare(&graph, &restructured, &MachineProfile::skylake_xeon_2s())?;
//! assert!(report.speedup() >= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod experiments;
pub mod fusion_level;
pub mod optimizer;

pub use error::CoreError;
pub use fusion_level::FusionLevel;
pub use optimizer::{BnffOptimizer, ComparisonReport};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
