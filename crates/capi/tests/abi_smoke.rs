//! Drives the full C ABI surface in-process: load → engine → infer →
//! metrics → free, plus every guard (bad path, stale handles, double-free,
//! undersized buffers). The offline build has no `dlopen` bindings, so the
//! `extern "C"` functions are called directly through the rlib — the same
//! symbols the cdylib exports.

use bnff_capi::{
    bnff_abi_version, bnff_engine_start, bnff_free, bnff_infer, bnff_infer_traced, bnff_last_error,
    bnff_metrics_json, bnff_metrics_prometheus, bnff_model_classes, bnff_model_load,
    bnff_model_sample_len, BnffTrace, BNFF_ERR_BAD_HANDLE, BNFF_ERR_BUFFER_TOO_SMALL,
    BNFF_ERR_INVALID, BNFF_OK,
};
use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_serve::ServeEngine;
use bnff_tensor::init::Initializer;
use bnff_tensor::Shape;
use bnff_train::checkpoint::Checkpoint;
use bnff_train::Executor;
use std::ffi::{CStr, CString};

/// Trains a tiny classifier and writes it as a binary artifact.
fn write_model(path: &std::path::Path) -> Executor {
    let mut b = GraphBuilder::new("abi-cls");
    let x = b.input("data", Shape::nchw(2, 3, 6, 6)).unwrap();
    let labels = b.input("labels", Shape::vector(2)).unwrap();
    let stem = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(4), "stem").unwrap();
    let gap = b.global_avg_pool(stem, "gap").unwrap();
    let fc = b.fully_connected(gap, 3, "fc").unwrap();
    b.softmax_loss(fc, labels, "loss").unwrap();
    let graph = b.finish();

    let mut exec = Executor::new(graph, 41).unwrap();
    let mut init = Initializer::seeded(42);
    let data = init.uniform(Shape::nchw(2, 3, 6, 6), -1.0, 1.0);
    let fwd = exec.forward(&data, &[0, 1]).unwrap();
    exec.update_running_stats(&fwd).unwrap();
    Checkpoint::capture(&exec).write_artifact(path).unwrap();
    exec
}

fn last_error() -> String {
    let ptr = bnff_last_error();
    assert!(!ptr.is_null(), "a failing call must record a message");
    unsafe { CStr::from_ptr(ptr) }.to_str().unwrap().to_string()
}

#[test]
fn full_lifecycle_over_the_c_abi() {
    assert_eq!(bnff_abi_version(), 1);

    let dir = std::env::temp_dir().join(format!("bnff-abi-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.bnff");
    let exec = write_model(&model_path);

    let c_path = CString::new(model_path.to_str().unwrap()).unwrap();
    let model = unsafe { bnff_model_load(c_path.as_ptr()) };
    assert!(!model.is_null(), "{}", last_error());

    let sample_len = unsafe { bnff_model_sample_len(model) };
    assert_eq!(sample_len, 3 * 6 * 6);
    let classes = unsafe { bnff_model_classes(model) };
    assert_eq!(classes, 3);

    let engine = unsafe { bnff_engine_start(model, 1, 4, 500, 16) };
    assert!(!engine.is_null(), "{}", last_error());

    // Reference scores straight through the Rust API on the same file.
    let reference_model = ServeEngine::builder().model_file(&model_path).build_model().unwrap();
    let single = reference_model.executor(1).unwrap();
    let mut init = Initializer::seeded(7);
    let sample = init.uniform(Shape::new(vec![3, 6, 6]), -1.0, 1.0);
    let batched =
        bnff_tensor::Tensor::from_vec(Shape::nchw(1, 3, 6, 6), sample.as_slice().to_vec()).unwrap();
    let expected: Vec<u32> =
        single.infer(&batched).unwrap().as_slice().iter().map(|v| v.to_bits()).collect();

    let mut scores = vec![0.0f32; classes as usize];
    let mut written = 0u64;
    let code = unsafe {
        bnff_infer(
            engine,
            sample.as_slice().as_ptr(),
            sample_len,
            scores.as_mut_ptr(),
            scores.len() as u64,
            &mut written,
        )
    };
    assert_eq!(code, BNFF_OK, "{}", last_error());
    assert_eq!(written, classes);
    let got: Vec<u32> = scores.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, expected, "ABI scores must match direct frozen inference exactly");

    // Undersized buffer: typed error, required size still reported.
    let mut tiny = [0.0f32; 1];
    let mut needed = 0u64;
    let code = unsafe {
        bnff_infer(
            engine,
            sample.as_slice().as_ptr(),
            sample_len,
            tiny.as_mut_ptr(),
            1,
            &mut needed,
        )
    };
    assert_eq!(code, BNFF_ERR_BUFFER_TOO_SMALL);
    assert_eq!(needed, classes);

    // Wrong sample length: invalid argument.
    let code = unsafe {
        bnff_infer(engine, sample.as_slice().as_ptr(), 2, scores.as_mut_ptr(), 3, &mut written)
    };
    assert_eq!(code, BNFF_ERR_INVALID);
    assert!(last_error().contains("expects 108"));

    // Traced inference: same scores, plus span timings in the out-struct.
    let mut trace = BnffTrace::default();
    let code = unsafe {
        bnff_infer_traced(
            engine,
            sample.as_slice().as_ptr(),
            sample_len,
            scores.as_mut_ptr(),
            scores.len() as u64,
            &mut written,
            &mut trace,
        )
    };
    assert_eq!(code, BNFF_OK, "{}", last_error());
    let traced_bits: Vec<u32> = scores.iter().map(|v| v.to_bits()).collect();
    assert_eq!(traced_bits, expected, "traced inference must not perturb the scores");
    assert!(trace.request_id > 0, "the trace carries the minted request ID");
    assert!(trace.batch_size >= 1);
    assert_eq!(trace.worker, 0, "single-worker engine");
    assert!(trace.stolen <= 1);

    // Metrics: a parseable ServeReport that saw our request.
    let metrics = unsafe { bnff_metrics_json(engine) };
    assert!(!metrics.is_null(), "{}", last_error());
    let json = unsafe { CStr::from_ptr(metrics) }.to_str().unwrap().to_string();
    let report: bnff_serve::ServeReport = serde_json::from_str(&json).unwrap();
    assert!(report.requests >= 1);

    // Prometheus exposition over the same registry.
    let exposition = unsafe { bnff_metrics_prometheus(engine) };
    assert!(!exposition.is_null(), "{}", last_error());
    let text = unsafe { CStr::from_ptr(exposition) }.to_str().unwrap().to_string();
    assert!(text.contains("# TYPE bnff_requests_total counter"));
    assert!(text.contains("bnff_request_latency_seconds_bucket"));
    assert_eq!(unsafe { bnff_free(exposition.cast()) }, BNFF_OK);

    // Free everything once: OK. Free again: typed error, not UB.
    assert_eq!(unsafe { bnff_free(metrics.cast()) }, BNFF_OK);
    assert_eq!(unsafe { bnff_free(metrics.cast()) }, BNFF_ERR_BAD_HANDLE);
    assert_eq!(unsafe { bnff_free(engine.cast()) }, BNFF_OK);
    assert_eq!(unsafe { bnff_free(engine.cast()) }, BNFF_ERR_BAD_HANDLE);

    // A freed engine handle is stale, not dereferenced.
    let code = unsafe {
        bnff_infer(
            engine,
            sample.as_slice().as_ptr(),
            sample_len,
            scores.as_mut_ptr(),
            3,
            &mut written,
        )
    };
    assert_eq!(code, BNFF_ERR_BAD_HANDLE);

    assert_eq!(unsafe { bnff_free(model.cast()) }, BNFF_OK);
    assert_eq!(unsafe { bnff_free(model.cast()) }, BNFF_ERR_BAD_HANDLE);
    assert_eq!(unsafe { bnff_free(std::ptr::null_mut()) }, BNFF_ERR_BAD_HANDLE);

    drop(exec);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_failures_set_last_error() {
    let missing = CString::new("/nonexistent/model.bnff").unwrap();
    let model = unsafe { bnff_model_load(missing.as_ptr()) };
    assert!(model.is_null());
    assert!(last_error().contains("bnff_model_load"));

    let model = unsafe { bnff_model_load(std::ptr::null()) };
    assert!(model.is_null());
    assert!(last_error().contains("null"));

    // Stale/foreign pointers are rejected before any dereference.
    assert_eq!(unsafe { bnff_model_sample_len(std::ptr::null()) }, 0);
    assert_eq!(unsafe { bnff_model_classes(std::ptr::dangling()) }, 0);
    let engine = unsafe { bnff_engine_start(std::ptr::dangling(), 0, 0, 0, 0) };
    assert!(engine.is_null());
    assert!(last_error().contains("live model handle"));
}
