//! `bnff-capi` — the stable C ABI over model loading and serving.
//!
//! Builds as a `cdylib` (`libbnff_capi.so`) so non-Rust hosts can embed the
//! serving engine: load a model file (binary artifact or JSON checkpoint),
//! start an engine, run inference, read metrics, free everything.
//!
//! # ABI contract
//!
//! - Every function is `extern "C"` and panic-safe: panics are caught at
//!   the boundary and surface as [`BNFF_ERR_PANIC`], never as unwinding
//!   into the caller.
//! - Handles (`BnffModel*`, `BnffEngine*`) and strings returned by this
//!   library are opaque and are released with [`bnff_free`]. Double-frees
//!   and frees of foreign pointers are detected via a live-handle registry
//!   and rejected with an error code — no undefined behavior.
//! - Functions that can fail return either a null pointer or a negative
//!   error code; [`bnff_last_error`] returns a thread-local human-readable
//!   message for the most recent failure on the calling thread.
//! - [`bnff_abi_version`] gates compatibility: hosts check it before any
//!   other call. The version only moves when the exported surface breaks.
//!
//! The smoke test in `tests/abi_smoke.rs` drives this exact surface
//! in-process (the offline build has no `dlopen` bindings); CI additionally
//! builds the `cdylib` artifact.

use bnff_obs::next_request_id;
use bnff_serve::{FrozenModel, ServeEngine};
use bnff_tensor::Tensor;
use std::collections::HashMap;
use std::ffi::{c_char, c_void, CStr, CString};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// The ABI version this library exports. Bumped on any breaking change to
/// the exported surface.
pub const BNFF_ABI_VERSION: u32 = 1;

/// Success.
pub const BNFF_OK: i32 = 0;
/// Generic failure; details via [`bnff_last_error`].
pub const BNFF_ERR: i32 = -1;
/// A required pointer was null or an argument was invalid.
pub const BNFF_ERR_INVALID: i32 = -2;
/// The engine shed the request at admission (queues full).
pub const BNFF_ERR_OVERLOADED: i32 = -3;
/// The request expired in the queue past its deadline.
pub const BNFF_ERR_DEADLINE: i32 = -4;
/// The engine is shutting down.
pub const BNFF_ERR_SHUTDOWN: i32 = -5;
/// The pointer is not a live handle (double-free, foreign, or stale).
pub const BNFF_ERR_BAD_HANDLE: i32 = -6;
/// The caller's output buffer is too small; the required size was written.
pub const BNFF_ERR_BUFFER_TOO_SMALL: i32 = -7;
/// A panic was caught at the ABI boundary.
pub const BNFF_ERR_PANIC: i32 = -8;

/// Opaque handle to a loaded, frozen model.
pub struct BnffModel {
    model: FrozenModel,
}

/// Opaque handle to a running serving engine.
pub struct BnffEngine {
    engine: ServeEngine,
}

/// Span timings for one traced request, written by [`bnff_infer_traced`].
///
/// All fields are plain integers so the layout is ABI-stable; `stolen` is
/// 0 or 1.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct BnffTrace {
    /// The process-unique request ID minted at ingress.
    pub request_id: u64,
    /// Microseconds spent queued before a worker took the request.
    pub queue_us: u64,
    /// Microseconds of tape execution for the request's batch.
    pub infer_us: u64,
    /// How many samples the request's batch coalesced.
    pub batch_size: u64,
    /// Which engine worker ran the batch.
    pub worker: u64,
    /// 1 when the batch was work-stolen from another shard's queue.
    pub stolen: u8,
    /// Reserved padding; always 0.
    pub _reserved: [u8; 7],
}

/// What a registered live pointer points at — drives [`bnff_free`].
enum HandleKind {
    Model,
    Engine,
    Str,
}

/// Live-handle registry: address → kind. The guard that turns double-frees
/// and foreign pointers into error codes instead of undefined behavior.
fn registry() -> &'static Mutex<HashMap<usize, HandleKind>> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, HandleKind>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn register(addr: usize, kind: HandleKind) {
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner).insert(addr, kind);
}

fn unregister(addr: usize) -> Option<HandleKind> {
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner).remove(&addr)
}

fn is_live(addr: usize) -> bool {
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner).contains_key(&addr)
}

thread_local! {
    static LAST_ERROR: std::cell::RefCell<Option<CString>> =
        const { std::cell::RefCell::new(None) };
}

fn set_last_error(message: &str) {
    let sanitized = message.replace('\0', "\\0");
    LAST_ERROR.with(|slot| {
        *slot.borrow_mut() = CString::new(sanitized).ok();
    });
}

fn error_code(err: &bnff_serve::ServeError) -> i32 {
    match err {
        bnff_serve::ServeError::Overloaded { .. } => BNFF_ERR_OVERLOADED,
        bnff_serve::ServeError::DeadlineExceeded => BNFF_ERR_DEADLINE,
        bnff_serve::ServeError::ShuttingDown => BNFF_ERR_SHUTDOWN,
        bnff_serve::ServeError::InvalidArgument(_) => BNFF_ERR_INVALID,
        _ => BNFF_ERR,
    }
}

/// Runs `f` with panics converted to `fallback` + a last-error message.
fn guarded<T>(fallback: T, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => value,
        Err(_) => {
            set_last_error("panic caught at the bnff ABI boundary");
            fallback
        }
    }
}

/// The ABI version of this library. Hosts must check this before any other
/// call and refuse to proceed on a mismatch.
#[no_mangle]
pub extern "C" fn bnff_abi_version() -> u32 {
    BNFF_ABI_VERSION
}

/// The human-readable message for the most recent failure on the calling
/// thread, or null when no failure has been recorded.
///
/// The pointer is owned by the library and stays valid until the next
/// failing `bnff_*` call on the same thread; do **not** pass it to
/// [`bnff_free`].
#[no_mangle]
pub extern "C" fn bnff_last_error() -> *const c_char {
    LAST_ERROR
        .with(|slot| slot.borrow().as_ref().map_or(std::ptr::null(), |message| message.as_ptr()))
}

/// Loads a model file — binary artifact or JSON checkpoint, sniffed from
/// the magic bytes — and freezes it for inference.
///
/// Returns an opaque handle, or null on failure (see [`bnff_last_error`]).
/// Release with [`bnff_free`].
///
/// # Safety
/// `path` must be a valid NUL-terminated UTF-8 string or null (null is
/// rejected with an error, not UB).
#[no_mangle]
pub unsafe extern "C" fn bnff_model_load(path: *const c_char) -> *mut BnffModel {
    guarded(std::ptr::null_mut(), || {
        if path.is_null() {
            set_last_error("bnff_model_load: path is null");
            return std::ptr::null_mut();
        }
        let path = match unsafe { CStr::from_ptr(path) }.to_str() {
            Ok(path) => path,
            Err(_) => {
                set_last_error("bnff_model_load: path is not UTF-8");
                return std::ptr::null_mut();
            }
        };
        match ServeEngine::builder().model_file(path).build_model() {
            Ok(model) => {
                let handle = Box::into_raw(Box::new(BnffModel { model }));
                register(handle as usize, HandleKind::Model);
                handle
            }
            Err(e) => {
                set_last_error(&format!("bnff_model_load: {e}"));
                std::ptr::null_mut()
            }
        }
    })
}

/// Number of `f32` values in one input sample (`C·H·W`), or 0 on error.
/// Hosts use this to size the buffer passed to [`bnff_infer`].
///
/// # Safety
/// `model` must be a handle returned by [`bnff_model_load`] that has not
/// been freed (stale handles are rejected with an error, not UB).
#[no_mangle]
pub unsafe extern "C" fn bnff_model_sample_len(model: *const BnffModel) -> u64 {
    guarded(0, || {
        if model.is_null() || !is_live(model as usize) {
            set_last_error("bnff_model_sample_len: not a live model handle");
            return 0;
        }
        match unsafe { &*model }.model.sample_shape() {
            Ok(shape) => shape.volume() as u64,
            Err(e) => {
                set_last_error(&format!("bnff_model_sample_len: {e}"));
                0
            }
        }
    })
}

/// Number of classifier scores per sample, or 0 on error. Hosts use this
/// to size the score buffer passed to [`bnff_infer`].
///
/// # Safety
/// `model` must be a live handle from [`bnff_model_load`].
#[no_mangle]
pub unsafe extern "C" fn bnff_model_classes(model: *const BnffModel) -> u64 {
    guarded(0, || {
        if model.is_null() || !is_live(model as usize) {
            set_last_error("bnff_model_classes: not a live model handle");
            return 0;
        }
        match unsafe { &*model }.model.classes() {
            Ok(classes) => classes as u64,
            Err(e) => {
                set_last_error(&format!("bnff_model_classes: {e}"));
                0
            }
        }
    })
}

/// Starts a serving engine over a loaded model.
///
/// `workers`, `max_batch` and `queue_depth` of 0 select the engine
/// defaults; `max_wait_us` is the batching dwell in microseconds (0 keeps
/// the default). The model handle stays valid and owned by the caller —
/// the engine takes its own copy.
///
/// Returns an opaque handle, or null on failure. Release with
/// [`bnff_free`], which drains in-flight requests.
///
/// # Safety
/// `model` must be a live handle from [`bnff_model_load`].
#[no_mangle]
pub unsafe extern "C" fn bnff_engine_start(
    model: *const BnffModel,
    workers: u32,
    max_batch: u32,
    max_wait_us: u64,
    queue_depth: u32,
) -> *mut BnffEngine {
    guarded(std::ptr::null_mut(), || {
        if model.is_null() || !is_live(model as usize) {
            set_last_error("bnff_engine_start: not a live model handle");
            return std::ptr::null_mut();
        }
        let mut builder = ServeEngine::builder().model(unsafe { &*model }.model.clone());
        if workers > 0 {
            builder = builder.workers(workers as usize);
        }
        if max_batch > 0 {
            builder = builder.max_batch(max_batch as usize);
        }
        if max_wait_us > 0 {
            builder = builder.max_wait(Duration::from_micros(max_wait_us));
        }
        if queue_depth > 0 {
            builder = builder.queue_depth(queue_depth as usize);
        }
        match builder.start() {
            Ok(engine) => {
                let handle = Box::into_raw(Box::new(BnffEngine { engine }));
                register(handle as usize, HandleKind::Engine);
                handle
            }
            Err(e) => {
                set_last_error(&format!("bnff_engine_start: {e}"));
                std::ptr::null_mut()
            }
        }
    })
}

/// Runs one sample through the engine and copies the classifier scores
/// into `scores_out`.
///
/// `sample` points at `sample_len` `f32` values in `C × H × W` order
/// (`sample_len` must equal [`bnff_model_sample_len`]). On success the
/// score count is written to `scores_written` and the scores to
/// `scores_out`. When `scores_cap` is too small, returns
/// [`BNFF_ERR_BUFFER_TOO_SMALL`] and writes the required count to
/// `scores_written` without touching `scores_out`.
///
/// Returns [`BNFF_OK`] or a negative `BNFF_ERR_*` code.
///
/// # Safety
/// `engine` must be a live handle from [`bnff_engine_start`]; `sample`
/// must point at `sample_len` readable `f32`s; `scores_out` must point at
/// `scores_cap` writable `f32`s; `scores_written`, when non-null, must be
/// writable.
#[no_mangle]
pub unsafe extern "C" fn bnff_infer(
    engine: *const BnffEngine,
    sample: *const f32,
    sample_len: u64,
    scores_out: *mut f32,
    scores_cap: u64,
    scores_written: *mut u64,
) -> i32 {
    guarded(BNFF_ERR_PANIC, || {
        if engine.is_null() || !is_live(engine as usize) {
            set_last_error("bnff_infer: not a live engine handle");
            return BNFF_ERR_BAD_HANDLE;
        }
        if sample.is_null() {
            set_last_error("bnff_infer: sample is null");
            return BNFF_ERR_INVALID;
        }
        let engine = &unsafe { &*engine }.engine;
        let shape = match engine.sample_shape() {
            Ok(shape) => shape,
            Err(e) => {
                set_last_error(&format!("bnff_infer: {e}"));
                return error_code(&e);
            }
        };
        if sample_len as usize != shape.volume() {
            set_last_error(&format!(
                "bnff_infer: sample has {sample_len} values, model expects {} ({shape})",
                shape.volume()
            ));
            return BNFF_ERR_INVALID;
        }
        let values = unsafe { std::slice::from_raw_parts(sample, sample_len as usize) };
        let tensor = match Tensor::from_vec(shape, values.to_vec()) {
            Ok(tensor) => tensor,
            Err(e) => {
                set_last_error(&format!("bnff_infer: {e}"));
                return BNFF_ERR_INVALID;
            }
        };
        let completion = match engine.infer_blocking(tensor) {
            Ok(completion) => completion,
            Err(e) => {
                set_last_error(&format!("bnff_infer: {e}"));
                return error_code(&e);
            }
        };
        let scores = completion.scores.as_slice();
        if !scores_written.is_null() {
            unsafe { *scores_written = scores.len() as u64 };
        }
        if (scores_cap as usize) < scores.len() {
            set_last_error(&format!(
                "bnff_infer: {} scores do not fit in a buffer of {scores_cap}",
                scores.len()
            ));
            return BNFF_ERR_BUFFER_TOO_SMALL;
        }
        if scores_out.is_null() {
            set_last_error("bnff_infer: scores_out is null");
            return BNFF_ERR_INVALID;
        }
        unsafe {
            std::ptr::copy_nonoverlapping(scores.as_ptr(), scores_out, scores.len());
        }
        BNFF_OK
    })
}

/// Like [`bnff_infer`], but forces a trace on the request and writes the
/// span timings (queue wait, tape execution, batch size, worker) to
/// `trace_out`. The request ID in the trace is minted by the library and
/// is unique within the process.
///
/// Returns [`BNFF_OK`] or a negative `BNFF_ERR_*` code; on error
/// `trace_out` is untouched.
///
/// # Safety
/// Same contract as [`bnff_infer`]; additionally `trace_out`, when
/// non-null, must point at a writable [`BnffTrace`].
#[no_mangle]
pub unsafe extern "C" fn bnff_infer_traced(
    engine: *const BnffEngine,
    sample: *const f32,
    sample_len: u64,
    scores_out: *mut f32,
    scores_cap: u64,
    scores_written: *mut u64,
    trace_out: *mut BnffTrace,
) -> i32 {
    guarded(BNFF_ERR_PANIC, || {
        if engine.is_null() || !is_live(engine as usize) {
            set_last_error("bnff_infer_traced: not a live engine handle");
            return BNFF_ERR_BAD_HANDLE;
        }
        if sample.is_null() {
            set_last_error("bnff_infer_traced: sample is null");
            return BNFF_ERR_INVALID;
        }
        let engine = &unsafe { &*engine }.engine;
        let shape = match engine.sample_shape() {
            Ok(shape) => shape,
            Err(e) => {
                set_last_error(&format!("bnff_infer_traced: {e}"));
                return error_code(&e);
            }
        };
        if sample_len as usize != shape.volume() {
            set_last_error(&format!(
                "bnff_infer_traced: sample has {sample_len} values, model expects {} ({shape})",
                shape.volume()
            ));
            return BNFF_ERR_INVALID;
        }
        let values = unsafe { std::slice::from_raw_parts(sample, sample_len as usize) };
        let tensor = match Tensor::from_vec(shape, values.to_vec()) {
            Ok(tensor) => tensor,
            Err(e) => {
                set_last_error(&format!("bnff_infer_traced: {e}"));
                return BNFF_ERR_INVALID;
            }
        };
        let completion = match engine
            .submit_traced(tensor, next_request_id(), true)
            .and_then(|rx| rx.recv().map_err(|_| bnff_serve::ServeError::ShuttingDown)?)
        {
            Ok(completion) => completion,
            Err(e) => {
                set_last_error(&format!("bnff_infer_traced: {e}"));
                return error_code(&e);
            }
        };
        let scores = completion.scores.as_slice();
        if !scores_written.is_null() {
            unsafe { *scores_written = scores.len() as u64 };
        }
        if (scores_cap as usize) < scores.len() {
            set_last_error(&format!(
                "bnff_infer_traced: {} scores do not fit in a buffer of {scores_cap}",
                scores.len()
            ));
            return BNFF_ERR_BUFFER_TOO_SMALL;
        }
        if scores_out.is_null() {
            set_last_error("bnff_infer_traced: scores_out is null");
            return BNFF_ERR_INVALID;
        }
        unsafe {
            std::ptr::copy_nonoverlapping(scores.as_ptr(), scores_out, scores.len());
        }
        if !trace_out.is_null() {
            // force_trace guarantees the completion carries a trace.
            if let Some(trace) = completion.trace {
                unsafe {
                    *trace_out = BnffTrace {
                        request_id: trace.request_id,
                        queue_us: trace.queue_us,
                        infer_us: trace.infer_us,
                        batch_size: trace.batch_size as u64,
                        worker: trace.worker as u64,
                        stolen: u8::from(trace.stolen),
                        _reserved: [0; 7],
                    };
                }
            }
        }
        BNFF_OK
    })
}

/// A JSON snapshot of the engine's serving metrics (the same
/// `ServeReport` document `GET /v1/metrics` returns).
///
/// Returns a NUL-terminated string owned by the caller — release it with
/// [`bnff_free`] — or null on failure.
///
/// # Safety
/// `engine` must be a live handle from [`bnff_engine_start`].
#[no_mangle]
pub unsafe extern "C" fn bnff_metrics_json(engine: *const BnffEngine) -> *mut c_char {
    guarded(std::ptr::null_mut(), || {
        if engine.is_null() || !is_live(engine as usize) {
            set_last_error("bnff_metrics_json: not a live engine handle");
            return std::ptr::null_mut();
        }
        let engine = &unsafe { &*engine }.engine;
        let report = engine.metrics().report(engine.uptime());
        let json = match serde_json::to_string(&report) {
            Ok(json) => json,
            Err(e) => {
                set_last_error(&format!("bnff_metrics_json: {e}"));
                return std::ptr::null_mut();
            }
        };
        match CString::new(json) {
            Ok(cstring) => {
                let raw = cstring.into_raw();
                register(raw as usize, HandleKind::Str);
                raw
            }
            Err(_) => {
                set_last_error("bnff_metrics_json: report contained a NUL byte");
                std::ptr::null_mut()
            }
        }
    })
}

/// The Prometheus text exposition of the engine's metrics registry — the
/// same document `GET /metrics` on the HTTP server returns.
///
/// Returns a NUL-terminated string owned by the caller — release it with
/// [`bnff_free`] — or null on failure.
///
/// # Safety
/// `engine` must be a live handle from [`bnff_engine_start`].
#[no_mangle]
pub unsafe extern "C" fn bnff_metrics_prometheus(engine: *const BnffEngine) -> *mut c_char {
    guarded(std::ptr::null_mut(), || {
        if engine.is_null() || !is_live(engine as usize) {
            set_last_error("bnff_metrics_prometheus: not a live engine handle");
            return std::ptr::null_mut();
        }
        let engine = &unsafe { &*engine }.engine;
        match CString::new(engine.prometheus_metrics()) {
            Ok(cstring) => {
                let raw = cstring.into_raw();
                register(raw as usize, HandleKind::Str);
                raw
            }
            Err(_) => {
                set_last_error("bnff_metrics_prometheus: exposition contained a NUL byte");
                std::ptr::null_mut()
            }
        }
    })
}

/// Releases anything this library handed out: model handles, engine
/// handles (drains their workers first), and metric strings.
///
/// Returns [`BNFF_OK`], or [`BNFF_ERR_BAD_HANDLE`] for null, double-freed,
/// or foreign pointers — which are **not** touched, so a double-free is an
/// error code, not undefined behavior.
///
/// # Safety
/// Safe for any pointer value: only pointers the registry knows are live
/// are reconstructed and dropped.
#[no_mangle]
pub unsafe extern "C" fn bnff_free(ptr: *mut c_void) -> i32 {
    guarded(BNFF_ERR_PANIC, || {
        if ptr.is_null() {
            set_last_error("bnff_free: pointer is null");
            return BNFF_ERR_BAD_HANDLE;
        }
        match unregister(ptr as usize) {
            Some(HandleKind::Model) => {
                drop(unsafe { Box::from_raw(ptr.cast::<BnffModel>()) });
                BNFF_OK
            }
            Some(HandleKind::Engine) => {
                let handle = unsafe { Box::from_raw(ptr.cast::<BnffEngine>()) };
                // Drain: every admitted request completes before free returns.
                let _ = handle.engine.shutdown();
                BNFF_OK
            }
            Some(HandleKind::Str) => {
                drop(unsafe { CString::from_raw(ptr.cast::<c_char>()) });
                BNFF_OK
            }
            None => {
                set_last_error("bnff_free: not a live bnff pointer (double free?)");
                BNFF_ERR_BAD_HANDLE
            }
        }
    })
}
