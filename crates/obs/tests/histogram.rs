//! Histogram correctness: quantile recovery on known distributions,
//! lossless concurrent merging, and property tests of the bucket geometry
//! against an exact sorted-vector reference.

use bnff_obs::hist::{bucket_index, bucket_upper_bound, BUCKET_COUNT};
use bnff_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;
use std::sync::Arc;

/// Exact nearest-rank quantile over raw observations — the reference the
/// histogram approximates.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64) - 1e-9).ceil().max(1.0) as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn assert_within_bucket_error(got: u64, exact: u64, context: &str) {
    // The histogram reports bucket upper bounds: never below the exact
    // quantile's own bucket lower bound, never more than one bucket width
    // (6.25%) above the exact value.
    assert!(got as f64 >= exact as f64 * (1.0 - 1.0 / 16.0) - 1.0, "{context}: {got} << {exact}");
    assert!(got as f64 <= exact as f64 * (1.0 + 1.0 / 16.0) + 1.0, "{context}: {got} >> {exact}");
}

#[test]
fn uniform_distribution_quantiles_recover() {
    let hist = Histogram::new();
    let mut raw: Vec<u64> = (1..=100_000u64).collect();
    for &v in &raw {
        hist.record(v);
    }
    raw.sort_unstable();
    let snap = hist.snapshot();
    for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
        assert_within_bucket_error(
            snap.value_at_quantile(q),
            exact_quantile(&raw, q),
            &format!("uniform q{q}"),
        );
    }
    assert_eq!(snap.count(), 100_000);
    assert_eq!(snap.max(), 100_000);
}

#[test]
fn bimodal_distribution_separates_modes() {
    // 990 fast observations at ~1 ms and 10 stragglers at ~100 ms (in ns):
    // p50/p99 must sit in the fast mode, p99.9 in the slow tail.
    let hist = Histogram::new();
    for _ in 0..990 {
        hist.record(1_000_000);
    }
    for _ in 0..10 {
        hist.record(100_000_000);
    }
    let snap = hist.snapshot();
    assert_within_bucket_error(snap.value_at_quantile(0.5), 1_000_000, "bimodal p50");
    assert_within_bucket_error(snap.value_at_quantile(0.99), 1_000_000, "bimodal p99");
    assert_within_bucket_error(snap.value_at_quantile(0.999), 100_000_000, "bimodal p999");
    // Quantiles are monotone in q.
    let mut prev = 0u64;
    for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let v = snap.value_at_quantile(q);
        assert!(v >= prev, "q{q}: {v} < {prev}");
        prev = v;
    }
}

#[test]
fn exponentialish_distribution_recovers() {
    // A heavy-tailed deterministic sequence spanning six orders of
    // magnitude — the shape serving latencies actually take.
    let hist = Histogram::new();
    let mut raw = Vec::new();
    let mut seed = 0x2545f491u64;
    for _ in 0..50_000 {
        // xorshift; map to an exponential-ish tail via bit tricks.
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let v = 1_000 + (seed % 1_000) * (1 << (seed % 14));
        raw.push(v);
        hist.record(v);
    }
    raw.sort_unstable();
    let snap = hist.snapshot();
    for q in [0.5, 0.9, 0.99, 0.999] {
        assert_within_bucket_error(
            snap.value_at_quantile(q),
            exact_quantile(&raw, q),
            &format!("tail q{q}"),
        );
    }
    assert_eq!(snap.sum(), raw.iter().sum::<u64>());
}

#[test]
fn concurrent_multi_thread_recording_merges_losslessly() {
    // N threads record disjoint deterministic streams into one shared
    // histogram; the result must be bucket-for-bucket identical to the
    // same observations recorded serially.
    let shared = Arc::new(Histogram::new());
    let threads = 8usize;
    let per_thread = 20_000u64;
    let value = |t: u64, i: u64| 1 + (t * 1_000_003 + i * 7_919) % 5_000_000;
    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    shared.record(value(t, i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let serial = Histogram::new();
    for t in 0..threads as u64 {
        for i in 0..per_thread {
            serial.record(value(t, i));
        }
    }
    assert_eq!(shared.snapshot(), serial.snapshot());
}

#[test]
fn snapshot_merge_equals_single_recorder() {
    // Per-worker histograms merged on demand must equal one shared
    // recorder — the engine's merge-on-read pattern.
    let workers: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
    let combined = Histogram::new();
    for i in 0..10_000u64 {
        let v = (i * i) % 3_000_000;
        workers[(i % 4) as usize].record(v);
        combined.record(v);
    }
    let mut merged = HistogramSnapshot::empty();
    for w in &workers {
        merged.merge(&w.snapshot());
    }
    assert_eq!(merged, combined.snapshot());
}

proptest! {
    /// Bucket geometry vs the exact reference: every u64 maps into the
    /// table, the bucket brackets the value, and width stays within the
    /// 6.25% precision contract.
    #[test]
    fn bucket_brackets_any_value(case in (0usize..usize::MAX, 0usize..64)) {
        let (raw, shift) = case;
        let value = (raw as u64).wrapping_shl(shift as u32);
        let idx = bucket_index(value);
        prop_assert!(idx < BUCKET_COUNT);
        let upper = bucket_upper_bound(idx);
        prop_assert!(upper >= value);
        // Width ≤ value/16 (exact below 16).
        prop_assert!((upper - value) as f64 <= (value as f64 / 16.0) + 1e-9);
        // Boundary consistency: the upper bound is the last value of its
        // bucket; one past it starts the next bucket.
        prop_assert_eq!(bucket_index(upper), idx);
        if upper < u64::MAX {
            prop_assert_eq!(bucket_index(upper + 1), idx + 1);
        }
    }

    /// Histogram quantiles vs the exact sorted reference on arbitrary
    /// small samples.
    #[test]
    fn quantiles_track_exact_reference(case in (1usize..200, 0usize..1_000_000)) {
        let (len, seed) = case;
        let mut raw: Vec<u64> = (0..len)
            .map(|i| ((seed as u64 + 1) * 2_654_435_761u64.wrapping_mul(i as u64 + 1)) % 10_000_000)
            .collect();
        let hist = Histogram::new();
        for &v in &raw {
            hist.record(v);
        }
        raw.sort_unstable();
        let snap = hist.snapshot();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&raw, q);
            let got = snap.value_at_quantile(q);
            prop_assert!(got as f64 >= exact as f64 * (1.0 - 1.0 / 16.0) - 1.0,
                "q{}: {} << {}", q, got, exact);
            prop_assert!(got as f64 <= exact as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "q{}: {} >> {}", q, got, exact);
        }
        prop_assert_eq!(snap.max(), *raw.last().unwrap());
        prop_assert_eq!(snap.count(), raw.len() as u64);
    }
}
