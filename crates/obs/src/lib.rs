//! # bnff-obs — hand-rolled low-overhead observability
//!
//! The paper this workspace reproduces makes a *measured* argument — BN
//! restructuring wins because it moves fewer DRAM bytes — and a serving
//! system built on that argument has to keep measuring itself in
//! production. This crate is the workspace's observability layer, built
//! without crates.io dependencies and with one hard constraint: **the
//! disabled/idle cost of every instrument is a relaxed atomic or nothing**,
//! so the serving hot path keeps its latency budget (CI gates the
//! end-to-end overhead at ≤ 3%).
//!
//! Four pieces:
//!
//! - [`hist`] — a lock-free log-linear [`Histogram`] (16 sub-buckets per
//!   power of two, ≤ 6.25% relative quantile error) with lossless
//!   snapshot merging.
//! - [`registry`] — a [`Registry`] of named counters, gauges and
//!   histograms; registration locks once, recording is atomics-only, and
//!   [`Registry::render_prometheus`] emits the scrape format.
//! - [`trace`] — process-unique request IDs ([`next_request_id`]) and the
//!   `BNFF_TRACE` every-N-th [`TraceSampler`] deciding which responses
//!   echo their span timings.
//! - [`profile`] — the per-slot [`OpProfiler`] the tape executor uses for
//!   opt-in per-instruction timing (one relaxed load per pass when off).
//!
//! Plus [`log`], a pure logfmt formatter for the serve binary's
//! structured startup/access/shutdown lines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hist;
pub mod log;
pub mod profile;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use profile::{OpProfiler, SpanStats};
pub use registry::{Counter, Gauge, HistogramOpts, Registry};
pub use trace::{next_request_id, TraceSampler};
