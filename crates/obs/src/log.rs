//! Minimal structured logging: one `key=value` line per event.
//!
//! The serve binary's operational output (startup config dump, access
//! lines, shutdown summary) is machine-parseable logfmt rather than free
//! prose: `ts=<unix_ms> component=bnff_serve event=access method=POST …`.
//! Formatting is pure ([`kv_line`]) so tests assert on exact strings; the
//! emitting wrapper ([`log_event`]) stamps wall-clock time and writes one
//! line to stderr (stdout stays reserved for program results).

use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Quotes a value when it contains logfmt-hostile characters.
fn format_value(v: &str) -> String {
    if !v.is_empty() && v.chars().all(|c| c.is_ascii_graphic() && c != '"' && c != '=') {
        v.to_string()
    } else {
        format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n"))
    }
}

/// Formats one structured log line: `ts=<ts> component=<c> event=<e> k=v…`.
pub fn kv_line(ts_ms: u64, component: &str, event: &str, fields: &[(&str, String)]) -> String {
    let mut line =
        format!("ts={ts_ms} component={} event={}", format_value(component), format_value(event));
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(&format_value(value));
    }
    line
}

/// Emits one structured event line to stderr, stamped with [`now_ms`].
pub fn log_event(component: &str, event: &str, fields: &[(&str, String)]) {
    eprintln!("{}", kv_line(now_ms(), component, event, fields));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_logfmt() {
        let line = kv_line(
            1700000000000,
            "bnff_serve",
            "access",
            &[
                ("method", "POST".to_string()),
                ("path", "/v1/infer".to_string()),
                ("status", "200".to_string()),
                ("micros", "1234".to_string()),
                ("request_id", "42".to_string()),
            ],
        );
        assert_eq!(
            line,
            "ts=1700000000000 component=bnff_serve event=access method=POST \
             path=/v1/infer status=200 micros=1234 request_id=42"
        );
    }

    #[test]
    fn hostile_values_are_quoted() {
        let line = kv_line(1, "c", "e", &[("msg", "two words \"quoted\"".to_string())]);
        assert!(line.ends_with("msg=\"two words \\\"quoted\\\"\""));
        let line = kv_line(1, "c", "e", &[("empty", String::new())]);
        assert!(line.ends_with("empty=\"\""));
        let line = kv_line(1, "c", "e", &[("kv", "a=b".to_string())]);
        assert!(line.ends_with("kv=\"a=b\""));
    }

    #[test]
    fn clock_is_sane() {
        // 2020-01-01 in ms; anything modern is far past it.
        assert!(now_ms() > 1_577_836_800_000);
    }
}
