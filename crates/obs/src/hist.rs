//! A lock-free log-linear histogram over `u64` observations.
//!
//! The layout is the HdrHistogram idea at fixed precision: values below
//! [`LINEAR_MAX`] land in exact unit-wide buckets; every larger power-of-two
//! octave is split into [`SUB_BUCKETS`] equal sub-buckets. Bucket width is
//! therefore at most 1/16 of the value, bounding the relative error of any
//! recovered quantile by **6.25%** while keeping the whole table at
//! [`BUCKET_COUNT`] (976) words — small enough that every metric can afford
//! its own.
//!
//! Recording is one `fetch_add` on the bucket plus three bookkeeping
//! atomics (count, sum, max), all `Relaxed`: recorders never contend on a
//! lock, and concurrent recordings merge losslessly because bucket counts
//! are plain sums. Readers take a [`HistogramSnapshot`] — a consistent
//! *enough* copy (each bucket is read atomically; cross-bucket skew is
//! bounded by in-flight recordings) — and compute quantiles, means and
//! cumulative counts offline.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave (the precision knob).
pub const SUB_BUCKETS: usize = 16;
/// Values below this are recorded exactly (one bucket per value).
pub const LINEAR_MAX: u64 = 16;
/// Total bucket count: 16 exact unit buckets + 16 sub-buckets for each of
/// the 60 octaves `[2^4, 2^64)`.
pub const BUCKET_COUNT: usize = LINEAR_MAX as usize + 60 * SUB_BUCKETS;

/// The bucket index of a value. Total over all of `u64`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        value as usize
    } else {
        // The octave is the MSB position (≥ 4 here); `value >> (msb - 4)`
        // lands in [16, 32) and its low 4 bits select the sub-bucket.
        let msb = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (msb - 4)) & (SUB_BUCKETS as u64 - 1)) as usize;
        (msb - 3) * SUB_BUCKETS + sub
    }
}

/// The largest value mapping to `index` — what quantile recovery reports,
/// so recovered quantiles never under-estimate.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        index as u64
    } else {
        let octave = index / SUB_BUCKETS + 3;
        let sub = (index % SUB_BUCKETS) as u64;
        // Lower bound is (16 + sub) << (octave - 4); the bucket spans one
        // sub-bucket width. The very top bucket's exclusive end is 2^64,
        // so widen to u128 and saturate.
        let end = ((LINEAR_MAX + sub + 1) as u128) << (octave - 4);
        (end - 1).min(u64::MAX as u128) as u64
    }
}

/// A lock-free log-linear histogram (see the module docs).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free: four relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the current state out for offline analysis.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile/mean/cumulative
/// queries and lossless snapshot-to-snapshot merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; BUCKET_COUNT], count: 0, sum: 0, max: 0 }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (exact, not bucket-rounded). `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation. `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether any observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` (clamped to `[0, 1]`), by nearest rank
    /// over the buckets. The result is each bucket's upper bound, so it
    /// over-estimates the exact quantile by at most 6.25%; the top rank
    /// reports the exact recorded max.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank with the same epsilon guard the old exact recorder
        // used: q·count one ULP above an integer must not bump the rank.
        let rank = ((q * self.count as f64) - 1e-9).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// How many observations were `<=` the bucket containing `bound` —
    /// the cumulative count Prometheus `le` buckets expose. Exact when
    /// `bound` is a bucket boundary (powers of two always are).
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        let last = bucket_index(bound);
        self.buckets[..=last].iter().sum()
    }

    /// Adds every observation of `other` into `self`. Bucket counts are
    /// plain sums, so merging is lossless and order-independent.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The per-bucket counts (diagnostics and tests).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn indices_are_monotone_and_total() {
        let mut prev = 0usize;
        for exp in 0..64 {
            for v in [1u64 << exp, (1u64 << exp) + 1, ((1u64 << exp) - 1).max(1)] {
                let idx = bucket_index(v);
                assert!(idx < BUCKET_COUNT, "value {v} overflows the table");
                let _ = prev;
                prev = idx;
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        // Monotone: v <= w implies index(v) <= index(w).
        let mut last = 0;
        for v in (0..4096u64).chain((0..52).map(|e| 1u64 << (e + 12))) {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            last = idx;
        }
    }

    #[test]
    fn upper_bound_brackets_every_value() {
        for v in (0..10_000u64).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 2, u64::MAX]) {
            let idx = bucket_index(v);
            let upper = bucket_upper_bound(idx);
            assert!(upper >= v, "upper bound {upper} below value {v}");
            // Relative bucket width bound: 6.25%.
            assert!(
                (upper - v) as f64 <= (v as f64 / 16.0).max(0.0) + 1e-9,
                "bucket too wide at {v}: upper {upper}"
            );
            // The upper bound itself maps back to the same bucket.
            assert_eq!(bucket_index(upper), idx);
        }
    }

    #[test]
    fn quantiles_recover_within_bucket_error() {
        let hist = Histogram::new();
        for v in 1..=10_000u64 {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 10_000);
        for (q, exact) in [(0.5, 5_000.0), (0.99, 9_900.0), (0.999, 9_990.0)] {
            let got = snap.value_at_quantile(q) as f64;
            assert!(got >= exact - 1.0, "q{q}: {got} under-estimates {exact}");
            assert!(got <= exact * 1.0626, "q{q}: {got} beyond 6.25% of {exact}");
        }
        assert_eq!(snap.value_at_quantile(1.0), 10_000);
        assert_eq!(snap.max(), 10_000);
        assert!((snap.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn cumulative_le_is_exact_at_powers_of_two() {
        let hist = Histogram::new();
        for v in 0..2048u64 {
            hist.record(v);
        }
        let snap = hist.snapshot();
        // Bound 2^k starts a fresh bucket, which also holds values up to
        // the bucket width; recording 0..2048 fills buckets completely, so
        // le(2^k) counts [0, upper_bound(index(2^k))] exactly.
        for bound in [16u64, 64, 256, 1024] {
            let upper = bucket_upper_bound(bucket_index(bound));
            assert_eq!(snap.cumulative_le(bound), upper + 1, "bound {bound}");
        }
        assert_eq!(snap.cumulative_le(u64::MAX), 2048);
    }

    #[test]
    fn merge_is_lossless() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in 0..1000u64 {
            let x = v * 37 % 4096;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let hist = std::sync::Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        hist.record((t * per_thread + i) % 1021);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), threads * per_thread);
        assert_eq!(snap.buckets().iter().sum::<u64>(), threads * per_thread);
    }
}
