//! A unified metrics registry: named counters, gauges and histograms with
//! lock-free recording and Prometheus text-format exposition.
//!
//! Registration (naming a metric, attaching labels) takes a mutex once;
//! the returned `Arc` handles record with relaxed atomics only — the hot
//! path of a serving engine never touches the registry lock again.
//! [`Registry::render_prometheus`] walks the families and emits the
//! `text/plain; version=0.0.4` exposition format a Prometheus scraper
//! consumes: `# HELP`/`# TYPE` headers, one sample line per handle, and
//! for histograms cumulative `le` buckets at registration-chosen bounds
//! plus `_sum`/`_count`.

use crate::hist::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (and track a running maximum).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (peak tracking).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Exposition parameters of a registered histogram.
#[derive(Debug, Clone)]
pub struct HistogramOpts {
    /// Multiplier from raw recorded ticks to the exposed unit (e.g.
    /// `1e-9` for a histogram recording nanoseconds exposed in seconds).
    pub unit_scale: f64,
    /// Raw-tick upper bounds of the exposed cumulative `le` buckets
    /// (ascending). Powers of two align exactly with the internal
    /// log-linear buckets; `+Inf` is appended automatically.
    pub bounds: Vec<u64>,
}

impl HistogramOpts {
    /// Latency exposition in seconds from nanosecond ticks: `le` bounds
    /// every factor of 4 from ~1 µs to ~17 s.
    pub fn latency_ns() -> Self {
        HistogramOpts {
            unit_scale: 1e-9,
            bounds: (10..=34).step_by(2).map(|exp| 1u64 << exp).collect(),
        }
    }

    /// Small-magnitude exposition (queue depths, batch sizes): unit scale
    /// 1, power-of-two bounds 1..=1024.
    pub fn small_counts() -> Self {
        HistogramOpts { unit_scale: 1.0, bounds: (0..=10).map(|exp| 1u64 << exp).collect() }
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>, HistogramOpts),
}

struct Sample {
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    samples: Vec<Sample>,
}

/// The registry: metric families by name, each holding one handle per
/// label set. See the module docs for the locking discipline.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f.debug_struct("Registry").field("families", &families.len()).finish()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let mut families = self.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert_eq!(family.kind, kind, "metric {name} re-registered as a different kind");
                family
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    samples: Vec::new(),
                });
                families.last_mut().expect("family just pushed")
            }
        };
        if let Some(sample) = family.samples.iter().find(|s| s.labels == labels) {
            return match &sample.handle {
                Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
                Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
                Handle::Histogram(h, opts) => Handle::Histogram(Arc::clone(h), opts.clone()),
            };
        }
        let handle = make();
        let clone = match &handle {
            Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
            Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
            Handle::Histogram(h, opts) => Handle::Histogram(Arc::clone(h), opts.clone()),
        };
        family.samples.push(Sample { labels, handle });
        clone
    }

    /// Registers (or re-fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or re-fetches) a counter with baked-in labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, "counter", labels, || {
            Handle::Counter(Arc::new(Counter::default()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("counter registration returned a different kind"),
        }
    }

    /// Registers (or re-fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or re-fetches) a gauge with baked-in labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self
            .register(name, help, "gauge", labels, || Handle::Gauge(Arc::new(Gauge::default())))
        {
            Handle::Gauge(g) => g,
            _ => unreachable!("gauge registration returned a different kind"),
        }
    }

    /// Registers (or re-fetches) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str, opts: HistogramOpts) -> Arc<Histogram> {
        self.histogram_with(name, help, opts, &[])
    }

    /// Registers (or re-fetches) a histogram with baked-in labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        opts: HistogramOpts,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, "histogram", labels, || {
            Handle::Histogram(Arc::new(Histogram::new()), opts)
        }) {
            Handle::Histogram(h, _) => h,
            _ => unreachable!("histogram registration returned a different kind"),
        }
    }

    /// Renders every family in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for family in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", family.name, escape_help(&family.help)));
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind));
            for sample in &family.samples {
                match &sample.handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            label_set(&sample.labels, None),
                            c.get()
                        ));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            label_set(&sample.labels, None),
                            g.get()
                        ));
                    }
                    Handle::Histogram(h, opts) => {
                        render_histogram(
                            &mut out,
                            &family.name,
                            &sample.labels,
                            &h.snapshot(),
                            opts,
                        );
                    }
                }
            }
        }
        out
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
    opts: &HistogramOpts,
) {
    for &bound in &opts.bounds {
        let le = format_float(bound as f64 * opts.unit_scale);
        out.push_str(&format!(
            "{name}_bucket{} {}\n",
            label_set(labels, Some(&le)),
            snap.cumulative_le(bound)
        ));
    }
    out.push_str(&format!("{name}_bucket{} {}\n", label_set(labels, Some("+Inf")), snap.count()));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        label_set(labels, None),
        format_float(snap.sum() as f64 * opts.unit_scale)
    ));
    out.push_str(&format!("{name}_count{} {}\n", label_set(labels, None), snap.count()));
}

/// Renders a label set, optionally with a trailing `le` label. Empty sets
/// render as nothing (`name 3`, not `name{} 3`).
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Floats in exposition lines: plain decimal, no exponent, trimmed — the
/// format every scraper parses (`0.000001024`, `12`, `0.25`).
fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let mut s = format!("{v:.12}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let reg = Registry::new();
        let c = reg.counter("bnff_requests_total", "Requests admitted.");
        c.add(3);
        let g = reg.gauge("bnff_queued", "Requests queued.");
        g.add(5);
        g.sub(2);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP bnff_requests_total Requests admitted.\n"));
        assert!(text.contains("# TYPE bnff_requests_total counter\n"));
        assert!(text.contains("\nbnff_requests_total 3\n") || text.starts_with("# HELP"));
        assert!(text.contains("bnff_requests_total 3\n"));
        assert!(text.contains("# TYPE bnff_queued gauge\n"));
        assert!(text.contains("bnff_queued 3\n"));
    }

    #[test]
    fn labelled_samples_share_a_family() {
        let reg = Registry::new();
        let a = reg.counter_with("bnff_worker_batches_total", "Batches.", &[("worker", "0")]);
        let b = reg.counter_with("bnff_worker_batches_total", "Batches.", &[("worker", "1")]);
        a.inc();
        b.add(2);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE bnff_worker_batches_total counter").count(), 1);
        assert!(text.contains("bnff_worker_batches_total{worker=\"0\"} 1\n"));
        assert!(text.contains("bnff_worker_batches_total{worker=\"1\"} 2\n"));
    }

    #[test]
    fn re_registration_returns_the_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("bnff_shed_total", "Shed.");
        let b = reg.counter("bnff_shed_total", "Shed.");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 2);
    }

    #[test]
    fn histograms_expose_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram(
            "bnff_request_latency_seconds",
            "End-to-end request latency.",
            HistogramOpts::latency_ns(),
        );
        h.record(2_000); // 2 µs
        h.record(3_000_000); // 3 ms
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE bnff_request_latency_seconds histogram\n"));
        // 2^10 ns = 1.024 µs bound excludes both; 2^12 = 4.096 µs includes
        // the 2 µs observation.
        assert!(text.contains("bnff_request_latency_seconds_bucket{le=\"0.000001024\"} 0\n"));
        assert!(text.contains("bnff_request_latency_seconds_bucket{le=\"0.000004096\"} 1\n"));
        assert!(text.contains("bnff_request_latency_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("bnff_request_latency_seconds_count 2\n"));
        assert!(text.contains("bnff_request_latency_seconds_sum 0.003002\n"));
    }

    #[test]
    fn exposition_is_well_formed() {
        // Every non-comment line is `name{labels}? value`; every family has
        // HELP and TYPE exactly once — the shape the CI smoke asserts too.
        let reg = Registry::new();
        reg.counter("a_total", "A.").inc();
        reg.gauge_with("b", "B.", &[("shard", "x\"y")]).set(-4);
        reg.histogram("c_seconds", "C.", HistogramOpts::latency_ns()).record(5);
        let text = reg.render_prometheus();
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "), "{line}");
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!name_part.is_empty());
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
        assert!(text.contains("b{shard=\"x\\\"y\"} -4\n"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("bad name", "nope");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_rejected() {
        let reg = Registry::new();
        reg.counter("dual", "first");
        reg.gauge("dual", "second");
    }
}
