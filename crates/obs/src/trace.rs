//! Request identity and trace sampling.
//!
//! A request ID is minted once at the ingress boundary (HTTP connection
//! handling, C-ABI entry) and carried with the request through admission,
//! batch assembly and execution, so log lines, trace echoes and errors
//! about one request share one correlator. IDs are a process-wide atomic
//! counter: unique within the process, allocation-free, and cheap enough
//! to mint unconditionally.
//!
//! Whether a request's span timings are *echoed back to the caller* is a
//! separate, sampled decision: [`TraceSampler`] picks every N-th request,
//! configured by the `BNFF_TRACE` environment variable (`0`/unset = off,
//! `1` = every request, `N` = every N-th).

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Mints a process-unique request ID (monotonic from 1).
#[inline]
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// Samples every N-th request for trace echo. `every == 0` disables
/// sampling; the disabled check is a single branch on an immutable field.
#[derive(Debug)]
pub struct TraceSampler {
    every: u64,
    counter: AtomicU64,
}

impl TraceSampler {
    /// A sampler that never samples.
    pub fn disabled() -> Self {
        TraceSampler::every(0)
    }

    /// A sampler taking every `n`-th request (`0` disables).
    pub fn every(n: u64) -> Self {
        TraceSampler { every: n, counter: AtomicU64::new(0) }
    }

    /// Builds the sampler from the `BNFF_TRACE` environment variable:
    /// unset, `0` or `off` disable; `1` or `on` sample everything; any
    /// other integer `N` samples every N-th request. Unparseable values
    /// disable sampling rather than failing startup.
    pub fn from_env() -> Self {
        match std::env::var("BNFF_TRACE") {
            Ok(raw) => match raw.trim() {
                "" | "0" | "off" => TraceSampler::disabled(),
                "on" => TraceSampler::every(1),
                n => TraceSampler::every(n.parse().unwrap_or(0)),
            },
            Err(_) => TraceSampler::disabled(),
        }
    }

    /// Whether any request is ever sampled.
    pub fn is_enabled(&self) -> bool {
        self.every > 0
    }

    /// The sampling period (`0` = disabled).
    pub fn period(&self) -> u64 {
        self.every
    }

    /// Decides for one request. The first request after startup is always
    /// sampled when enabled, then every `every`-th after it.
    #[inline]
    pub fn sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.counter.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotone() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }

    #[test]
    fn disabled_sampler_never_samples() {
        let s = TraceSampler::disabled();
        assert!(!s.is_enabled());
        assert!((0..100).all(|_| !s.sample()));
    }

    #[test]
    fn every_n_samples_exactly_one_in_n() {
        let s = TraceSampler::every(4);
        assert!(s.is_enabled());
        let hits = (0..40).filter(|_| s.sample()).count();
        assert_eq!(hits, 10);
        // The very first request is sampled (operators flip tracing on and
        // expect the next request to show a trace).
        let s = TraceSampler::every(1000);
        assert!(s.sample());
        assert!(!s.sample());
    }
}
