//! An opt-in per-slot span profiler for fixed-size instruction sequences.
//!
//! Built for the serving executor's tape walk: the tape has a fixed number
//! of instructions known at compile time, so the profiler pre-allocates
//! one accumulation slot per instruction and recording is two relaxed
//! `fetch_add`s plus a `fetch_max` — no locks, no allocation, safe from
//! concurrent walkers sharing one executor.
//!
//! The *disabled* path is the design constraint: [`OpProfiler::enabled`]
//! is a single relaxed atomic load, so an executor can check it once per
//! tape walk and run the uninstrumented loop — the cost of carrying the
//! profiler when it is off is one load per forward pass, which is what the
//! CI `obs_overhead_pct` gate bounds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[derive(Debug, Default)]
struct Slot {
    total_ns: AtomicU64,
    count: AtomicU64,
    max_ns: AtomicU64,
}

/// Accumulated timings of one profiled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Recorded executions.
    pub count: u64,
    /// Total nanoseconds across executions.
    pub total_ns: u64,
    /// Slowest single execution in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Mean nanoseconds per execution (`0.0` when never recorded).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A per-slot span profiler (see the module docs).
#[derive(Debug)]
pub struct OpProfiler {
    enabled: AtomicBool,
    slots: Vec<Slot>,
}

impl OpProfiler {
    /// A disabled profiler with `slots` accumulation slots.
    pub fn new(slots: usize) -> Self {
        OpProfiler {
            enabled: AtomicBool::new(false),
            slots: (0..slots).map(|_| Slot::default()).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the profiler has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether recording is on — **one relaxed atomic load**; callers
    /// check once per pass and skip all instrumentation when false.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records one execution of `slot` taking `ns` nanoseconds.
    #[inline]
    pub fn record(&self, slot: usize, ns: u64) {
        let s = &self.slots[slot];
        s.total_ns.fetch_add(ns, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Copies every slot's accumulated stats out.
    pub fn snapshot(&self) -> Vec<SpanStats> {
        self.slots
            .iter()
            .map(|s| SpanStats {
                count: s.count.load(Ordering::Relaxed),
                total_ns: s.total_ns.load(Ordering::Relaxed),
                max_ns: s.max_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Zeroes every slot (the enabled flag is left as-is).
    pub fn reset(&self) {
        for s in &self.slots {
            s.total_ns.store(0, Ordering::Relaxed);
            s.count.store(0, Ordering::Relaxed);
            s.max_ns.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_disabled_and_toggles() {
        let p = OpProfiler::new(3);
        assert!(!p.enabled());
        assert_eq!(p.len(), 3);
        p.set_enabled(true);
        assert!(p.enabled());
    }

    #[test]
    fn records_accumulate_per_slot() {
        let p = OpProfiler::new(2);
        p.record(0, 100);
        p.record(0, 300);
        p.record(1, 7);
        let snap = p.snapshot();
        assert_eq!(snap[0], SpanStats { count: 2, total_ns: 400, max_ns: 300 });
        assert!((snap[0].mean_ns() - 200.0).abs() < 1e-9);
        assert_eq!(snap[1].count, 1);
        p.reset();
        assert_eq!(p.snapshot()[0].count, 0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let p = std::sync::Arc::new(OpProfiler::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = std::sync::Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        p.record(0, 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = p.snapshot();
        assert_eq!(snap[0].count, 40_000);
        assert_eq!(snap[0].total_ns, 80_000);
    }
}
