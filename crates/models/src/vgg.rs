//! VGG-16 (Simonyan & Zisserman, 2014) — the second early, CONV-dominated
//! model of the paper's Figure 1 breakdown. No Batch Normalization.

use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::{Conv2dAttrs, PoolAttrs};
use bnff_graph::{Graph, NodeId, Result};
use bnff_tensor::Shape;

fn vgg_block(
    b: &mut GraphBuilder,
    mut current: NodeId,
    convs: usize,
    channels: usize,
    stage: usize,
) -> Result<NodeId> {
    for i in 0..convs {
        let c = b.conv2d(
            current,
            Conv2dAttrs::same_3x3(channels).with_bias(),
            &format!("conv{stage}_{}", i + 1),
        )?;
        current = b.relu(c, &format!("relu{stage}_{}", i + 1))?;
    }
    b.max_pool(current, PoolAttrs::new(2, 2, 0), &format!("pool{stage}"))
}

/// VGG-16 at 224×224 (configuration D: 13 convolutions + 3 FC layers).
///
/// # Errors
/// Returns an error if graph construction fails.
pub fn vgg16(batch: usize) -> Result<Graph> {
    let mut b = GraphBuilder::new("vgg-16");
    let data = b.input("data", Shape::nchw(batch, 3, 224, 224))?;
    let labels = b.input("labels", Shape::vector(batch))?;
    let mut current = data;
    for (stage, (convs, channels)) in
        [(2usize, 64usize), (2, 128), (3, 256), (3, 512), (3, 512)].iter().enumerate()
    {
        current = vgg_block(&mut b, current, *convs, *channels, stage + 1)?;
    }
    let fc6 = b.fully_connected(current, 4096, "fc6")?;
    let r6 = b.relu(fc6, "relu6")?;
    let fc7 = b.fully_connected(r6, 4096, "fc7")?;
    let r7 = b.relu(fc7, "relu7")?;
    let fc8 = b.fully_connected(r7, 1000, "fc8")?;
    b.softmax_loss(fc8, labels, "loss")?;
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::op::OpKind;

    #[test]
    fn vgg16_structure() {
        let g = vgg16(2).unwrap();
        assert!(g.validate().is_ok());
        let convs = g.nodes().filter(|n| matches!(n.op, OpKind::Conv2d(_))).count();
        assert_eq!(convs, 13);
        let fcs = g.nodes().filter(|n| matches!(n.op, OpKind::FullyConnected { .. })).count();
        assert_eq!(fcs, 3);
    }

    #[test]
    fn vgg16_parameter_count() {
        // torchvision's vgg16 has ~138.4 M parameters.
        let g = vgg16(1).unwrap();
        let params = g.parameter_count();
        assert!(
            (137_000_000..=139_500_000).contains(&params),
            "vgg16 parameter count {params} outside expected range"
        );
    }

    #[test]
    fn vgg16_final_feature_map() {
        let g = vgg16(2).unwrap();
        let p5 = g.nodes().find(|n| n.name == "pool5").unwrap();
        assert_eq!(p5.output_shape, Shape::nchw(2, 512, 7, 7));
    }
}
