//! ResNet builders (He et al., CVPR 2016), the paper's secondary target.
//!
//! ResNet-50 uses bottleneck residual blocks (`1×1 → 3×3 → 1×1` with BN
//! after every convolution) joined to the shortcut by an element-wise sum,
//! followed by a ReLU. The first block of each stage uses a projection
//! shortcut (1×1 CONV + BN) and, from stage 2 on, stride 2.

use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::{Conv2dAttrs, PoolAttrs};
use bnff_graph::{Graph, NodeId, Result};
use bnff_tensor::Shape;

/// One bottleneck residual block, returning the post-addition ReLU node.
fn bottleneck_block(
    b: &mut GraphBuilder,
    input: NodeId,
    mid_channels: usize,
    out_channels: usize,
    stride: usize,
    project: bool,
    prefix: &str,
) -> Result<NodeId> {
    let c1 = b.conv_bn_relu(input, Conv2dAttrs::pointwise(mid_channels), &format!("{prefix}/a"))?;
    let mut conv3 = Conv2dAttrs::same_3x3(mid_channels);
    conv3.stride = stride;
    let c2 = b.conv_bn_relu(c1, conv3, &format!("{prefix}/b"))?;
    let c3 = b.conv_bn(c2, Conv2dAttrs::pointwise(out_channels), &format!("{prefix}/c"))?;
    let shortcut = if project {
        let mut proj = Conv2dAttrs::pointwise(out_channels);
        proj.stride = stride;
        b.conv_bn(input, proj, &format!("{prefix}/proj"))?
    } else {
        input
    };
    let ews = b.eltwise_sum(vec![c3, shortcut], &format!("{prefix}/ews"))?;
    b.relu(ews, &format!("{prefix}/relu"))
}

/// One basic (two 3×3 convolutions) residual block used by ResNet-18/34 and
/// the CIFAR ResNets, returning the post-addition ReLU node.
fn basic_block(
    b: &mut GraphBuilder,
    input: NodeId,
    channels: usize,
    stride: usize,
    project: bool,
    prefix: &str,
) -> Result<NodeId> {
    let mut conv_a = Conv2dAttrs::same_3x3(channels);
    conv_a.stride = stride;
    let c1 = b.conv_bn_relu(input, conv_a, &format!("{prefix}/a"))?;
    let c2 = b.conv_bn(c1, Conv2dAttrs::same_3x3(channels), &format!("{prefix}/b"))?;
    let shortcut = if project {
        let mut proj = Conv2dAttrs::pointwise(channels);
        proj.stride = stride;
        b.conv_bn(input, proj, &format!("{prefix}/proj"))?
    } else {
        input
    };
    let ews = b.eltwise_sum(vec![c2, shortcut], &format!("{prefix}/ews"))?;
    b.relu(ews, &format!("{prefix}/relu"))
}

fn imagenet_stem(b: &mut GraphBuilder, data: NodeId) -> Result<NodeId> {
    let c = b.conv2d(data, Conv2dAttrs::new(64, 7, 2, 3), "stem/conv")?;
    let bn = b.batch_norm_default(c, "stem/bn")?;
    let r = b.relu(bn, "stem/relu")?;
    b.max_pool(r, PoolAttrs::new(3, 2, 1), "stem/pool")
}

/// ResNet-50 at ImageNet resolution (3-4-6-3 bottleneck blocks, ~25.6 M
/// parameters).
///
/// # Errors
/// Returns an error if graph construction fails.
pub fn resnet50(batch: usize) -> Result<Graph> {
    let mut b = GraphBuilder::new("resnet-50");
    let data = b.input("data", Shape::nchw(batch, 3, 224, 224))?;
    let labels = b.input("labels", Shape::vector(batch))?;
    let mut current = imagenet_stem(&mut b, data)?;

    let stages: [(usize, usize, usize); 4] =
        [(64, 256, 3), (128, 512, 4), (256, 1024, 6), (512, 2048, 3)];
    for (stage_idx, (mid, out, blocks)) in stages.iter().enumerate() {
        for block_idx in 0..*blocks {
            let stride = if stage_idx > 0 && block_idx == 0 { 2 } else { 1 };
            let project = block_idx == 0;
            current = bottleneck_block(
                &mut b,
                current,
                *mid,
                *out,
                stride,
                project,
                &format!("stage{}/block{}", stage_idx + 1, block_idx + 1),
            )?;
        }
    }

    let gap = b.global_avg_pool(current, "head/gap")?;
    let fc = b.fully_connected(gap, 1000, "head/fc")?;
    b.softmax_loss(fc, labels, "loss")?;
    Ok(b.finish())
}

/// ResNet-18 at ImageNet resolution (2-2-2-2 basic blocks).
///
/// # Errors
/// Returns an error if graph construction fails.
pub fn resnet18(batch: usize) -> Result<Graph> {
    let mut b = GraphBuilder::new("resnet-18");
    let data = b.input("data", Shape::nchw(batch, 3, 224, 224))?;
    let labels = b.input("labels", Shape::vector(batch))?;
    let mut current = imagenet_stem(&mut b, data)?;
    let stages: [(usize, usize); 4] = [(64, 2), (128, 2), (256, 2), (512, 2)];
    for (stage_idx, (channels, blocks)) in stages.iter().enumerate() {
        for block_idx in 0..*blocks {
            let stride = if stage_idx > 0 && block_idx == 0 { 2 } else { 1 };
            let project = block_idx == 0 && stage_idx > 0;
            current = basic_block(
                &mut b,
                current,
                *channels,
                stride,
                project,
                &format!("stage{}/block{}", stage_idx + 1, block_idx + 1),
            )?;
        }
    }
    let gap = b.global_avg_pool(current, "head/gap")?;
    let fc = b.fully_connected(gap, 1000, "head/fc")?;
    b.softmax_loss(fc, labels, "loss")?;
    Ok(b.finish())
}

/// A CIFAR-scale ResNet (6n+2 layout: `n` basic blocks per stage at 16, 32
/// and 64 channels, 32×32 input).
///
/// # Errors
/// Returns an error if graph construction fails.
pub fn resnet_cifar(batch: usize, blocks_per_stage: usize, classes: usize) -> Result<Graph> {
    let mut b = GraphBuilder::new("resnet-cifar");
    let data = b.input("data", Shape::nchw(batch, 3, 32, 32))?;
    let labels = b.input("labels", Shape::vector(batch))?;
    let mut current = b.conv_bn_relu(data, Conv2dAttrs::same_3x3(16), "stem")?;
    for (stage_idx, channels) in [16usize, 32, 64].iter().enumerate() {
        for block_idx in 0..blocks_per_stage {
            let stride = if stage_idx > 0 && block_idx == 0 { 2 } else { 1 };
            let project = block_idx == 0 && stage_idx > 0;
            current = basic_block(
                &mut b,
                current,
                *channels,
                stride,
                project,
                &format!("stage{}/block{}", stage_idx + 1, block_idx + 1),
            )?;
        }
    }
    let gap = b.global_avg_pool(current, "head/gap")?;
    let fc = b.fully_connected(gap, classes, "head/fc")?;
    b.softmax_loss(fc, labels, "loss")?;
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::op::OpKind;

    #[test]
    fn resnet50_layer_counts() {
        let g = resnet50(2).unwrap();
        assert!(g.validate().is_ok());
        let convs = g.nodes().filter(|n| matches!(n.op, OpKind::Conv2d(_))).count();
        // 1 stem + 16 blocks × 3 convs + 4 projection shortcuts = 53.
        assert_eq!(convs, 53);
        let bns = g.nodes().filter(|n| matches!(n.op, OpKind::BatchNorm(_))).count();
        assert_eq!(bns, 53);
        let ews = g.nodes().filter(|n| matches!(n.op, OpKind::EltwiseSum)).count();
        assert_eq!(ews, 16);
    }

    #[test]
    fn resnet50_parameter_count_matches_reference() {
        // torchvision's resnet50 has 25,557,032 learnable parameters.
        let g = resnet50(1).unwrap();
        let params = g.parameter_count();
        assert!(
            (25_200_000..=25_900_000).contains(&params),
            "parameter count {params} outside expected ResNet-50 range"
        );
    }

    #[test]
    fn resnet50_spatial_flow() {
        let g = resnet50(2).unwrap();
        let s1 = g.nodes().find(|n| n.name == "stage1/block3/relu").unwrap();
        assert_eq!(s1.output_shape, Shape::nchw(2, 256, 56, 56));
        let s4 = g.nodes().find(|n| n.name == "stage4/block3/relu").unwrap();
        assert_eq!(s4.output_shape, Shape::nchw(2, 2048, 7, 7));
    }

    #[test]
    fn resnet18_is_smaller_than_resnet50() {
        let g18 = resnet18(1).unwrap();
        let g50 = resnet50(1).unwrap();
        assert!(g18.validate().is_ok());
        assert!(g18.node_count() < g50.node_count());
        // torchvision resnet18: 11,689,512 parameters.
        let params = g18.parameter_count();
        assert!((11_400_000..=11_900_000).contains(&params), "resnet18 params {params}");
    }

    #[test]
    fn cifar_resnet_validates_and_is_tiny() {
        let g = resnet_cifar(8, 3, 10).unwrap();
        assert!(g.validate().is_ok());
        // ResNet-20 has ~0.27M parameters.
        let params = g.parameter_count();
        assert!((200_000..=400_000).contains(&params), "resnet20 params {params}");
        let relu_out = g.nodes().find(|n| n.name == "stage3/block3/relu").unwrap();
        assert_eq!(relu_out.output_shape, Shape::nchw(8, 64, 8, 8));
    }
}
