//! AlexNet (Krizhevsky et al., 2012) — an early, CONV/FC-dominated model
//! used in the paper's Figure 1 breakdown. No Batch Normalization.

use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::{Conv2dAttrs, PoolAttrs};
use bnff_graph::{Graph, Result};
use bnff_tensor::Shape;

/// AlexNet (the single-tower torchvision variant) at 224×224.
///
/// # Errors
/// Returns an error if graph construction fails.
pub fn alexnet(batch: usize) -> Result<Graph> {
    let mut b = GraphBuilder::new("alexnet");
    let data = b.input("data", Shape::nchw(batch, 3, 224, 224))?;
    let labels = b.input("labels", Shape::vector(batch))?;

    let c1 = b.conv2d(data, Conv2dAttrs::new(64, 11, 4, 2).with_bias(), "conv1")?;
    let r1 = b.relu(c1, "relu1")?;
    let p1 = b.max_pool(r1, PoolAttrs::new(3, 2, 0), "pool1")?;

    let c2 = b.conv2d(p1, Conv2dAttrs::new(192, 5, 1, 2).with_bias(), "conv2")?;
    let r2 = b.relu(c2, "relu2")?;
    let p2 = b.max_pool(r2, PoolAttrs::new(3, 2, 0), "pool2")?;

    let c3 = b.conv2d(p2, Conv2dAttrs::same_3x3(384).with_bias(), "conv3")?;
    let r3 = b.relu(c3, "relu3")?;
    let c4 = b.conv2d(r3, Conv2dAttrs::same_3x3(256).with_bias(), "conv4")?;
    let r4 = b.relu(c4, "relu4")?;
    let c5 = b.conv2d(r4, Conv2dAttrs::same_3x3(256).with_bias(), "conv5")?;
    let r5 = b.relu(c5, "relu5")?;
    let p5 = b.max_pool(r5, PoolAttrs::new(3, 2, 0), "pool5")?;

    let fc6 = b.fully_connected(p5, 4096, "fc6")?;
    let r6 = b.relu(fc6, "relu6")?;
    let fc7 = b.fully_connected(r6, 4096, "fc7")?;
    let r7 = b.relu(fc7, "relu7")?;
    let fc8 = b.fully_connected(r7, 1000, "fc8")?;
    b.softmax_loss(fc8, labels, "loss")?;
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::op::OpKind;

    #[test]
    fn alexnet_structure() {
        let g = alexnet(4).unwrap();
        assert!(g.validate().is_ok());
        let convs = g.nodes().filter(|n| matches!(n.op, OpKind::Conv2d(_))).count();
        assert_eq!(convs, 5);
        let fcs = g.nodes().filter(|n| matches!(n.op, OpKind::FullyConnected { .. })).count();
        assert_eq!(fcs, 3);
        let bns = g.nodes().filter(|n| matches!(n.op, OpKind::BatchNorm(_))).count();
        assert_eq!(bns, 0);
    }

    #[test]
    fn alexnet_parameter_count() {
        // torchvision's alexnet has ~61.1 M parameters.
        let g = alexnet(1).unwrap();
        let params = g.parameter_count();
        assert!(
            (60_000_000..=62_500_000).contains(&params),
            "alexnet parameter count {params} outside expected range"
        );
    }

    #[test]
    fn alexnet_feature_map_flow() {
        let g = alexnet(2).unwrap();
        let p5 = g.nodes().find(|n| n.name == "pool5").unwrap();
        assert_eq!(p5.output_shape, Shape::nchw(2, 256, 6, 6));
    }
}
