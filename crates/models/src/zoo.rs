//! A small registry mapping model names to builders.

use crate::{
    alexnet, densenet121, densenet169, densenet_cifar, resnet18, resnet50, resnet_cifar, vgg16,
};
use bnff_graph::{Graph, Result};

/// The models available in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// AlexNet (Figure 1 baseline).
    AlexNet,
    /// VGG-16 (Figure 1 baseline).
    Vgg16,
    /// ResNet-18.
    ResNet18,
    /// ResNet-50 (paper's secondary target).
    ResNet50,
    /// DenseNet-121 (paper's primary target).
    DenseNet121,
    /// DenseNet-169.
    DenseNet169,
    /// CIFAR-scale DenseNet-BC for numerical experiments.
    DenseNetCifar,
    /// CIFAR-scale ResNet-20 for numerical experiments.
    ResNetCifar,
}

impl Model {
    /// All ImageNet-scale models evaluated in the paper's Figure 1.
    pub fn figure1_models() -> Vec<Model> {
        vec![Model::AlexNet, Model::Vgg16, Model::ResNet50, Model::DenseNet121]
    }

    /// The display name used in reports.
    pub fn display_name(self) -> &'static str {
        match self {
            Model::AlexNet => "AlexNet",
            Model::Vgg16 => "VGG-16",
            Model::ResNet18 => "ResNet-18",
            Model::ResNet50 => "ResNet-50",
            Model::DenseNet121 => "DenseNet-121",
            Model::DenseNet169 => "DenseNet-169",
            Model::DenseNetCifar => "DenseNet-CIFAR",
            Model::ResNetCifar => "ResNet-CIFAR",
        }
    }
}

/// Builds the requested model at the given mini-batch size.
///
/// # Errors
/// Returns an error if graph construction fails.
pub fn build(model: Model, batch: usize) -> Result<Graph> {
    match model {
        Model::AlexNet => alexnet(batch),
        Model::Vgg16 => vgg16(batch),
        Model::ResNet18 => resnet18(batch),
        Model::ResNet50 => resnet50(batch),
        Model::DenseNet121 => densenet121(batch),
        Model::DenseNet169 => densenet169(batch),
        Model::DenseNetCifar => densenet_cifar(batch, 12, 6, 10),
        Model::ResNetCifar => resnet_cifar(batch, 3, 10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_builds_and_validates() {
        for model in [
            Model::AlexNet,
            Model::Vgg16,
            Model::ResNet18,
            Model::ResNet50,
            Model::DenseNet121,
            Model::DenseNetCifar,
            Model::ResNetCifar,
        ] {
            let g = build(model, 2).unwrap();
            assert!(g.validate().is_ok(), "{} fails validation", model.display_name());
            assert!(g.node_count() > 10);
        }
    }

    #[test]
    fn figure1_lineup() {
        let models = Model::figure1_models();
        assert_eq!(models.len(), 4);
        assert!(models.contains(&Model::DenseNet121));
        assert_eq!(Model::DenseNet121.display_name(), "DenseNet-121");
    }
}
