//! DenseNet-BC builders (Huang et al., CVPR 2017), the paper's primary
//! optimization target.
//!
//! A DenseNet is a sequence of Dense Blocks connected by transition layers.
//! Each composite layer (CPL) is `BN → ReLU → 1×1 CONV (4k) → BN → ReLU →
//! 3×3 CONV (k)` and its output is concatenated onto the running feature
//! map (dense connectivity). Transition layers are `BN → ReLU → 1×1 CONV
//! (compression θ=0.5) → 2×2 average pool`.

use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::{Conv2dAttrs, PoolAttrs};
use bnff_graph::{Graph, NodeId, Result};
use bnff_tensor::Shape;

/// Configuration of a DenseNet-BC network.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseNetConfig {
    /// Growth rate `k`: channels added by every composite layer.
    pub growth_rate: usize,
    /// Number of composite layers in each dense block.
    pub block_layers: Vec<usize>,
    /// Channels produced by the stem convolution.
    pub stem_channels: usize,
    /// Bottleneck width multiplier `m` (the 1×1 CONV outputs `m·k`).
    pub bottleneck_factor: usize,
    /// Transition compression factor θ (0.5 for DenseNet-BC).
    pub compression: f64,
    /// Number of classifier classes.
    pub classes: usize,
    /// Input image resolution (square).
    pub image_size: usize,
    /// Whether the stem uses the ImageNet 7×7/2 conv + 3×3/2 pool (true) or
    /// the CIFAR 3×3/1 conv (false).
    pub imagenet_stem: bool,
}

impl DenseNetConfig {
    /// DenseNet-121: blocks of 6, 12, 24, 16 composite layers, growth 32.
    pub fn d121() -> Self {
        DenseNetConfig {
            growth_rate: 32,
            block_layers: vec![6, 12, 24, 16],
            stem_channels: 64,
            bottleneck_factor: 4,
            compression: 0.5,
            classes: 1000,
            image_size: 224,
            imagenet_stem: true,
        }
    }

    /// DenseNet-169: blocks of 6, 12, 32, 32.
    pub fn d169() -> Self {
        DenseNetConfig { block_layers: vec![6, 12, 32, 32], ..Self::d121() }
    }

    /// DenseNet-201: blocks of 6, 12, 48, 32.
    pub fn d201() -> Self {
        DenseNetConfig { block_layers: vec![6, 12, 48, 32], ..Self::d121() }
    }

    /// A small CIFAR-scale DenseNet-BC for numerical experiments.
    pub fn cifar(growth_rate: usize, layers_per_block: usize, classes: usize) -> Self {
        DenseNetConfig {
            growth_rate,
            block_layers: vec![layers_per_block; 3],
            stem_channels: 2 * growth_rate,
            bottleneck_factor: 4,
            compression: 0.5,
            classes,
            image_size: 32,
            imagenet_stem: false,
        }
    }

    /// Total number of convolution layers (the "121" in DenseNet-121 counts
    /// these plus the final FC).
    pub fn conv_layer_count(&self) -> usize {
        // Stem + 2 per composite layer + 1 per transition.
        1 + 2 * self.block_layers.iter().sum::<usize>() + (self.block_layers.len() - 1)
    }
}

/// One composite layer: BN → ReLU → 1×1 CONV (bottleneck) → BN → ReLU →
/// 3×3 CONV, returning the 3×3 CONV's node.
fn composite_layer(
    b: &mut GraphBuilder,
    input: NodeId,
    cfg: &DenseNetConfig,
    prefix: &str,
) -> Result<NodeId> {
    let bottleneck = b.bn_relu_conv(
        input,
        Conv2dAttrs::pointwise(cfg.bottleneck_factor * cfg.growth_rate),
        &format!("{prefix}/bottleneck"),
    )?;
    b.bn_relu_conv(bottleneck, Conv2dAttrs::same_3x3(cfg.growth_rate), &format!("{prefix}/growth"))
}

/// Builds a DenseNet-BC graph for the given mini-batch size.
///
/// # Errors
/// Returns an error if the configuration produces inconsistent shapes.
pub fn densenet(batch: usize, cfg: &DenseNetConfig) -> Result<Graph> {
    let name = format!(
        "densenet-{}-k{}",
        1 + 2 * self_total_layers(cfg) + cfg.block_layers.len(),
        cfg.growth_rate
    );
    let mut b = GraphBuilder::new(name);
    let data = b.input("data", Shape::nchw(batch, 3, cfg.image_size, cfg.image_size))?;
    let labels = b.input("labels", Shape::vector(batch))?;

    // Stem.
    let mut current = if cfg.imagenet_stem {
        let c = b.conv2d(data, Conv2dAttrs::new(cfg.stem_channels, 7, 2, 3), "stem/conv")?;
        let bn = b.batch_norm_default(c, "stem/bn")?;
        let r = b.relu(bn, "stem/relu")?;
        b.max_pool(r, PoolAttrs::new(3, 2, 1), "stem/pool")?
    } else {
        b.conv2d(data, Conv2dAttrs::same_3x3(cfg.stem_channels), "stem/conv")?
    };
    let mut channels = cfg.stem_channels;

    for (block_idx, &layers) in cfg.block_layers.iter().enumerate() {
        for layer_idx in 0..layers {
            let prefix = format!("block{}/cpl{}", block_idx + 1, layer_idx + 1);
            let new_features = composite_layer(&mut b, current, cfg, &prefix)?;
            current = b.concat(vec![current, new_features], &format!("{prefix}/concat"))?;
            channels += cfg.growth_rate;
        }
        if block_idx + 1 < cfg.block_layers.len() {
            // Transition: BN → ReLU → 1×1 CONV (compression) → 2×2 avg pool.
            let out_channels = ((channels as f64) * cfg.compression).floor() as usize;
            let prefix = format!("transition{}", block_idx + 1);
            let conv = b.bn_relu_conv(current, Conv2dAttrs::pointwise(out_channels), &prefix)?;
            current = b.avg_pool(conv, PoolAttrs::new(2, 2, 0), &format!("{prefix}/pool"))?;
            channels = out_channels;
        }
    }

    // Classifier head: BN → ReLU → global average pool → FC → softmax.
    let bn = b.batch_norm_default(current, "head/bn")?;
    let relu = b.relu(bn, "head/relu")?;
    let gap = b.global_avg_pool(relu, "head/gap")?;
    let fc = b.fully_connected(gap, cfg.classes, "head/fc")?;
    b.softmax_loss(fc, labels, "loss")?;
    Ok(b.finish())
}

fn self_total_layers(cfg: &DenseNetConfig) -> usize {
    cfg.block_layers.iter().sum()
}

/// DenseNet-121 at ImageNet resolution.
///
/// # Errors
/// Returns an error if graph construction fails.
pub fn densenet121(batch: usize) -> Result<Graph> {
    let mut g = densenet(batch, &DenseNetConfig::d121())?;
    g.set_name("densenet-121");
    Ok(g)
}

/// DenseNet-169 at ImageNet resolution.
///
/// # Errors
/// Returns an error if graph construction fails.
pub fn densenet169(batch: usize) -> Result<Graph> {
    let mut g = densenet(batch, &DenseNetConfig::d169())?;
    g.set_name("densenet-169");
    Ok(g)
}

/// A small CIFAR-scale DenseNet-BC used by the numerical training tests.
///
/// # Errors
/// Returns an error if graph construction fails.
pub fn densenet_cifar(
    batch: usize,
    growth_rate: usize,
    layers_per_block: usize,
    classes: usize,
) -> Result<Graph> {
    let mut g = densenet(batch, &DenseNetConfig::cifar(growth_rate, layers_per_block, classes))?;
    g.set_name("densenet-cifar");
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::op::OpKind;

    #[test]
    fn densenet121_has_120_conv_layers_plus_fc() {
        let cfg = DenseNetConfig::d121();
        assert_eq!(cfg.conv_layer_count(), 120);
        let g = densenet121(4).unwrap();
        let convs = g.nodes().filter(|n| matches!(n.op, OpKind::Conv2d(_))).count();
        assert_eq!(convs, 120);
        let fcs = g.nodes().filter(|n| matches!(n.op, OpKind::FullyConnected { .. })).count();
        assert_eq!(fcs, 1);
    }

    #[test]
    fn densenet121_bn_count() {
        // One BN per conv inside CPLs/transitions/stem plus the head BN:
        // 2 per CPL (58 CPLs = 116) + 3 transitions + stem + head = 121.
        let g = densenet121(2).unwrap();
        let bns = g.nodes().filter(|n| matches!(n.op, OpKind::BatchNorm(_))).count();
        assert_eq!(bns, 121);
    }

    #[test]
    fn densenet121_parameter_count_matches_reference() {
        // torchvision's densenet121 has 7,978,856 learnable parameters.
        let g = densenet121(1).unwrap();
        let params = g.parameter_count();
        assert!(
            (7_800_000..=8_100_000).contains(&params),
            "parameter count {params} outside expected DenseNet-121 range"
        );
    }

    #[test]
    fn densenet121_validates_and_shapes_flow() {
        let g = densenet121(2).unwrap();
        assert!(g.validate().is_ok());
        // Final dense block output: 1024 channels at 7x7.
        let head_bn = g.nodes().find(|n| n.name == "head/bn").unwrap();
        assert_eq!(head_bn.output_shape, Shape::nchw(2, 1024, 7, 7));
        let loss = g.nodes().find(|n| n.name == "loss").unwrap();
        assert_eq!(loss.output_shape, Shape::scalar());
    }

    #[test]
    fn densenet169_is_deeper() {
        let g121 = densenet121(1).unwrap();
        let g169 = densenet169(1).unwrap();
        assert!(g169.node_count() > g121.node_count());
        assert!(g169.parameter_count() > g121.parameter_count());
    }

    #[test]
    fn cifar_variant_is_small() {
        let g = densenet_cifar(8, 12, 6, 10).unwrap();
        assert!(g.validate().is_ok());
        assert!(g.parameter_count() < 1_500_000);
        // Input stays at 32x32 through the first block.
        let first_concat = g.nodes().find(|n| n.name == "block1/cpl1/concat").unwrap();
        assert_eq!(first_concat.output_shape.h(), 32);
    }

    #[test]
    fn concat_grows_channels_by_growth_rate() {
        let g = densenet_cifar(2, 12, 4, 10).unwrap();
        let c1 = g.nodes().find(|n| n.name == "block1/cpl1/concat").unwrap();
        let c2 = g.nodes().find(|n| n.name == "block1/cpl2/concat").unwrap();
        assert_eq!(c2.output_shape.c() - c1.output_shape.c(), 12);
    }

    #[test]
    fn transition_halves_channels_and_spatial() {
        let g = densenet121(2).unwrap();
        // After block1: 64 + 6*32 = 256 channels at 56x56 -> transition to
        // 128 channels at 28x28.
        let t1 = g.nodes().find(|n| n.name == "transition1/pool").unwrap();
        assert_eq!(t1.output_shape, Shape::nchw(2, 128, 28, 28));
        let t2 = g.nodes().find(|n| n.name == "transition2/pool").unwrap();
        assert_eq!(t2.output_shape, Shape::nchw(2, 256, 14, 14));
        let t3 = g.nodes().find(|n| n.name == "transition3/pool").unwrap();
        assert_eq!(t3.output_shape, Shape::nchw(2, 512, 7, 7));
    }
}
