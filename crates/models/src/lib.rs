//! # bnff-models — the CNN model zoo as computational graphs
//!
//! Graph builders for every network the paper evaluates or references:
//!
//! * [`densenet::densenet121`] (and the other DenseNet-BC depths) — the
//!   primary optimization target,
//! * [`resnet::resnet50`] (and ResNet-18/34) — the secondary target,
//! * [`alexnet::alexnet`] and [`vgg::vgg16`] — the early, CONV-dominated
//!   models of Figure 1,
//! * CIFAR-scale variants of DenseNet and ResNet used by the numerical
//!   training tests, where running the real arithmetic is cheap.
//!
//! Every builder returns a [`bnff_graph::Graph`] that ends in a softmax
//! cross-entropy head, so the same graph drives both the performance model
//! (`bnff-memsim`) and the numerical executor (`bnff-train`).
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> bnff_models::Result<()> {
//! // A CIFAR-scale DenseNet-BC: growth rate 12, 4 layers per dense block.
//! let graph = bnff_models::densenet_cifar(8, 12, 4, 10)?;
//! assert!(graph.node_count() > 20);
//! graph.validate()?; // shapes infer and the topology is a DAG
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alexnet;
pub mod densenet;
pub mod resnet;
pub mod vgg;
pub mod zoo;

pub use alexnet::alexnet;
pub use densenet::{densenet121, densenet169, densenet_cifar, DenseNetConfig};
pub use resnet::{resnet18, resnet50, resnet_cifar};
pub use vgg::vgg16;
pub use zoo::{build, Model};

/// Convenience result alias re-exported from the graph crate.
pub type Result<T> = bnff_graph::Result<T>;
