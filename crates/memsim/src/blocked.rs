//! Tile-level DRAM model of the cache-blocked packed GEMM.
//!
//! The whole-tensor sweep accounting in [`crate::cache`] charges each GEMM
//! operand as if it streamed from DRAM exactly once — which is only true of
//! a kernel whose working set actually fits on chip. This module models the
//! access pattern of the two GEMM engines the `bnff-kernels` crate has
//! shipped, using the kernels' own blocking parameters
//! ([`bnff_kernels::gemm::MC`], [`bnff_kernels::gemm::KC`],
//! [`bnff_kernels::gemm::NC`] and [`bnff_kernels::gemm::STREAM_TILE`]):
//!
//! * **Blocked (packed) engine** — each `KC × NC` slab of `B` is packed once
//!   and reused by every row block, so `B` streams from DRAM once; `A` is
//!   re-packed per column slab (`⌈n/NC⌉` streams); `C` is updated once per
//!   `k`-slab (`⌈k/KC⌉` write passes, `⌈k/KC⌉ − 1` read-backs). The packed
//!   panels are *tile-sized by construction*, so these counts hold however
//!   large the matrices are.
//! * **Legacy streaming engine** — loop tiling without packing: every
//!   [`STREAM_TILE`]-row block of `C`
//!   re-sweeps `B`, every column tile re-reads `A`, and `C` is updated per
//!   `k` tile. Reuse beyond one tile exists only if the *whole operand*
//!   happens to be cache-resident.
//!
//! Either way, a wholly cache-resident operand is charged its 10%
//! first-touch cost, consistent with [`CacheModel::dram_bytes`]. The
//! per-iteration totals surface in
//! [`IterationReport`](crate::report::IterationReport) so fig7-style
//! reports show what the blocked engine saves over whole-matrix streaming.
//!
//! The constants are imported from `bnff-kernels` — never re-derived here —
//! so a microkernel retune (such as the 6×16 SIMD widening) flows into the
//! model automatically; the kernels crate pins the relations this model
//! depends on in its `blocking_constants_hold_their_invariants` test.

use crate::cache::CacheModel;
use bnff_graph::analysis::GemmShape;
use bnff_kernels::gemm::{KC, NC, STREAM_TILE};

/// Bytes of an `r × c` f32 matrix.
fn bytes(r: usize, c: usize) -> f64 {
    (r * c * 4) as f64
}

/// First-touch cost of a cache-resident operand (compulsory misses only),
/// matching the activation residency rule in [`CacheModel::dram_bytes`].
const FIRST_TOUCH: f64 = 0.1;

impl CacheModel {
    /// Charges one operand that the kernel streams `streams` times: a
    /// resident operand pays its first touch once, a non-resident one pays
    /// every stream.
    fn operand_bytes(&self, b: f64, streams: usize) -> f64 {
        if self.is_resident(b as usize) {
            b * FIRST_TOUCH
        } else {
            b * streams as f64
        }
    }

    /// DRAM bytes the cache-blocked packed GEMM engine moves for `g`
    /// (all `count` executions).
    pub fn gemm_dram_bytes_blocked(&self, g: &GemmShape) -> f64 {
        if g.m == 0 || g.n == 0 || g.k == 0 {
            return 0.0;
        }
        let a = self.operand_bytes(bytes(g.m, g.k), g.n.div_ceil(NC));
        let b = self.operand_bytes(bytes(g.k, g.n), 1);
        let c = self.operand_bytes(bytes(g.m, g.n), 2 * g.k.div_ceil(KC) - 1);
        (a + b + c) * g.count as f64
    }

    /// DRAM bytes the legacy row-streaming GEMM engine would move for `g`
    /// (all `count` executions).
    pub fn gemm_dram_bytes_streamed(&self, g: &GemmShape) -> f64 {
        if g.m == 0 || g.n == 0 || g.k == 0 {
            return 0.0;
        }
        let a = self.operand_bytes(bytes(g.m, g.k), g.n.div_ceil(STREAM_TILE));
        let b = self.operand_bytes(bytes(g.k, g.n), g.m.div_ceil(STREAM_TILE));
        let c = self.operand_bytes(bytes(g.m, g.n), 2 * g.k.div_ceil(STREAM_TILE) - 1);
        (a + b + c) * g.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(m: usize, n: usize, k: usize) -> GemmShape {
        GemmShape { m, n, k, count: 1 }
    }

    #[test]
    fn resident_gemms_cost_the_same_either_way() {
        // Small operands fit on chip: both engines pay first touch only.
        let cache = CacheModel::with_threshold(1 << 20);
        let g = shape(64, 64, 64);
        let blocked = cache.gemm_dram_bytes_blocked(&g);
        assert_eq!(blocked, cache.gemm_dram_bytes_streamed(&g));
        // 3 operands × 64·64·4 bytes × 10% first touch.
        assert!((blocked - 3.0 * (64 * 64 * 4) as f64 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn blocking_caps_traffic_when_operands_exceed_the_cache() {
        // A 2048³ f32 GEMM: every operand is 16 MiB, over a 1 MiB threshold.
        let cache = CacheModel::with_threshold(1 << 20);
        let g = shape(2048, 2048, 2048);
        let blocked = cache.gemm_dram_bytes_blocked(&g);
        let streamed = cache.gemm_dram_bytes_streamed(&g);
        assert!(
            blocked < streamed / 5.0,
            "blocked {blocked} should be far below streamed {streamed}"
        );
        // B streams once when blocked, ⌈m/STREAM_TILE⌉ times when streamed.
        let b_bytes = (2048 * 2048 * 4) as f64;
        assert!(blocked > b_bytes, "B alone costs at least one full stream");
        assert!(streamed > b_bytes * (2048.0 / STREAM_TILE as f64));
    }

    #[test]
    fn count_scales_linearly_and_empty_gemms_are_free() {
        let cache = CacheModel::with_threshold(1 << 10);
        let one = cache.gemm_dram_bytes_blocked(&shape(128, 256, 64));
        let many = cache.gemm_dram_bytes_blocked(&GemmShape { m: 128, n: 256, k: 64, count: 8 });
        assert!((many - 8.0 * one).abs() < 1e-6);
        assert_eq!(cache.gemm_dram_bytes_blocked(&shape(0, 4, 4)), 0.0);
        assert_eq!(cache.gemm_dram_bytes_streamed(&shape(4, 4, 0)), 0.0);
    }
}
