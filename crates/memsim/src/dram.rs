//! A small DDR main-memory model used to derive peak bandwidth figures.
//!
//! The paper's Skylake system has twelve DDR4-2400 channels for a peak of
//! 230.4 GB/s; the Figure 8 experiment halves that by dropping the data
//! transfer rate. This module models the peak bandwidth of a DDR
//! configuration and the efficiency loss of a bursty access stream so those
//! configurations can be expressed directly.

use serde::{Deserialize, Serialize};

/// A DDR main-memory configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of memory channels.
    pub channels: usize,
    /// Data transfer rate per channel in mega-transfers per second
    /// (e.g. 2400 for DDR4-2400).
    pub transfer_rate_mts: f64,
    /// Bus width per channel in bytes (8 for DDR4).
    pub bus_bytes: usize,
    /// Fraction of the theoretical peak a well-behaved streaming workload
    /// achieves (row-buffer hits, refresh, turnaround); typically 0.75–0.9.
    pub stream_efficiency: f64,
}

impl DramConfig {
    /// The paper's Skylake configuration: 12 × DDR4-2400, 8-byte channels.
    pub fn skylake_ddr4_2400() -> Self {
        DramConfig {
            channels: 12,
            transfer_rate_mts: 2400.0,
            bus_bytes: 8,
            stream_efficiency: 0.85,
        }
    }

    /// The same configuration throttled to half data rate (Figure 8).
    pub fn skylake_half_rate() -> Self {
        DramConfig { transfer_rate_mts: 1200.0, ..Self::skylake_ddr4_2400() }
    }

    /// Theoretical peak bandwidth in bytes per second.
    pub fn peak_bandwidth(&self) -> f64 {
        self.channels as f64 * self.transfer_rate_mts * 1e6 * self.bus_bytes as f64
    }

    /// Achievable streaming bandwidth in bytes per second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.peak_bandwidth() * self.stream_efficiency
    }

    /// Achievable bandwidth for a stream with the given average burst length
    /// in cache lines; short bursts lose row-buffer locality.
    ///
    /// The model interpolates between 50% of streaming efficiency for
    /// single-line bursts and full streaming efficiency for bursts of 64
    /// lines or more.
    pub fn bandwidth_for_burst(&self, burst_lines: usize) -> f64 {
        let burst = burst_lines.clamp(1, 64) as f64;
        let factor = 0.5 + 0.5 * (burst.log2() / 6.0);
        self.effective_bandwidth() * factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_peak_matches_paper() {
        let cfg = DramConfig::skylake_ddr4_2400();
        let peak_gb = cfg.peak_bandwidth() / 1e9;
        assert!((peak_gb - 230.4).abs() < 0.1, "peak {peak_gb} GB/s");
    }

    #[test]
    fn half_rate_halves_bandwidth() {
        let full = DramConfig::skylake_ddr4_2400().peak_bandwidth();
        let half = DramConfig::skylake_half_rate().peak_bandwidth();
        assert!((full / half - 2.0).abs() < 1e-9);
    }

    #[test]
    fn effective_below_peak() {
        let cfg = DramConfig::skylake_ddr4_2400();
        assert!(cfg.effective_bandwidth() < cfg.peak_bandwidth());
        assert!(cfg.effective_bandwidth() > 0.5 * cfg.peak_bandwidth());
    }

    #[test]
    fn longer_bursts_get_more_bandwidth() {
        let cfg = DramConfig::skylake_ddr4_2400();
        assert!(cfg.bandwidth_for_burst(1) < cfg.bandwidth_for_burst(8));
        assert!(cfg.bandwidth_for_burst(8) < cfg.bandwidth_for_burst(64));
        assert!((cfg.bandwidth_for_burst(64) - cfg.effective_bandwidth()).abs() < 1.0);
        // Clamped above 64.
        assert!((cfg.bandwidth_for_burst(128) - cfg.bandwidth_for_burst(64)).abs() < 1.0);
    }
}
