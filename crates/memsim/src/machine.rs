//! Machine profiles: peak compute, peak bandwidth, cache capacity and the
//! efficiency factors that calibrate the roofline model.

use crate::dram::DramConfig;
use crate::error::MemsimError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A data-parallel architecture, described by the handful of parameters the
/// roofline model needs. The stock constructors mirror Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Human-readable name (e.g. `"Intel Xeon Skylake (2-socket)"`).
    pub name: String,
    /// Peak single-precision floating-point throughput in FLOP/s.
    pub peak_flops: f64,
    /// Peak main-memory bandwidth in bytes per second.
    pub mem_bandwidth: f64,
    /// Effective on-chip buffer (last-level cache / shared memory) capacity
    /// in bytes; tensors smaller than this are treated as cache-resident.
    pub cache_bytes: usize,
    /// Fraction of peak FLOPs achieved on convolution / GEMM layers.
    pub conv_efficiency: f64,
    /// Fraction of peak FLOPs achieved on memory-friendly element-wise
    /// layers (they are never compute-bound in practice, so this mainly
    /// guards against degenerate inputs).
    pub elementwise_efficiency: f64,
    /// Fraction of peak bandwidth achievable by a streaming sweep.
    pub stream_efficiency: f64,
    /// Fixed per-layer (kernel launch / subroutine call) overhead in seconds.
    pub kernel_overhead: f64,
    /// The paper's default mini-batch size on this machine (Figure 6).
    pub default_batch: usize,
}

impl MachineProfile {
    /// Validates the profile.
    ///
    /// # Errors
    /// Returns [`MemsimError::InvalidProfile`] for non-positive rates.
    pub fn validate(&self) -> Result<()> {
        if self.peak_flops <= 0.0 {
            return Err(MemsimError::InvalidProfile("peak_flops must be positive".into()));
        }
        if self.mem_bandwidth <= 0.0 {
            return Err(MemsimError::InvalidProfile("mem_bandwidth must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.conv_efficiency)
            || !(0.0..=1.0).contains(&self.stream_efficiency)
            || !(0.0..=1.0).contains(&self.elementwise_efficiency)
        {
            return Err(MemsimError::InvalidProfile("efficiencies must lie in [0, 1]".into()));
        }
        Ok(())
    }

    /// The 2-socket Skylake Xeon Gold 6138 system of the paper: 3.34 TFLOPS,
    /// 12 × DDR4-2400 (230.4 GB/s), 2 × 27.5 MiB LLC, mini-batch 120.
    pub fn skylake_xeon_2s() -> Self {
        MachineProfile {
            name: "Intel Xeon Skylake (2-socket)".to_string(),
            peak_flops: 3.34e12,
            mem_bandwidth: DramConfig::skylake_ddr4_2400().peak_bandwidth(),
            // 2 × 27.5 MiB of shared LLC; private L2s are not usable as a
            // shared staging buffer for whole-tensor sweeps.
            cache_bytes: 2 * 27_500 * 1024,
            conv_efficiency: 0.88,
            elementwise_efficiency: 0.25,
            stream_efficiency: 0.72,
            kernel_overhead: 10e-6,
            default_batch: 120,
        }
    }

    /// Intel Xeon Phi Knights Landing: 5.30 TFLOPS, 400 GB/s MCDRAM,
    /// mini-batch 128.
    pub fn knights_landing() -> Self {
        MachineProfile {
            name: "Intel Xeon Phi Knights Landing".to_string(),
            peak_flops: 5.30e12,
            mem_bandwidth: 400.0e9,
            cache_bytes: 34 * 1024 * 1024,
            conv_efficiency: 0.60,
            elementwise_efficiency: 0.20,
            stream_efficiency: 0.45,
            kernel_overhead: 30e-6,
            default_batch: 128,
        }
    }

    /// Nvidia Pascal Titan X: 10.0 TFLOPS, 480 GB/s GDDR5X, mini-batch 28
    /// (bounded by device memory capacity in the paper).
    pub fn pascal_titan_x() -> Self {
        MachineProfile {
            name: "Nvidia GPU Pascal Titan X".to_string(),
            peak_flops: 10.0e12,
            mem_bandwidth: 480.0e9,
            cache_bytes: 4 * 1024 * 1024,
            conv_efficiency: 0.55,
            elementwise_efficiency: 0.30,
            stream_efficiency: 0.60,
            kernel_overhead: 8e-6,
            default_batch: 28,
        }
    }

    /// Nvidia Tesla P100 (referenced in Section 3.1): 10.6 TFLOPS, 732 GB/s.
    pub fn tesla_p100() -> Self {
        MachineProfile {
            name: "Nvidia Tesla P100".to_string(),
            peak_flops: 10.6e12,
            mem_bandwidth: 732.0e9,
            cache_bytes: 4 * 1024 * 1024,
            conv_efficiency: 0.45,
            elementwise_efficiency: 0.30,
            stream_efficiency: 0.80,
            kernel_overhead: 8e-6,
            default_batch: 32,
        }
    }

    /// Returns a copy with a different peak memory bandwidth (Figure 8
    /// halves the Skylake bandwidth to 115.2 GB/s).
    #[must_use]
    pub fn with_bandwidth(mut self, bytes_per_second: f64) -> Self {
        self.mem_bandwidth = bytes_per_second;
        self.name = format!("{} @ {:.1} GB/s", self.name, bytes_per_second / 1e9);
        self
    }

    /// Returns a copy with effectively infinite memory bandwidth, modelling
    /// the hypothetical machine of Figure 4 where BN and ReLU never touch
    /// DRAM.
    #[must_use]
    pub fn with_infinite_bandwidth(mut self) -> Self {
        self.mem_bandwidth = f64::INFINITY;
        self.name = format!("{} (infinite BW)", self.name);
        self
    }

    /// Returns a copy with a different default mini-batch size.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.default_batch = batch;
        self
    }

    /// Compute-to-bandwidth ratio in FLOP per byte (Table 1's implicit
    /// "FLOP/B" column; the paper quotes 14.5 FLOP/B for the P100).
    pub fn flop_per_byte(&self) -> f64 {
        self.peak_flops / self.mem_bandwidth
    }

    /// Effective (achievable) DRAM bandwidth in bytes per second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.stream_efficiency
    }

    /// Effective FLOP/s for convolution-class layers.
    pub fn effective_conv_flops(&self) -> f64 {
        self.peak_flops * self.conv_efficiency
    }

    /// Effective FLOP/s for element-wise layers.
    pub fn effective_elementwise_flops(&self) -> f64 {
        self.peak_flops * self.elementwise_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let sky = MachineProfile::skylake_xeon_2s();
        assert!((sky.peak_flops / 1e12 - 3.34).abs() < 1e-6);
        assert!((sky.mem_bandwidth / 1e9 - 230.4).abs() < 0.1);
        assert_eq!(sky.default_batch, 120);

        let knl = MachineProfile::knights_landing();
        assert!((knl.peak_flops / 1e12 - 5.30).abs() < 1e-6);
        assert!((knl.mem_bandwidth / 1e9 - 400.0).abs() < 0.1);

        let gpu = MachineProfile::pascal_titan_x();
        assert!((gpu.peak_flops / 1e12 - 10.0).abs() < 1e-6);
        assert!((gpu.mem_bandwidth / 1e9 - 480.0).abs() < 0.1);
        assert_eq!(gpu.default_batch, 28);
    }

    #[test]
    fn p100_flop_per_byte_matches_paper() {
        // The paper quotes 14.5 FLOP/B (58 FLOPs per 32-bit word) for P100.
        let p100 = MachineProfile::tesla_p100();
        assert!((p100.flop_per_byte() - 14.5).abs() < 0.2);
    }

    #[test]
    fn all_stock_profiles_validate() {
        for profile in [
            MachineProfile::skylake_xeon_2s(),
            MachineProfile::knights_landing(),
            MachineProfile::pascal_titan_x(),
            MachineProfile::tesla_p100(),
        ] {
            assert!(profile.validate().is_ok(), "{} failed validation", profile.name);
        }
    }

    #[test]
    fn bandwidth_modifiers() {
        let half = MachineProfile::skylake_xeon_2s().with_bandwidth(115.2e9);
        assert!((half.mem_bandwidth / 1e9 - 115.2).abs() < 1e-6);
        assert!(half.name.contains("115.2"));
        let inf = MachineProfile::skylake_xeon_2s().with_infinite_bandwidth();
        assert!(inf.mem_bandwidth.is_infinite());
        let batched = MachineProfile::pascal_titan_x().with_batch(16);
        assert_eq!(batched.default_batch, 16);
    }

    #[test]
    fn invalid_profiles_rejected() {
        let mut p = MachineProfile::skylake_xeon_2s();
        p.peak_flops = 0.0;
        assert!(p.validate().is_err());
        let mut p = MachineProfile::skylake_xeon_2s();
        p.conv_efficiency = 1.5;
        assert!(p.validate().is_err());
        let mut p = MachineProfile::skylake_xeon_2s();
        p.mem_bandwidth = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn effective_rates_below_peak() {
        let p = MachineProfile::skylake_xeon_2s();
        assert!(p.effective_bandwidth() < p.mem_bandwidth);
        assert!(p.effective_conv_flops() < p.peak_flops);
        assert!(p.effective_elementwise_flops() < p.effective_conv_flops());
    }
}
