//! The roofline execution-time model.
//!
//! A layer's execution time on a machine is the maximum of its compute time
//! (FLOPs over the effective FLOP rate of its layer class) and its memory
//! time (DRAM bytes over the effective bandwidth), plus a fixed kernel
//! launch overhead. This is the standard roofline argument the paper makes
//! implicitly: CONV layers sit left of the ridge (compute-bound), BN/ReLU
//! far right of it (bandwidth-bound).

use crate::machine::MachineProfile;
use bnff_graph::op::LayerCategory;

/// Execution time of one layer pass under the roofline model.
///
/// `flops` is the arithmetic work, `dram_bytes` the DRAM traffic after cache
/// filtering, and `category` selects the compute-efficiency class.
pub fn pass_time(
    machine: &MachineProfile,
    category: LayerCategory,
    flops: f64,
    dram_bytes: f64,
) -> f64 {
    let compute_rate = match category {
        LayerCategory::ConvFc | LayerCategory::FusedConv => machine.effective_conv_flops(),
        LayerCategory::NonConv => machine.effective_elementwise_flops(),
    };
    let compute_time = if flops > 0.0 { flops / compute_rate } else { 0.0 };
    let memory_time =
        if dram_bytes > 0.0 { dram_bytes / machine.effective_bandwidth() } else { 0.0 };
    compute_time.max(memory_time) + machine.kernel_overhead
}

/// Whether a layer with the given intensity (FLOP per DRAM byte) is
/// compute-bound on this machine.
pub fn is_compute_bound(
    machine: &MachineProfile,
    category: LayerCategory,
    flops: f64,
    dram_bytes: f64,
) -> bool {
    let compute_rate = match category {
        LayerCategory::ConvFc | LayerCategory::FusedConv => machine.effective_conv_flops(),
        LayerCategory::NonConv => machine.effective_elementwise_flops(),
    };
    if dram_bytes <= 0.0 {
        return true;
    }
    flops / compute_rate >= dram_bytes / machine.effective_bandwidth()
}

/// The achieved bandwidth (bytes/s) of a layer pass, given its execution
/// time; used to draw the Figure 3 style bandwidth-utilization timeline.
pub fn achieved_bandwidth(dram_bytes: f64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        dram_bytes / seconds
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_layers_are_compute_bound_on_skylake() {
        let sky = MachineProfile::skylake_xeon_2s();
        // A representative DenseNet 3x3 conv at batch 120: ~47 GFLOP, ~77 MB.
        let flops = 47.0e9;
        let bytes = 77.0e6;
        assert!(is_compute_bound(&sky, LayerCategory::ConvFc, flops, bytes));
        let t = pass_time(&sky, LayerCategory::ConvFc, flops, bytes);
        assert!(t > flops / sky.peak_flops);
    }

    #[test]
    fn bn_layers_are_bandwidth_bound_on_skylake() {
        let sky = MachineProfile::skylake_xeon_2s();
        // A BN over a 120x128x28x28 feature map: ~48 MB read 3x + written 1x.
        let bytes = 4.0 * 48.0e6;
        let flops = 7.0 * 12.0e6;
        assert!(!is_compute_bound(&sky, LayerCategory::NonConv, flops, bytes));
        let t = pass_time(&sky, LayerCategory::NonConv, flops, bytes);
        let memory_time = bytes / sky.effective_bandwidth();
        assert!((t - memory_time - sky.kernel_overhead).abs() < 1e-9);
    }

    #[test]
    fn infinite_bandwidth_removes_memory_time() {
        let inf = MachineProfile::skylake_xeon_2s().with_infinite_bandwidth();
        let t = pass_time(&inf, LayerCategory::NonConv, 1.0e9, 1.0e12);
        // Only compute time + overhead remains.
        let expected = 1.0e9 / inf.effective_elementwise_flops() + inf.kernel_overhead;
        assert!((t - expected).abs() / expected < 1e-9);
        assert!(is_compute_bound(&inf, LayerCategory::NonConv, 1.0, 1.0e12));
    }

    #[test]
    fn zero_work_costs_only_overhead() {
        let sky = MachineProfile::skylake_xeon_2s();
        let t = pass_time(&sky, LayerCategory::NonConv, 0.0, 0.0);
        assert!((t - sky.kernel_overhead).abs() < 1e-12);
    }

    #[test]
    fn achieved_bandwidth_is_bytes_over_time() {
        assert_eq!(achieved_bandwidth(100.0, 2.0), 50.0);
        assert_eq!(achieved_bandwidth(100.0, 0.0), 0.0);
    }

    #[test]
    fn halving_bandwidth_slows_memory_bound_layers() {
        let full = MachineProfile::skylake_xeon_2s();
        let half = MachineProfile::skylake_xeon_2s().with_bandwidth(115.2e9);
        let bytes = 200.0e6;
        let t_full = pass_time(&full, LayerCategory::NonConv, 1.0e6, bytes);
        let t_half = pass_time(&half, LayerCategory::NonConv, 1.0e6, bytes);
        assert!(t_half > 1.8 * t_full);
    }
}
