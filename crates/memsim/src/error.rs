//! Error type for the performance model.

use std::fmt;

/// Errors produced by the machine performance model.
#[derive(Debug, Clone, PartialEq)]
pub enum MemsimError {
    /// A machine profile parameter was invalid (e.g. zero bandwidth).
    InvalidProfile(String),
    /// An error bubbled up from the graph crate.
    Graph(bnff_graph::GraphError),
}

impl fmt::Display for MemsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemsimError::InvalidProfile(msg) => write!(f, "invalid machine profile: {msg}"),
            MemsimError::Graph(err) => write!(f, "graph error: {err}"),
        }
    }
}

impl std::error::Error for MemsimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemsimError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<bnff_graph::GraphError> for MemsimError {
    fn from(err: bnff_graph::GraphError) -> Self {
        MemsimError::Graph(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = MemsimError::InvalidProfile("zero bandwidth".into());
        assert!(e.to_string().contains("zero bandwidth"));
        let ge = bnff_graph::GraphError::CyclicGraph;
        let e: MemsimError = ge.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<MemsimError>();
    }
}
