//! # bnff-memsim — machine performance model
//!
//! The paper measures its speedups on a 2-socket Skylake Xeon (230.4 GB/s of
//! DDR4 bandwidth, 3.34 TFLOPS) and a Pascal Titan X; this repository does
//! not assume access to that hardware, so it substitutes an *analytical
//! machine model* driven by the real computational graphs:
//!
//! 1. [`graph` analysis](bnff_graph::analysis) reports, per layer, the FLOPs
//!    and the whole-tensor memory sweeps of the forward and backward pass.
//! 2. A [`CacheModel`] decides which sweeps actually
//!    reach DRAM: mini-batch feature maps do (they are far larger than the
//!    last-level cache, exactly the paper's Section 3.1 argument), small
//!    weight tensors and per-channel statistics do not.
//! 3. A [roofline] execution-time model charges each layer the
//!    maximum of its compute time and its DRAM time on a given
//!    [`MachineProfile`], plus a per-layer kernel
//!    launch overhead.
//! 4. [`report::simulate_iteration`] aggregates this into per-iteration
//!    execution times, DRAM traffic, and CONV/FC vs non-CONV breakdowns —
//!    the quantities every figure of the paper is built from.
//!
//! The absolute times are not expected to match the paper's testbed; the
//! *relative* behaviour (who is bandwidth-bound, what BNFF saves, where the
//! crossovers are) is what the model reproduces.
//!
//! ## Example
//!
//! ```rust
//! use bnff_graph::builder::GraphBuilder;
//! use bnff_graph::op::Conv2dAttrs;
//! use bnff_memsim::{simulate_iteration, MachineProfile};
//! use bnff_tensor::Shape;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new("fragment");
//! let x = b.input("in", Shape::nchw(32, 64, 28, 28))?;
//! let c = b.conv2d(x, Conv2dAttrs::same_3x3(64), "conv")?;
//! let _bn = b.batch_norm_default(c, "bn")?;
//! let graph = b.finish();
//!
//! let report = simulate_iteration(&graph, &MachineProfile::skylake_xeon_2s())?;
//! assert!(report.total_seconds() > 0.0);
//! assert!(report.total_dram_bytes() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blocked;
pub mod cache;
pub mod dram;
pub mod error;
pub mod machine;
pub mod report;
pub mod roofline;
pub mod timeline;

pub use cache::CacheModel;
pub use error::MemsimError;
pub use machine::MachineProfile;
pub use report::{
    forward_dram_bytes, simulate_iteration, IterationReport, NodeTiming, OpForwardBytes,
};
pub use timeline::{simulate_timeline, TimelineEvent};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, MemsimError>;
