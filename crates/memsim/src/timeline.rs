//! Layer-by-layer execution timeline with bandwidth utilization.
//!
//! Figure 3 of the paper plots the memory-bandwidth utilization of
//! DenseNet-121 layer by layer over time, showing non-CONV layers pinned at
//! the peak bandwidth while CONV layers underutilize it. This module
//! produces that series from the simulated iteration: forward pass in
//! topological order, then the backward pass in reverse order.

use crate::cache::CacheModel;
use crate::machine::MachineProfile;
use crate::roofline::{achieved_bandwidth, pass_time};
use crate::Result;
use bnff_graph::analysis::node_cost;
use bnff_graph::op::LayerCategory;
use bnff_graph::Graph;
use serde::Serialize;

/// One layer execution in the timeline.
#[derive(Debug, Clone, Serialize)]
pub struct TimelineEvent {
    /// Node name.
    pub name: String,
    /// Operation display name.
    pub op: String,
    /// Layer category.
    pub category: LayerCategory,
    /// Whether this event belongs to the backward pass.
    pub backward: bool,
    /// Start time in seconds from the beginning of the iteration.
    pub start: f64,
    /// Duration in seconds.
    pub duration: f64,
    /// DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// Achieved DRAM bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Achieved bandwidth as a fraction of the machine's peak.
    pub bandwidth_utilization: f64,
}

/// Simulates the layer-by-layer timeline of one training iteration.
///
/// # Errors
/// Returns an error if the machine profile is invalid or the graph is
/// structurally inconsistent.
pub fn simulate_timeline(graph: &Graph, machine: &MachineProfile) -> Result<Vec<TimelineEvent>> {
    machine.validate()?;
    let cache = CacheModel::for_machine(machine);
    let order = graph.topo_order()?;
    let mut events = Vec::new();
    let mut clock = 0.0f64;

    let mut push_event = |clock: &mut f64,
                          name: &str,
                          op: &str,
                          category: LayerCategory,
                          backward: bool,
                          flops: f64,
                          dram_bytes: f64| {
        let duration = pass_time(machine, category, flops, dram_bytes);
        let bandwidth = achieved_bandwidth(dram_bytes, duration);
        events.push(TimelineEvent {
            name: name.to_string(),
            op: op.to_string(),
            category,
            backward,
            start: *clock,
            duration,
            dram_bytes,
            bandwidth,
            bandwidth_utilization: if machine.mem_bandwidth.is_finite() {
                bandwidth / machine.mem_bandwidth
            } else {
                0.0
            },
        });
        *clock += duration;
    };

    // Forward pass.
    for id in &order {
        let node = graph.node(*id)?;
        if matches!(node.op, bnff_graph::OpKind::Input) {
            continue;
        }
        let cost = node_cost(graph, node)?;
        let bytes = cache.dram_bytes_for(&cost.sweeps_fwd);
        push_event(
            &mut clock,
            &node.name,
            node.op.name(),
            node.op.category(),
            false,
            cost.flops_fwd,
            bytes,
        );
    }
    // Backward pass, reverse order.
    for id in order.iter().rev() {
        let node = graph.node(*id)?;
        if matches!(node.op, bnff_graph::OpKind::Input) {
            continue;
        }
        let cost = node_cost(graph, node)?;
        if cost.flops_bwd == 0.0 && cost.sweeps_bwd.is_empty() {
            continue;
        }
        let bytes = cache.dram_bytes_for(&cost.sweeps_bwd);
        push_event(
            &mut clock,
            &node.name,
            node.op.name(),
            node.op.category(),
            true,
            cost.flops_bwd,
            bytes,
        );
    }
    Ok(events)
}

/// Buckets a timeline into fixed-width windows and reports the average
/// bandwidth utilization per window — a compact series suitable for
/// plotting Figure 3.
pub fn bandwidth_series(events: &[TimelineEvent], buckets: usize) -> Vec<f64> {
    if events.is_empty() || buckets == 0 {
        return vec![];
    }
    let total: f64 = events.iter().map(|e| e.start + e.duration).fold(0.0, f64::max);
    if total <= 0.0 {
        return vec![0.0; buckets];
    }
    let width = total / buckets as f64;
    let mut series = vec![0.0f64; buckets];
    for (i, slot) in series.iter_mut().enumerate() {
        let lo = i as f64 * width;
        let hi = lo + width;
        let mut weighted = 0.0;
        for e in events {
            let start = e.start.max(lo);
            let end = (e.start + e.duration).min(hi);
            if end > start {
                weighted += e.bandwidth_utilization * (end - start);
            }
        }
        *slot = weighted / width;
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_tensor::Shape;

    fn fragment() -> Graph {
        let mut b = GraphBuilder::new("timeline");
        let x = b.input("in", Shape::nchw(120, 128, 28, 28)).unwrap();
        let c1 = b.bn_relu_conv(x, Conv2dAttrs::pointwise(128), "cpl/a").unwrap();
        b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(32), "cpl/b").unwrap();
        b.finish()
    }

    #[test]
    fn events_are_contiguous_and_ordered() {
        let events = simulate_timeline(&fragment(), &MachineProfile::skylake_xeon_2s()).unwrap();
        assert!(!events.is_empty());
        let mut clock = 0.0;
        for e in &events {
            assert!((e.start - clock).abs() < 1e-12, "events must be back-to-back");
            assert!(e.duration > 0.0);
            clock = e.start + e.duration;
        }
        // Forward events come before backward events.
        let first_bwd = events.iter().position(|e| e.backward).unwrap();
        assert!(events[..first_bwd].iter().all(|e| !e.backward));
        assert!(events[first_bwd..].iter().all(|e| e.backward));
    }

    #[test]
    fn bn_layers_pin_the_bandwidth() {
        let events = simulate_timeline(&fragment(), &MachineProfile::skylake_xeon_2s()).unwrap();
        let bn_util: Vec<f64> = events
            .iter()
            .filter(|e| e.op == "BatchNorm" && !e.backward)
            .map(|e| e.bandwidth_utilization)
            .collect();
        let conv_util: Vec<f64> = events
            .iter()
            .filter(|e| e.op == "Conv2d" && !e.backward)
            .map(|e| e.bandwidth_utilization)
            .collect();
        assert!(!bn_util.is_empty() && !conv_util.is_empty());
        let bn_avg = bn_util.iter().sum::<f64>() / bn_util.len() as f64;
        let conv_avg = conv_util.iter().sum::<f64>() / conv_util.len() as f64;
        assert!(
            bn_avg > conv_avg,
            "BN layers must utilise more bandwidth than CONV layers ({bn_avg} vs {conv_avg})"
        );
        // Memory-bound layers run at (close to) the achievable bandwidth.
        assert!(bn_avg > 0.6);
    }

    #[test]
    fn utilization_never_exceeds_peak() {
        let events = simulate_timeline(&fragment(), &MachineProfile::skylake_xeon_2s()).unwrap();
        for e in &events {
            assert!(e.bandwidth_utilization <= 1.0 + 1e-9, "{} exceeds peak", e.name);
        }
    }

    #[test]
    fn bandwidth_series_buckets() {
        let events = simulate_timeline(&fragment(), &MachineProfile::skylake_xeon_2s()).unwrap();
        let series = bandwidth_series(&events, 16);
        assert_eq!(series.len(), 16);
        assert!(series.iter().all(|v| *v >= 0.0 && *v <= 1.0 + 1e-9));
        assert!(series.iter().sum::<f64>() > 0.0);
        assert!(bandwidth_series(&[], 8).is_empty());
        assert!(bandwidth_series(&events, 0).is_empty());
    }
}
