//! The on-chip buffer (cache) filter.
//!
//! Section 3.1 of the paper argues that the aggregate size of a mini-batch
//! feature map (batch ≥ 100 at ImageNet resolutions) cannot fit in on-chip
//! memory, so every whole-tensor sweep of such a feature map reaches DRAM,
//! while weights and per-channel statistics stay resident. This module
//! encodes that capacity argument as a simple threshold filter and exposes
//! the resulting DRAM traffic per node.

use crate::machine::MachineProfile;
use bnff_graph::analysis::{Sweep, TensorClass};

/// Decides which memory sweeps reach DRAM on a given machine.
#[derive(Debug, Clone)]
pub struct CacheModel {
    /// Capacity threshold in bytes: tensors at or below this size are
    /// treated as cache-resident after their first touch.
    resident_threshold: usize,
}

impl CacheModel {
    /// Builds the cache model for a machine, reserving a fraction of the
    /// cache for the working set of the convolution kernels themselves.
    pub fn for_machine(machine: &MachineProfile) -> Self {
        CacheModel { resident_threshold: (machine.cache_bytes as f64 * 0.5) as usize }
    }

    /// Builds a cache model with an explicit residency threshold (useful for
    /// the cache-crossover ablation).
    pub fn with_threshold(resident_threshold: usize) -> Self {
        CacheModel { resident_threshold }
    }

    /// The residency threshold in bytes.
    pub fn resident_threshold(&self) -> usize {
        self.resident_threshold
    }

    /// Whether a tensor of `bytes` bytes is treated as cache-resident.
    pub fn is_resident(&self, bytes: usize) -> bool {
        bytes <= self.resident_threshold
    }

    /// DRAM bytes actually transferred by one sweep.
    ///
    /// * Mini-batch activations / gradients larger than the threshold always
    ///   stream from DRAM (capacity misses dominate).
    /// * Activations small enough to stay resident cost nothing beyond their
    ///   first touch, which is charged at 10% (compulsory misses).
    /// * Weights and weight gradients are read/written once per iteration;
    ///   they are charged fully but are tiny compared to feature maps.
    /// * Per-channel statistics are negligible and charged nothing.
    pub fn dram_bytes(&self, sweep: &Sweep) -> f64 {
        match sweep.class {
            TensorClass::Statistics => 0.0,
            TensorClass::Weight | TensorClass::WeightGradient => sweep.bytes as f64,
            TensorClass::Activation | TensorClass::Gradient => {
                if self.is_resident(sweep.bytes) {
                    sweep.bytes as f64 * 0.1
                } else {
                    sweep.bytes as f64
                }
            }
        }
    }

    /// Total DRAM bytes for a list of sweeps.
    pub fn dram_bytes_for(&self, sweeps: &[Sweep]) -> f64 {
        sweeps.iter().map(|s| self.dram_bytes(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::analysis::SweepDirection;

    fn sweep(bytes: usize, class: TensorClass) -> Sweep {
        Sweep { bytes, direction: SweepDirection::Read, class, label: "test" }
    }

    #[test]
    fn large_activations_hit_dram() {
        let cache = CacheModel::with_threshold(1 << 20);
        let s = sweep(100 << 20, TensorClass::Activation);
        assert_eq!(cache.dram_bytes(&s), (100 << 20) as f64);
        assert!(!cache.is_resident(100 << 20));
    }

    #[test]
    fn small_activations_stay_resident() {
        let cache = CacheModel::with_threshold(1 << 20);
        let s = sweep(64 << 10, TensorClass::Activation);
        assert!(cache.dram_bytes(&s) < (64 << 10) as f64 * 0.2);
        assert!(cache.is_resident(64 << 10));
    }

    #[test]
    fn statistics_are_free_weights_are_not() {
        let cache = CacheModel::with_threshold(1 << 20);
        assert_eq!(cache.dram_bytes(&sweep(4096, TensorClass::Statistics)), 0.0);
        assert_eq!(cache.dram_bytes(&sweep(4096, TensorClass::Weight)), 4096.0);
        assert_eq!(cache.dram_bytes(&sweep(4096, TensorClass::WeightGradient)), 4096.0);
    }

    #[test]
    fn machine_threshold_tracks_cache_size() {
        let sky = CacheModel::for_machine(&MachineProfile::skylake_xeon_2s());
        let gpu = CacheModel::for_machine(&MachineProfile::pascal_titan_x());
        assert!(sky.resident_threshold() > gpu.resident_threshold());
    }

    #[test]
    fn aggregate_sums_sweeps() {
        let cache = CacheModel::with_threshold(1 << 10);
        let sweeps = vec![
            sweep(2048, TensorClass::Activation),
            sweep(100, TensorClass::Statistics),
            sweep(512, TensorClass::Weight),
        ];
        assert_eq!(cache.dram_bytes_for(&sweeps), 2048.0 + 512.0);
    }
}
