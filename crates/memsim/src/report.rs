//! Whole-iteration simulation and reporting.

use crate::cache::CacheModel;
use crate::machine::MachineProfile;
use crate::roofline::pass_time;
use crate::Result;
use bnff_graph::analysis::{node_cost, node_gemms};
use bnff_graph::op::LayerCategory;
use bnff_graph::plan::ExecutionPlan;
use bnff_graph::Graph;
use serde::Serialize;
use std::collections::HashMap;

/// Per-node timing and traffic of one training iteration.
#[derive(Debug, Clone, Serialize)]
pub struct NodeTiming {
    /// Node name.
    pub name: String,
    /// Operation display name (e.g. `"Conv2d"`, `"BatchNorm"`).
    pub op: String,
    /// Layer category (CONV/FC, fused-CONV or non-CONV).
    pub category: LayerCategory,
    /// Forward execution time in seconds.
    pub fwd_seconds: f64,
    /// Backward execution time in seconds.
    pub bwd_seconds: f64,
    /// Forward DRAM traffic in bytes.
    pub fwd_dram_bytes: f64,
    /// Backward DRAM traffic in bytes.
    pub bwd_dram_bytes: f64,
    /// Forward FLOPs.
    pub flops_fwd: f64,
    /// Backward FLOPs.
    pub flops_bwd: f64,
}

impl NodeTiming {
    /// Total (forward + backward) time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.fwd_seconds + self.bwd_seconds
    }

    /// Total (forward + backward) DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> f64 {
        self.fwd_dram_bytes + self.bwd_dram_bytes
    }
}

/// Aggregated result of simulating one training iteration of a graph on a
/// machine.
#[derive(Debug, Clone, Serialize)]
pub struct IterationReport {
    /// The graph's name.
    pub graph_name: String,
    /// The machine's name.
    pub machine_name: String,
    /// Per-node breakdown (topological order).
    pub per_node: Vec<NodeTiming>,
    /// Forward-pass time in seconds.
    pub fwd_seconds: f64,
    /// Backward-pass time in seconds.
    pub bwd_seconds: f64,
    /// Forward-pass DRAM traffic in bytes.
    pub fwd_dram_bytes: f64,
    /// Backward-pass DRAM traffic in bytes.
    pub bwd_dram_bytes: f64,
    /// Peak bytes of node-output activations a liveness-planned executor
    /// holds at once (retained-for-backward tensors + reuse-arena slots).
    pub planned_peak_activation_bytes: usize,
    /// Bytes of node-output activations a naive one-buffer-per-node
    /// executor holds (all alive simultaneously at the end of forward).
    pub naive_activation_bytes: usize,
    /// DRAM bytes the CONV/FC GEMM lowerings move per iteration under the
    /// cache-blocked packed engine (tile-sized working sets).
    pub gemm_dram_bytes_blocked: f64,
    /// DRAM bytes the same lowerings would move under the legacy
    /// row-streaming engine (whole-matrix re-streams once operands exceed
    /// the cache).
    pub gemm_dram_bytes_streamed: f64,
}

impl IterationReport {
    /// Total iteration time (forward + backward) in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.fwd_seconds + self.bwd_seconds
    }

    /// Total iteration DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> f64 {
        self.fwd_dram_bytes + self.bwd_dram_bytes
    }

    /// Time spent in each layer category (forward + backward).
    pub fn seconds_by_category(&self) -> HashMap<LayerCategory, f64> {
        let mut map = HashMap::new();
        for node in &self.per_node {
            *map.entry(node.category).or_insert(0.0) += node.total_seconds();
        }
        map
    }

    /// Time spent per operation name (forward + backward).
    pub fn seconds_by_op(&self) -> HashMap<String, f64> {
        let mut map = HashMap::new();
        for node in &self.per_node {
            *map.entry(node.op.clone()).or_insert(0.0) += node.total_seconds();
        }
        map
    }

    /// Fraction of iteration time spent in layers that contain a
    /// convolution or FC (the paper's "CONV/FC" share in Figures 1 and 6).
    pub fn conv_fraction(&self) -> f64 {
        let by_cat = self.seconds_by_category();
        let conv = by_cat.get(&LayerCategory::ConvFc).copied().unwrap_or(0.0)
            + by_cat.get(&LayerCategory::FusedConv).copied().unwrap_or(0.0);
        let total = self.total_seconds();
        if total > 0.0 {
            conv / total
        } else {
            0.0
        }
    }

    /// Fraction of iteration time spent in non-CONV layers.
    pub fn non_conv_fraction(&self) -> f64 {
        1.0 - self.conv_fraction()
    }

    /// Time spent (fwd + bwd) in BN and BN-derived standalone layers.
    pub fn bn_seconds(&self) -> f64 {
        self.per_node
            .iter()
            .filter(|n| {
                matches!(n.op.as_str(), "BatchNorm" | "SubBnStats" | "SubBnNorm" | "NormRelu")
            })
            .map(NodeTiming::total_seconds)
            .sum()
    }

    /// Speedup of this report relative to `other` (other / self).
    pub fn speedup_over(&self, other: &IterationReport) -> f64 {
        other.total_seconds() / self.total_seconds()
    }

    /// Relative execution-time reduction of `self` against a `baseline`
    /// (`1 − self/baseline`, the way the paper quotes its gains).
    pub fn improvement_over(&self, baseline: &IterationReport) -> f64 {
        1.0 - self.total_seconds() / baseline.total_seconds()
    }

    /// Relative DRAM-traffic reduction against a baseline.
    pub fn traffic_reduction_over(&self, baseline: &IterationReport) -> f64 {
        1.0 - self.total_dram_bytes() / baseline.total_dram_bytes()
    }

    /// Fraction of activation memory the liveness planner saves over the
    /// naive one-buffer-per-node executor (`1 − planned/naive`).
    pub fn planned_memory_reduction(&self) -> f64 {
        if self.naive_activation_bytes == 0 {
            0.0
        } else {
            1.0 - self.planned_peak_activation_bytes as f64 / self.naive_activation_bytes as f64
        }
    }

    /// Fraction of GEMM DRAM traffic the cache-blocked packed engine saves
    /// over whole-matrix streaming (`1 − blocked/streamed`). Zero when every
    /// GEMM operand is cache-resident anyway.
    pub fn gemm_locality_reduction(&self) -> f64 {
        if self.gemm_dram_bytes_streamed == 0.0 {
            0.0
        } else {
            1.0 - self.gemm_dram_bytes_blocked / self.gemm_dram_bytes_streamed
        }
    }
}

/// Predicted forward-pass DRAM traffic for one graph node — the memsim
/// side of the serving profiler's measured-vs-predicted table.
#[derive(Debug, Clone, Serialize)]
pub struct OpForwardBytes {
    /// The node's ID in the source graph (matches the `node` field of a
    /// compiled tape instruction's `OpProfile`).
    pub node: bnff_graph::NodeId,
    /// Node name.
    pub name: String,
    /// Operation display name (e.g. `"Conv2d"`, `"BatchNorm"`).
    pub op: String,
    /// Predicted forward DRAM traffic in bytes.
    pub dram_bytes: f64,
}

/// Predicts the forward-pass DRAM bytes of every compute node in `graph`
/// on `machine`, in topological order. Input nodes are skipped (they move
/// no DRAM traffic of their own).
///
/// # Errors
/// Returns an error if the machine profile is invalid or the graph is
/// structurally inconsistent.
pub fn forward_dram_bytes(graph: &Graph, machine: &MachineProfile) -> Result<Vec<OpForwardBytes>> {
    machine.validate()?;
    let cache = CacheModel::for_machine(machine);
    let order = graph.topo_order()?;
    let mut per_node = Vec::with_capacity(order.len());
    for id in order {
        let node = graph.node(id)?;
        if matches!(node.op, bnff_graph::OpKind::Input) {
            continue;
        }
        let cost = node_cost(graph, node)?;
        per_node.push(OpForwardBytes {
            node: id,
            name: node.name.clone(),
            op: node.op.name().to_string(),
            dram_bytes: cache.dram_bytes_for(&cost.sweeps_fwd),
        });
    }
    Ok(per_node)
}

/// Simulates one training iteration (forward + backward) of `graph` on
/// `machine`.
///
/// # Errors
/// Returns an error if the machine profile is invalid or the graph is
/// structurally inconsistent.
pub fn simulate_iteration(graph: &Graph, machine: &MachineProfile) -> Result<IterationReport> {
    machine.validate()?;
    let cache = CacheModel::for_machine(machine);
    let plan = ExecutionPlan::for_graph(graph)?;
    let order = graph.topo_order()?;
    let mut per_node = Vec::with_capacity(order.len());
    let mut fwd_seconds = 0.0;
    let mut bwd_seconds = 0.0;
    let mut fwd_dram = 0.0;
    let mut bwd_dram = 0.0;
    let mut gemm_blocked = 0.0;
    let mut gemm_streamed = 0.0;
    for id in order {
        let node = graph.node(id)?;
        if matches!(node.op, bnff_graph::OpKind::Input) {
            continue;
        }
        let cost = node_cost(graph, node)?;
        let gemms = node_gemms(graph, node)?;
        for g in gemms.fwd.iter().chain(gemms.bwd.iter()) {
            gemm_blocked += cache.gemm_dram_bytes_blocked(g);
            gemm_streamed += cache.gemm_dram_bytes_streamed(g);
        }
        let category = node.op.category();
        let fwd_bytes = cache.dram_bytes_for(&cost.sweeps_fwd);
        let bwd_bytes = cache.dram_bytes_for(&cost.sweeps_bwd);
        let fwd = pass_time(machine, category, cost.flops_fwd, fwd_bytes);
        let bwd = if cost.flops_bwd > 0.0 || bwd_bytes > 0.0 {
            pass_time(machine, category, cost.flops_bwd, bwd_bytes)
        } else {
            0.0
        };
        fwd_seconds += fwd;
        bwd_seconds += bwd;
        fwd_dram += fwd_bytes;
        bwd_dram += bwd_bytes;
        per_node.push(NodeTiming {
            name: node.name.clone(),
            op: node.op.name().to_string(),
            category,
            fwd_seconds: fwd,
            bwd_seconds: bwd,
            fwd_dram_bytes: fwd_bytes,
            bwd_dram_bytes: bwd_bytes,
            flops_fwd: cost.flops_fwd,
            flops_bwd: cost.flops_bwd,
        });
    }
    Ok(IterationReport {
        graph_name: graph.name().to_string(),
        machine_name: machine.name.clone(),
        per_node,
        fwd_seconds,
        bwd_seconds,
        fwd_dram_bytes: fwd_dram,
        bwd_dram_bytes: bwd_dram,
        planned_peak_activation_bytes: plan.planned_peak_bytes(),
        naive_activation_bytes: plan.naive_total_bytes(),
        gemm_dram_bytes_blocked: gemm_blocked,
        gemm_dram_bytes_streamed: gemm_streamed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_graph::passes::{BnffPass, Pass};
    use bnff_tensor::Shape;

    /// A DenseNet-ish fragment at a mini-batch large enough that activations
    /// exceed the LLC, as in the paper.
    fn fragment(batch: usize) -> Graph {
        let mut b = GraphBuilder::new("fragment");
        let x = b.input("in", Shape::nchw(batch, 256, 28, 28)).unwrap();
        let c1 = b.bn_relu_conv(x, Conv2dAttrs::pointwise(128), "cpl/a").unwrap();
        let c2 = b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(32), "cpl/b").unwrap();
        b.concat(vec![x, c2], "concat").unwrap();
        b.finish()
    }

    #[test]
    fn simulation_produces_positive_times() {
        let g = fragment(120);
        let report = simulate_iteration(&g, &MachineProfile::skylake_xeon_2s()).unwrap();
        assert!(report.fwd_seconds > 0.0);
        assert!(report.bwd_seconds > report.fwd_seconds);
        assert!(report.total_dram_bytes() > 0.0);
        assert_eq!(report.per_node.len(), g.node_count() - 1); // input skipped
    }

    #[test]
    fn forward_dram_bytes_matches_the_iteration_forward_side() {
        let g = fragment(120);
        let machine = MachineProfile::skylake_xeon_2s();
        let per_op = forward_dram_bytes(&g, &machine).unwrap();
        let report = simulate_iteration(&g, &machine).unwrap();
        assert_eq!(per_op.len(), report.per_node.len());
        for (op, timing) in per_op.iter().zip(&report.per_node) {
            assert_eq!(op.name, timing.name);
            assert_eq!(op.op, timing.op);
            assert_eq!(op.dram_bytes, timing.fwd_dram_bytes);
            assert!(op.dram_bytes > 0.0, "{} predicts no traffic", op.name);
        }
        let total: f64 = per_op.iter().map(|o| o.dram_bytes).sum();
        assert_eq!(total, report.fwd_dram_bytes);
    }

    #[test]
    fn non_conv_layers_dominate_at_large_batch() {
        // The paper's Figure 1: for DenseNet-like fragments the non-CONV
        // share of execution time is large (>= 40%).
        let g = fragment(120);
        let report = simulate_iteration(&g, &MachineProfile::skylake_xeon_2s()).unwrap();
        assert!(
            report.non_conv_fraction() > 0.4,
            "non-CONV fraction {} unexpectedly small",
            report.non_conv_fraction()
        );
    }

    #[test]
    fn bnff_improves_iteration_time_and_traffic() {
        let baseline = fragment(120);
        let restructured = BnffPass::new().run(&baseline).unwrap();
        let machine = MachineProfile::skylake_xeon_2s();
        let base = simulate_iteration(&baseline, &machine).unwrap();
        let bnff = simulate_iteration(&restructured, &machine).unwrap();
        assert!(bnff.total_seconds() < base.total_seconds());
        assert!(bnff.total_dram_bytes() < base.total_dram_bytes());
        assert!(bnff.speedup_over(&base) > 1.0);
        assert!(bnff.improvement_over(&base) > 0.0);
        assert!(bnff.traffic_reduction_over(&base) > 0.0);
        // Forward gains exceed backward gains (Section 5).
        let fwd_gain = 1.0 - bnff.fwd_seconds / base.fwd_seconds;
        let bwd_gain = 1.0 - bnff.bwd_seconds / base.bwd_seconds;
        assert!(fwd_gain > bwd_gain);
    }

    #[test]
    fn infinite_bandwidth_shrinks_bn_time() {
        let g = fragment(120);
        let finite = simulate_iteration(&g, &MachineProfile::skylake_xeon_2s()).unwrap();
        let infinite =
            simulate_iteration(&g, &MachineProfile::skylake_xeon_2s().with_infinite_bandwidth())
                .unwrap();
        // The paper's Figure 4 observes ~20x on BN+ReLU; our model should
        // show at least a large one-order-of-magnitude effect.
        let ratio = finite.bn_seconds() / infinite.bn_seconds();
        assert!(ratio > 5.0, "BN speedup under infinite bandwidth only {ratio}");
    }

    #[test]
    fn halved_bandwidth_increases_non_conv_share() {
        let g = fragment(120);
        let full = simulate_iteration(&g, &MachineProfile::skylake_xeon_2s()).unwrap();
        let half =
            simulate_iteration(&g, &MachineProfile::skylake_xeon_2s().with_bandwidth(115.2e9))
                .unwrap();
        assert!(half.total_seconds() > full.total_seconds());
        assert!(half.non_conv_fraction() > full.non_conv_fraction());
    }

    #[test]
    fn small_feature_maps_shrink_the_bnff_benefit() {
        // At CIFAR-like sizes the feature maps fit in the LLC, so removing
        // BN's sweeps buys much less than at ImageNet scale — the cache
        // crossover the ablation benches explore.
        let mut b = GraphBuilder::new("tiny");
        let x = b.input("in", Shape::nchw(8, 16, 8, 8)).unwrap();
        let c1 = b.bn_relu_conv(x, Conv2dAttrs::pointwise(32), "cpl/a").unwrap();
        b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(16), "cpl/b").unwrap();
        let tiny = b.finish();
        // Zero out the per-layer launch overhead so the comparison isolates
        // the cache-residency effect (otherwise the tiny graph's time is
        // dominated by kernel launches, which BNFF also reduces).
        let mut machine = MachineProfile::skylake_xeon_2s();
        machine.kernel_overhead = 0.0;
        let tiny_gain = {
            let restructured = BnffPass::new().run(&tiny).unwrap();
            let base = simulate_iteration(&tiny, &machine).unwrap();
            simulate_iteration(&restructured, &machine).unwrap().improvement_over(&base)
        };
        let big = fragment(120);
        let big_gain = {
            let restructured = BnffPass::new().run(&big).unwrap();
            let base = simulate_iteration(&big, &machine).unwrap();
            simulate_iteration(&restructured, &machine).unwrap().improvement_over(&base)
        };
        assert!(
            tiny_gain < big_gain,
            "BNFF gain at CIFAR scale ({tiny_gain}) should be below ImageNet scale ({big_gain})"
        );
    }

    #[test]
    fn planner_peak_is_below_the_naive_total() {
        let g = fragment(64);
        let report = simulate_iteration(&g, &MachineProfile::skylake_xeon_2s()).unwrap();
        assert!(
            report.planned_peak_activation_bytes < report.naive_activation_bytes,
            "planned {} vs naive {}",
            report.planned_peak_activation_bytes,
            report.naive_activation_bytes
        );
        assert!(report.planned_memory_reduction() > 0.0);
        assert!(report.planned_memory_reduction() < 1.0);
    }

    #[test]
    fn gemm_locality_fields_are_populated_and_consistent() {
        let g = fragment(120);
        let report = simulate_iteration(&g, &MachineProfile::skylake_xeon_2s()).unwrap();
        assert!(report.gemm_dram_bytes_blocked > 0.0);
        assert!(
            report.gemm_dram_bytes_blocked <= report.gemm_dram_bytes_streamed,
            "blocked {} must never exceed streamed {}",
            report.gemm_dram_bytes_blocked,
            report.gemm_dram_bytes_streamed
        );
        let red = report.gemm_locality_reduction();
        assert!((0.0..1.0).contains(&red), "reduction {red} out of range");
    }

    #[test]
    fn report_aggregations_are_consistent() {
        let g = fragment(64);
        let report = simulate_iteration(&g, &MachineProfile::skylake_xeon_2s()).unwrap();
        let by_cat_total: f64 = report.seconds_by_category().values().sum();
        assert!((by_cat_total - report.total_seconds()).abs() < 1e-9);
        let by_op_total: f64 = report.seconds_by_op().values().sum();
        assert!((by_op_total - report.total_seconds()).abs() < 1e-9);
        assert!(report.conv_fraction() > 0.0 && report.conv_fraction() < 1.0);
    }

    #[test]
    fn invalid_machine_is_rejected() {
        let g = fragment(8);
        let mut machine = MachineProfile::skylake_xeon_2s();
        machine.mem_bandwidth = 0.0;
        assert!(simulate_iteration(&g, &machine).is_err());
    }
}
