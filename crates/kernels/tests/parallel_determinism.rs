//! Parallel/serial determinism: every kernel must produce matching outputs
//! (within 1e-5; in practice bit-identical) whatever the worker count.
//!
//! `with_threads(n, ...)` installs the same per-call worker count that
//! `BNFF_THREADS=n` would set process-wide, so these tests cover the
//! `BNFF_THREADS=1` vs `BNFF_THREADS=4` acceptance check — plus counts
//! chosen to hit the awkward partitions: thread counts that do not divide
//! the work, more threads than work items, and single-element inputs.

use bnff_graph::op::{Conv2dAttrs, PoolAttrs};
use bnff_kernels::batchnorm::{bn_backward, bn_forward, BnParams};
use bnff_kernels::conv::{
    conv2d_backward_input, conv2d_backward_weights, conv2d_forward_direct, conv2d_forward_im2col,
};
use bnff_kernels::eltwise::eltwise_sum_forward;
use bnff_kernels::fused::{conv2d_forward_with_stats, norm_relu_conv_forward};
use bnff_kernels::gemm::{gemm, gemm_nt, gemm_tn};
use bnff_kernels::pool::{avg_pool_forward, max_pool_backward, max_pool_forward};
use bnff_kernels::relu::{relu_backward, relu_forward};
use bnff_kernels::softmax::softmax_loss_forward;
use bnff_parallel::{with_grain, with_threads};
use bnff_tensor::init::Initializer;
use bnff_tensor::stats::{channel_stats_one_pass, channel_stats_two_pass};
use bnff_tensor::{Shape, Tensor};

/// Worker counts exercised against the single-threaded reference: the
/// acceptance pair (1 vs 4), non-dividing counts (3, 7), and far more
/// threads than most of the work items below (16).
const THREADS: &[usize] = &[4, 3, 7, 16];

const TOL: f32 = 1e-5;

fn random(shape: Shape, seed: u64) -> Tensor {
    Initializer::seeded(seed).uniform(shape, -2.0, 2.0)
}

fn assert_close(label: &str, threads: usize, reference: &[f32], candidate: &[f32]) {
    assert_eq!(reference.len(), candidate.len(), "{label}: length mismatch");
    for (i, (r, c)) in reference.iter().zip(candidate.iter()).enumerate() {
        assert!(
            (r - c).abs() <= TOL,
            "{label}[{i}] with {threads} threads: serial {r} vs parallel {c}"
        );
    }
}

/// Runs `f` serially and under every thread count, comparing the flattened
/// outputs. The spawn-amortization grain is pinned to 1 so these small
/// fixtures genuinely split into per-worker tasks (at the default grain
/// most of them would collapse to a single task and the comparison would
/// be vacuous); a default-grain pass is kept as a sanity check.
fn check<F>(label: &str, f: F)
where
    F: Fn() -> Vec<f32>,
{
    let reference = with_grain(1, || with_threads(1, &f));
    for &t in THREADS {
        let candidate = with_grain(1, || with_threads(t, &f));
        assert_close(label, t, &reference, &candidate);
    }
    // The production grain must not change results either.
    let default_grain = with_threads(THREADS[0], &f);
    assert_close(label, THREADS[0], &reference, &default_grain);
}

#[test]
fn gemm_matches_serial_across_odd_sizes() {
    // (m, n, k): single element, non-divisible row counts, sizes straddling
    // the 48-element cache tile, and fewer rows than workers.
    for &(m, n, k) in &[(1usize, 1usize, 1usize), (3, 5, 2), (7, 9, 11), (70, 65, 50), (2, 128, 16)]
    {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 13) as f32 - 6.0) * 0.25).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 29 % 11) as f32 - 5.0) * 0.5).collect();
        check(&format!("gemm {m}x{n}x{k}"), || {
            let mut c = vec![0.5; m * n];
            gemm(m, n, k, 1.25, &a, &b, 0.5, &mut c).unwrap();
            c
        });
        let bt: Vec<f32> = (0..n * k).map(|i| ((i * 17 % 7) as f32 - 3.0) * 0.5).collect();
        check(&format!("gemm_nt {m}x{n}x{k}"), || {
            let mut c = vec![0.0; m * n];
            gemm_nt(m, n, k, &a, &bt, &mut c).unwrap();
            c
        });
        let at: Vec<f32> = (0..k * m).map(|i| ((i * 23 % 9) as f32 - 4.0) * 0.5).collect();
        let bb: Vec<f32> = (0..k * n).map(|i| ((i * 31 % 12) as f32 - 5.5) * 0.25).collect();
        check(&format!("gemm_tn {m}x{n}x{k}"), || {
            let mut c = vec![0.0; m * n];
            gemm_tn(m, n, k, &at, &bb, &mut c).unwrap();
            c
        });
    }
}

#[test]
fn conv_forward_and_backward_match_serial() {
    // Batch 1 (threads > samples), odd channel counts, odd spatial sizes.
    for &(n, ic, oc, hw, seed) in
        &[(1usize, 1usize, 1usize, 1usize, 1u64), (1, 3, 5, 7, 2), (3, 4, 6, 9, 3), (2, 2, 8, 5, 4)]
    {
        let attrs =
            Conv2dAttrs::new(oc, if hw >= 3 { 3 } else { 1 }, 1, if hw >= 3 { 1 } else { 0 });
        let x = random(Shape::nchw(n, ic, hw, hw), seed);
        let w = random(Shape::nchw(oc, ic, attrs.kernel_h, attrs.kernel_w), seed + 100);
        check(&format!("conv_direct n={n} ic={ic} oc={oc} hw={hw}"), || {
            conv2d_forward_direct(&x, &w, None, &attrs).unwrap().into_vec()
        });
        check(&format!("conv_im2col n={n} ic={ic} oc={oc} hw={hw}"), || {
            conv2d_forward_im2col(&x, &w, None, &attrs).unwrap().into_vec()
        });
        let y = conv2d_forward_direct(&x, &w, None, &attrs).unwrap();
        let d_out = random(y.shape().clone(), seed + 200);
        check(&format!("conv_backward_input n={n} ic={ic} oc={oc} hw={hw}"), || {
            conv2d_backward_input(&d_out, &w, x.shape(), &attrs).unwrap().into_vec()
        });
        check(&format!("conv_backward_weights n={n} ic={ic} oc={oc} hw={hw}"), || {
            let (d_w, d_b) = conv2d_backward_weights(&x, &d_out, &attrs, false).unwrap();
            let mut flat = d_w.into_vec();
            flat.extend(d_b);
            flat
        });
    }
}

#[test]
fn batchnorm_matches_serial() {
    // Channel counts that do not divide typical worker counts, plus a
    // single-element feature map.
    for &(n, c, hw, seed) in
        &[(1usize, 1usize, 1usize, 5u64), (2, 3, 5, 6), (5, 7, 3, 7), (8, 4, 6, 8)]
    {
        let x = random(Shape::nchw(n, c, hw, hw), seed);
        let params = BnParams::new(
            (0..c).map(|i| 0.5 + i as f32 * 0.1).collect(),
            (0..c).map(|i| -0.2 + i as f32 * 0.05).collect(),
        )
        .unwrap();
        for one_pass in [false, true] {
            check(&format!("bn_forward n={n} c={c} hw={hw} one_pass={one_pass}"), || {
                let (y, state) = bn_forward(&x, &params, 1e-5, one_pass).unwrap();
                let mut flat = y.into_vec();
                flat.extend(state.stats.mean);
                flat.extend(state.stats.var);
                flat
            });
        }
        check(&format!("bn_backward n={n} c={c} hw={hw}"), || {
            let (_, state) = bn_forward(&x, &params, 1e-5, false).unwrap();
            let d_y = random(x.shape().clone(), seed + 50);
            let (d_x, grads) = bn_backward(&d_y, &state, &params, 1e-5).unwrap();
            let mut flat = d_x.into_vec();
            flat.extend(grads.d_gamma);
            flat.extend(grads.d_beta);
            flat
        });
    }
}

#[test]
fn channel_statistics_match_serial() {
    for &(n, c, hw, seed) in &[(1usize, 1usize, 1usize, 9u64), (3, 5, 7, 10), (4, 16, 4, 11)] {
        let x = random(Shape::nchw(n, c, hw, hw), seed);
        check(&format!("stats_two_pass n={n} c={c} hw={hw}"), || {
            let s = channel_stats_two_pass(&x).unwrap();
            let mut flat = s.mean;
            flat.extend(s.var);
            flat
        });
        check(&format!("stats_one_pass n={n} c={c} hw={hw}"), || {
            let s = channel_stats_one_pass(&x).unwrap();
            let mut flat = s.mean;
            flat.extend(s.var);
            flat
        });
    }
}

#[test]
fn pool_relu_eltwise_match_serial() {
    let x = random(Shape::nchw(3, 5, 9, 9), 12);
    let pool = PoolAttrs::new(3, 2, 1);
    check("max_pool_forward", || {
        let (output, _) = max_pool_forward(&x, &pool).unwrap();
        output.into_vec()
    });
    check("max_pool_backward", || {
        let (_, state) = max_pool_forward(&x, &pool).unwrap();
        let d_y = random(state.output_shape.clone(), 13);
        max_pool_backward(&d_y, &state, x.shape()).unwrap().into_vec()
    });
    check("avg_pool_forward", || avg_pool_forward(&x, &pool).unwrap().into_vec());
    check("relu_forward", || relu_forward(&x).into_vec());
    check("relu_backward", || {
        let d_y = random(x.shape().clone(), 14);
        relu_backward(&d_y, &x).unwrap().into_vec()
    });
    let b = random(x.shape().clone(), 15);
    let c = random(x.shape().clone(), 16);
    check("eltwise_sum", || eltwise_sum_forward(&[&x, &b, &c]).unwrap().into_vec());
    // A single-element tensor exercises the degenerate partitions.
    let tiny = Tensor::from_slice(&[-1.5]);
    check("relu_single_element", || relu_forward(&tiny).into_vec());
}

#[test]
fn fused_kernels_match_serial() {
    let attrs = Conv2dAttrs::same_3x3(6);
    let x = random(Shape::nchw(3, 4, 7, 7), 17);
    let w = random(Shape::nchw(6, 4, 3, 3), 18);
    check("conv_with_stats", || {
        let (out, stats) = conv2d_forward_with_stats(&x, &w, None, &attrs).unwrap();
        let mut flat = out.into_vec();
        flat.extend(stats.mean);
        flat.extend(stats.var);
        flat
    });
    let bn = BnParams::new(vec![1.2, 0.8, 1.0, 0.9], vec![0.1, -0.1, 0.0, 0.2]).unwrap();
    check("norm_relu_conv", || {
        let stats = channel_stats_one_pass(&x).unwrap();
        let (out, state) = norm_relu_conv_forward(&x, &stats, &bn, 1e-5, &w, None, &attrs).unwrap();
        let mut flat = out.into_vec();
        flat.extend(state.x_hat.into_vec());
        flat
    });
}

/// The determinism contract is *per dispatch path*: under a fixed ISA the
/// outputs must be **bit-identical** for every worker count, because worker
/// partitions either fall on whole planes (BN normalize, affine) or use
/// sweeps whose vector and tail flavours round identically (ReLU, sums,
/// GEMM's per-element ascending-k accumulation). Checked under the scalar
/// path and, where the hardware allows, the AVX2+FMA path.
#[test]
fn kernels_are_bit_identical_across_thread_counts_on_both_paths() {
    use bnff_kernels::dispatch::{active_isa, with_isa, SimdIsa};

    let x = random(Shape::nchw(3, 5, 9, 9), 41);
    let w = random(Shape::nchw(6, 5, 3, 3), 42);
    let attrs = Conv2dAttrs::same_3x3(6);
    let params = BnParams::new(
        (0..5).map(|i| 0.6 + i as f32 * 0.1).collect(),
        (0..5).map(|i| -0.1 + i as f32 * 0.05).collect(),
    )
    .unwrap();
    let b = random(x.shape().clone(), 43);

    let detected = with_isa(SimdIsa::Avx2Fma, active_isa);
    let mut isas = vec![SimdIsa::Scalar];
    if detected != SimdIsa::Scalar {
        isas.push(detected);
    }
    let cases: &[(&str, &dyn Fn() -> Vec<f32>)] = &[
        ("gemm_70x65x50", &|| {
            let (m, n, k) = (70, 65, 50);
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 13) as f32 - 6.0) * 0.25).collect();
            let bb: Vec<f32> = (0..k * n).map(|i| ((i * 29 % 11) as f32 - 5.0) * 0.5).collect();
            let mut c = vec![0.5; m * n];
            gemm(m, n, k, 1.25, &a, &bb, 0.5, &mut c).unwrap();
            c
        }),
        ("bn_forward_one_pass", &|| {
            let (y, state) = bn_forward(&x, &params, 1e-5, true).unwrap();
            let mut flat = y.into_vec();
            flat.extend(state.stats.mean);
            flat.extend(state.stats.var);
            flat
        }),
        ("relu", &|| relu_forward(&x).into_vec()),
        ("eltwise_sum", &|| eltwise_sum_forward(&[&x, &b]).unwrap().into_vec()),
        ("conv_with_stats", &|| {
            let (out, stats) = conv2d_forward_with_stats(&x, &w, None, &attrs).unwrap();
            let mut flat = out.into_vec();
            flat.extend(stats.mean);
            flat.extend(stats.var);
            flat
        }),
    ];
    for &isa in &isas {
        for (label, f) in cases {
            with_isa(isa, || {
                let reference: Vec<u32> =
                    with_grain(1, || with_threads(1, f)).iter().map(|v| v.to_bits()).collect();
                for &t in &[3usize, 4, 7] {
                    let candidate: Vec<u32> =
                        with_grain(1, || with_threads(t, f)).iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        reference, candidate,
                        "{label} under {isa}: bits differ between 1 and {t} threads"
                    );
                }
            });
        }
    }
}

#[test]
fn softmax_matches_serial() {
    let scores = random(Shape::matrix(7, 13), 19);
    let labels: Vec<usize> = (0..7).map(|i| i % 13).collect();
    check("softmax_forward", || {
        let state = softmax_loss_forward(&scores, &labels).unwrap();
        let mut flat = state.probs.into_vec();
        flat.push(state.loss);
        flat
    });
}
