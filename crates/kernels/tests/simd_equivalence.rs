//! Scalar-vs-SIMD equivalence for every kernel with an explicit AVX2+FMA
//! flavour.
//!
//! The two dispatch paths are *not* bit-identical by design: the AVX2
//! microkernel contracts multiply-adds with FMA (one rounding where the
//! scalar path rounds twice) and the f64 statistics sums split across
//! vector lanes before a fixed-order horizontal reduce. Both effects are
//! bounded reassociations, so the paths must agree within an accumulated-
//! rounding tolerance that scales with the reduction depth — that bound is
//! what these tests pin down. Kernels whose vector flavour uses only
//! exact-rounded elementwise ops (ReLU, element-wise sum, bias add) must
//! match bit-for-bit and are asserted exactly.
//!
//! On hardware without AVX2+FMA the requested vector path clamps to the
//! scalar fallback and every comparison holds trivially — the suite still
//! passes, it just stops being a cross-path check.

use bnff_graph::op::Conv2dAttrs;
use bnff_kernels::batchnorm::{bn_forward, BnParams};
use bnff_kernels::conv::conv2d_forward_relu_into;
use bnff_kernels::dispatch::{active_isa, with_isa, SimdIsa};
use bnff_kernels::eltwise::eltwise_sum_forward;
use bnff_kernels::fused::norm_relu_conv_forward;
use bnff_kernels::gemm::{gemm, gemm_nt, gemm_tn, KC, MC, MR, NR};
use bnff_kernels::relu::relu_forward;
use bnff_kernels::{affine, fc};
use bnff_tensor::init::Initializer;
use bnff_tensor::stats::{channel_stats_one_pass, channel_stats_two_pass};
use bnff_tensor::{Shape, Tensor};
use proptest::prelude::*;

/// The vector path under test: the detected ISA when a scoped request for
/// AVX2+FMA survives hardware clamping, else the scalar fallback.
fn vector_isa() -> SimdIsa {
    with_isa(SimdIsa::Avx2Fma, active_isa)
}

fn data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Cross-path tolerance for a depth-`k` dot product of values in
/// `[-0.5, 0.5)`: each FMA contraction removes one rounding of magnitude
/// ≤ ulp(partial sum) ≈ 2⁻²⁴·|partial|, and |partial| ≤ 0.25·k, so the
/// paths can drift by ~k·2⁻²⁶ — comfortably under `1e-5·k` with slack for
/// the `KC`-slab reassociation the packed kernel already documents.
fn tol(k: usize) -> f32 {
    1e-5 * (k.max(8) as f32)
}

fn assert_paths_close(label: &str, k: usize, scalar: &[f32], vector: &[f32]) {
    assert_eq!(scalar.len(), vector.len(), "{label}: length mismatch");
    for (i, (s, v)) in scalar.iter().zip(vector.iter()).enumerate() {
        assert!((s - v).abs() <= tol(k), "{label}[{i}]: scalar {s} vs vector {v} (tol {})", tol(k));
    }
}

/// Runs `f` once under each dispatch path and returns (scalar, vector).
fn both_paths<F: Fn() -> Vec<f32>>(f: F) -> (Vec<f32>, Vec<f32>) {
    let scalar = with_isa(SimdIsa::Scalar, &f);
    let vector = with_isa(vector_isa(), &f);
    (scalar, vector)
}

proptest! {
    /// All three transpose variants across ragged shapes straddling the
    /// widened 6×16 microtile, the `MC` row grid and the `KC` slabs,
    /// including `K = 0` and α/β accumulation.
    #[test]
    fn gemm_paths_agree_on_ragged_shapes(
        case in (1usize..MC + MR + 2, 1usize..2 * NR + 5, 0usize..KC + 33, 0usize..1_000_000)
    ) {
        let (m, n, k, seed) = (case.0, case.1, case.2, case.3 as u64);
        let a = data(m * k, seed);
        let b = data(k * n, seed ^ 0xABCD);
        let c0 = data(m * n, seed ^ 0x7777);

        let (s, v) = both_paths(|| {
            let mut c = vec![0.0; m * n];
            gemm(m, n, k, 1.0, &a, &b, 0.0, &mut c).unwrap();
            c
        });
        assert_paths_close("gemm", k, &s, &v);

        let (s, v) = both_paths(|| {
            let mut c = c0.clone();
            gemm(m, n, k, 1.25, &a, &b, -0.5, &mut c).unwrap();
            c
        });
        assert_paths_close("gemm(alpha,beta)", k, &s, &v);

        // Transposed-operand entry points share the packed core, but their
        // packing routines must feed both microkernels identically.
        let mut bt = vec![0.0; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let (s, v) = both_paths(|| {
            let mut c = vec![0.0; m * n];
            gemm_nt(m, n, k, &a, &bt, &mut c).unwrap();
            c
        });
        assert_paths_close("gemm_nt", k, &s, &v);

        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let (s, v) = both_paths(|| {
            let mut c = vec![0.0; m * n];
            gemm_tn(m, n, k, &at, &b, &mut c).unwrap();
            c
        });
        assert_paths_close("gemm_tn", k, &s, &v);
    }
}

#[test]
fn relu_and_eltwise_are_bit_identical_across_paths() {
    let mut init = Initializer::seeded(21);
    let x = init.uniform(Shape::nchw(2, 3, 9, 9), -2.0, 2.0);
    let b = init.uniform(Shape::nchw(2, 3, 9, 9), -2.0, 2.0);
    let (s, v) = both_paths(|| relu_forward(&x).into_vec());
    assert_eq!(
        s.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        v.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        "relu must not differ across dispatch paths"
    );
    let (s, v) = both_paths(|| eltwise_sum_forward(&[&x, &b, &x]).unwrap().into_vec());
    assert_eq!(
        s.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        v.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        "eltwise sum must not differ across dispatch paths"
    );
}

#[test]
fn statistics_paths_agree() {
    let mut init = Initializer::seeded(22);
    // Odd plane length (7·7) exercises the vector-tail split of the f64
    // accumulators.
    let x = init.uniform(Shape::nchw(5, 6, 7, 7), -2.0, 2.0);
    let per_channel = 5 * 7 * 7;
    for (label, f) in [
        (
            "one_pass",
            &(|| {
                let s = channel_stats_one_pass(&x).unwrap();
                let mut flat = s.mean;
                flat.extend(s.var);
                flat
            }) as &dyn Fn() -> Vec<f32>,
        ),
        ("two_pass", &|| {
            let s = channel_stats_two_pass(&x).unwrap();
            let mut flat = s.mean;
            flat.extend(s.var);
            flat
        }),
    ] {
        let (s, v) = both_paths(f);
        // f64 accumulation: lane-splitting reassociates an f64 sum, whose
        // error is far below f32 resolution once cast back.
        assert_paths_close(label, per_channel, &s, &v);
    }
}

#[test]
fn bn_affine_and_fused_paths_agree() {
    let mut init = Initializer::seeded(23);
    let x = init.uniform(Shape::nchw(3, 4, 5, 5), -2.0, 2.0);
    let params = BnParams::new(vec![1.2, 0.8, -0.4, 1.0], vec![0.1, -0.2, 0.3, 0.0]).unwrap();

    let (s, v) = both_paths(|| {
        let (y, state) = bn_forward(&x, &params, 1e-5, true).unwrap();
        let mut flat = y.into_vec();
        flat.extend(state.x_hat.into_vec());
        flat
    });
    // Normalize is one FMA deep; statistics dominate the (tiny) drift.
    assert_paths_close("bn_forward", 3 * 5 * 5, &s, &v);

    let scale = [1.5f32, -0.5, 0.25, 2.0];
    let shift = [0.1f32, -0.3, 0.0, 0.7];
    let (s, v) = both_paths(|| {
        let mut out = Tensor::zeros(x.shape().clone());
        affine::channel_affine_relu_into(&x, &scale, &shift, &mut out).unwrap();
        out.into_vec()
    });
    assert_paths_close("channel_affine_relu", 1, &s, &v);

    let attrs = Conv2dAttrs::same_3x3(6);
    let w = init.uniform(Shape::nchw(6, 4, 3, 3), -0.5, 0.5);
    let bias: Vec<f32> = (0..6).map(|i| 0.05 * i as f32 - 0.1).collect();
    let (s, v) = both_paths(|| {
        let mut out = Tensor::zeros(Shape::nchw(3, 6, 5, 5));
        conv2d_forward_relu_into(&x, &w, Some(&bias), &attrs, &mut out).unwrap();
        out.into_vec()
    });
    assert_paths_close("conv2d_forward_relu", 4 * 9, &s, &v);

    let (s, v) = both_paths(|| {
        let stats = channel_stats_one_pass(&x).unwrap();
        let (out, state) =
            norm_relu_conv_forward(&x, &stats, &params, 1e-5, &w, None, &attrs).unwrap();
        let mut flat = out.into_vec();
        flat.extend(state.x_hat.into_vec());
        flat.extend(state.conv_input.into_vec());
        flat
    });
    assert_paths_close("norm_relu_conv", 4 * 9 + 3 * 5 * 5, &s, &v);
}

#[test]
fn fully_connected_rides_the_dispatched_gemm() {
    let mut init = Initializer::seeded(24);
    let x = init.uniform(Shape::matrix(9, 37), -1.0, 1.0);
    let w = init.uniform(Shape::matrix(11, 37), -1.0, 1.0);
    let bias: Vec<f32> = (0..11).map(|i| 0.01 * i as f32).collect();
    let (s, v) = both_paths(|| fc::fc_forward(&x, &w, &bias).unwrap().into_vec());
    assert_paths_close("fc_forward", 37, &s, &v);
}

#[test]
fn env_override_clamps_to_hardware() {
    // A scoped request for the vector path never yields an ISA the host
    // cannot execute; on non-AVX2 machines it degrades to Scalar.
    let isa = vector_isa();
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        assert_eq!(isa, SimdIsa::Avx2Fma);
    } else {
        assert_eq!(isa, SimdIsa::Scalar);
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    assert_eq!(isa, SimdIsa::Scalar);
}
