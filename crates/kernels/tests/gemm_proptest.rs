//! Property tests for the cache-blocked packed GEMM: for ragged shapes that
//! straddle every blocking edge (`MR`/`NR` microtiles, `MC` row blocks,
//! `KC` slabs — none of them multiples of each other), all three transpose
//! variants must agree with a naive triple-loop reference, including the
//! degenerate 1×1 and `K = 0` cases.

use bnff_kernels::gemm::{gemm, gemm_nt, gemm_streaming, gemm_tn, KC, MC, MR, NR};
use proptest::prelude::*;

/// Deterministic pseudo-random data in `[-0.5, 0.5)` from a shape seed, so
/// the operand contents vary per case without needing a flat-mapped
/// `Vec` strategy.
fn data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            for kk in 0..k {
                c[i * n + j] += a[i * k + kk] * b[kk * n + j];
            }
        }
    }
    c
}

fn transpose(rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
    let mut t = vec![0.0; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = x[r * cols + c];
        }
    }
    t
}

/// Accumulated-rounding tolerance: the packed kernel reassociates the `k`
/// sum (register tiles, `KC` slabs), so the bound scales with the depth.
fn tol(k: usize) -> f32 {
    1e-5 * (k.max(8) as f32)
}

fn assert_close(label: &str, m: usize, n: usize, k: usize, got: &[f32], want: &[f32]) {
    for (i, (x, y)) in got.iter().zip(want.iter()).enumerate() {
        assert!((x - y).abs() <= tol(k), "{label} {m}x{n}x{k} at {i}: blocked {x} vs naive {y}");
    }
}

proptest! {
    #[test]
    fn blocked_gemm_matches_naive_on_ragged_shapes(
        case in (1usize..MC + MR + 2, 1usize..3 * NR + 4, 0usize..KC + 45, 0usize..1_000_000)
    ) {
        let (m, n, k, seed) = (case.0, case.1, case.2, case.3 as u64);
        let a = data(m * k, seed);
        let b = data(k * n, seed ^ 0xABCD);
        let reference = naive(m, n, k, &a, &b);
        let mut c = vec![0.0; m * n];
        gemm(m, n, k, 1.0, &a, &b, 0.0, &mut c).unwrap();
        assert_close("gemm", m, n, k, &c, &reference);
    }

    #[test]
    fn alpha_beta_accumulation_matches_naive(
        case in (1usize..MC + 3, 1usize..2 * NR + 3, 0usize..KC + 9, 0usize..1_000_000)
    ) {
        let (m, n, k, seed) = (case.0, case.1, case.2, case.3 as u64);
        let (alpha, beta) = (1.25f32, -0.5f32);
        let a = data(m * k, seed);
        let b = data(k * n, seed ^ 0x5A5A);
        let c0 = data(m * n, seed ^ 0x1234);
        let want: Vec<f32> = naive(m, n, k, &a, &b)
            .iter()
            .zip(c0.iter())
            .map(|(ab, c)| alpha * ab + beta * c)
            .collect();
        let mut c = c0.clone();
        gemm(m, n, k, alpha, &a, &b, beta, &mut c).unwrap();
        assert_close("gemm(alpha,beta)", m, n, k, &c, &want);
        // The retired streaming engine must satisfy the same contract.
        let mut c_stream = c0;
        gemm_streaming(m, n, k, alpha, &a, &b, beta, &mut c_stream).unwrap();
        assert_close("gemm_streaming", m, n, k, &c_stream, &want);
    }

    #[test]
    fn transpose_variants_match_naive_on_ragged_shapes(
        case in (1usize..MC + MR + 2, 1usize..3 * NR + 4, 0usize..KC + 45, 0usize..1_000_000)
    ) {
        let (m, n, k, seed) = (case.0, case.1, case.2, case.3 as u64);
        let a = data(m * k, seed);
        let b = data(k * n, seed ^ 0xF00D);
        let reference = naive(m, n, k, &a, &b);

        // gemm_nt consumes b stored transposed (n × k).
        let bt = transpose(k, n, &b);
        let mut c_nt = vec![f32::NAN; m * n];
        gemm_nt(m, n, k, &a, &bt, &mut c_nt).unwrap();
        assert_close("gemm_nt", m, n, k, &c_nt, &reference);

        // gemm_tn consumes a stored transposed (k × m).
        let at = transpose(m, k, &a);
        let mut c_tn = vec![f32::NAN; m * n];
        gemm_tn(m, n, k, &at, &b, &mut c_tn).unwrap();
        assert_close("gemm_tn", m, n, k, &c_tn, &reference);
    }
}

/// The degenerate edges the strategy only hits probabilistically are pinned
/// explicitly: a 1×1×1 multiply and the `K = 0` contract (pure `beta`
/// scaling for `gemm`, zeroing for the overwrite variants).
#[test]
fn unit_and_empty_reduction_edges() {
    let mut c = vec![0.5f32];
    gemm(1, 1, 1, 2.0, &[3.0], &[4.0], 1.0, &mut c).unwrap();
    assert_eq!(c, vec![24.5]);

    let mut c = vec![2.0f32, -4.0];
    gemm(1, 2, 0, 1.0, &[], &[], 0.5, &mut c).unwrap();
    assert_eq!(c, vec![1.0, -2.0]);

    let mut c = vec![f32::NAN; 2];
    gemm_nt(2, 1, 0, &[], &[], &mut c).unwrap();
    assert_eq!(c, vec![0.0, 0.0]);
    let mut c = vec![f32::NAN; 2];
    gemm_tn(1, 2, 0, &[], &[], &mut c).unwrap();
    assert_eq!(c, vec![0.0, 0.0]);
}
