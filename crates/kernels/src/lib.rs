//! # bnff-kernels — numerical CPU kernels for CNN training layers
//!
//! This crate implements the arithmetic of every layer type the paper's
//! CNNs use during training, in two flavours:
//!
//! * **Unfused (baseline)** kernels that mirror the reference
//!   implementation: convolution, two-pass Batch Normalization, standalone
//!   ReLU, pooling, fully-connected, softmax loss, concat and element-wise
//!   sum.
//! * **Fused (restructured)** kernels corresponding to the operators the BN
//!   Fission-n-Fusion passes introduce: a convolution that accumulates
//!   Σx/Σx² of its output while writing it ([`fused::conv2d_forward_with_stats`]),
//!   and a convolution that normalizes + clips its input while reading it
//!   ([`fused::norm_relu_conv_forward`]).
//!
//! The fused kernels compute *bit-for-bit comparable* results to the
//! composition of their unfused counterparts (up to floating-point
//! reassociation in the Σx² variance), which is what makes the paper's
//! restructuring legal during training. The test-suites in this crate check
//! that equivalence, and the Criterion benches in `bnff-bench` measure the
//! actual memory-traffic benefit on the host CPU.
//!
//! Every kernel partitions its hot loops across the `bnff-parallel` pool
//! (convolutions by output plane, GEMMs by output row, BN reductions by
//! channel), honouring `BNFF_THREADS` and producing thread-count-independent
//! results — the `parallel_determinism` integration suite locks that in.
//!
//! ## Example
//!
//! A fused convolution produces the same output as the unfused one while
//! its mini-batch statistics ride along with the output write:
//!
//! ```rust
//! use bnff_graph::op::Conv2dAttrs;
//! use bnff_kernels::conv::conv2d_forward_direct;
//! use bnff_kernels::fused::conv2d_forward_with_stats;
//! use bnff_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), bnff_kernels::KernelError> {
//! let attrs = Conv2dAttrs::pointwise(2);
//! let x = Tensor::ones(Shape::nchw(1, 3, 4, 4));
//! let w = Tensor::ones(Shape::nchw(2, 3, 1, 1));
//! let plain = conv2d_forward_direct(&x, &w, None, &attrs)?;
//! let (fused, stats) = conv2d_forward_with_stats(&x, &w, None, &attrs)?;
//! assert_eq!(plain.as_slice(), fused.as_slice());
//! assert!((stats.mean[0] - 3.0).abs() < 1e-6); // all-ones 1x1 conv over 3 channels
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affine;
pub mod batchnorm;
pub mod concat;
pub mod conv;
pub mod dispatch;
pub mod eltwise;
pub mod error;
pub mod fc;
pub mod fused;
pub mod gemm;
pub mod im2col;
pub mod pool;
pub mod relu;
pub mod softmax;
mod vecops;

pub use error::KernelError;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, KernelError>;
