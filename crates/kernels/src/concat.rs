//! Channel-axis concatenation (DenseNet dense connectivity).

use crate::error::KernelError;
use crate::Result;
use bnff_tensor::{Shape, Tensor};

/// Concatenates NCHW tensors along the channel axis.
///
/// # Errors
/// Returns an error when no inputs are given or batch/spatial dimensions
/// disagree.
pub fn concat_forward(inputs: &[&Tensor]) -> Result<Tensor> {
    let mut out = Tensor::zeros(concat_output_shape(inputs)?);
    concat_forward_into(inputs, &mut out)?;
    Ok(out)
}

/// The output shape of a channel-axis concatenation.
///
/// # Errors
/// Returns an error when no inputs are given or batch/spatial dimensions
/// disagree.
pub fn concat_output_shape(inputs: &[&Tensor]) -> Result<Shape> {
    let first = inputs.first().ok_or_else(|| {
        KernelError::InvalidArgument("concat needs at least one input".to_string())
    })?;
    first.shape().expect_nchw()?;
    let (n, h, w) = (first.shape().n(), first.shape().h(), first.shape().w());
    let mut channels = 0usize;
    for t in inputs {
        t.shape().expect_nchw()?;
        if t.shape().n() != n || t.shape().h() != h || t.shape().w() != w {
            return Err(KernelError::ShapeMismatch(format!(
                "concat input {} incompatible with {}",
                t.shape(),
                first.shape()
            )));
        }
        channels += t.shape().c();
    }
    Ok(Shape::nchw(n, channels, h, w))
}

/// [`concat_forward`] into a caller-provided output tensor. Every element
/// of `out` is overwritten.
///
/// # Errors
/// Returns an error when no inputs are given or shapes (including `out`'s)
/// disagree.
pub fn concat_forward_into(inputs: &[&Tensor], out: &mut Tensor) -> Result<()> {
    let expected = concat_output_shape(inputs)?;
    if out.shape() != &expected {
        return Err(KernelError::ShapeMismatch(format!(
            "concat output tensor is {}, inputs produce {}",
            out.shape(),
            expected
        )));
    }
    for ni in 0..expected.n() {
        let mut offset = 0usize;
        for t in inputs {
            for ci in 0..t.shape().c() {
                out.channel_plane_mut(ni, offset + ci).copy_from_slice(t.channel_plane(ni, ci));
            }
            offset += t.shape().c();
        }
    }
    Ok(())
}

/// Splits the upstream gradient of a concatenation back into per-input
/// gradients.
///
/// # Errors
/// Returns an error when the channel counts do not add up.
pub fn concat_backward(d_y: &Tensor, input_shapes: &[Shape]) -> Result<Vec<Tensor>> {
    d_y.shape().expect_nchw()?;
    let total: usize = input_shapes.iter().map(|s| s.c()).sum();
    if total != d_y.shape().c() {
        return Err(KernelError::ShapeMismatch(format!(
            "inputs supply {total} channels but gradient has {}",
            d_y.shape().c()
        )));
    }
    let n = d_y.shape().n();
    let mut grads = Vec::with_capacity(input_shapes.len());
    let mut offset = 0usize;
    for shape in input_shapes {
        shape.expect_nchw()?;
        let mut g = Tensor::zeros(shape.clone());
        for ni in 0..n {
            for ci in 0..shape.c() {
                g.channel_plane_mut(ni, ci).copy_from_slice(d_y.channel_plane(ni, offset + ci));
            }
        }
        offset += shape.c();
        grads.push(g);
    }
    Ok(grads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenates_channels_in_order() {
        let a = Tensor::filled(Shape::nchw(1, 1, 2, 2), 1.0);
        let b = Tensor::filled(Shape::nchw(1, 2, 2, 2), 2.0);
        let y = concat_forward(&[&a, &b]).unwrap();
        assert_eq!(y.shape(), &Shape::nchw(1, 3, 2, 2));
        assert_eq!(y.channel_plane(0, 0), &[1.0; 4]);
        assert_eq!(y.channel_plane(0, 1), &[2.0; 4]);
        assert_eq!(y.channel_plane(0, 2), &[2.0; 4]);
    }

    #[test]
    fn into_variant_overwrites_recycled_buffers() {
        let a = Tensor::filled(Shape::nchw(1, 1, 2, 2), 1.0);
        let b = Tensor::filled(Shape::nchw(1, 2, 2, 2), 2.0);
        let reference = concat_forward(&[&a, &b]).unwrap();
        let mut out = Tensor::filled(Shape::nchw(1, 3, 2, 2), f32::NAN);
        concat_forward_into(&[&a, &b], &mut out).unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
        let mut bad = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
        assert!(concat_forward_into(&[&a, &b], &mut bad).is_err());
    }

    #[test]
    fn backward_splits_gradient() {
        let a = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
        let y = concat_forward(&[&a, &b]).unwrap();
        let mut d_y = Tensor::zeros(y.shape().clone());
        d_y.channel_plane_mut(0, 0).fill(1.0);
        d_y.channel_plane_mut(0, 2).fill(3.0);
        let grads = concat_backward(&d_y, &[a.shape().clone(), b.shape().clone()]).unwrap();
        assert_eq!(grads[0].channel_plane(0, 0), &[1.0; 4]);
        assert_eq!(grads[1].channel_plane(0, 0), &[0.0; 4]);
        assert_eq!(grads[1].channel_plane(0, 1), &[3.0; 4]);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let a = Tensor::from_vec(Shape::nchw(2, 1, 1, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(Shape::nchw(2, 1, 1, 2), vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let y = concat_forward(&[&a, &b]).unwrap();
        let back = concat_backward(&y, &[a.shape().clone(), b.shape().clone()]).unwrap();
        assert!(back[0].all_close(&a, 1e-6).unwrap());
        assert!(back[1].all_close(&b, 1e-6).unwrap());
    }

    #[test]
    fn mismatched_spatial_dims_rejected() {
        let a = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        assert!(concat_forward(&[&a, &b]).is_err());
        assert!(concat_forward(&[]).is_err());
    }

    #[test]
    fn backward_channel_mismatch_rejected() {
        let d_y = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        assert!(concat_backward(&d_y, &[Shape::nchw(1, 1, 2, 2)]).is_err());
    }
}
