//! Runtime SIMD dispatch: which instruction set the kernels execute.
//!
//! Every kernel with an explicit-SIMD flavour (the packed GEMM microkernel,
//! BN statistics and normalization, ReLU, channel affine, the element-wise
//! sum and the convolution bias/ReLU epilogue) resolves an ISA **once at
//! kernel entry, on the calling thread**, and threads it by value through
//! its workers. Resolution order:
//!
//! 1. a scoped [`with_isa`] override on the calling thread (tests use this
//!    to compare paths in one process),
//! 2. the `BNFF_SIMD` environment variable — `scalar`, `avx2` / `avx2fma`,
//!    or `auto` (unknown values fall back to `auto`),
//! 3. runtime CPUID detection (`is_x86_feature_detected!`).
//!
//! A requested ISA the hardware cannot execute is clamped down to
//! [`SimdIsa::Scalar`], so `BNFF_SIMD=avx2` on a non-AVX2 machine is safe.
//!
//! Results are bit-identical across `BNFF_THREADS` *within* one ISA; the
//! two ISAs differ in the last bits wherever FMA contracts a multiply-add
//! (see `tests/simd_equivalence.rs` for the quantified bound). Bench
//! artifacts therefore record [`active_isa`] next to every number.
//!
//! The implementation lives in `bnff_tensor::simd` (the aligned pack
//! buffers live next to it); this module is the kernels-facing face of it.

pub use bnff_tensor::simd::{active_isa, with_isa, SimdIsa};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_restores() {
        let outer = active_isa();
        let inner = with_isa(SimdIsa::Scalar, active_isa);
        assert_eq!(inner, SimdIsa::Scalar);
        assert_eq!(active_isa(), outer);
    }

    #[test]
    fn names_are_stable() {
        // Bench artifacts and CI gates key on these strings.
        assert_eq!(SimdIsa::Scalar.name(), "scalar");
        assert_eq!(SimdIsa::Avx2Fma.name(), "avx2+fma");
    }
}
