//! im2col / col2im lowering for convolutions.
//!
//! The reference CNN libraries in the paper (MKL-DNN, CUTLASS) execute
//! convolutions as matrix multiplies over an im2col-expanded input; we
//! provide the same lowering so the GEMM-based convolution path can be
//! benchmarked against the direct path.

use crate::error::KernelError;
use crate::Result;
use bnff_graph::op::Conv2dAttrs;
use bnff_parallel::{min_items_per_thread, parallel_rows_mut};
use bnff_tensor::{Shape, Tensor};

/// Computes the output spatial size of a convolution dimension.
pub(crate) fn conv_out_dim(dim: usize, kernel: usize, stride: usize, pad: usize) -> Result<usize> {
    let padded = dim + 2 * pad;
    if stride == 0 {
        return Err(KernelError::InvalidArgument("stride must be positive".to_string()));
    }
    if padded < kernel {
        return Err(KernelError::ShapeMismatch(format!(
            "kernel {kernel} does not fit input extent {dim} with pad {pad}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Expands one sample of an NCHW tensor into a `(C·Kh·Kw) × (Ho·Wo)` column
/// matrix (row-major).
///
/// # Errors
/// Returns an error if the input is not 4-D or the window does not fit.
pub fn im2col(input: &Tensor, sample: usize, attrs: &Conv2dAttrs) -> Result<Vec<f32>> {
    let mut out = Vec::new();
    im2col_into(input, sample, attrs, &mut out)?;
    Ok(out)
}

/// [`im2col`] into a caller-provided scratch buffer, so a loop over the
/// mini-batch (or over training steps) expands every sample into the same
/// allocation instead of building a fresh column matrix each time.
///
/// The buffer is resized to `(C·Kh·Kw) · (Ho·Wo)` and every element is
/// overwritten.
///
/// # Errors
/// Returns an error if the input is not 4-D or the window does not fit.
pub fn im2col_into(
    input: &Tensor,
    sample: usize,
    attrs: &Conv2dAttrs,
    out: &mut Vec<f32>,
) -> Result<()> {
    let shape = input.shape();
    shape.expect_nchw()?;
    let (c, h, w) = (shape.c(), shape.h(), shape.w());
    let ho = conv_out_dim(h, attrs.kernel_h, attrs.stride, attrs.pad)?;
    let wo = conv_out_dim(w, attrs.kernel_w, attrs.stride, attrs.pad)?;
    let rows = c * attrs.kernel_h * attrs.kernel_w;
    let cols = ho * wo;
    // Size without pre-zeroing the kept prefix (the fill below overwrites
    // every element); resize only initializes growth.
    out.resize(rows * cols, 0.0);
    // One task per output row `(ci, kh, kw)`; rows are disjoint in `out`.
    let min_rows = min_items_per_thread(cols.saturating_mul(4));
    parallel_rows_mut(out, cols, min_rows, |first_row, block| {
        for (row_local, row_slice) in block.chunks_mut(cols).enumerate() {
            let row = first_row + row_local;
            let kw_off = row % attrs.kernel_w;
            let kh_off = (row / attrs.kernel_w) % attrs.kernel_h;
            let ci = row / (attrs.kernel_w * attrs.kernel_h);
            let plane = input.channel_plane(sample, ci);
            for oh in 0..ho {
                let ih = (oh * attrs.stride + kh_off) as isize - attrs.pad as isize;
                for ow in 0..wo {
                    let iw = (ow * attrs.stride + kw_off) as isize - attrs.pad as isize;
                    let value = if ih >= 0 && iw >= 0 && (ih as usize) < h && (iw as usize) < w {
                        plane[ih as usize * w + iw as usize]
                    } else {
                        0.0
                    };
                    row_slice[oh * wo + ow] = value;
                }
            }
        }
    });
    Ok(())
}

/// Accumulates a `(C·Kh·Kw) × (Ho·Wo)` column matrix back into one sample of
/// an NCHW tensor (the adjoint of [`im2col`], used for the gradient with
/// respect to the convolution input).
///
/// # Errors
/// Returns an error if the target is not 4-D or the dimensions disagree.
pub fn col2im_accumulate(
    cols_data: &[f32],
    target: &mut Tensor,
    sample: usize,
    attrs: &Conv2dAttrs,
) -> Result<()> {
    let shape = target.shape().clone();
    shape.expect_nchw()?;
    let (c, h, w) = (shape.c(), shape.h(), shape.w());
    let ho = conv_out_dim(h, attrs.kernel_h, attrs.stride, attrs.pad)?;
    let wo = conv_out_dim(w, attrs.kernel_w, attrs.stride, attrs.pad)?;
    let rows = c * attrs.kernel_h * attrs.kernel_w;
    let cols = ho * wo;
    if cols_data.len() != rows * cols {
        return Err(KernelError::ShapeMismatch(format!(
            "column matrix has {} elements, expected {}",
            cols_data.len(),
            rows * cols
        )));
    }
    // All rows of channel `ci` scatter into that channel's plane only, so
    // the per-sample region splits cleanly into one task per channel.
    let plane_len = h * w;
    let start = shape.offset4(sample, 0, 0, 0);
    let sample_region = &mut target.as_mut_slice()[start..start + c * plane_len];
    let min_channels =
        min_items_per_thread((attrs.kernel_h * attrs.kernel_w * cols).saturating_mul(4));
    parallel_rows_mut(sample_region, plane_len, min_channels, |first_c, block| {
        for (ci_local, plane) in block.chunks_mut(plane_len).enumerate() {
            let ci = first_c + ci_local;
            for kh in 0..attrs.kernel_h {
                for kw in 0..attrs.kernel_w {
                    let row = (ci * attrs.kernel_h + kh) * attrs.kernel_w + kw;
                    for oh in 0..ho {
                        let ih = (oh * attrs.stride + kh) as isize - attrs.pad as isize;
                        if ih < 0 || ih as usize >= h {
                            continue;
                        }
                        for ow in 0..wo {
                            let iw = (ow * attrs.stride + kw) as isize - attrs.pad as isize;
                            if iw < 0 || iw as usize >= w {
                                continue;
                            }
                            let v = cols_data[row * cols + oh * wo + ow];
                            plane[ih as usize * w + iw as usize] += v;
                        }
                    }
                }
            }
        }
    });
    Ok(())
}

/// Shape of the column matrix produced by [`im2col`] for the given input
/// shape and attributes: `(rows, cols)`.
///
/// # Errors
/// Returns an error if the input shape is not 4-D or the window does not fit.
pub fn col_shape(input: &Shape, attrs: &Conv2dAttrs) -> Result<(usize, usize)> {
    input.expect_nchw()?;
    let ho = conv_out_dim(input.h(), attrs.kernel_h, attrs.stride, attrs.pad)?;
    let wo = conv_out_dim(input.w(), attrs.kernel_w, attrs.stride, attrs.pad)?;
    Ok((input.c() * attrs.kernel_h * attrs.kernel_w, ho * wo))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_copies_input() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let attrs = Conv2dAttrs::pointwise(1);
        let cols = im2col(&x, 0, &attrs).unwrap();
        assert_eq!(cols, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn padding_produces_zero_border() {
        let x = Tensor::ones(Shape::nchw(1, 1, 2, 2));
        let attrs = Conv2dAttrs::same_3x3(1);
        let cols = im2col(&x, 0, &attrs).unwrap();
        let (rows, ncols) = col_shape(x.shape(), &attrs).unwrap();
        assert_eq!((rows, ncols), (9, 4));
        // First row corresponds to kernel offset (0,0): for output (0,0) it
        // samples input (-1,-1), i.e. padding.
        assert_eq!(cols[0], 0.0);
        // Center kernel offset (1,1) samples the input directly.
        let center_row = 4;
        assert_eq!(&cols[center_row * 4..center_row * 4 + 4], &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn stride_subsamples() {
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let x = Tensor::from_vec(Shape::nchw(1, 1, 4, 4), data).unwrap();
        let attrs = Conv2dAttrs::new(1, 2, 2, 0);
        let cols = im2col(&x, 0, &attrs).unwrap();
        let (rows, ncols) = col_shape(x.shape(), &attrs).unwrap();
        assert_eq!((rows, ncols), (4, 4));
        // Row 0 = kernel offset (0,0): top-left corner of each 2x2 window.
        assert_eq!(&cols[0..4], &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_disjoint_windows() {
        // With stride == kernel the windows are disjoint, so
        // col2im(im2col(x)) == x.
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let x = Tensor::from_vec(Shape::nchw(1, 1, 4, 4), data).unwrap();
        let attrs = Conv2dAttrs::new(1, 2, 2, 0);
        let cols = im2col(&x, 0, &attrs).unwrap();
        let mut back = Tensor::zeros(x.shape().clone());
        col2im_accumulate(&cols, &mut back, 0, &attrs).unwrap();
        assert!(back.all_close(&x, 1e-6).unwrap());
    }

    #[test]
    fn scratch_buffer_is_reusable_across_samples() {
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let x = Tensor::from_vec(Shape::nchw(2, 1, 4, 4), data).unwrap();
        let attrs = Conv2dAttrs::same_3x3(1);
        let mut scratch = Vec::new();
        for sample in 0..2 {
            im2col_into(&x, sample, &attrs, &mut scratch).unwrap();
            assert_eq!(scratch, im2col(&x, sample, &attrs).unwrap());
        }
    }

    #[test]
    fn errors_on_bad_input() {
        let x = Tensor::zeros(Shape::matrix(2, 2));
        assert!(im2col(&x, 0, &Conv2dAttrs::pointwise(1)).is_err());
        let x = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let attrs = Conv2dAttrs::new(1, 5, 1, 0);
        assert!(im2col(&x, 0, &attrs).is_err());
        let mut t = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        assert!(col2im_accumulate(&[0.0; 3], &mut t, 0, &Conv2dAttrs::pointwise(1)).is_err());
    }
}
