//! Spatial pooling layers: max, average and global average pooling.

use crate::batchnorm::min_planes_per_thread;
use crate::error::KernelError;
use crate::im2col::conv_out_dim;
use crate::Result;
use bnff_graph::op::PoolAttrs;
use bnff_parallel::{parallel_rows_mut, parallel_rows_mut2};
use bnff_tensor::{Shape, Tensor};

/// What the max-pooling backward pass needs from the forward pass: the
/// output shape plus the argmax indices (linear indices into each input
/// channel plane). The pooled output itself is *not* retained, so the
/// executor's liveness plan can release it at its last forward use.
#[derive(Debug, Clone)]
pub struct MaxPoolState {
    /// Shape of the pooled output.
    pub output_shape: Shape,
    /// For every output element, the linear index (within its input plane)
    /// of the maximum that produced it.
    pub argmax: Vec<usize>,
}

fn pooled_shape(x: &Tensor, attrs: &PoolAttrs) -> Result<(usize, usize)> {
    x.shape().expect_nchw()?;
    let oh = conv_out_dim(x.shape().h(), attrs.kernel, attrs.stride, attrs.pad)?;
    let ow = conv_out_dim(x.shape().w(), attrs.kernel, attrs.stride, attrs.pad)?;
    Ok((oh, ow))
}

/// Max-pooling forward pass, returning the pooled output and the backward
/// state.
///
/// # Errors
/// Returns an error if the input is not 4-D or the window does not fit.
pub fn max_pool_forward(x: &Tensor, attrs: &PoolAttrs) -> Result<(Tensor, MaxPoolState)> {
    let (oh, ow) = pooled_shape(x, attrs)?;
    let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
    let mut output = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    let mut argmax = vec![0usize; n * c * oh * ow];
    // One task per `(sample, channel)` plane; output values and argmax
    // indices for a plane occupy matching contiguous runs.
    let plane_out = oh * ow;
    let min_planes = min_planes_per_thread(plane_out * attrs.kernel * attrs.kernel);
    parallel_rows_mut2(
        output.as_mut_slice(),
        plane_out,
        &mut argmax,
        plane_out,
        min_planes,
        |first_plane, out_block, arg_block| {
            for (p_local, (out_plane, arg_plane)) in
                out_block.chunks_mut(plane_out).zip(arg_block.chunks_mut(plane_out)).enumerate()
            {
                let p = first_plane + p_local;
                let plane = x.channel_plane(p / c, p % c);
                for po in 0..oh {
                    for qo in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for kh in 0..attrs.kernel {
                            let ih = (po * attrs.stride + kh) as isize - attrs.pad as isize;
                            if ih < 0 || ih as usize >= h {
                                continue;
                            }
                            for kw in 0..attrs.kernel {
                                let iw = (qo * attrs.stride + kw) as isize - attrs.pad as isize;
                                if iw < 0 || iw as usize >= w {
                                    continue;
                                }
                                let idx = ih as usize * w + iw as usize;
                                if plane[idx] > best {
                                    best = plane[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out_plane[po * ow + qo] = best;
                        arg_plane[po * ow + qo] = best_idx;
                    }
                }
            }
        },
    );
    let state = MaxPoolState { output_shape: output.shape().clone(), argmax };
    Ok((output, state))
}

/// Inference-only max-pooling forward pass into a caller-provided output
/// tensor: no argmax state is materialized (frozen graphs never run a
/// backward pass). Every element of `out` is overwritten.
///
/// # Errors
/// Returns an error if the input is not 4-D, the window does not fit, or
/// `out` has the wrong shape.
pub fn max_pool_forward_into(x: &Tensor, attrs: &PoolAttrs, out: &mut Tensor) -> Result<()> {
    let (oh, ow) = pooled_shape(x, attrs)?;
    let (c, h, w) = (x.shape().c(), x.shape().h(), x.shape().w());
    let expected = Shape::nchw(x.shape().n(), c, oh, ow);
    if out.shape() != &expected {
        return Err(KernelError::ShapeMismatch(format!(
            "output tensor is {}, max pooling produces {expected}",
            out.shape()
        )));
    }
    let plane_out = oh * ow;
    let min_planes = min_planes_per_thread(plane_out * attrs.kernel * attrs.kernel);
    parallel_rows_mut(out.as_mut_slice(), plane_out.max(1), min_planes, |first_plane, block| {
        for (p_local, out_plane) in block.chunks_mut(plane_out.max(1)).enumerate() {
            let p = first_plane + p_local;
            let plane = x.channel_plane(p / c, p % c);
            for po in 0..oh {
                for qo in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for kh in 0..attrs.kernel {
                        let ih = (po * attrs.stride + kh) as isize - attrs.pad as isize;
                        if ih < 0 || ih as usize >= h {
                            continue;
                        }
                        for kw in 0..attrs.kernel {
                            let iw = (qo * attrs.stride + kw) as isize - attrs.pad as isize;
                            if iw < 0 || iw as usize >= w {
                                continue;
                            }
                            let idx = ih as usize * w + iw as usize;
                            if plane[idx] > best {
                                best = plane[idx];
                            }
                        }
                    }
                    out_plane[po * ow + qo] = best;
                }
            }
        }
    });
    Ok(())
}

/// Max-pooling backward pass: routes each output gradient to the input
/// position that won the max.
///
/// # Errors
/// Returns an error if the shapes are inconsistent with the forward state.
pub fn max_pool_backward(
    d_y: &Tensor,
    state: &MaxPoolState,
    input_shape: &Shape,
) -> Result<Tensor> {
    d_y.shape().expect_same(&state.output_shape).map_err(KernelError::Tensor)?;
    input_shape.expect_nchw()?;
    let c = d_y.shape().c();
    let (oh, ow) = (d_y.shape().h(), d_y.shape().w());
    let mut d_x = Tensor::zeros(input_shape.clone());
    let plane_in = input_shape.h() * input_shape.w();
    let plane_out = oh * ow;
    parallel_rows_mut(
        d_x.as_mut_slice(),
        plane_in.max(1),
        min_planes_per_thread(plane_out),
        |first_plane, block| {
            for (p_local, plane) in block.chunks_mut(plane_in.max(1)).enumerate() {
                let p = first_plane + p_local;
                let grads = d_y.channel_plane(p / c, p % c);
                let args = &state.argmax[p * plane_out..(p + 1) * plane_out];
                for (&arg, &g) in args.iter().zip(grads.iter()) {
                    plane[arg] += g;
                }
            }
        },
    );
    Ok(d_x)
}

/// Average-pooling forward pass (count includes padding positions excluded,
/// i.e. the divisor is the number of valid input positions in the window).
///
/// # Errors
/// Returns an error if the input is not 4-D or the window does not fit.
pub fn avg_pool_forward(x: &Tensor, attrs: &PoolAttrs) -> Result<Tensor> {
    let (oh, ow) = pooled_shape(x, attrs)?;
    let (n, c) = (x.shape().n(), x.shape().c());
    let mut output = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    avg_pool_forward_into(x, attrs, &mut output)?;
    Ok(output)
}

/// [`avg_pool_forward`] into a caller-provided output tensor. Every element
/// of `out` is overwritten.
///
/// # Errors
/// Returns an error if the shapes (including `out`'s) are inconsistent.
pub fn avg_pool_forward_into(x: &Tensor, attrs: &PoolAttrs, out: &mut Tensor) -> Result<()> {
    let (oh, ow) = pooled_shape(x, attrs)?;
    let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
    let expected = Shape::nchw(n, c, oh, ow);
    if out.shape() != &expected {
        return Err(KernelError::ShapeMismatch(format!(
            "pool output tensor is {}, input pools to {}",
            out.shape(),
            expected
        )));
    }
    let plane_out = oh * ow;
    let min_planes = min_planes_per_thread(plane_out * attrs.kernel * attrs.kernel);
    parallel_rows_mut(out.as_mut_slice(), plane_out, min_planes, |first_plane, block| {
        for (p_local, out_plane) in block.chunks_mut(plane_out).enumerate() {
            let p = first_plane + p_local;
            let plane = x.channel_plane(p / c, p % c);
            for po in 0..oh {
                for qo in 0..ow {
                    let mut acc = 0.0f32;
                    let mut count = 0usize;
                    for kh in 0..attrs.kernel {
                        let ih = (po * attrs.stride + kh) as isize - attrs.pad as isize;
                        if ih < 0 || ih as usize >= h {
                            continue;
                        }
                        for kw in 0..attrs.kernel {
                            let iw = (qo * attrs.stride + kw) as isize - attrs.pad as isize;
                            if iw < 0 || iw as usize >= w {
                                continue;
                            }
                            acc += plane[ih as usize * w + iw as usize];
                            count += 1;
                        }
                    }
                    out_plane[po * ow + qo] = if count > 0 { acc / count as f32 } else { 0.0 };
                }
            }
        }
    });
    Ok(())
}

/// Average-pooling backward pass.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn avg_pool_backward(d_y: &Tensor, input_shape: &Shape, attrs: &PoolAttrs) -> Result<Tensor> {
    d_y.shape().expect_nchw()?;
    input_shape.expect_nchw()?;
    let (c, h, w) = (input_shape.c(), input_shape.h(), input_shape.w());
    let (oh, ow) = (d_y.shape().h(), d_y.shape().w());
    let mut d_x = Tensor::zeros(input_shape.clone());
    let plane_in = h * w;
    let min_planes = min_planes_per_thread(oh * ow * attrs.kernel * attrs.kernel);
    parallel_rows_mut(d_x.as_mut_slice(), plane_in.max(1), min_planes, |first_plane, block| {
        for (p_local, plane) in block.chunks_mut(plane_in.max(1)).enumerate() {
            let p = first_plane + p_local;
            let grads = d_y.channel_plane(p / c, p % c);
            for po in 0..oh {
                for qo in 0..ow {
                    // Recompute the number of valid positions of this window.
                    let mut positions = Vec::new();
                    for kh in 0..attrs.kernel {
                        let ih = (po * attrs.stride + kh) as isize - attrs.pad as isize;
                        if ih < 0 || ih as usize >= h {
                            continue;
                        }
                        for kw in 0..attrs.kernel {
                            let iw = (qo * attrs.stride + kw) as isize - attrs.pad as isize;
                            if iw < 0 || iw as usize >= w {
                                continue;
                            }
                            positions.push(ih as usize * w + iw as usize);
                        }
                    }
                    if positions.is_empty() {
                        continue;
                    }
                    let share = grads[po * ow + qo] / positions.len() as f32;
                    for idx in positions {
                        plane[idx] += share;
                    }
                }
            }
        }
    });
    Ok(d_x)
}

/// Global average pooling forward: reduces every channel plane to a single
/// value, producing an `N × C × 1 × 1` tensor.
///
/// # Errors
/// Returns an error if the input is not 4-D.
pub fn global_avg_pool_forward(x: &Tensor) -> Result<Tensor> {
    x.shape().expect_nchw()?;
    let mut out = Tensor::zeros(Shape::nchw(x.shape().n(), x.shape().c(), 1, 1));
    global_avg_pool_forward_into(x, &mut out)?;
    Ok(out)
}

/// [`global_avg_pool_forward`] into a caller-provided `N × C × 1 × 1`
/// output tensor; every element of `out` is overwritten.
///
/// # Errors
/// Returns an error if the input is not 4-D or `out` has the wrong shape.
pub fn global_avg_pool_forward_into(x: &Tensor, out: &mut Tensor) -> Result<()> {
    x.shape().expect_nchw()?;
    let (n, c) = (x.shape().n(), x.shape().c());
    let expected = Shape::nchw(n, c, 1, 1);
    if out.shape() != &expected {
        return Err(KernelError::ShapeMismatch(format!(
            "output tensor is {}, global average pooling produces {expected}",
            out.shape()
        )));
    }
    let plane_len = (x.shape().h() * x.shape().w()) as f32;
    let min_planes = min_planes_per_thread(x.shape().h() * x.shape().w());
    parallel_rows_mut(out.as_mut_slice(), 1, min_planes, |first_plane, block| {
        for (p_local, slot) in block.iter_mut().enumerate() {
            let p = first_plane + p_local;
            let sum: f32 = x.channel_plane(p / c, p % c).iter().sum();
            *slot = sum / plane_len;
        }
    });
    Ok(())
}

/// Global average pooling backward.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn global_avg_pool_backward(d_y: &Tensor, input_shape: &Shape) -> Result<Tensor> {
    d_y.shape().expect_nchw()?;
    input_shape.expect_nchw()?;
    let c = input_shape.c();
    let plane_len = (input_shape.h() * input_shape.w()) as f32;
    let mut d_x = Tensor::zeros(input_shape.clone());
    let plane_in = input_shape.h() * input_shape.w();
    parallel_rows_mut(
        d_x.as_mut_slice(),
        plane_in.max(1),
        min_planes_per_thread(plane_in),
        |first_plane, block| {
            for (p_local, plane) in block.chunks_mut(plane_in.max(1)).enumerate() {
                let p = first_plane + p_local;
                let share = d_y.at(p / c, p % c, 0, 0) / plane_len;
                for v in plane {
                    *v = share;
                }
            }
        },
    );
    Ok(d_x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maximum() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 4, 4),
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let (output, state) = max_pool_forward(&x, &PoolAttrs::new(2, 2, 0)).unwrap();
        assert_eq!(output.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        assert_eq!(state.output_shape, Shape::nchw(1, 1, 2, 2));
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 5.0, 3.0, 2.0]).unwrap();
        let (_, state) = max_pool_forward(&x, &PoolAttrs::new(2, 2, 0)).unwrap();
        let d_y = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![7.0]).unwrap();
        let d_x = max_pool_backward(&d_y, &state, x.shape()).unwrap();
        assert_eq!(d_x.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_matches_mean() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = avg_pool_forward(&x, &PoolAttrs::new(2, 2, 0)).unwrap();
        assert_eq!(y.as_slice(), &[2.5]);
        let d_y = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![4.0]).unwrap();
        let d_x = avg_pool_backward(&d_y, x.shape(), &PoolAttrs::new(2, 2, 0)).unwrap();
        assert_eq!(d_x.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avg_pool_into_overwrites_recycled_buffers() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let attrs = PoolAttrs::new(2, 2, 0);
        let mut out = Tensor::filled(Shape::nchw(1, 1, 1, 1), f32::NAN);
        avg_pool_forward_into(&x, &attrs, &mut out).unwrap();
        assert_eq!(out.as_slice(), &[2.5]);
        let mut bad = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        assert!(avg_pool_forward_into(&x, &attrs, &mut bad).is_err());
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 2, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
        )
        .unwrap();
        let y = global_avg_pool_forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 25.0]);
        let d_y = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![4.0, 8.0]).unwrap();
        let d_x = global_avg_pool_backward(&d_y, x.shape()).unwrap();
        assert_eq!(d_x.channel_plane(0, 0), &[1.0; 4]);
        assert_eq!(d_x.channel_plane(0, 1), &[2.0; 4]);
    }

    #[test]
    fn padded_max_pool_shape() {
        let x = Tensor::ones(Shape::nchw(2, 3, 112, 112));
        let (output, state) = max_pool_forward(&x, &PoolAttrs::new(3, 2, 1)).unwrap();
        assert_eq!(output.shape(), &Shape::nchw(2, 3, 56, 56));
        assert_eq!(state.output_shape, Shape::nchw(2, 3, 56, 56));
    }

    #[test]
    fn non_nchw_is_rejected() {
        let x = Tensor::zeros(Shape::matrix(4, 4));
        assert!(max_pool_forward(&x, &PoolAttrs::new(2, 2, 0)).is_err());
        assert!(avg_pool_forward(&x, &PoolAttrs::new(2, 2, 0)).is_err());
        assert!(global_avg_pool_forward(&x).is_err());
    }

    #[test]
    fn max_pool_into_matches_stateful_forward() {
        use bnff_tensor::init::Initializer;
        let x = Initializer::seeded(31).uniform(Shape::nchw(2, 3, 7, 7), -2.0, 2.0);
        let attrs = PoolAttrs::new(3, 2, 1);
        let (reference, _state) = max_pool_forward(&x, &attrs).unwrap();
        let mut out = Tensor::filled(reference.shape().clone(), f32::NAN);
        max_pool_forward_into(&x, &attrs, &mut out).unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
        let mut bad = Tensor::zeros(Shape::nchw(1, 3, 4, 4));
        assert!(max_pool_forward_into(&x, &attrs, &mut bad).is_err());
    }
}
