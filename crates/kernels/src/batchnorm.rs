//! Training-mode Batch Normalization kernels.
//!
//! The forward pass computes per-channel mean/variance over the mini-batch
//! (either in the baseline two-pass fashion or the single-pass MVF fashion),
//! then normalizes with the learnable scale γ and shift β. The backward
//! pass produces ∂γ, ∂β and ∂x with the standard BN gradient formulas.

use crate::error::KernelError;
use crate::vecops;
use crate::Result;
use bnff_parallel::{
    min_items_per_thread, parallel_map_collect, parallel_rows_mut, parallel_rows_mut2,
};
use bnff_tensor::stats::{channel_stats_one_pass, channel_stats_two_pass, ChannelStats};
use bnff_tensor::{active_isa, Tensor};
use serde::{Deserialize, Serialize};

/// Minimum `(sample, channel)` planes per worker for planes of `plane_len`
/// activations (each costing a few floating-point operations).
pub(crate) fn min_planes_per_thread(plane_len: usize) -> usize {
    min_items_per_thread(plane_len.saturating_mul(4))
}

/// Learnable per-channel parameters of a BN layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BnParams {
    /// Scale γ, one entry per channel.
    pub gamma: Vec<f32>,
    /// Shift β, one entry per channel.
    pub beta: Vec<f32>,
}

impl BnParams {
    /// Identity parameters (γ = 1, β = 0) for `channels` channels.
    pub fn identity(channels: usize) -> Self {
        BnParams { gamma: vec![1.0; channels], beta: vec![0.0; channels] }
    }

    /// Creates parameters from explicit γ and β vectors.
    ///
    /// # Errors
    /// Returns [`KernelError::ShapeMismatch`] when the lengths differ.
    pub fn new(gamma: Vec<f32>, beta: Vec<f32>) -> Result<Self> {
        if gamma.len() != beta.len() {
            return Err(KernelError::ShapeMismatch(format!(
                "gamma has {} channels, beta has {}",
                gamma.len(),
                beta.len()
            )));
        }
        Ok(BnParams { gamma, beta })
    }

    /// Number of channels covered.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }
}

/// Gradients of a BN layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BnParamGrads {
    /// ∂L/∂γ per channel.
    pub d_gamma: Vec<f32>,
    /// ∂L/∂β per channel.
    pub d_beta: Vec<f32>,
}

/// Everything the BN backward pass needs from the forward pass.
#[derive(Debug, Clone)]
pub struct BnForwardState {
    /// The mini-batch statistics used for normalization.
    pub stats: ChannelStats,
    /// The normalized activations `x̂` (before γ/β), kept for the backward
    /// pass exactly like the `O2'` sweep in the paper's Figure 5.
    pub x_hat: Tensor,
}

fn check_channels(x: &Tensor, params: &BnParams) -> Result<usize> {
    x.shape().expect_nchw()?;
    let c = x.shape().c();
    if params.channels() != c {
        return Err(KernelError::ShapeMismatch(format!(
            "input has {c} channels but parameters have {}",
            params.channels()
        )));
    }
    Ok(c)
}

/// Computes mini-batch statistics, two-pass (baseline) or one-pass (MVF).
///
/// # Errors
/// Returns an error for non-4-D inputs.
pub fn bn_statistics(x: &Tensor, one_pass: bool) -> Result<ChannelStats> {
    let stats = if one_pass { channel_stats_one_pass(x)? } else { channel_stats_two_pass(x)? };
    Ok(stats)
}

/// Normalizes `x` with the given statistics and parameters, returning the
/// output and the pre-γ/β normalized activations.
///
/// # Errors
/// Returns an error if shapes or channel counts disagree.
pub fn bn_normalize(
    x: &Tensor,
    stats: &ChannelStats,
    params: &BnParams,
    epsilon: f32,
) -> Result<(Tensor, Tensor)> {
    let mut y = Tensor::zeros(x.shape().clone());
    let x_hat = bn_normalize_into(x, stats, params, epsilon, &mut y)?;
    Ok((y, x_hat))
}

/// [`bn_normalize`] into a caller-provided output tensor `y`, returning the
/// (freshly allocated) normalized activations `x̂` that the backward pass
/// retains. Every element of `y` is overwritten.
///
/// # Errors
/// Returns an error if shapes or channel counts disagree.
pub fn bn_normalize_into(
    x: &Tensor,
    stats: &ChannelStats,
    params: &BnParams,
    epsilon: f32,
    y: &mut Tensor,
) -> Result<Tensor> {
    let c = check_channels(x, params)?;
    if stats.channels() != c {
        return Err(KernelError::ShapeMismatch(format!(
            "statistics cover {} channels, input has {c}",
            stats.channels()
        )));
    }
    if epsilon <= 0.0 {
        return Err(KernelError::InvalidArgument("epsilon must be positive".to_string()));
    }
    x.shape().expect_same(y.shape())?;
    let mut x_hat = Tensor::zeros(x.shape().clone());
    let plane_len = x.shape().h() * x.shape().w();
    let src = x.as_slice();
    // One task per `(sample, channel)` plane; `x̂` and `y` are written in
    // lockstep so the feature map is swept once. The ISA is resolved here,
    // on the caller's thread, because pool workers don't inherit the
    // caller's `with_isa` override; workers split on whole planes, so the
    // vectorized sweep stays deterministic across thread counts.
    let isa = active_isa();
    parallel_rows_mut2(
        x_hat.as_mut_slice(),
        plane_len.max(1),
        y.as_mut_slice(),
        plane_len.max(1),
        min_planes_per_thread(plane_len),
        |first_plane, hat_block, y_block| {
            for (p_local, (hat_plane, y_plane)) in hat_block
                .chunks_mut(plane_len.max(1))
                .zip(y_block.chunks_mut(plane_len.max(1)))
                .enumerate()
            {
                let p = first_plane + p_local;
                let ci = p % c;
                let mean = stats.mean[ci];
                let inv_std = 1.0 / (stats.var[ci] + epsilon).sqrt();
                let src_plane = &src[p * plane_len..(p + 1) * plane_len];
                vecops::normalize_plane(
                    isa,
                    src_plane,
                    hat_plane,
                    y_plane,
                    mean,
                    inv_std,
                    params.gamma[ci],
                    params.beta[ci],
                    false,
                );
            }
        },
    );
    Ok(x_hat)
}

/// Full BN forward pass: statistics + normalization.
///
/// # Errors
/// Returns an error if shapes or channel counts disagree.
pub fn bn_forward(
    x: &Tensor,
    params: &BnParams,
    epsilon: f32,
    one_pass: bool,
) -> Result<(Tensor, BnForwardState)> {
    let stats = bn_statistics(x, one_pass)?;
    let (y, x_hat) = bn_normalize(x, &stats, params, epsilon)?;
    Ok((y, BnForwardState { stats, x_hat }))
}

/// BN backward pass.
///
/// Given the upstream gradient `d_y`, the forward state and the parameters,
/// returns `(d_x, parameter gradients)` using the standard training-mode BN
/// gradient:
///
/// `d_x = (γ / √(σ²+ε)) · (d_y − mean(d_y) − x̂ · mean(d_y · x̂))`
///
/// # Errors
/// Returns an error if shapes or channel counts disagree.
pub fn bn_backward(
    d_y: &Tensor,
    state: &BnForwardState,
    params: &BnParams,
    epsilon: f32,
) -> Result<(Tensor, BnParamGrads)> {
    let c = check_channels(d_y, params)?;
    d_y.shape().expect_same(state.x_hat.shape())?;
    let n = d_y.shape().n();
    let per_channel = (n * d_y.shape().h() * d_y.shape().w()) as f64;

    // First reduction: ∂β = Σ d_y, ∂γ = Σ d_y · x̂. One worker partial per
    // channel, each accumulating its planes in mini-batch order, so the
    // result matches a serial sweep bit-for-bit.
    let plane_len = d_y.shape().h() * d_y.shape().w();
    let partials: Vec<(f64, f64)> =
        parallel_map_collect(c, min_planes_per_thread(n * plane_len), |ci| {
            let mut beta_acc = 0.0f64;
            let mut gamma_acc = 0.0f64;
            for ni in 0..n {
                let dy = d_y.channel_plane(ni, ci);
                let xh = state.x_hat.channel_plane(ni, ci);
                for (&g, &h) in dy.iter().zip(xh.iter()) {
                    beta_acc += f64::from(g);
                    gamma_acc += f64::from(g) * f64::from(h);
                }
            }
            (beta_acc, gamma_acc)
        });
    let d_beta: Vec<f64> = partials.iter().map(|&(b, _)| b).collect();
    let d_gamma: Vec<f64> = partials.iter().map(|&(_, g)| g).collect();

    // Second pass: ∂x, one task per `(sample, channel)` plane.
    let mut d_x = Tensor::zeros(d_y.shape().clone());
    let dy_all = d_y.as_slice();
    let xh_all = state.x_hat.as_slice();
    parallel_rows_mut(
        d_x.as_mut_slice(),
        plane_len.max(1),
        min_planes_per_thread(plane_len),
        |first_plane, block| {
            for (p_local, dx_plane) in block.chunks_mut(plane_len.max(1)).enumerate() {
                let p = first_plane + p_local;
                let ci = p % c;
                let inv_std = 1.0 / (state.stats.var[ci] + epsilon).sqrt();
                let scale = f64::from(params.gamma[ci]) * f64::from(inv_std);
                let mean_dy = d_beta[ci] / per_channel;
                let mean_dy_xhat = d_gamma[ci] / per_channel;
                let dy = &dy_all[p * plane_len..(p + 1) * plane_len];
                let xh = &xh_all[p * plane_len..(p + 1) * plane_len];
                for ((dst, &g), &h) in dx_plane.iter_mut().zip(dy.iter()).zip(xh.iter()) {
                    *dst = (scale * (f64::from(g) - mean_dy - f64::from(h) * mean_dy_xhat)) as f32;
                }
            }
        },
    );

    Ok((
        d_x,
        BnParamGrads {
            d_gamma: d_gamma.into_iter().map(|v| v as f32).collect(),
            d_beta: d_beta.into_iter().map(|v| v as f32).collect(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_tensor::init::Initializer;
    use bnff_tensor::Shape;

    fn random(shape: Shape, seed: u64) -> Tensor {
        Initializer::seeded(seed).uniform(shape, -2.0, 2.0)
    }

    #[test]
    fn output_is_normalized_per_channel() {
        let x = random(Shape::nchw(8, 4, 6, 6), 1);
        let params = BnParams::identity(4);
        let (y, _) = bn_forward(&x, &params, 1e-5, false).unwrap();
        let stats = bn_statistics(&y, false).unwrap();
        for ci in 0..4 {
            assert!(stats.mean[ci].abs() < 1e-4, "mean {}", stats.mean[ci]);
            assert!((stats.var[ci] - 1.0).abs() < 1e-2, "var {}", stats.var[ci]);
        }
    }

    #[test]
    fn gamma_beta_are_applied() {
        let x = random(Shape::nchw(4, 2, 4, 4), 2);
        let params = BnParams::new(vec![2.0, 0.5], vec![1.0, -1.0]).unwrap();
        let (y, state) = bn_forward(&x, &params, 1e-5, false).unwrap();
        let expected = state.x_hat.clone();
        for ni in 0..4 {
            for (ci, (g, b)) in [(2.0f32, 1.0f32), (0.5, -1.0)].iter().enumerate() {
                for (yv, xv) in
                    y.channel_plane(ni, ci).iter().zip(expected.channel_plane(ni, ci).iter())
                {
                    assert!((yv - (g * xv + b)).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn one_pass_and_two_pass_agree() {
        let x = random(Shape::nchw(6, 5, 7, 7), 3);
        let params = BnParams::identity(5);
        let (y1, _) = bn_forward(&x, &params, 1e-5, false).unwrap();
        let (y2, _) = bn_forward(&x, &params, 1e-5, true).unwrap();
        assert!(y1.all_close(&y2, 1e-4).unwrap());
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let x = random(Shape::nchw(2, 3, 4, 4), 4);
        let params = BnParams::identity(5);
        assert!(bn_forward(&x, &params, 1e-5, false).is_err());
        assert!(BnParams::new(vec![1.0], vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let x = random(Shape::nchw(2, 3, 4, 4), 4);
        let params = BnParams::identity(3);
        let stats = bn_statistics(&x, false).unwrap();
        assert!(bn_normalize(&x, &stats, &params, 0.0).is_err());
    }

    #[test]
    fn normalize_into_matches_allocating_path() {
        let x = random(Shape::nchw(2, 3, 4, 4), 9);
        let params = BnParams::identity(3);
        let stats = bn_statistics(&x, false).unwrap();
        let (y_ref, xh_ref) = bn_normalize(&x, &stats, &params, 1e-5).unwrap();
        let mut y = Tensor::filled(x.shape().clone(), f32::NAN);
        let xh = bn_normalize_into(&x, &stats, &params, 1e-5, &mut y).unwrap();
        assert_eq!(y.as_slice(), y_ref.as_slice());
        assert_eq!(xh.as_slice(), xh_ref.as_slice());
        let mut bad = Tensor::zeros(Shape::nchw(1, 3, 4, 4));
        assert!(bn_normalize_into(&x, &stats, &params, 1e-5, &mut bad).is_err());
    }

    #[test]
    fn backward_param_grads_match_reductions() {
        let x = random(Shape::nchw(3, 2, 4, 4), 5);
        let params = BnParams::new(vec![1.5, 0.7], vec![0.2, -0.3]).unwrap();
        let (_, state) = bn_forward(&x, &params, 1e-5, false).unwrap();
        let d_y = random(x.shape().clone(), 6);
        let (_, grads) = bn_backward(&d_y, &state, &params, 1e-5).unwrap();
        // d_beta must equal the plain per-channel sum of d_y.
        for ci in 0..2 {
            let mut expected = 0.0f64;
            for ni in 0..3 {
                expected += d_y.channel_plane(ni, ci).iter().map(|&v| f64::from(v)).sum::<f64>();
            }
            assert!((f64::from(grads.d_beta[ci]) - expected).abs() < 1e-3);
        }
    }

    /// Full numerical gradient check of the BN backward pass.
    #[test]
    fn gradient_check() {
        let x = random(Shape::nchw(2, 2, 3, 3), 7);
        let params = BnParams::new(vec![1.2, 0.8], vec![0.1, -0.2]).unwrap();
        let eps_bn = 1e-3f32;
        let g = random(x.shape().clone(), 8);

        let loss = |input: &Tensor| -> f64 {
            let (y, _) = bn_forward(input, &params, eps_bn, false).unwrap();
            y.as_slice().iter().zip(g.as_slice()).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum()
        };

        let (_, state) = bn_forward(&x, &params, eps_bn, false).unwrap();
        let (d_x, _) = bn_backward(&g, &state, &params, eps_bn).unwrap();

        let h = 1e-2f32;
        for &idx in &[0usize, 5, 11, 17, 23, 31] {
            let mut xp = x.clone();
            xp.set(idx, x.get(idx).unwrap() + h).unwrap();
            let mut xm = x.clone();
            xm.set(idx, x.get(idx).unwrap() - h).unwrap();
            let numeric = (loss(&xp) - loss(&xm)) / (2.0 * f64::from(h));
            let analytic = f64::from(d_x.get(idx).unwrap());
            assert!(
                (numeric - analytic).abs() < 5e-2,
                "d_x[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn identity_params_constructor() {
        let p = BnParams::identity(3);
        assert_eq!(p.gamma, vec![1.0, 1.0, 1.0]);
        assert_eq!(p.beta, vec![0.0, 0.0, 0.0]);
        assert_eq!(p.channels(), 3);
    }
}
