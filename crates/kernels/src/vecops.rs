//! Shared vectorized sweeps for the bandwidth-bound kernels.
//!
//! ReLU, channel affine, BN normalize, the element-wise sum and the conv
//! bias/ReLU epilogue are all memory-sweep kernels — exactly the loops the
//! paper's DRAM-byte argument is about. Each helper here takes the
//! [`SimdIsa`] the calling kernel resolved at entry (on the calling
//! thread) and runs either the historical scalar loop, bit-for-bit, or an
//! AVX2+FMA sweep.
//!
//! Determinism notes, per helper:
//!
//! * [`relu_into`] / [`relu_inplace`] / [`add_assign`] / [`add_scalar`]:
//!   the vector and scalar flavours are bit-identical for every input
//!   (`max` and `+` are exact-rounded elementwise ops with no
//!   contraction), so these helpers are safe on *arbitrary* chunk
//!   boundaries — a worker split mid-slice cannot change results.
//! * [`affine`] / [`normalize_plane`]: the AVX2 flavour contracts
//!   `scale·x + shift` (and `γ·x̂ + β`) with FMA, rounding once where the
//!   scalar loop rounds twice. Within one ISA results are deterministic,
//!   but the two ISAs differ in the last bits; callers only invoke these
//!   on whole planes, whose boundaries do not depend on thread count.

use bnff_tensor::simd::SimdIsa;

/// `dst[i] = max(src[i], 0)`. Bit-identical across ISAs (NaN clips to 0.0
/// on both paths, ties at ±0.0 resolve to +0.0 on both paths).
pub(crate) fn relu_into(isa: SimdIsa, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` implies runtime-verified avx2+fma support.
            unsafe { avx2::relu_into(src, dst) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => relu_into_scalar(src, dst),
        SimdIsa::Scalar => relu_into_scalar(src, dst),
    }
}

/// `dst[i] = max(dst[i], 0)` in place. Bit-identical across ISAs.
pub(crate) fn relu_inplace(isa: SimdIsa, dst: &mut [f32]) {
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` implies runtime-verified avx2+fma support.
            unsafe { avx2::relu_inplace(dst) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => relu_inplace_scalar(dst),
        SimdIsa::Scalar => relu_inplace_scalar(dst),
    }
}

/// `dst[i] += src[i]`. Bit-identical across ISAs (exact-rounded adds, no
/// cross-lane interaction).
pub(crate) fn add_assign(isa: SimdIsa, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(src.len(), dst.len());
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` implies runtime-verified avx2+fma support.
            unsafe { avx2::add_assign(dst, src) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => add_assign_scalar(dst, src),
        SimdIsa::Scalar => add_assign_scalar(dst, src),
    }
}

/// `dst[i] += value`. Bit-identical across ISAs.
pub(crate) fn add_scalar(isa: SimdIsa, dst: &mut [f32], value: f32) {
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` implies runtime-verified avx2+fma support.
            unsafe { avx2::add_scalar(dst, value) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => add_scalar_scalar(dst, value),
        SimdIsa::Scalar => add_scalar_scalar(dst, value),
    }
}

/// `dst[i] = scale·src[i] + shift` (clamped at zero when `fuse_relu`),
/// reading from `src`. AVX2 contracts with FMA.
pub(crate) fn affine(
    isa: SimdIsa,
    src: &[f32],
    dst: &mut [f32],
    scale: f32,
    shift: f32,
    fuse_relu: bool,
) {
    debug_assert_eq!(src.len(), dst.len());
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` implies runtime-verified avx2+fma support.
            unsafe { avx2::affine(src, dst, scale, shift, fuse_relu) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => affine_scalar(src, dst, scale, shift, fuse_relu),
        SimdIsa::Scalar => affine_scalar(src, dst, scale, shift, fuse_relu),
    }
}

/// In-place [`affine`]: `dst[i] = scale·dst[i] + shift` (clamped when
/// `fuse_relu`).
pub(crate) fn affine_inplace(
    isa: SimdIsa,
    dst: &mut [f32],
    scale: f32,
    shift: f32,
    fuse_relu: bool,
) {
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` implies runtime-verified avx2+fma support.
            unsafe { avx2::affine_inplace(dst, scale, shift, fuse_relu) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => affine_inplace_scalar(dst, scale, shift, fuse_relu),
        SimdIsa::Scalar => affine_inplace_scalar(dst, scale, shift, fuse_relu),
    }
}

/// The BN normalize sweep over one `(sample, channel)` plane: writes
/// `x̂ = (x − mean)·inv_std` into `hat` and `y = γ·x̂ + β` (clamped at zero
/// when `fuse_relu`) into `y`, in lockstep. The `x̂` stream is bit-identical
/// across ISAs (sub + mul only); the `y` stream contracts with FMA on AVX2.
#[allow(clippy::too_many_arguments)]
pub(crate) fn normalize_plane(
    isa: SimdIsa,
    src: &[f32],
    hat: &mut [f32],
    y: &mut [f32],
    mean: f32,
    inv_std: f32,
    gamma: f32,
    beta: f32,
    fuse_relu: bool,
) {
    debug_assert_eq!(src.len(), hat.len());
    debug_assert_eq!(src.len(), y.len());
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` implies runtime-verified avx2+fma support.
            unsafe { avx2::normalize_plane(src, hat, y, mean, inv_std, gamma, beta, fuse_relu) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => {
            normalize_plane_scalar(src, hat, y, mean, inv_std, gamma, beta, fuse_relu)
        }
        SimdIsa::Scalar => {
            normalize_plane_scalar(src, hat, y, mean, inv_std, gamma, beta, fuse_relu)
        }
    }
}

fn relu_into_scalar(src: &[f32], dst: &mut [f32]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = v.max(0.0);
    }
}

fn relu_inplace_scalar(dst: &mut [f32]) {
    for v in dst {
        *v = v.max(0.0);
    }
}

fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        *d += v;
    }
}

fn add_scalar_scalar(dst: &mut [f32], value: f32) {
    for v in dst {
        *v += value;
    }
}

fn affine_scalar(src: &[f32], dst: &mut [f32], scale: f32, shift: f32, fuse_relu: bool) {
    if fuse_relu {
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = (scale * v + shift).max(0.0);
        }
    } else {
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = scale * v + shift;
        }
    }
}

fn affine_inplace_scalar(dst: &mut [f32], scale: f32, shift: f32, fuse_relu: bool) {
    if fuse_relu {
        for v in dst {
            *v = (scale * *v + shift).max(0.0);
        }
    } else {
        for v in dst {
            *v = scale * *v + shift;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn normalize_plane_scalar(
    src: &[f32],
    hat: &mut [f32],
    y: &mut [f32],
    mean: f32,
    inv_std: f32,
    gamma: f32,
    beta: f32,
    fuse_relu: bool,
) {
    if fuse_relu {
        for ((h, o), &v) in hat.iter_mut().zip(y.iter_mut()).zip(src) {
            *h = (v - mean) * inv_std;
            *o = (gamma * *h + beta).max(0.0);
        }
    } else {
        for ((h, o), &v) in hat.iter_mut().zip(y.iter_mut()).zip(src) {
            *h = (v - mean) * inv_std;
            *o = gamma * *h + beta;
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn relu_into(src: &[f32], dst: &mut [f32]) {
        let zero = _mm256_setzero_ps();
        let n = src.len();
        let vec_end = n - n % 8;
        for i in (0..vec_end).step_by(8) {
            // SAFETY: i + 8 <= vec_end <= len of both slices.
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(i));
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_max_ps(v, zero));
            }
        }
        for (d, &v) in dst[vec_end..].iter_mut().zip(&src[vec_end..]) {
            *d = v.max(0.0);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn relu_inplace(dst: &mut [f32]) {
        let zero = _mm256_setzero_ps();
        let n = dst.len();
        let vec_end = n - n % 8;
        for i in (0..vec_end).step_by(8) {
            // SAFETY: i + 8 <= vec_end <= dst.len().
            unsafe {
                let p = dst.as_mut_ptr().add(i);
                _mm256_storeu_ps(p, _mm256_max_ps(_mm256_loadu_ps(p), zero));
            }
        }
        for v in &mut dst[vec_end..] {
            *v = v.max(0.0);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = src.len();
        let vec_end = n - n % 8;
        for i in (0..vec_end).step_by(8) {
            // SAFETY: i + 8 <= vec_end <= len of both slices.
            unsafe {
                let p = dst.as_mut_ptr().add(i);
                let s = _mm256_loadu_ps(src.as_ptr().add(i));
                _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), s));
            }
        }
        for (d, &v) in dst[vec_end..].iter_mut().zip(&src[vec_end..]) {
            *d += v;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn add_scalar(dst: &mut [f32], value: f32) {
        let b = _mm256_set1_ps(value);
        let n = dst.len();
        let vec_end = n - n % 8;
        for i in (0..vec_end).step_by(8) {
            // SAFETY: i + 8 <= vec_end <= dst.len().
            unsafe {
                let p = dst.as_mut_ptr().add(i);
                _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), b));
            }
        }
        for v in &mut dst[vec_end..] {
            *v += value;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn affine(src: &[f32], dst: &mut [f32], scale: f32, shift: f32, fuse_relu: bool) {
        let s = _mm256_set1_ps(scale);
        let b = _mm256_set1_ps(shift);
        let zero = _mm256_setzero_ps();
        let n = src.len();
        let vec_end = n - n % 8;
        for i in (0..vec_end).step_by(8) {
            // SAFETY: i + 8 <= vec_end <= len of both slices.
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(i));
                let mut r = _mm256_fmadd_ps(s, v, b);
                if fuse_relu {
                    r = _mm256_max_ps(r, zero);
                }
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), r);
            }
        }
        for (d, &v) in dst[vec_end..].iter_mut().zip(&src[vec_end..]) {
            let r = scale.mul_add(v, shift);
            *d = if fuse_relu { r.max(0.0) } else { r };
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn affine_inplace(dst: &mut [f32], scale: f32, shift: f32, fuse_relu: bool) {
        let s = _mm256_set1_ps(scale);
        let b = _mm256_set1_ps(shift);
        let zero = _mm256_setzero_ps();
        let n = dst.len();
        let vec_end = n - n % 8;
        for i in (0..vec_end).step_by(8) {
            // SAFETY: i + 8 <= vec_end <= dst.len().
            unsafe {
                let p = dst.as_mut_ptr().add(i);
                let mut r = _mm256_fmadd_ps(s, _mm256_loadu_ps(p), b);
                if fuse_relu {
                    r = _mm256_max_ps(r, zero);
                }
                _mm256_storeu_ps(p, r);
            }
        }
        for v in &mut dst[vec_end..] {
            let r = scale.mul_add(*v, shift);
            *v = if fuse_relu { r.max(0.0) } else { r };
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn normalize_plane(
        src: &[f32],
        hat: &mut [f32],
        y: &mut [f32],
        mean: f32,
        inv_std: f32,
        gamma: f32,
        beta: f32,
        fuse_relu: bool,
    ) {
        let m = _mm256_set1_ps(mean);
        let is = _mm256_set1_ps(inv_std);
        let g = _mm256_set1_ps(gamma);
        let b = _mm256_set1_ps(beta);
        let zero = _mm256_setzero_ps();
        let n = src.len();
        let vec_end = n - n % 8;
        for i in (0..vec_end).step_by(8) {
            // SAFETY: i + 8 <= vec_end <= len of all three slices.
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(i));
                let h = _mm256_mul_ps(_mm256_sub_ps(v, m), is);
                let mut o = _mm256_fmadd_ps(g, h, b);
                if fuse_relu {
                    o = _mm256_max_ps(o, zero);
                }
                _mm256_storeu_ps(hat.as_mut_ptr().add(i), h);
                _mm256_storeu_ps(y.as_mut_ptr().add(i), o);
            }
        }
        for ((h, o), &v) in
            hat[vec_end..].iter_mut().zip(y[vec_end..].iter_mut()).zip(&src[vec_end..])
        {
            *h = (v - mean) * inv_std;
            let r = gamma.mul_add(*h, beta);
            *o = if fuse_relu { r.max(0.0) } else { r };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_tensor::simd::with_isa;

    fn active_vector_isa() -> SimdIsa {
        with_isa(SimdIsa::Avx2Fma, bnff_tensor::simd::active_isa)
    }

    fn data(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 53 % 31) as f32 - 15.0) * 0.37).collect()
    }

    #[test]
    fn relu_and_adds_are_bit_identical_across_isas() {
        let isa = active_vector_isa();
        for n in [0usize, 1, 7, 8, 9, 63, 100] {
            let src = data(n);
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            relu_into(SimdIsa::Scalar, &src, &mut a);
            relu_into(isa, &src, &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let mut c = src.clone();
            let mut d = src.clone();
            add_assign(SimdIsa::Scalar, &mut c, &a);
            add_assign(isa, &mut d, &a);
            assert_eq!(c, d);
            add_scalar(SimdIsa::Scalar, &mut c, 0.75);
            add_scalar(isa, &mut d, 0.75);
            assert_eq!(c, d);
            let mut e = src.clone();
            relu_inplace(isa, &mut e);
            assert_eq!(e, b);
        }
    }

    #[test]
    fn relu_clips_nan_to_zero_on_both_isas() {
        let isa = active_vector_isa();
        let src = vec![f32::NAN; 9];
        for path in [SimdIsa::Scalar, isa] {
            let mut out = vec![7.0; 9];
            relu_into(path, &src, &mut out);
            assert!(out.iter().all(|&v| v == 0.0), "{path}: {out:?}");
        }
    }

    #[test]
    fn affine_matches_scalar_within_fma_tolerance() {
        let isa = active_vector_isa();
        for n in [1usize, 8, 13, 64, 100] {
            let src = data(n);
            for fuse in [false, true] {
                let mut a = vec![0.0; n];
                let mut b = vec![0.0; n];
                affine(SimdIsa::Scalar, &src, &mut a, 1.3, -0.4, fuse);
                affine(isa, &src, &mut b, 1.3, -0.4, fuse);
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() <= 1e-5, "{x} vs {y}");
                }
                let mut c = src.clone();
                affine_inplace(isa, &mut c, 1.3, -0.4, fuse);
                assert_eq!(b, c, "in-place must match out-of-place on one ISA");
            }
        }
    }

    #[test]
    fn normalize_hat_stream_is_bit_identical_across_isas() {
        let isa = active_vector_isa();
        let n = 77;
        let src = data(n);
        let (mut h1, mut y1) = (vec![0.0; n], vec![0.0; n]);
        let (mut h2, mut y2) = (vec![0.0; n], vec![0.0; n]);
        normalize_plane(SimdIsa::Scalar, &src, &mut h1, &mut y1, 0.3, 1.7, 0.9, -0.2, false);
        normalize_plane(isa, &src, &mut h2, &mut y2, 0.3, 1.7, 0.9, -0.2, false);
        // x̂ uses only sub+mul — exact elementwise ops — on both paths.
        assert_eq!(
            h1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            h2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() <= 1e-5, "{a} vs {b}");
        }
    }
}
