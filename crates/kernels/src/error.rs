//! Error type shared by every kernel.

use std::fmt;

/// Errors produced by the numerical kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Input tensors had incompatible or unexpected shapes.
    ShapeMismatch(String),
    /// A numerical argument was invalid (e.g. zero stride).
    InvalidArgument(String),
    /// An error bubbled up from the tensor substrate.
    Tensor(bnff_tensor::TensorError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            KernelError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            KernelError::Tensor(err) => write!(f, "tensor error: {err}"),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Tensor(err) => Some(err),
            _ => None,
        }
    }
}

impl From<bnff_tensor::TensorError> for KernelError {
    fn from(err: bnff_tensor::TensorError) -> Self {
        KernelError::Tensor(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = KernelError::ShapeMismatch("a vs b".into());
        assert!(e.to_string().contains("a vs b"));
        let e: KernelError = bnff_tensor::TensorError::InvalidArgument("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<KernelError>();
    }
}
