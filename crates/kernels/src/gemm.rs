//! A small blocked general matrix-multiply.
//!
//! The im2col convolution path and the fully-connected layer are lowered to
//! this GEMM, mirroring how MKL-DNN / CUTLASS execute them in the paper's
//! reference implementations.
//!
//! All three entry points partition the output matrix into contiguous
//! row blocks executed across the `bnff-parallel` pool. Each output row is
//! computed with the same loop structure whatever block it lands in, so
//! results are bit-identical for any `BNFF_THREADS`.

use crate::error::KernelError;
use crate::Result;
use bnff_parallel::{min_items_per_thread, parallel_rows_mut};

/// Cache-blocking tile edge (elements). Chosen so that three `TILE × TILE`
/// f32 tiles fit comfortably in a typical 32 KiB L1 data cache.
const TILE: usize = 48;

/// Rows of the output each worker must own at minimum, given the
/// per-row cost `n * k` multiply-accumulates.
fn min_rows_per_thread(n: usize, k: usize) -> usize {
    min_items_per_thread(n.saturating_mul(k))
}

/// `c = alpha * a·b + beta * c` where `a` is `m×k`, `b` is `k×n` and `c` is
/// `m×n`, all row-major.
///
/// # Errors
/// Returns [`KernelError::ShapeMismatch`] when the slice lengths do not
/// match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) -> Result<()> {
    if a.len() != m * k {
        return Err(KernelError::ShapeMismatch(format!(
            "a has {} elements, expected {}x{}",
            a.len(),
            m,
            k
        )));
    }
    if b.len() != k * n {
        return Err(KernelError::ShapeMismatch(format!(
            "b has {} elements, expected {}x{}",
            b.len(),
            k,
            n
        )));
    }
    if c.len() != m * n {
        return Err(KernelError::ShapeMismatch(format!(
            "c has {} elements, expected {}x{}",
            c.len(),
            m,
            n
        )));
    }

    parallel_rows_mut(c, n, min_rows_per_thread(n, k), |first_row, c_block| {
        gemm_row_block(first_row, n, k, alpha, a, b, beta, c_block);
    });
    Ok(())
}

/// The tiled GEMM loop nest over one contiguous block of output rows.
/// Accumulation order per output element (ascending `k0`, then `kk`) is
/// independent of how the rows were partitioned.
#[allow(clippy::too_many_arguments)]
fn gemm_row_block(
    first_row: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c_block: &mut [f32],
) {
    if beta != 1.0 {
        for v in c_block.iter_mut() {
            *v *= beta;
        }
    }
    let rows = c_block.len() / n;
    for i0 in (0..rows).step_by(TILE) {
        let i_max = (i0 + TILE).min(rows);
        for k0 in (0..k).step_by(TILE) {
            let k_max = (k0 + TILE).min(k);
            for j0 in (0..n).step_by(TILE) {
                let j_max = (j0 + TILE).min(n);
                for i in i0..i_max {
                    for kk in k0..k_max {
                        let aik = alpha * a[(first_row + i) * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + j_max];
                        let crow = &mut c_block[i * n + j0..i * n + j_max];
                        for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += aik * *bv;
                        }
                    }
                }
            }
        }
    }
}

/// `c = a·bᵀ` convenience wrapper where `a` is `m×k` and `b` is `n×k`.
///
/// # Errors
/// Returns [`KernelError::ShapeMismatch`] when slice lengths do not match.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) -> Result<()> {
    if a.len() != m * k || b.len() != n * k || c.len() != m * n {
        return Err(KernelError::ShapeMismatch(
            "gemm_nt operand sizes do not match the given dimensions".to_string(),
        ));
    }
    parallel_rows_mut(c, n, min_rows_per_thread(n, k), |first_row, c_block| {
        for (i_local, crow) in c_block.chunks_mut(n).enumerate() {
            let arow = &a[(first_row + i_local) * k..(first_row + i_local + 1) * k];
            for (j, cv) in crow.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (av, bv) in arow.iter().zip(&b[j * k..(j + 1) * k]) {
                    acc += av * bv;
                }
                *cv = acc;
            }
        }
    });
    Ok(())
}

/// `c = aᵀ·b` convenience wrapper where `a` is `k×m` and `b` is `k×n`.
///
/// # Errors
/// Returns [`KernelError::ShapeMismatch`] when slice lengths do not match.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) -> Result<()> {
    if a.len() != k * m || b.len() != k * n || c.len() != m * n {
        return Err(KernelError::ShapeMismatch(
            "gemm_tn operand sizes do not match the given dimensions".to_string(),
        ));
    }
    parallel_rows_mut(c, n, min_rows_per_thread(n, k), |first_row, c_block| {
        for v in c_block.iter_mut() {
            *v = 0.0;
        }
        let rows = c_block.len() / n;
        // `kk` stays the outer loop so each element accumulates in the same
        // order as a whole-matrix sweep.
        for kk in 0..k {
            for i_local in 0..rows {
                let aki = a[kk * m + first_row + i_local];
                if aki == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let crow = &mut c_block[i_local * n..(i_local + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aki * *bv;
                }
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matches_naive_small() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        let mut c = vec![0.0; 4];
        gemm(2, 2, 3, 1.0, &a, &b, 0.0, &mut c).unwrap();
        assert_eq!(c, naive(2, 2, 3, &a, &b));
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matches_naive_larger_than_tile() {
        let m = 70;
        let n = 65;
        let k = 50;
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 13) as f32 - 6.0) * 0.25).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 29 % 11) as f32 - 5.0) * 0.5).collect();
        let mut c = vec![0.0; m * n];
        gemm(m, n, k, 1.0, &a, &b, 0.0, &mut c).unwrap();
        let reference = naive(m, n, k, &a, &b);
        for (x, y) in c.iter().zip(reference.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn alpha_beta_scaling() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity 2x2
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![1.0, 1.0, 1.0, 1.0];
        gemm(2, 2, 2, 2.0, &a, &b, 0.5, &mut c).unwrap();
        assert_eq!(c, vec![4.5, 6.5, 8.5, 10.5]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = vec![0.0; 5];
        let b = vec![0.0; 6];
        let mut c = vec![0.0; 4];
        assert!(gemm(2, 2, 3, 1.0, &a, &b, 0.0, &mut c).is_err());
    }

    #[test]
    fn transposed_variants() {
        // a: 2x3, b: 3x2; compute a·b via gemm_nt with b transposed (2x3).
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let bt = vec![7.0, 9.0, 11.0, 8.0, 10.0, 12.0]; // (3x2)^T = 2x3
        let mut c = vec![0.0; 4];
        gemm_nt(2, 2, 3, &a, &bt, &mut c).unwrap();
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);

        // aᵀ·b where a is 3x2 (so aᵀ is 2x3).
        let a_t_input = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // 3x2 storing aᵀ
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        let mut c2 = vec![0.0; 4];
        gemm_tn(2, 2, 3, &a_t_input, &b, &mut c2).unwrap();
        assert_eq!(c2, vec![58.0, 64.0, 139.0, 154.0]);
    }
}
