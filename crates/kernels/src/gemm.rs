//! Cache-blocked, panel-packed general matrix multiply.
//!
//! The im2col convolution path and the fully-connected layer are lowered to
//! this GEMM, mirroring how MKL-DNN / CUTLASS execute them in the paper's
//! reference implementations. The paper's whole argument is about keeping
//! mini-batch operands in on-chip memory, so the GEMM — the hottest loop in
//! the workspace — uses the classic three-level blocking of
//! GotoBLAS/BLIS instead of streaming whole matrices:
//!
//! * The `k` dimension is split into [`KC`]-deep slabs and the `n` dimension
//!   into [`NC`]-wide slabs; each `KC × NC` slab of `B` is **packed** once
//!   into contiguous `KC × NR` strips that stay cache-resident while every
//!   row block of the output reuses them.
//! * The `m` dimension is split into [`MC`]-row blocks; each `MC × KC` block
//!   of `A` is packed into `KC × MR` panels by the worker that owns those
//!   output rows.
//! * An [`MR`]`×`[`NR`] register microkernel multiplies one packed `A` panel
//!   against one packed `B` strip, accumulating the full `k`-slab in
//!   registers before touching `C`.
//!
//! All three entry points ([`gemm`], [`gemm_nt`], [`gemm_tn`]) drive the same
//! packed path; the transpose variants differ only in how the packing
//! routines gather elements. Packing buffers are recycled through a shared
//! [`bnff_tensor::pool::SharedBufferPool`], so steady-state training steps
//! pack into storage carved out by earlier calls instead of `malloc`.
//!
//! ## SIMD dispatch
//!
//! The register microkernel comes in two flavours selected per GEMM call by
//! [`bnff_tensor::simd::active_isa`] (scoped [`bnff_tensor::simd::with_isa`]
//! override → `BNFF_SIMD` env → CPU detection): the portable scalar loop,
//! and an AVX2+FMA kernel that keeps the full `MR × NR` tile in twelve
//! `__m256` accumulators and issues *aligned* 256-bit loads from the packed
//! `B` strips — which is why the packing buffers live in 32-byte-aligned
//! [`bnff_tensor::simd::AlignedBuf`] storage. The ISA is resolved once on
//! the calling thread and passed by value into the pool workers.
//!
//! ## Determinism
//!
//! Work is partitioned across the `bnff-parallel` pool at *problem-granular*
//! block boundaries: worker splits are aligned to the [`MC`] grid
//! ([`bnff_parallel::parallel_row_blocks_mut`]), every `C` element is owned
//! by exactly one worker, and the accumulation order per element (`KC` slabs
//! outer, registers inner) depends only on the problem shape. Results are
//! therefore bit-identical for any `BNFF_THREADS` *within each dispatch
//! path*, which `crates/kernels/tests/parallel_determinism.rs` locks in.
//! Across paths the last bits may differ (FMA contracts `a·b + c` into one
//! rounding); `crates/kernels/tests/simd_equivalence.rs` bounds the gap.
//!
//! The pre-blocking row-streaming implementation is kept as
//! [`gemm_streaming`] so the benches (and `BENCH_ci.json`) can report the
//! blocked/streaming speedup on every run.

use crate::error::KernelError;
use crate::Result;
use bnff_parallel::{min_items_per_thread, parallel_row_blocks_mut, parallel_rows_mut};
use bnff_tensor::pool::SharedBufferPool;
use bnff_tensor::simd::{active_isa, SimdIsa};

/// Microkernel tile height: rows of `C` accumulated in registers at once.
pub const MR: usize = 6;

/// Microkernel tile width: columns of `C` accumulated in registers at once.
/// `MR × NR = 6 × 16` fills the AVX2 register file: twelve `__m256`
/// accumulators plus two `B` vectors and one `A` broadcast use 15 of the 16
/// architectural ymm registers (the BLIS sgemm shape for Haswell-class
/// cores).
pub const NR: usize = 16;

/// Rows of `A` packed per block: an `MC × KC` packed panel (96 KiB of f32,
/// `MC` divisible by `MR`) sized for a per-core L2.
pub const MC: usize = 96;

/// Depth of the packed slabs: one `KC × NR` strip of packed `B` (16 KiB)
/// stays L1-resident across a whole column of microkernel calls.
pub const KC: usize = 256;

/// Columns of `B` packed per slab: a `KC × NC` packed slab (1 MiB) stays
/// LLC-resident while every row block of the output sweeps it.
pub const NC: usize = 1024;

/// Tile edge of the legacy row-streaming kernel ([`gemm_streaming`]); also
/// the working-set parameter `bnff-memsim` uses to model the pre-blocking
/// access pattern.
pub const STREAM_TILE: usize = 48;

/// Packing scratch recycled across GEMM calls (and training steps). The
/// bound comfortably covers one `KC × NC` packed `B` slab plus one packed
/// `A` panel per worker at any realistic core count, while capping what an
/// oversized one-off multiply can leave behind.
static PACK_POOL: SharedBufferPool = SharedBufferPool::bounded(32 << 20);

/// `(hits, takes)` of the shared packing-buffer pool — how often a GEMM
/// found its panels already allocated by an earlier call.
pub fn pack_pool_reuse() -> (usize, usize) {
    PACK_POOL.hits_and_takes()
}

/// How the elements of an operand are laid out relative to the logical
/// matrix the multiply consumes.
#[derive(Debug, Clone, Copy)]
enum Operand<'a> {
    /// The logical matrix itself, row-major.
    Normal(&'a [f32]),
    /// The transpose of the logical matrix, row-major (so logical `(i, j)`
    /// lives at `data[j * rows + i]`).
    Transposed(&'a [f32]),
    /// A convolution's im2col column matrix, described by its geometry and
    /// gathered from the input sample during packing (B side only).
    Im2col(Im2colView<'a>),
}

/// A *virtual* `B` operand for the convolution GEMM: the im2col column
/// matrix of one sample, described by its geometry instead of being
/// materialized. [`gemm_im2col`] packs window elements straight from the
/// sample's `C × H × W` plane into the `KC × NR` strips the microkernel
/// consumes. The packed strips are bit-identical to packing a materialized
/// column matrix (same values, same zero padding), so the product is
/// bit-identical to the two-step `im2col → gemm` lowering — while skipping
/// one full write plus one full read of the `(C·Kh·Kw) × (Ho·Wo)` matrix.
#[derive(Debug, Clone, Copy)]
pub struct Im2colView<'a> {
    /// One sample's `C × H × W` values, contiguous.
    pub sample: &'a [f32],
    /// Input channels `C`.
    pub channels: usize,
    /// Input height `H`.
    pub in_h: usize,
    /// Input width `W`.
    pub in_w: usize,
    /// Filter height `Kh`.
    pub kernel_h: usize,
    /// Filter width `Kw`.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Output height `Ho`.
    pub out_h: usize,
    /// Output width `Wo`.
    pub out_w: usize,
}

/// Packs the `mc × kc` block of logical `A` starting at `(row0, pc)` into
/// `kc × MR` panels: panel `ir` holds rows `row0 + ir*MR ..` with the `k`
/// index outermost, so the microkernel reads `MR` consecutive values per
/// step. Rows beyond `mc` are zero-padded (adding `0.0 × b` is exact, so
/// padded lanes never change the result).
fn pack_a(a: Operand<'_>, m: usize, row0: usize, mc: usize, pc: usize, kc: usize, out: &mut [f32]) {
    let panels = mc.div_ceil(MR);
    for ir in 0..panels {
        let panel = &mut out[ir * kc * MR..(ir + 1) * kc * MR];
        match a {
            // Row-major A: gather MR rows in lockstep, k innermost per row.
            Operand::Normal(data) => {
                let cols = data.len() / m;
                for i in 0..MR {
                    let row = row0 + ir * MR + i;
                    if row < row0 + mc {
                        let src = &data[row * cols + pc..row * cols + pc + kc];
                        for (kk, &v) in src.iter().enumerate() {
                            panel[kk * MR + i] = v;
                        }
                    } else {
                        for slot in panel.iter_mut().skip(i).step_by(MR) {
                            *slot = 0.0;
                        }
                    }
                }
            }
            // Transposed storage: logical column `kk` is a contiguous row of
            // the buffer, which is exactly one packed step.
            Operand::Transposed(data) => {
                let t_cols = m;
                for kk in 0..kc {
                    let src_row = &data[(pc + kk) * t_cols..(pc + kk + 1) * t_cols];
                    let step = &mut panel[kk * MR..(kk + 1) * MR];
                    for (i, slot) in step.iter_mut().enumerate() {
                        let row = row0 + ir * MR + i;
                        *slot = if row < row0 + mc { src_row[row] } else { 0.0 };
                    }
                }
            }
            Operand::Im2col(_) => {
                unreachable!("im2col operands only appear on the B side of a multiply")
            }
        }
    }
}

/// Packs the `kc × nc` slab of logical `B` starting at `(pc, jc)` into
/// `kc × NR` strips (strip `jr` holds columns `jc + jr*NR ..`, `k`
/// outermost). Columns beyond `nc` are zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_b_strip(
    b: Operand<'_>,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    jr: usize,
    strip: &mut [f32],
) {
    let col0 = jc + jr * NR;
    let nr_eff = NR.min(jc + nc - col0);
    match b {
        Operand::Normal(data) => {
            debug_assert_eq!(data.len(), k * n);
            for kk in 0..kc {
                let src = &data[(pc + kk) * n + col0..(pc + kk) * n + col0 + nr_eff];
                let step = &mut strip[kk * NR..(kk + 1) * NR];
                step[..nr_eff].copy_from_slice(src);
                step[nr_eff..].fill(0.0);
            }
        }
        Operand::Transposed(data) => {
            // Stored n × k: logical column j is the buffer's row j.
            for kk in 0..kc {
                let step = &mut strip[kk * NR..(kk + 1) * NR];
                for (j, slot) in step.iter_mut().enumerate() {
                    *slot = if j < nr_eff { data[(col0 + j) * k + pc + kk] } else { 0.0 };
                }
            }
        }
        Operand::Im2col(v) => {
            // Logical element (kk, j) of the column matrix is input value
            // `(ci, oh·s + kh − pad, ow·s + kw − pad)` with zeros outside
            // the image — exactly what `im2col` would have written. The
            // per-column window origins are fixed across the strip, so they
            // are resolved once (one div/mod per column, not per element).
            let mut ih_base = [0isize; NR];
            let mut iw_base = [0isize; NR];
            for j in 0..nr_eff {
                let col = col0 + j;
                ih_base[j] = ((col / v.out_w) * v.stride) as isize - v.pad as isize;
                iw_base[j] = ((col % v.out_w) * v.stride) as isize - v.pad as isize;
            }
            let plane_len = v.in_h * v.in_w;
            for kk in 0..kc {
                let row = pc + kk;
                let kw_off = (row % v.kernel_w) as isize;
                let kh_off = ((row / v.kernel_w) % v.kernel_h) as isize;
                let ci = row / (v.kernel_w * v.kernel_h);
                let plane = &v.sample[ci * plane_len..(ci + 1) * plane_len];
                let step = &mut strip[kk * NR..(kk + 1) * NR];
                for (j, slot) in step.iter_mut().enumerate() {
                    *slot = if j < nr_eff {
                        let ih = ih_base[j] + kh_off;
                        let iw = iw_base[j] + kw_off;
                        if ih >= 0 && iw >= 0 && (ih as usize) < v.in_h && (iw as usize) < v.in_w {
                            plane[ih as usize * v.in_w + iw as usize]
                        } else {
                            0.0
                        }
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// The `MR × NR` tile of partial sums a microkernel call produces.
type AccTile = [[f32; NR]; MR];

/// The portable register microkernel: multiplies one `kc × MR` packed `A`
/// panel against one `kc × NR` packed `B` strip into the `MR × NR` tile of
/// partial sums. The accumulation order (ascending `kk`) is fixed by the
/// packing, never by the caller's thread count — and per `C` element it is
/// independent of the `MR`/`NR` tile shape, so widening the microkernel
/// left this path bit-identical to the historical 4×8 kernel.
#[inline]
fn microkernel_scalar(a_panel: &[f32], b_strip: &[f32], acc: &mut AccTile) {
    // A full 6×16 accumulator tile (96 f32) spills out of the baseline
    // SSE register file, so the portable kernel sweeps the packed panels
    // once per 3×8 *sub-tile* (24 f32 — register-resident under
    // auto-vectorization). Each `C` element still accumulates its products
    // in ascending `kk` order, so the split changes neither results nor
    // the bit-identity-across-threads contract; the repeated panel reads
    // stay in L1.
    const MR_S: usize = 3;
    const NR_S: usize = 8;
    for i0 in (0..MR).step_by(MR_S) {
        for j0 in (0..NR).step_by(NR_S) {
            let mut sub = [[0.0f32; NR_S]; MR_S];
            for (a_frag, b_frag) in a_panel.chunks_exact(MR).zip(b_strip.chunks_exact(NR)) {
                let b: &[f32; NR_S] = b_frag[j0..j0 + NR_S].try_into().expect("NR_S divides NR");
                for (i, row) in sub.iter_mut().enumerate() {
                    let av = a_frag[i0 + i];
                    for (slot, bv) in row.iter_mut().zip(b.iter()) {
                        *slot += av * *bv;
                    }
                }
            }
            for (i, row) in sub.iter().enumerate() {
                acc[i0 + i][j0..j0 + NR_S].copy_from_slice(row);
            }
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    use super::{AccTile, MR, NR};
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// The AVX2+FMA microkernel: the whole `6 × 16` tile lives in twelve
    /// `__m256` accumulators; each `kk` step broadcasts six `A` scalars,
    /// issues two aligned 256-bit loads from the packed `B` strip and
    /// twelve FMAs. FMA contracts `a·b + acc` into one rounding, so this
    /// path is *not* bit-identical to the scalar kernel — equivalence is
    /// bounded by `tests/simd_equivalence.rs` instead.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn microkernel(a_panel: &[f32], b_strip: &[f32], acc: &mut AccTile) {
        debug_assert_eq!(a_panel.len() % MR, 0);
        debug_assert_eq!(b_strip.len() % NR, 0);
        debug_assert_eq!(a_panel.len() / MR, b_strip.len() / NR);
        // The aligned-load contract: packed B strips come from `AlignedBuf`
        // storage at 64-byte strides, so every `_mm256_load_ps` below is
        // 32-byte aligned.
        debug_assert_eq!(
            b_strip.as_ptr() as usize % 32,
            0,
            "packed B strip must be 32-byte aligned for aligned vector loads"
        );
        let kc = b_strip.len() / NR;
        let mut acc_v = [[_mm256_setzero_ps(); 2]; MR];
        let mut a = a_panel.as_ptr();
        let mut b = b_strip.as_ptr();
        for _ in 0..kc {
            // SAFETY: `kc` iterations advance `a` by `kc·MR` and `b` by
            // `kc·NR` elements, exactly the panel/strip lengths asserted
            // above; the strip's base alignment plus the 64-byte stride
            // keep both loads 32-byte aligned.
            unsafe {
                let b0 = _mm256_load_ps(b);
                let b1 = _mm256_load_ps(b.add(8));
                for (i, accs) in acc_v.iter_mut().enumerate() {
                    let ai = _mm256_set1_ps(*a.add(i));
                    accs[0] = _mm256_fmadd_ps(ai, b0, accs[0]);
                    accs[1] = _mm256_fmadd_ps(ai, b1, accs[1]);
                }
                a = a.add(MR);
                b = b.add(NR);
            }
        }
        for (row, v) in acc.iter_mut().zip(acc_v.iter()) {
            // SAFETY: each accumulator row holds NR = 16 f32 values.
            unsafe {
                _mm256_storeu_ps(row.as_mut_ptr(), v[0]);
                _mm256_storeu_ps(row.as_mut_ptr().add(8), v[1]);
            }
        }
    }
}

/// Dispatches one microkernel call to the resolved ISA.
#[inline]
fn microkernel(isa: SimdIsa, a_panel: &[f32], b_strip: &[f32], acc: &mut AccTile) {
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `SimdIsa::Avx2Fma` is only ever produced after
            // `is_x86_feature_detected!` confirmed avx2+fma at runtime.
            unsafe { avx2::microkernel(a_panel, b_strip, acc) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => microkernel_scalar(a_panel, b_strip, acc),
        SimdIsa::Scalar => microkernel_scalar(a_panel, b_strip, acc),
    }
}

/// The packed GEMM driver: `c = alpha * A·B + beta * c` over logical
/// `m × k` and `k × n` operands in whatever storage [`Operand`] describes.
/// BLAS semantics for `beta == 0.0`: `c` is overwritten without being read
/// (so recycled buffers full of garbage — or NaNs — are fine).
#[allow(clippy::too_many_arguments)]
fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: Operand<'_>,
    b: Operand<'_>,
    beta: f32,
    c: &mut [f32],
) {
    if m == 0 || n == 0 {
        return;
    }
    // Resolve the dispatch path once, on the calling thread (thread-local
    // `with_isa` overrides do not propagate into pool workers), and carry
    // the value into every closure below.
    let isa = active_isa();
    if k == 0 || alpha == 0.0 {
        // No product term: the call degenerates to the beta scaling.
        if beta == 0.0 {
            c.fill(0.0);
        } else if beta != 1.0 {
            parallel_rows_mut(c, n, min_items_per_thread(n), |_, block| {
                for v in block.iter_mut() {
                    *v *= beta;
                }
            });
        }
        return;
    }
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let strips = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // Pack the B slab once per (jc, pc); strips are disjoint rows of
            // the packed buffer, so the fan-out is pure data movement. The
            // dirty take skips the pool's zero fill — packing overwrites
            // every lane (padding included). Aligned storage: a strip is
            // `kc·NR` f32 = 64·kc bytes, so every strip start inherits the
            // buffer's 32-byte alignment and the AVX2 microkernel can use
            // aligned loads.
            let mut packed_b = PACK_POOL.take_aligned_dirty(strips * kc * NR);
            let strip_len = kc * NR;
            parallel_rows_mut(
                packed_b.as_mut_slice(),
                strip_len,
                min_items_per_thread(strip_len),
                |first_strip, block| {
                    for (s_local, strip) in block.chunks_mut(strip_len).enumerate() {
                        pack_b_strip(b, k, n, pc, kc, jc, nc, first_strip + s_local, strip);
                    }
                },
            );
            // One worker per run of whole MC row blocks; each packs its own
            // A panels and owns its C rows outright.
            let min_rows = min_items_per_thread(2 * kc * nc);
            // The first k-slab *stores* `alpha·A·B + beta·c` (never reading
            // `c` when beta == 0, so recycled garbage is fine); later slabs
            // accumulate. This keeps C at 2·⌈k/KC⌉ − 1 passes — exactly
            // what the memsim blocked model charges.
            let first_slab = pc == 0;
            parallel_row_blocks_mut(c, n, MC, min_rows, |first_row, c_rows| {
                let rows = c_rows.len() / n;
                let mut packed_a = PACK_POOL.take_aligned_dirty(MC.div_ceil(MR) * MR * kc);
                let mut acc = [[0.0f32; NR]; MR];
                let mut r0 = 0;
                while r0 < rows {
                    let mc = MC.min(rows - r0);
                    pack_a(a, m, first_row + r0, mc, pc, kc, packed_a.as_mut_slice());
                    for jr in 0..strips {
                        let b_strip = &packed_b[jr * strip_len..(jr + 1) * strip_len];
                        let col0 = jc + jr * NR;
                        let nr_eff = NR.min(jc + nc - col0);
                        for ir in 0..mc.div_ceil(MR) {
                            let a_panel = &packed_a[ir * kc * MR..(ir + 1) * kc * MR];
                            microkernel(isa, a_panel, b_strip, &mut acc);
                            let mr_eff = MR.min(mc - ir * MR);
                            for (i, acc_row) in acc.iter().enumerate().take(mr_eff) {
                                let row = r0 + ir * MR + i;
                                let dst = &mut c_rows[row * n + col0..row * n + col0 + nr_eff];
                                let tile = dst.iter_mut().zip(acc_row.iter());
                                if !first_slab {
                                    for (cv, av) in tile {
                                        *cv += alpha * *av;
                                    }
                                } else if beta == 0.0 {
                                    for (cv, av) in tile {
                                        *cv = alpha * *av;
                                    }
                                } else if beta == 1.0 {
                                    for (cv, av) in tile {
                                        *cv += alpha * *av;
                                    }
                                } else {
                                    for (cv, av) in tile {
                                        *cv = beta * *cv + alpha * *av;
                                    }
                                }
                            }
                        }
                    }
                    r0 += mc;
                }
                PACK_POOL.give_aligned(packed_a);
            });
            PACK_POOL.give_aligned(packed_b);
        }
    }
}

fn check_len(len: usize, rows: usize, cols: usize, name: &str) -> Result<()> {
    if len != rows * cols {
        return Err(KernelError::ShapeMismatch(format!(
            "{name} has {len} elements, expected {rows}x{cols}"
        )));
    }
    Ok(())
}

/// `c = alpha * a·b + beta * c` where `a` is `m×k`, `b` is `k×n` and `c` is
/// `m×n`, all row-major. `beta == 0.0` overwrites `c` without reading it.
///
/// # Errors
/// Returns [`KernelError::ShapeMismatch`] when the slice lengths do not
/// match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) -> Result<()> {
    check_len(a.len(), m, k, "a")?;
    check_len(b.len(), k, n, "b")?;
    check_len(c.len(), m, n, "c")?;
    gemm_packed(m, n, k, alpha, Operand::Normal(a), Operand::Normal(b), beta, c);
    Ok(())
}

/// `c = a·bᵀ` where `a` is `m×k` and `b` is `n×k` (`c` is overwritten).
///
/// # Errors
/// Returns [`KernelError::ShapeMismatch`] when slice lengths do not match.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) -> Result<()> {
    check_len(a.len(), m, k, "a")?;
    check_len(b.len(), n, k, "b")?;
    check_len(c.len(), m, n, "c")?;
    gemm_packed(m, n, k, 1.0, Operand::Normal(a), Operand::Transposed(b), 0.0, c);
    Ok(())
}

/// `c = aᵀ·b` where `a` is `k×m` and `b` is `k×n` (`c` is overwritten).
///
/// # Errors
/// Returns [`KernelError::ShapeMismatch`] when slice lengths do not match.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) -> Result<()> {
    check_len(a.len(), k, m, "a")?;
    check_len(b.len(), k, n, "b")?;
    check_len(c.len(), m, n, "c")?;
    gemm_packed(m, n, k, 1.0, Operand::Transposed(a), Operand::Normal(b), 0.0, c);
    Ok(())
}

/// `c = alpha * a·B + beta * c` where `a` is `m×k` row-major and `B` is the
/// `k×n` im2col column matrix described by an [`Im2colView`] — gathered
/// during packing, never materialized. Bit-identical to materializing the
/// column matrix and calling [`gemm`]: the microkernel consumes bitwise
/// equal packed panels in the same accumulation order.
///
/// # Errors
/// Returns [`KernelError::ShapeMismatch`] when the slice lengths or the
/// view's geometry do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_im2col(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: Im2colView<'_>,
    beta: f32,
    c: &mut [f32],
) -> Result<()> {
    check_len(a.len(), m, k, "a")?;
    check_len(c.len(), m, n, "c")?;
    check_len(b.sample.len(), b.channels, b.in_h * b.in_w, "im2col sample")?;
    if k != b.channels * b.kernel_h * b.kernel_w || n != b.out_h * b.out_w {
        return Err(KernelError::ShapeMismatch(format!(
            "im2col view ({}·{}·{} rows, {}·{} cols) does not describe a {k}x{n} matrix",
            b.channels, b.kernel_h, b.kernel_w, b.out_h, b.out_w
        )));
    }
    gemm_packed(m, n, k, alpha, Operand::Normal(a), Operand::Im2col(b), beta, c);
    Ok(())
}

/// The pre-blocking implementation: row blocks stream `b` straight from the
/// source matrix with a [`STREAM_TILE`]-edge loop tiling and no packing.
/// Kept (unchanged) as the perf baseline the benches and `BENCH_ci.json`
/// compare the packed engine against.
///
/// # Errors
/// Returns [`KernelError::ShapeMismatch`] when the slice lengths do not
/// match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_streaming(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) -> Result<()> {
    check_len(a.len(), m, k, "a")?;
    check_len(b.len(), k, n, "b")?;
    check_len(c.len(), m, n, "c")?;
    parallel_rows_mut(c, n, min_items_per_thread(n.saturating_mul(k)), |first_row, c_block| {
        if beta != 1.0 {
            for v in c_block.iter_mut() {
                *v *= beta;
            }
        }
        let rows = c_block.len() / n;
        for i0 in (0..rows).step_by(STREAM_TILE) {
            let i_max = (i0 + STREAM_TILE).min(rows);
            for k0 in (0..k).step_by(STREAM_TILE) {
                let k_max = (k0 + STREAM_TILE).min(k);
                for j0 in (0..n).step_by(STREAM_TILE) {
                    let j_max = (j0 + STREAM_TILE).min(n);
                    for i in i0..i_max {
                        for kk in k0..k_max {
                            let aik = alpha * a[(first_row + i) * k + kk];
                            if aik == 0.0 {
                                continue;
                            }
                            let brow = &b[kk * n + j0..kk * n + j_max];
                            let crow = &mut c_block[i * n + j0..i * n + j_max];
                            for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                                *cv += aik * *bv;
                            }
                        }
                    }
                }
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    /// The exported blocking constants are a public contract: `bnff-memsim`
    /// imports `KC`/`NC`/`STREAM_TILE` to model the engines' DRAM traffic,
    /// and the packed core assumes the relations below. Locking them here
    /// means a future retune cannot silently break either consumer.
    #[test]
    fn blocking_constants_hold_their_invariants() {
        // The AVX2 microkernel loads B in aligned 8-lane vectors and the MC
        // grid splits on whole microtile rows.
        assert_eq!(NR % 8, 0, "NR must be a whole number of 8-float lanes");
        assert_eq!(MC % MR, 0, "the MC row grid must split on MR microtiles");
        // Slabs nest: a KC×NR strip inside a KC×NC slab.
        assert_eq!(NC % NR, 0, "packed B slabs must hold whole NR strips");
        // Every packed B strip starts 32-byte aligned within an aligned
        // buffer: kc·NR f32 is a whole number of 32-byte lanes for any kc.
        assert_eq!((NR * std::mem::size_of::<f32>()) % 32, 0);
        // The streaming model's tile must stay meaningful: nonzero, and no
        // larger than the cache-blocked panel height it predates.
        const { assert!(STREAM_TILE > 0 && STREAM_TILE <= MC) };
    }

    #[test]
    fn matches_naive_small() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        let mut c = vec![0.0; 4];
        gemm(2, 2, 3, 1.0, &a, &b, 0.0, &mut c).unwrap();
        assert_eq!(c, naive(2, 2, 3, &a, &b));
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matches_naive_across_blocking_edges() {
        // Sizes straddling MR/NR, MC, KC and (via columns) several strips.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (MR - 1, NR - 1, 3),
            (MR + 1, NR + 1, KC + 7),
            (MC + 5, 2 * NR + 3, 50),
            (70, 65, 50),
        ] {
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 13) as f32 - 6.0) * 0.25).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 29 % 11) as f32 - 5.0) * 0.5).collect();
            let mut c = vec![0.0; m * n];
            gemm(m, n, k, 1.0, &a, &b, 0.0, &mut c).unwrap();
            let reference = naive(m, n, k, &a, &b);
            for (x, y) in c.iter().zip(reference.iter()) {
                assert!((x - y).abs() < 1e-2, "{m}x{n}x{k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn alpha_beta_scaling() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity 2x2
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![1.0, 1.0, 1.0, 1.0];
        gemm(2, 2, 2, 2.0, &a, &b, 0.5, &mut c).unwrap();
        assert_eq!(c, vec![4.5, 6.5, 8.5, 10.5]);
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![f32::NAN; 4];
        gemm(2, 2, 2, 1.0, &a, &b, 0.0, &mut c).unwrap();
        assert_eq!(c, b);
    }

    #[test]
    fn k_zero_only_scales() {
        let mut c = vec![2.0, 4.0];
        gemm(1, 2, 0, 1.0, &[], &[], 0.5, &mut c).unwrap();
        assert_eq!(c, vec![1.0, 2.0]);
        gemm_nt(1, 2, 0, &[], &[], &mut c).unwrap();
        assert_eq!(c, vec![0.0, 0.0]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = vec![0.0; 5];
        let b = vec![0.0; 6];
        let mut c = vec![0.0; 4];
        assert!(gemm(2, 2, 3, 1.0, &a, &b, 0.0, &mut c).is_err());
        assert!(gemm_streaming(2, 2, 3, 1.0, &a, &b, 0.0, &mut c).is_err());
    }

    #[test]
    fn transposed_variants() {
        // a: 2x3, b: 3x2; compute a·b via gemm_nt with b transposed (2x3).
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let bt = vec![7.0, 9.0, 11.0, 8.0, 10.0, 12.0]; // (3x2)^T = 2x3
        let mut c = vec![0.0; 4];
        gemm_nt(2, 2, 3, &a, &bt, &mut c).unwrap();
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);

        // aᵀ·b where a is 3x2 (so aᵀ is 2x3).
        let a_t_input = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // 3x2 storing aᵀ
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        let mut c2 = vec![0.0; 4];
        gemm_tn(2, 2, 3, &a_t_input, &b, &mut c2).unwrap();
        assert_eq!(c2, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_variants_cross_blocking_edges() {
        let (m, n, k) = (MC + 3, NR * 3 + 2, KC + 5);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 13) as f32 - 6.0) * 0.25).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 29 % 11) as f32 - 5.0) * 0.5).collect();
        let reference = naive(m, n, k, &a, &b);

        // b stored transposed (n × k).
        let mut bt = vec![0.0; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_nt(m, n, k, &a, &bt, &mut c).unwrap();
        for (x, y) in c.iter().zip(reference.iter()) {
            assert!((x - y).abs() < 1e-2, "nt: {x} vs {y}");
        }

        // a stored transposed (k × m).
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c2 = vec![0.0; m * n];
        gemm_tn(m, n, k, &at, &b, &mut c2).unwrap();
        for (x, y) in c2.iter().zip(reference.iter()) {
            assert!((x - y).abs() < 1e-2, "tn: {x} vs {y}");
        }
    }

    #[test]
    fn streaming_reference_matches_packed() {
        let (m, n, k) = (37, 53, 29);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.125).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 23 % 19) as f32 - 9.0) * 0.25).collect();
        let mut packed = vec![0.25; m * n];
        let mut streamed = vec![0.25; m * n];
        gemm(m, n, k, 1.5, &a, &b, 2.0, &mut packed).unwrap();
        gemm_streaming(m, n, k, 1.5, &a, &b, 2.0, &mut streamed).unwrap();
        for (x, y) in packed.iter().zip(streamed.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_im2col_is_bit_identical_to_materialized() {
        // Geometries straddling KC/NC edges and exercising stride + padding.
        for &(channels, in_h, in_w, kernel, stride, pad, m) in &[
            (3usize, 8usize, 8usize, 3usize, 1usize, 1usize, 5usize),
            (32, 10, 10, 3, 2, 1, MC + 2),
            (40, 9, 7, 3, 1, 0, 4),
            (2, 33, 33, 5, 2, 2, 7),
        ] {
            let out_h = (in_h + 2 * pad - kernel) / stride + 1;
            let out_w = (in_w + 2 * pad - kernel) / stride + 1;
            let k = channels * kernel * kernel;
            let n = out_h * out_w;
            let sample: Vec<f32> =
                (0..channels * in_h * in_w).map(|i| ((i * 31 % 23) as f32 - 11.0) * 0.37).collect();
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 29 % 17) as f32 - 8.0) * 0.21).collect();
            // Materialize the column matrix the view describes.
            let mut col = vec![0.0f32; k * n];
            for row in 0..k {
                let kw = row % kernel;
                let kh = (row / kernel) % kernel;
                let ci = row / (kernel * kernel);
                for j in 0..n {
                    let ih = ((j / out_w) * stride + kh) as isize - pad as isize;
                    let iw = ((j % out_w) * stride + kw) as isize - pad as isize;
                    if ih >= 0 && iw >= 0 && (ih as usize) < in_h && (iw as usize) < in_w {
                        col[row * n + j] =
                            sample[ci * in_h * in_w + ih as usize * in_w + iw as usize];
                    }
                }
            }
            let mut expected = vec![0.0f32; m * n];
            gemm(m, n, k, 1.0, &a, &col, 0.0, &mut expected).unwrap();
            let view = Im2colView {
                sample: &sample,
                channels,
                in_h,
                in_w,
                kernel_h: kernel,
                kernel_w: kernel,
                stride,
                pad,
                out_h,
                out_w,
            };
            let mut fused = vec![f32::NAN; m * n];
            gemm_im2col(m, n, k, 1.0, &a, view, 0.0, &mut fused).unwrap();
            let fused_bits: Vec<u32> = fused.iter().map(|v| v.to_bits()).collect();
            let expected_bits: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fused_bits, expected_bits, "c{channels} {in_h}x{in_w} k{kernel}");
        }
    }

    #[test]
    fn gemm_im2col_rejects_inconsistent_views() {
        let sample = vec![0.0f32; 3 * 4 * 4];
        let view = Im2colView {
            sample: &sample,
            channels: 3,
            in_h: 4,
            in_w: 4,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            pad: 1,
            out_h: 4,
            out_w: 4,
        };
        let a = vec![0.0f32; 2 * 27];
        let mut c = vec![0.0f32; 2 * 16];
        assert!(gemm_im2col(2, 16, 27, 1.0, &a, view, 0.0, &mut c).is_ok());
        // k disagrees with the view's row count.
        assert!(gemm_im2col(2, 16, 26, 1.0, &a[..52], view, 0.0, &mut c).is_err());
        // Sample shorter than C·H·W.
        let short = Im2colView { sample: &sample[..47], ..view };
        assert!(gemm_im2col(2, 16, 27, 1.0, &a, short, 0.0, &mut c).is_err());
    }

    #[test]
    fn pack_pool_is_reused_across_calls() {
        let a = vec![1.0f32; 16 * 16];
        let b = vec![1.0f32; 16 * 16];
        let mut c = vec![0.0f32; 16 * 16];
        gemm(16, 16, 16, 1.0, &a, &b, 0.0, &mut c).unwrap();
        let (_, takes_before) = pack_pool_reuse();
        gemm(16, 16, 16, 1.0, &a, &b, 0.0, &mut c).unwrap();
        let (hits_after, takes_after) = pack_pool_reuse();
        assert!(takes_after > takes_before);
        assert!(hits_after > 0, "second identical GEMM must reuse pack buffers");
    }
}
