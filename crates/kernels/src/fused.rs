//! Fused kernels introduced by BN Fission-n-Fusion.
//!
//! * [`conv2d_forward_with_stats`] — the `CONV1-(sub-BN1)` fused layer: the
//!   convolution accumulates Σx and Σx² of every output value it produces,
//!   so the following BN's mean/variance are available without re-reading
//!   the output feature map.
//! * [`norm_relu_conv_forward`] — the `(sub-BN2)-ReLU-CONV2` fused layer:
//!   normalization and clipping happen while the following convolution
//!   reads its input feature map. The normalized activation is also
//!   returned (the paper's `O2'` write) because the backward pass needs it.
//! * [`relu_conv_forward`] — the RCF fused layer: clipping while reading.
//! * [`concat_forward_with_stats`] — the ICF fused layer: Σx/Σx² accumulated
//!   while the concatenation writes its output.
//! * [`norm_relu_conv_backward`] — the fused backward path, composed of the
//!   same arithmetic as the unfused layers (the memory benefit is modelled
//!   by `bnff-memsim`; numerically the result must be identical).

use crate::batchnorm::{min_planes_per_thread, BnParamGrads, BnParams};
use crate::conv::{
    conv2d_backward_input, conv2d_backward_weights, conv2d_forward, conv2d_forward_into,
};
use crate::error::KernelError;
use crate::relu::relu_backward;
use crate::vecops;
use crate::Result;
use bnff_graph::op::Conv2dAttrs;
use bnff_parallel::parallel_rows_mut2;
use bnff_tensor::stats::{ChannelAccumulator, ChannelStats};
use bnff_tensor::{active_isa, Shape, Tensor};

/// Convolution that also accumulates per-channel Σx / Σx² of its output
/// (the paper's `CONV1-(sub-BN1)` fused layer). Returns the output feature
/// map and the finalized mini-batch statistics.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn conv2d_forward_with_stats(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
) -> Result<(Tensor, ChannelStats)> {
    let out = conv2d_forward(input, weights, bias, attrs)?;
    // The accumulation rides along the output write: every value written is
    // pushed into its channel's accumulator (here expressed as a per-plane
    // pass over the freshly produced output, which stays cache-resident;
    // the per-channel partials reduce across worker threads).
    let stats = ChannelAccumulator::from_tensor(&out)?.finalize()?;
    Ok((out, stats))
}

/// [`conv2d_forward_with_stats`] into a caller-provided output tensor.
/// Every element of `out` is overwritten.
///
/// # Errors
/// Returns an error if the shapes (including `out`'s) are inconsistent.
pub fn conv2d_forward_with_stats_into(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
    out: &mut Tensor,
) -> Result<ChannelStats> {
    conv2d_forward_into(input, weights, bias, attrs, out)?;
    Ok(ChannelAccumulator::from_tensor(out)?.finalize()?)
}

/// ReLU applied while reading the ifmaps of a convolution (RCF).
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn relu_conv_forward(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
) -> Result<Tensor> {
    let clipped = crate::relu::relu_forward(input);
    conv2d_forward(&clipped, weights, bias, attrs)
}

/// Everything the fused `(sub-BN2)-ReLU-CONV2` backward pass needs from the
/// forward pass.
#[derive(Debug, Clone)]
pub struct NormReluConvState {
    /// The normalized activations `x̂` (before γ/β and ReLU) — the `O2'`
    /// sweep the fused layer still writes because backward reuses it.
    pub x_hat: Tensor,
    /// The post-γ/β, post-ReLU activations actually fed to the convolution.
    pub conv_input: Tensor,
    /// The statistics used for normalization.
    pub stats: ChannelStats,
}

/// The `(sub-BN2)-ReLU-CONV2` fused forward pass: normalize the raw
/// activations with the provided mini-batch statistics, clip, and convolve.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn norm_relu_conv_forward(
    raw: &Tensor,
    stats: &ChannelStats,
    bn: &BnParams,
    epsilon: f32,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
) -> Result<(Tensor, NormReluConvState)> {
    let mut out = Tensor::zeros(fused_conv_output_shape(raw.shape(), attrs)?);
    let state =
        norm_relu_conv_forward_into(raw, stats, bn, epsilon, weights, bias, attrs, &mut out)?;
    Ok((out, state))
}

/// [`norm_relu_conv_forward`] into a caller-provided output tensor. Every
/// element of `out` is overwritten; the returned state owns the (freshly
/// allocated) `x̂` and clipped activations the backward pass retains.
///
/// # Errors
/// Returns an error if the shapes (including `out`'s) are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn norm_relu_conv_forward_into(
    raw: &Tensor,
    stats: &ChannelStats,
    bn: &BnParams,
    epsilon: f32,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
    out: &mut Tensor,
) -> Result<NormReluConvState> {
    raw.shape().expect_nchw()?;
    let c = raw.shape().c();
    if stats.channels() != c || bn.channels() != c {
        return Err(KernelError::ShapeMismatch(format!(
            "statistics/parameters cover {}/{} channels, input has {c}",
            stats.channels(),
            bn.channels()
        )));
    }
    if epsilon <= 0.0 {
        return Err(KernelError::InvalidArgument("epsilon must be positive".to_string()));
    }
    let mut x_hat = Tensor::zeros(raw.shape().clone());
    let mut conv_input = Tensor::zeros(raw.shape().clone());
    let plane_len = raw.shape().h() * raw.shape().w();
    let src = raw.as_slice();
    // One task per `(sample, channel)` plane; `x̂` and the clipped conv
    // input are produced in the same sweep of the raw activations. ISA
    // resolved on the caller's thread (workers don't inherit `with_isa`).
    let isa = active_isa();
    parallel_rows_mut2(
        x_hat.as_mut_slice(),
        plane_len.max(1),
        conv_input.as_mut_slice(),
        plane_len.max(1),
        min_planes_per_thread(plane_len),
        |first_plane, hat_block, in_block| {
            for (p_local, (hat_plane, ci_plane)) in hat_block
                .chunks_mut(plane_len.max(1))
                .zip(in_block.chunks_mut(plane_len.max(1)))
                .enumerate()
            {
                let p = first_plane + p_local;
                let ci = p % c;
                let mean = stats.mean[ci];
                let inv_std = 1.0 / (stats.var[ci] + epsilon).sqrt();
                let src_plane = &src[p * plane_len..(p + 1) * plane_len];
                vecops::normalize_plane(
                    isa,
                    src_plane,
                    hat_plane,
                    ci_plane,
                    mean,
                    inv_std,
                    bn.gamma[ci],
                    bn.beta[ci],
                    true,
                );
            }
        },
    );
    conv2d_forward_into(&conv_input, weights, bias, attrs, out)?;
    Ok(NormReluConvState { x_hat, conv_input, stats: stats.clone() })
}

/// Gradients produced by [`norm_relu_conv_backward`].
#[derive(Debug, Clone)]
pub struct NormReluConvGrads {
    /// Gradient with respect to the raw (pre-normalization) activations.
    pub d_raw: Tensor,
    /// Gradient with respect to the convolution weights.
    pub d_weights: Tensor,
    /// Gradient with respect to the convolution bias (empty if no bias).
    pub d_bias: Vec<f32>,
    /// Gradients of the absorbed BN's γ/β.
    pub d_bn: BnParamGrads,
}

/// Backward pass of the fused `(sub-BN2)-ReLU-CONV2` layer.
///
/// Numerically this is the composition conv-backward → ReLU-backward →
/// BN-backward; the fusion's benefit is in memory traffic, which the
/// performance model accounts for separately.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn norm_relu_conv_backward(
    d_out: &Tensor,
    state: &NormReluConvState,
    bn: &BnParams,
    epsilon: f32,
    weights: &Tensor,
    attrs: &Conv2dAttrs,
    with_bias: bool,
) -> Result<NormReluConvGrads> {
    // Convolution backward.
    let d_conv_input = conv2d_backward_input(d_out, weights, state.conv_input.shape(), attrs)?;
    let (d_weights, d_bias) = conv2d_backward_weights(&state.conv_input, d_out, attrs, with_bias)?;
    // ReLU backward (mask taken from the post-ReLU conv input).
    let d_post_bn = relu_backward(&d_conv_input, &state.conv_input)?;
    // BN backward using the saved normalized activations.
    let bn_state =
        crate::batchnorm::BnForwardState { stats: state.stats.clone(), x_hat: state.x_hat.clone() };
    let (d_raw, d_bn) = crate::batchnorm::bn_backward(&d_post_bn, &bn_state, bn, epsilon)?;
    Ok(NormReluConvGrads { d_raw, d_weights, d_bias, d_bn })
}

/// Channel concatenation that also accumulates Σx / Σx² of its output (the
/// ICF fused layer). Returns the concatenated tensor and its statistics.
///
/// # Errors
/// Returns an error if the inputs are incompatible.
pub fn concat_forward_with_stats(inputs: &[&Tensor]) -> Result<(Tensor, ChannelStats)> {
    let out = crate::concat::concat_forward(inputs)?;
    let stats = ChannelAccumulator::from_tensor(&out)?.finalize()?;
    Ok((out, stats))
}

/// [`concat_forward_with_stats`] into a caller-provided output tensor.
/// Every element of `out` is overwritten.
///
/// # Errors
/// Returns an error if the inputs (or `out`'s shape) are incompatible.
pub fn concat_forward_with_stats_into(
    inputs: &[&Tensor],
    out: &mut Tensor,
) -> Result<ChannelStats> {
    crate::concat::concat_forward_into(inputs, out)?;
    Ok(ChannelAccumulator::from_tensor(out)?.finalize()?)
}

/// Convenience: the shape of the output produced by a fused convolution with
/// the given input shape.
///
/// # Errors
/// Returns an error if the window does not fit the input.
pub fn fused_conv_output_shape(input: &Shape, attrs: &Conv2dAttrs) -> Result<Shape> {
    input.expect_nchw()?;
    let ho = crate::im2col::conv_out_dim(input.h(), attrs.kernel_h, attrs.stride, attrs.pad)?;
    let wo = crate::im2col::conv_out_dim(input.w(), attrs.kernel_w, attrs.stride, attrs.pad)?;
    Ok(Shape::nchw(input.n(), attrs.out_channels, ho, wo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batchnorm::{bn_forward, bn_statistics};
    use crate::relu::relu_forward;
    use bnff_tensor::init::Initializer;

    fn random(shape: Shape, seed: u64) -> Tensor {
        Initializer::seeded(seed).uniform(shape, -1.0, 1.0)
    }

    #[test]
    fn conv_with_stats_matches_separate_computation() {
        let attrs = Conv2dAttrs::same_3x3(6);
        let x = random(Shape::nchw(3, 4, 8, 8), 1);
        let w = random(Shape::nchw(6, 4, 3, 3), 2);
        let (fused_out, fused_stats) = conv2d_forward_with_stats(&x, &w, None, &attrs).unwrap();
        let plain_out = conv2d_forward(&x, &w, None, &attrs).unwrap();
        assert!(fused_out.all_close(&plain_out, 1e-6).unwrap());
        let separate_stats = bn_statistics(&plain_out, false).unwrap();
        assert!(fused_stats.max_abs_diff(&separate_stats).unwrap() < 1e-4);
    }

    #[test]
    fn relu_conv_matches_relu_then_conv() {
        let attrs = Conv2dAttrs::pointwise(5);
        let x = random(Shape::nchw(2, 3, 6, 6), 3);
        let w = random(Shape::nchw(5, 3, 1, 1), 4);
        let fused = relu_conv_forward(&x, &w, None, &attrs).unwrap();
        let unfused = conv2d_forward(&relu_forward(&x), &w, None, &attrs).unwrap();
        assert!(fused.all_close(&unfused, 1e-6).unwrap());
    }

    #[test]
    fn norm_relu_conv_matches_unfused_pipeline() {
        let attrs = Conv2dAttrs::same_3x3(4);
        let raw = random(Shape::nchw(4, 3, 6, 6), 5);
        let w = random(Shape::nchw(4, 3, 3, 3), 6);
        let bn = BnParams::new(vec![1.2, 0.8, 1.0], vec![0.1, -0.1, 0.0]).unwrap();
        let eps = 1e-5;

        let stats = bn_statistics(&raw, false).unwrap();
        let (fused_out, state) =
            norm_relu_conv_forward(&raw, &stats, &bn, eps, &w, None, &attrs).unwrap();

        // Unfused: BN forward -> ReLU -> conv.
        let (bn_out, bn_state) = bn_forward(&raw, &bn, eps, false).unwrap();
        let relu_out = relu_forward(&bn_out);
        let unfused_out = conv2d_forward(&relu_out, &w, None, &attrs).unwrap();

        assert!(fused_out.all_close(&unfused_out, 1e-4).unwrap());
        assert!(state.x_hat.all_close(&bn_state.x_hat, 1e-4).unwrap());
        assert!(state.conv_input.all_close(&relu_out, 1e-4).unwrap());
    }

    #[test]
    fn norm_relu_conv_backward_matches_unfused_gradients() {
        let attrs = Conv2dAttrs::pointwise(3);
        let raw = random(Shape::nchw(2, 2, 4, 4), 7);
        let w = random(Shape::nchw(3, 2, 1, 1), 8);
        let bn = BnParams::new(vec![1.1, 0.9], vec![0.05, -0.05]).unwrap();
        let eps = 1e-5;
        let stats = bn_statistics(&raw, false).unwrap();
        let (out, state) =
            norm_relu_conv_forward(&raw, &stats, &bn, eps, &w, None, &attrs).unwrap();
        let d_out = random(out.shape().clone(), 9);

        let fused = norm_relu_conv_backward(&d_out, &state, &bn, eps, &w, &attrs, false).unwrap();

        // Unfused reference.
        let (bn_out, bn_state) = bn_forward(&raw, &bn, eps, false).unwrap();
        let relu_out = relu_forward(&bn_out);
        let d_relu_out = conv2d_backward_input(&d_out, &w, relu_out.shape(), &attrs).unwrap();
        let (d_w_ref, _) = conv2d_backward_weights(&relu_out, &d_out, &attrs, false).unwrap();
        let d_bn_out = relu_backward(&d_relu_out, &relu_out).unwrap();
        let (d_raw_ref, d_bn_ref) =
            crate::batchnorm::bn_backward(&d_bn_out, &bn_state, &bn, eps).unwrap();

        assert!(fused.d_raw.all_close(&d_raw_ref, 1e-4).unwrap());
        assert!(fused.d_weights.all_close(&d_w_ref, 1e-4).unwrap());
        for c in 0..2 {
            assert!((fused.d_bn.d_gamma[c] - d_bn_ref.d_gamma[c]).abs() < 1e-3);
            assert!((fused.d_bn.d_beta[c] - d_bn_ref.d_beta[c]).abs() < 1e-3);
        }
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let attrs = Conv2dAttrs::same_3x3(4);
        let x = random(Shape::nchw(2, 3, 6, 6), 31);
        let w = random(Shape::nchw(4, 3, 3, 3), 32);
        let (out_ref, stats_ref) = conv2d_forward_with_stats(&x, &w, None, &attrs).unwrap();
        let mut out = Tensor::filled(out_ref.shape().clone(), f32::NAN);
        let stats = conv2d_forward_with_stats_into(&x, &w, None, &attrs, &mut out).unwrap();
        assert_eq!(out.as_slice(), out_ref.as_slice());
        assert_eq!(stats.mean, stats_ref.mean);
        assert_eq!(stats.var, stats_ref.var);

        let bn = BnParams::identity(3);
        let in_stats = bn_statistics(&x, false).unwrap();
        let (nrc_ref, state_ref) =
            norm_relu_conv_forward(&x, &in_stats, &bn, 1e-5, &w, None, &attrs).unwrap();
        let mut nrc = Tensor::filled(nrc_ref.shape().clone(), f32::NAN);
        let state =
            norm_relu_conv_forward_into(&x, &in_stats, &bn, 1e-5, &w, None, &attrs, &mut nrc)
                .unwrap();
        assert_eq!(nrc.as_slice(), nrc_ref.as_slice());
        assert_eq!(state.x_hat.as_slice(), state_ref.x_hat.as_slice());
        assert_eq!(state.conv_input.as_slice(), state_ref.conv_input.as_slice());
    }

    #[test]
    fn concat_with_stats_matches_separate() {
        let a = random(Shape::nchw(2, 2, 4, 4), 10);
        let b = random(Shape::nchw(2, 3, 4, 4), 11);
        let (out, stats) = concat_forward_with_stats(&[&a, &b]).unwrap();
        let plain = crate::concat::concat_forward(&[&a, &b]).unwrap();
        assert!(out.all_close(&plain, 1e-6).unwrap());
        let reference = bn_statistics(&plain, false).unwrap();
        assert!(stats.max_abs_diff(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn mismatched_channels_rejected() {
        let attrs = Conv2dAttrs::pointwise(2);
        let raw = random(Shape::nchw(1, 3, 4, 4), 12);
        let w = random(Shape::nchw(2, 3, 1, 1), 13);
        let bn = BnParams::identity(4); // wrong channel count
        let stats = bn_statistics(&raw, false).unwrap();
        assert!(norm_relu_conv_forward(&raw, &stats, &bn, 1e-5, &w, None, &attrs).is_err());
    }

    #[test]
    fn fused_conv_output_shape_matches_conv() {
        let attrs = Conv2dAttrs::new(16, 3, 2, 1);
        let shape = fused_conv_output_shape(&Shape::nchw(4, 8, 17, 17), &attrs).unwrap();
        assert_eq!(shape, Shape::nchw(4, 16, 9, 9));
        assert!(fused_conv_output_shape(&Shape::matrix(2, 2), &attrs).is_err());
    }
}
