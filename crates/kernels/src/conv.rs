//! 2-D convolution kernels: direct and im2col+GEMM forward paths, plus the
//! backward passes with respect to the inputs and the weights.
//!
//! The direct path partitions work over `(sample, out_channel)` output
//! planes, the lowered path inherits the GEMM's row-block partitioning, and
//! the weight gradient reduces per-sample partials with a deterministic
//! tree — so all paths scale across `BNFF_THREADS` cores while producing
//! thread-count-independent results.

use crate::error::KernelError;
use crate::gemm::{gemm, gemm_im2col, gemm_tn, Im2colView};
use crate::im2col::{col2im_accumulate, col_shape, conv_out_dim, im2col_into};
use crate::Result;
use bnff_graph::op::Conv2dAttrs;
use bnff_parallel::{chunk_ranges, min_items_per_thread, parallel_reduce, parallel_rows_mut};
use bnff_tensor::pool::SharedBufferPool;
use bnff_tensor::{Shape, Tensor};

/// Column-matrix scratch recycled across convolutions and training steps,
/// so the im2col lowering of every conv node expands into storage carved
/// out by earlier calls instead of `malloc`.
static COL_POOL: SharedBufferPool = SharedBufferPool::bounded(64 << 20);

/// Validates the weight tensor layout `(Cout, Cin, Kh, Kw)` against the
/// input channels and attributes, returning `(in_c, out_h, out_w)`.
fn check_conv(
    input: &Tensor,
    weights: &Tensor,
    attrs: &Conv2dAttrs,
) -> Result<(usize, usize, usize)> {
    input.shape().expect_nchw()?;
    weights.shape().expect_nchw()?;
    let in_c = input.shape().c();
    let ws = weights.shape();
    if ws.n() != attrs.out_channels
        || ws.c() != in_c
        || ws.h() != attrs.kernel_h
        || ws.w() != attrs.kernel_w
    {
        return Err(KernelError::ShapeMismatch(format!(
            "weights {} do not match attrs (oc {}, ic {}, k {}x{})",
            ws, attrs.out_channels, in_c, attrs.kernel_h, attrs.kernel_w
        )));
    }
    let out_h = conv_out_dim(input.shape().h(), attrs.kernel_h, attrs.stride, attrs.pad)?;
    let out_w = conv_out_dim(input.shape().w(), attrs.kernel_w, attrs.stride, attrs.pad)?;
    Ok((in_c, out_h, out_w))
}

/// Direct (loop-nest) convolution forward pass.
///
/// Weight layout is `(Cout, Cin, Kh, Kw)`; an optional per-output-channel
/// bias of length `Cout` may be provided.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn conv2d_forward_direct(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
) -> Result<Tensor> {
    let (_, out_h, out_w) = check_conv(input, weights, attrs)?;
    let mut out = Tensor::zeros(Shape::nchw(input.shape().n(), attrs.out_channels, out_h, out_w));
    conv2d_forward_direct_into(input, weights, bias, attrs, &mut out)?;
    Ok(out)
}

/// [`conv2d_forward_direct`] into a caller-provided output tensor, so a
/// plan-driven executor can hand the convolution a recycled buffer instead
/// of allocating a fresh feature map per node per step. Every element of
/// `out` is overwritten.
///
/// # Errors
/// Returns an error if the shapes (including `out`'s) are inconsistent.
pub fn conv2d_forward_direct_into(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
    out: &mut Tensor,
) -> Result<()> {
    let (in_c, out_h, out_w) = check_conv(input, weights, attrs)?;
    if let Some(b) = bias {
        if b.len() != attrs.out_channels {
            return Err(KernelError::ShapeMismatch(format!(
                "bias has {} entries, expected {}",
                b.len(),
                attrs.out_channels
            )));
        }
    }
    let n = input.shape().n();
    let (h, w) = (input.shape().h(), input.shape().w());
    let expected = Shape::nchw(n, attrs.out_channels, out_h, out_w);
    if out.shape() != &expected {
        return Err(KernelError::ShapeMismatch(format!(
            "output tensor is {}, convolution produces {}",
            out.shape(),
            expected
        )));
    }
    // One task per `(sample, out_channel)` output plane; every plane is a
    // disjoint contiguous run of the NCHW output buffer.
    let plane_len = out_h * out_w;
    let plane_macs = plane_len * in_c * attrs.kernel_h * attrs.kernel_w;
    let min_planes = min_items_per_thread(plane_macs);
    parallel_rows_mut(out.as_mut_slice(), plane_len, min_planes, |first_plane, block| {
        for (p_local, out_plane) in block.chunks_mut(plane_len).enumerate() {
            let p = first_plane + p_local;
            let ni = p / attrs.out_channels;
            let oc = p % attrs.out_channels;
            let bias_v = bias.map(|b| b[oc]).unwrap_or(0.0);
            for oh in 0..out_h {
                for ow in 0..out_w {
                    let mut acc = bias_v;
                    for ic in 0..in_c {
                        let plane = input.channel_plane(ni, ic);
                        for kh in 0..attrs.kernel_h {
                            let ih = (oh * attrs.stride + kh) as isize - attrs.pad as isize;
                            if ih < 0 || ih as usize >= h {
                                continue;
                            }
                            for kw in 0..attrs.kernel_w {
                                let iw = (ow * attrs.stride + kw) as isize - attrs.pad as isize;
                                if iw < 0 || iw as usize >= w {
                                    continue;
                                }
                                acc += plane[ih as usize * w + iw as usize]
                                    * weights.at(oc, ic, kh, kw);
                            }
                        }
                    }
                    out_plane[oh * out_w + ow] = acc;
                }
            }
        }
    });
    Ok(())
}

/// im2col + GEMM convolution forward pass (the layout the paper's reference
/// libraries use). Alias of [`conv2d_forward`], kept under the name that
/// says *how* the lowering works.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn conv2d_forward_im2col(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
) -> Result<Tensor> {
    conv2d_forward(input, weights, bias, attrs)
}

/// The production convolution forward pass: im2col lowering into the
/// cache-blocked packed GEMM, with the column scratch recycled through the
/// shared pool across samples, calls and training steps. Pointwise
/// (`1×1`/stride-1/no-pad) convolutions skip the im2col copy entirely —
/// each input sample already *is* the column matrix.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn conv2d_forward(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
) -> Result<Tensor> {
    let (_, out_h, out_w) = check_conv(input, weights, attrs)?;
    let mut out = Tensor::zeros(Shape::nchw(input.shape().n(), attrs.out_channels, out_h, out_w));
    conv2d_forward_into(input, weights, bias, attrs, &mut out)?;
    Ok(out)
}

/// Whether a convolution's im2col column matrix is the input sample itself.
fn is_pointwise(attrs: &Conv2dAttrs) -> bool {
    attrs.kernel_h == 1 && attrs.kernel_w == 1 && attrs.stride == 1 && attrs.pad == 0
}

/// [`conv2d_forward`] into a caller-provided output tensor (every element
/// is overwritten — the packed GEMM's `beta == 0` path never reads the
/// recycled buffer). This is the entry point the plan-driven executor and
/// the fused kernels route their convolutions through.
///
/// # Errors
/// Returns an error if the shapes (including `out`'s) are inconsistent.
pub fn conv2d_forward_into(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
    out: &mut Tensor,
) -> Result<()> {
    conv2d_forward_into_impl(input, weights, bias, attrs, out, false)
}

/// Inference entry point for the frozen graph's fused `CONV+ReLU` operator:
/// [`conv2d_forward_into`] that clamps each output sample to `max(·, 0)`
/// while the written tile is still cache-hot, so the frozen graph pays no
/// separate ReLU sweep.
///
/// # Errors
/// Returns an error if the shapes (including `out`'s) are inconsistent.
pub fn conv2d_forward_relu_into(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
    out: &mut Tensor,
) -> Result<()> {
    conv2d_forward_into_impl(input, weights, bias, attrs, out, true)
}

/// Convolution forward pass with the im2col lowering **fused into the GEMM's
/// B-packing**: window elements are gathered straight from the input sample
/// while the `KC × NR` strips are packed, so the `(C·Kh·Kw) × (Ho·Wo)` column
/// matrix is never written or re-read. Bit-identical to
/// [`conv2d_forward_into`] (same microkernel, bitwise-equal packed panels,
/// same accumulation order, same bias/ReLU epilogues) — this is the entry
/// point the serving tape dispatches its pre-resolved conv recipes to.
///
/// # Errors
/// Returns an error if the shapes (including `out`'s) are inconsistent.
pub fn conv2d_forward_gather_into(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
    fuse_relu: bool,
    out: &mut Tensor,
) -> Result<()> {
    let (in_c, out_h, out_w) = check_conv(input, weights, attrs)?;
    check_bias(bias, attrs)?;
    let n = input.shape().n();
    let (h, w) = (input.shape().h(), input.shape().w());
    let (rows, cols) = col_shape(input.shape(), attrs)?;
    let expected = Shape::nchw(n, attrs.out_channels, out_h, out_w);
    if out.shape() != &expected {
        return Err(KernelError::ShapeMismatch(format!(
            "output tensor is {}, convolution produces {}",
            out.shape(),
            expected
        )));
    }
    let w_mat = weights.as_slice();
    let pointwise = is_pointwise(attrs);
    for ni in 0..n {
        let start = out.shape().offset4(ni, 0, 0, 0);
        let out_slice = &mut out.as_mut_slice()[start..start + attrs.out_channels * cols];
        let in_start = input.shape().offset4(ni, 0, 0, 0);
        let sample = &input.as_slice()[in_start..in_start + in_c * h * w];
        if pointwise {
            // The sample already is the column matrix; same path as the
            // materializing kernel.
            gemm(attrs.out_channels, cols, rows, 1.0, w_mat, sample, 0.0, out_slice)?;
        } else {
            let view = Im2colView {
                sample,
                channels: in_c,
                in_h: h,
                in_w: w,
                kernel_h: attrs.kernel_h,
                kernel_w: attrs.kernel_w,
                stride: attrs.stride,
                pad: attrs.pad,
                out_h,
                out_w,
            };
            gemm_im2col(attrs.out_channels, cols, rows, 1.0, w_mat, view, 0.0, out_slice)?;
        }
        apply_bias_relu(out_slice, bias, cols, fuse_relu);
    }
    Ok(())
}

fn check_bias(bias: Option<&[f32]>, attrs: &Conv2dAttrs) -> Result<()> {
    if let Some(b) = bias {
        if b.len() != attrs.out_channels {
            return Err(KernelError::ShapeMismatch(format!(
                "bias has {} entries, expected {}",
                b.len(),
                attrs.out_channels
            )));
        }
    }
    Ok(())
}

/// The shared convolution epilogue: per-output-channel bias add and the
/// optional fused ReLU clamp, applied to one sample's output plane run.
/// Both forward entry points use this same code so their results stay
/// bit-identical.
fn apply_bias_relu(out_slice: &mut [f32], bias: Option<&[f32]>, cols: usize, fuse_relu: bool) {
    // Runs on the caller's thread, so resolving the ISA here honours any
    // scoped `with_isa` override. Add and clamp are bit-identical across
    // ISAs, so this never perturbs the conv results.
    let isa = bnff_tensor::active_isa();
    if let Some(b) = bias {
        for (oc, &bv) in b.iter().enumerate() {
            crate::vecops::add_scalar(isa, &mut out_slice[oc * cols..(oc + 1) * cols], bv);
        }
    }
    if fuse_relu {
        crate::vecops::relu_inplace(isa, out_slice);
    }
}

fn conv2d_forward_into_impl(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    attrs: &Conv2dAttrs,
    out: &mut Tensor,
    fuse_relu: bool,
) -> Result<()> {
    let (_in_c, out_h, out_w) = check_conv(input, weights, attrs)?;
    check_bias(bias, attrs)?;
    let n = input.shape().n();
    let (rows, cols) = col_shape(input.shape(), attrs)?;
    let expected = Shape::nchw(n, attrs.out_channels, out_h, out_w);
    if out.shape() != &expected {
        return Err(KernelError::ShapeMismatch(format!(
            "output tensor is {}, convolution produces {}",
            out.shape(),
            expected
        )));
    }
    let w_mat = weights.as_slice(); // (Cout) x (Cin*Kh*Kw), row-major by construction
    let pointwise = is_pointwise(attrs);
    // One recycled column matrix serves every sample (unused when pointwise).
    let mut col = if pointwise { Vec::new() } else { COL_POOL.take_dirty(rows * cols) };
    for ni in 0..n {
        let start = out.shape().offset4(ni, 0, 0, 0);
        let out_slice = &mut out.as_mut_slice()[start..start + attrs.out_channels * cols];
        // out_sample = W (Cout x rows) · col (rows x cols)
        if pointwise {
            let in_start = input.shape().offset4(ni, 0, 0, 0);
            let sample = &input.as_slice()[in_start..in_start + rows * cols];
            gemm(attrs.out_channels, cols, rows, 1.0, w_mat, sample, 0.0, out_slice)?;
        } else {
            im2col_into(input, ni, attrs, &mut col)?;
            gemm(attrs.out_channels, cols, rows, 1.0, w_mat, &col, 0.0, out_slice)?;
        }
        apply_bias_relu(out_slice, bias, cols, fuse_relu);
    }
    COL_POOL.give(col);
    Ok(())
}

/// Gradient of the convolution with respect to its input.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn conv2d_backward_input(
    d_out: &Tensor,
    weights: &Tensor,
    input_shape: &Shape,
    attrs: &Conv2dAttrs,
) -> Result<Tensor> {
    let mut d_input = Tensor::zeros(input_shape.clone());
    conv2d_backward_input_into(d_out, weights, attrs, &mut d_input)?;
    Ok(d_input)
}

/// [`conv2d_backward_input`] accumulating into a caller-provided gradient
/// tensor (whose shape is the convolution's input shape). The gradient is
/// *added* to `d_input`, so callers wanting the plain gradient must pass a
/// zero-filled tensor — e.g. one taken from a
/// [`bnff_tensor::pool::BufferPool`].
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn conv2d_backward_input_into(
    d_out: &Tensor,
    weights: &Tensor,
    attrs: &Conv2dAttrs,
    d_input: &mut Tensor,
) -> Result<()> {
    let input_shape = d_input.shape().clone();
    input_shape.expect_nchw()?;
    d_out.shape().expect_nchw()?;
    let n = input_shape.n();
    let (rows, cols) = col_shape(&input_shape, attrs)?;
    if d_out.shape().c() != attrs.out_channels {
        return Err(KernelError::ShapeMismatch(format!(
            "d_out channels {} do not match out_channels {}",
            d_out.shape().c(),
            attrs.out_channels
        )));
    }
    let w_mat = weights.as_slice(); // Cout x rows
                                    // One recycled gradient column matrix serves every sample
                                    // (the packed gemm_tn overwrites it without reading it).
    let mut d_col = COL_POOL.take_dirty(rows * cols);
    for ni in 0..n {
        // d_col (rows x cols) = Wᵀ (rows x Cout) · d_out_sample (Cout x cols)
        let start = d_out.shape().offset4(ni, 0, 0, 0);
        let d_out_slice = &d_out.as_slice()[start..start + attrs.out_channels * cols];
        gemm_tn(rows, cols, attrs.out_channels, w_mat, d_out_slice, &mut d_col)?;
        col2im_accumulate(&d_col, d_input, ni, attrs)?;
    }
    COL_POOL.give(d_col);
    Ok(())
}

/// Gradient of the convolution with respect to its weights (and bias when
/// `with_bias` is set).
///
/// Returns `(d_weights, d_bias)`, where `d_bias` is empty when `with_bias`
/// is `false`.
///
/// # Errors
/// Returns an error if the shapes are inconsistent.
pub fn conv2d_backward_weights(
    input: &Tensor,
    d_out: &Tensor,
    attrs: &Conv2dAttrs,
    with_bias: bool,
) -> Result<(Tensor, Vec<f32>)> {
    input.shape().expect_nchw()?;
    d_out.shape().expect_nchw()?;
    let in_c = input.shape().c();
    let n = input.shape().n();
    let (rows, cols) = col_shape(input.shape(), attrs)?;
    let mut d_w =
        Tensor::zeros(Shape::nchw(attrs.out_channels, in_c, attrs.kernel_h, attrs.kernel_w));
    // Samples are grouped into a bounded number of chunks fixed by the
    // problem (never by the thread count): each chunk accumulates its
    // samples serially in batch order into one (d_W, d_bias) partial, and
    // the partials combine with a deterministic tree. Bounding the chunk
    // count caps transient memory at MAX_WGRAD_PARTIALS weight buffers
    // whatever the batch size. The im2col + GEMM inside each partial run
    // serially when this level already fans out, and in parallel when it
    // does not (single chunk).
    const MAX_WGRAD_PARTIALS: usize = 8;
    let sample_macs = attrs.out_channels * rows * cols;
    let min_samples = min_items_per_thread(sample_macs);
    let groups = chunk_ranges(n, n.div_ceil(min_samples).min(MAX_WGRAD_PARTIALS));
    let reduced = parallel_reduce(
        groups.len(),
        1,
        |gi| -> Result<(Vec<f32>, Vec<f32>)> {
            let mut d_w_flat = vec![0.0f32; attrs.out_channels * rows];
            let mut d_bias = vec![0.0f32; if with_bias { attrs.out_channels } else { 0 }];
            let mut sample_buf = vec![0.0f32; attrs.out_channels * rows];
            // The column scratch is recycled from the shared pool and
            // expanded in place per sample (the adjoint of the forward
            // path's reuse).
            let mut col = COL_POOL.take_dirty(rows * cols);
            for ni in groups[gi].clone() {
                im2col_into(input, ni, attrs, &mut col)?;
                let start = d_out.shape().offset4(ni, 0, 0, 0);
                let d_out_slice = &d_out.as_slice()[start..start + attrs.out_channels * cols];
                // d_W (Cout x rows) += d_out_sample (Cout x cols) · colᵀ (cols x rows)
                crate::gemm::gemm_nt(
                    attrs.out_channels,
                    rows,
                    cols,
                    d_out_slice,
                    &col,
                    &mut sample_buf,
                )?;
                for (acc, v) in d_w_flat.iter_mut().zip(sample_buf.iter()) {
                    *acc += *v;
                }
                for (oc, db) in d_bias.iter_mut().enumerate() {
                    *db += d_out_slice[oc * cols..(oc + 1) * cols].iter().sum::<f32>();
                }
            }
            COL_POOL.give(col);
            Ok((d_w_flat, d_bias))
        },
        |a, b| match (a, b) {
            (Ok((mut w1, mut b1)), Ok((w2, b2))) => {
                for (x, y) in w1.iter_mut().zip(&w2) {
                    *x += *y;
                }
                for (x, y) in b1.iter_mut().zip(&b2) {
                    *x += *y;
                }
                Ok((w1, b1))
            }
            (Err(e), _) | (_, Err(e)) => Err(e),
        },
    );
    match reduced {
        Some(partials) => {
            let (d_w_flat, d_bias) = partials?;
            d_w.as_mut_slice().copy_from_slice(&d_w_flat);
            Ok((d_w, d_bias))
        }
        // Empty batch: zero gradients.
        None => Ok((d_w, vec![0.0f32; if with_bias { attrs.out_channels } else { 0 }])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_tensor::init::Initializer;

    fn random(shape: Shape, seed: u64) -> Tensor {
        Initializer::seeded(seed).uniform(shape, -1.0, 1.0)
    }

    #[test]
    fn pointwise_conv_is_channel_mix() {
        // 1x1 conv with identity-like weights just scales channels.
        let x = Tensor::from_vec(
            Shape::nchw(1, 2, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
        )
        .unwrap();
        let w = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![1.0, 0.5]).unwrap();
        let attrs = Conv2dAttrs::pointwise(1);
        let y = conv2d_forward_direct(&x, &w, None, &attrs).unwrap();
        assert_eq!(y.as_slice(), &[6.0, 12.0, 18.0, 24.0]);
    }

    #[test]
    fn direct_and_im2col_paths_agree() {
        let attrs = Conv2dAttrs::new(5, 3, 2, 1);
        let x = random(Shape::nchw(2, 4, 9, 9), 1);
        let w = random(Shape::nchw(5, 4, 3, 3), 2);
        let direct = conv2d_forward_direct(&x, &w, None, &attrs).unwrap();
        let lowered = conv2d_forward_im2col(&x, &w, None, &attrs).unwrap();
        assert!(direct.all_close(&lowered, 1e-4).unwrap());
    }

    #[test]
    fn gather_path_is_bit_identical_to_materialized() {
        // Strided, padded, pointwise and biased variants, with and without
        // the fused ReLU; the gather path must match bit for bit.
        for (case, attrs, in_c, hw) in [
            ("same3x3", Conv2dAttrs::same_3x3(6), 4usize, 9usize),
            ("strided", Conv2dAttrs::new(5, 3, 2, 1), 4, 9),
            ("pointwise", Conv2dAttrs::pointwise(7), 3, 8),
            ("biased", Conv2dAttrs::new(6, 5, 2, 2).with_bias(), 2, 11),
        ] {
            let x = random(Shape::nchw(2, in_c, hw, hw), 3);
            let w =
                random(Shape::nchw(attrs.out_channels, in_c, attrs.kernel_h, attrs.kernel_w), 4);
            let bias: Option<Vec<f32>> =
                attrs.bias.then(|| (0..attrs.out_channels).map(|i| i as f32 * 0.3 - 0.5).collect());
            for fuse_relu in [false, true] {
                let (_, oh, ow) = check_conv(&x, &w, &attrs).unwrap();
                let shape = Shape::nchw(2, attrs.out_channels, oh, ow);
                let mut reference = Tensor::zeros(shape.clone());
                if fuse_relu {
                    conv2d_forward_relu_into(&x, &w, bias.as_deref(), &attrs, &mut reference)
                        .unwrap();
                } else {
                    conv2d_forward_into(&x, &w, bias.as_deref(), &attrs, &mut reference).unwrap();
                }
                let mut gathered = Tensor::zeros(shape);
                conv2d_forward_gather_into(
                    &x,
                    &w,
                    bias.as_deref(),
                    &attrs,
                    fuse_relu,
                    &mut gathered,
                )
                .unwrap();
                let ref_bits: Vec<u32> = reference.as_slice().iter().map(|v| v.to_bits()).collect();
                let got_bits: Vec<u32> = gathered.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_bits, ref_bits, "{case} relu={fuse_relu}");
            }
        }
    }

    #[test]
    fn bias_is_added_per_channel() {
        let attrs = Conv2dAttrs::pointwise(2).with_bias();
        let x = Tensor::ones(Shape::nchw(1, 1, 2, 2));
        let w = Tensor::from_vec(Shape::nchw(2, 1, 1, 1), vec![1.0, 2.0]).unwrap();
        let bias = vec![10.0, -5.0];
        let y = conv2d_forward_direct(&x, &w, Some(&bias), &attrs).unwrap();
        assert_eq!(y.channel_plane(0, 0), &[11.0; 4]);
        assert_eq!(y.channel_plane(0, 1), &[-3.0; 4]);
        let y2 = conv2d_forward_im2col(&x, &w, Some(&bias), &attrs).unwrap();
        assert!(y.all_close(&y2, 1e-6).unwrap());
    }

    #[test]
    fn weight_shape_mismatch_rejected() {
        let attrs = Conv2dAttrs::same_3x3(4);
        let x = Tensor::zeros(Shape::nchw(1, 3, 8, 8));
        let w = Tensor::zeros(Shape::nchw(4, 3, 5, 5));
        assert!(conv2d_forward_direct(&x, &w, None, &attrs).is_err());
        let w = Tensor::zeros(Shape::nchw(4, 2, 3, 3));
        assert!(conv2d_forward_im2col(&x, &w, None, &attrs).is_err());
    }

    /// Numerical gradient check for the convolution backward passes.
    #[test]
    fn gradient_check() {
        let attrs = Conv2dAttrs::new(3, 3, 1, 1);
        let x = random(Shape::nchw(1, 2, 5, 5), 3);
        let w = random(Shape::nchw(3, 2, 3, 3), 4);
        let y = conv2d_forward_direct(&x, &w, None, &attrs).unwrap();
        // Loss = sum(y * g) for a fixed random g, so dL/dy = g.
        let g = random(y.shape().clone(), 5);
        let d_x = conv2d_backward_input(&g, &w, x.shape(), &attrs).unwrap();
        let (d_w, _) = conv2d_backward_weights(&x, &g, &attrs, false).unwrap();

        let loss = |input: &Tensor, weights: &Tensor| -> f64 {
            let out = conv2d_forward_direct(input, weights, None, &attrs).unwrap();
            out.as_slice()
                .iter()
                .zip(g.as_slice())
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum()
        };

        let eps = 1e-2f32;
        // Check a handful of input coordinates.
        for &idx in &[0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.set(idx, x.get(idx).unwrap() + eps).unwrap();
            let mut xm = x.clone();
            xm.set(idx, x.get(idx).unwrap() - eps).unwrap();
            let numeric = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * f64::from(eps));
            let analytic = f64::from(d_x.get(idx).unwrap());
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "d_input[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check a handful of weight coordinates.
        for &idx in &[0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.set(idx, w.get(idx).unwrap() + eps).unwrap();
            let mut wm = w.clone();
            wm.set(idx, w.get(idx).unwrap() - eps).unwrap();
            let numeric = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * f64::from(eps));
            let analytic = f64::from(d_w.get(idx).unwrap());
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "d_weights[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn into_variant_overwrites_recycled_buffers() {
        let attrs = Conv2dAttrs::same_3x3(4);
        let x = random(Shape::nchw(2, 3, 6, 6), 21);
        let w = random(Shape::nchw(4, 3, 3, 3), 22);
        let reference = conv2d_forward_direct(&x, &w, None, &attrs).unwrap();
        // A dirty buffer of the right shape must give bit-identical results.
        let mut out = Tensor::filled(Shape::nchw(2, 4, 6, 6), f32::NAN);
        conv2d_forward_direct_into(&x, &w, None, &attrs, &mut out).unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
        // A wrong-shaped output tensor is rejected.
        let mut bad = Tensor::zeros(Shape::nchw(2, 4, 5, 5));
        assert!(conv2d_forward_direct_into(&x, &w, None, &attrs, &mut bad).is_err());
    }

    #[test]
    fn bias_gradient_sums_output_gradient() {
        let attrs = Conv2dAttrs::pointwise(2).with_bias();
        let x = random(Shape::nchw(2, 3, 4, 4), 6);
        let d_out = Tensor::ones(Shape::nchw(2, 2, 4, 4));
        let (_, d_bias) = conv2d_backward_weights(&x, &d_out, &attrs, true).unwrap();
        // Each bias sees N*H*W ones.
        assert_eq!(d_bias, vec![32.0, 32.0]);
    }

    #[test]
    fn strided_conv_output_size() {
        let attrs = Conv2dAttrs::new(8, 7, 2, 3);
        let x = random(Shape::nchw(1, 3, 32, 32), 7);
        let w = random(Shape::nchw(8, 3, 7, 7), 8);
        let y = conv2d_forward_im2col(&x, &w, None, &attrs).unwrap();
        assert_eq!(y.shape(), &Shape::nchw(1, 8, 16, 16));
    }
}
