//! Softmax + cross-entropy loss head.

use crate::error::KernelError;
use crate::Result;
use bnff_parallel::{min_items_per_thread, parallel_rows_mut};
use bnff_tensor::{Shape, Tensor};

/// Result of the softmax cross-entropy forward pass.
#[derive(Debug, Clone)]
pub struct SoftmaxLossState {
    /// Mean cross-entropy loss over the batch.
    pub loss: f32,
    /// Row-wise softmax probabilities (`N × K`), kept for the backward pass.
    pub probs: Tensor,
}

fn view_rows(scores: &Tensor) -> Result<(usize, usize)> {
    let n = scores.shape().dim(0).map_err(KernelError::Tensor)?;
    if n == 0 {
        return Err(KernelError::InvalidArgument("empty batch".to_string()));
    }
    Ok((n, scores.len() / n))
}

/// Softmax + mean cross-entropy forward pass.
///
/// `scores` is `(N, K)` (a 4-D `N×K×1×1` tensor is accepted too) and
/// `labels` holds `N` class indices.
///
/// # Errors
/// Returns an error when a label is out of range or the batch sizes differ.
pub fn softmax_loss_forward(scores: &Tensor, labels: &[usize]) -> Result<SoftmaxLossState> {
    let (n, k) = view_rows(scores)?;
    if labels.len() != n {
        return Err(KernelError::ShapeMismatch(format!(
            "{} labels for a batch of {n}",
            labels.len()
        )));
    }
    for &label in labels {
        if label >= k {
            return Err(KernelError::InvalidArgument(format!(
                "label {label} out of range for {k} classes"
            )));
        }
    }
    let data = scores.as_slice();
    let mut probs = Tensor::zeros(Shape::matrix(n, k));
    // Per-sample rows are independent: normalize them across workers, then
    // pick out the (cheap, O(N)) label losses serially in row order.
    let min_rows = min_items_per_thread(k.saturating_mul(4));
    parallel_rows_mut(probs.as_mut_slice(), k, min_rows, |first_row, block| {
        for (row_local, prow) in block.chunks_mut(k).enumerate() {
            let row = first_row + row_local;
            let logits = &data[row * k..(row + 1) * k];
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exp: Vec<f64> = logits.iter().map(|&v| f64::from(v - max).exp()).collect();
            let denom: f64 = exp.iter().sum();
            for (p, e) in prow.iter_mut().zip(exp.iter()) {
                *p = (*e / denom) as f32;
            }
        }
    });
    let mut loss = 0.0f64;
    for (row, &label) in labels.iter().enumerate() {
        loss += -f64::from(probs.as_slice()[row * k + label]).max(1e-12).ln();
    }
    Ok(SoftmaxLossState { loss: (loss / n as f64) as f32, probs })
}

/// Softmax cross-entropy backward pass: `d_scores = (softmax − one_hot) / N`.
///
/// # Errors
/// Returns an error when a label is out of range or the batch sizes differ.
pub fn softmax_loss_backward(state: &SoftmaxLossState, labels: &[usize]) -> Result<Tensor> {
    let (n, k) = view_rows(&state.probs)?;
    if labels.len() != n {
        return Err(KernelError::ShapeMismatch(format!(
            "{} labels for a batch of {n}",
            labels.len()
        )));
    }
    let mut d_scores = state.probs.clone();
    let slice = d_scores.as_mut_slice();
    for (row, &label) in labels.iter().enumerate() {
        if label >= k {
            return Err(KernelError::InvalidArgument(format!(
                "label {label} out of range for {k} classes"
            )));
        }
        slice[row * k + label] -= 1.0;
    }
    for v in slice.iter_mut() {
        *v /= n as f32;
    }
    Ok(d_scores)
}

/// Classification accuracy of a score matrix against integer labels.
///
/// # Errors
/// Returns an error when the batch sizes differ.
pub fn accuracy(scores: &Tensor, labels: &[usize]) -> Result<f32> {
    let (n, k) = view_rows(scores)?;
    if labels.len() != n {
        return Err(KernelError::ShapeMismatch(format!(
            "{} labels for a batch of {n}",
            labels.len()
        )));
    }
    let preds = bnff_tensor::ops::argmax_rows(scores, k)?;
    let correct = preds.iter().zip(labels.iter()).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_scores_give_log_k_loss() {
        let scores = Tensor::zeros(Shape::matrix(4, 10));
        let labels = vec![0, 3, 5, 9];
        let state = softmax_loss_forward(&scores, &labels).unwrap();
        assert!((state.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut scores = Tensor::zeros(Shape::matrix(1, 3));
        scores.set(1, 10.0).unwrap();
        let state = softmax_loss_forward(&scores, &[1]).unwrap();
        assert!(state.loss < 0.01);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let scores =
            Tensor::from_vec(Shape::matrix(2, 3), vec![1.0, -2.0, 0.5, 3.0, 3.0, 3.0]).unwrap();
        let state = softmax_loss_forward(&scores, &[0, 1]).unwrap();
        for row in 0..2 {
            let sum: f32 = state.probs.as_slice()[row * 3..(row + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let scores =
            Tensor::from_vec(Shape::matrix(2, 4), vec![0.5, -0.3, 0.8, 0.1, -1.0, 0.4, 0.2, 0.9])
                .unwrap();
        let labels = vec![2usize, 1];
        let state = softmax_loss_forward(&scores, &labels).unwrap();
        let d_scores = softmax_loss_backward(&state, &labels).unwrap();
        let h = 1e-3f32;
        for idx in 0..scores.len() {
            let mut sp = scores.clone();
            sp.set(idx, scores.get(idx).unwrap() + h).unwrap();
            let mut sm = scores.clone();
            sm.set(idx, scores.get(idx).unwrap() - h).unwrap();
            let lp = softmax_loss_forward(&sp, &labels).unwrap().loss;
            let lm = softmax_loss_forward(&sm, &labels).unwrap().loss;
            let numeric = f64::from(lp - lm) / (2.0 * f64::from(h));
            let analytic = f64::from(d_scores.get(idx).unwrap());
            assert!((numeric - analytic).abs() < 1e-3, "d_scores[{idx}]: {numeric} vs {analytic}");
        }
    }

    #[test]
    fn label_out_of_range_is_rejected() {
        let scores = Tensor::zeros(Shape::matrix(1, 3));
        assert!(softmax_loss_forward(&scores, &[3]).is_err());
        assert!(softmax_loss_forward(&scores, &[0, 1]).is_err());
    }

    #[test]
    fn accuracy_counts_matches() {
        let scores =
            Tensor::from_vec(Shape::matrix(3, 2), vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]).unwrap();
        assert!((accuracy(&scores, &[0, 1, 1]).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!(accuracy(&scores, &[0, 1]).is_err());
    }

    #[test]
    fn accepts_nchw_scores() {
        let scores = Tensor::zeros(Shape::nchw(2, 5, 1, 1));
        let state = softmax_loss_forward(&scores, &[0, 4]).unwrap();
        assert!((state.loss - (5.0f32).ln()).abs() < 1e-5);
    }
}
