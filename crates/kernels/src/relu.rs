//! Rectified linear unit.

use crate::vecops;
use crate::Result;
use bnff_parallel::{min_items_per_thread, parallel_rows_mut};
use bnff_tensor::{active_isa, Tensor};

/// ReLU forward pass: `y = max(x, 0)`.
pub fn relu_forward(x: &Tensor) -> Tensor {
    let mut y = Tensor::zeros(x.shape().clone());
    relu_forward_into(x, &mut y).expect("freshly allocated output matches the input shape");
    y
}

/// ReLU forward pass into a caller-provided output tensor (one read sweep,
/// one write sweep, no intermediate copy). Every element of `out` is
/// overwritten.
///
/// # Errors
/// Returns an error if the shapes differ.
pub fn relu_forward_into(x: &Tensor, out: &mut Tensor) -> Result<()> {
    x.shape().expect_same(out.shape())?;
    let src = x.as_slice();
    // Resolve the ISA on the caller's thread: pool workers don't inherit the
    // caller's `with_isa` override. The clip is bit-identical on both paths,
    // so arbitrary worker chunk boundaries are safe.
    let isa = active_isa();
    parallel_rows_mut(out.as_mut_slice(), 1, min_items_per_thread(1), |offset, chunk| {
        let len = chunk.len();
        vecops::relu_into(isa, &src[offset..offset + len], chunk);
    });
    Ok(())
}

/// ReLU forward pass in place.
pub fn relu_forward_inplace(x: &mut Tensor) {
    let isa = active_isa();
    parallel_rows_mut(x.as_mut_slice(), 1, min_items_per_thread(1), |_, chunk| {
        vecops::relu_inplace(isa, chunk);
    });
}

/// ReLU backward pass: `d_x = d_y ⊙ 1[x > 0]`.
///
/// The mask is taken from the *forward input* `x` (equivalently the forward
/// output, since both share the same sign pattern on the positive side).
///
/// # Errors
/// Returns an error if the shapes differ.
pub fn relu_backward(d_y: &Tensor, x: &Tensor) -> Result<Tensor> {
    d_y.shape().expect_same(x.shape())?;
    let mask = x.as_slice();
    let mut d_x = d_y.clone();
    parallel_rows_mut(d_x.as_mut_slice(), 1, min_items_per_thread(1), |offset, chunk| {
        let len = chunk.len();
        for (g, &v) in chunk.iter_mut().zip(&mask[offset..offset + len]) {
            // Gradient passes only where v > 0.0; NaN activations fail the
            // test and block the gradient, matching the forward clip
            // (NaN.max(0.0) == 0.0).
            let passes = v > 0.0;
            if !passes {
                *g = 0.0;
            }
        }
    });
    Ok(d_x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_tensor::{Shape, Tensor};

    #[test]
    fn clips_negatives() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0, -3.5]);
        let y = relu_forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let mut z = x.clone();
        relu_forward_inplace(&mut z);
        assert_eq!(z, y);
    }

    #[test]
    fn backward_masks_gradient() {
        let x = Tensor::from_slice(&[-1.0, 0.5, 0.0, 3.0]);
        let d_y = Tensor::from_slice(&[10.0, 10.0, 10.0, 10.0]);
        let d_x = relu_backward(&d_y, &x).unwrap();
        assert_eq!(d_x.as_slice(), &[0.0, 10.0, 0.0, 10.0]);
    }

    #[test]
    fn backward_shape_mismatch() {
        let x = Tensor::zeros(Shape::vector(4));
        let d_y = Tensor::zeros(Shape::vector(5));
        assert!(relu_backward(&d_y, &x).is_err());
    }

    #[test]
    fn into_variant_overwrites_recycled_buffers() {
        let x = Tensor::from_slice(&[-1.0, 0.5, -2.0, 3.0]);
        let mut out = Tensor::from_slice(&[9.0, 9.0, 9.0, 9.0]);
        relu_forward_into(&x, &mut out).unwrap();
        assert_eq!(out.as_slice(), relu_forward(&x).as_slice());
        let mut bad = Tensor::zeros(Shape::vector(5));
        assert!(relu_forward_into(&x, &mut bad).is_err());
    }

    #[test]
    fn idempotent_forward() {
        let x = Tensor::from_slice(&[-2.0, 4.0]);
        let once = relu_forward(&x);
        let twice = relu_forward(&once);
        assert_eq!(once, twice);
    }
}
