//! Element-wise sum (ResNet shortcut join).

use crate::error::KernelError;
use crate::vecops;
use crate::Result;
use bnff_parallel::{min_items_per_thread, parallel_rows_mut};
use bnff_tensor::{active_isa, Tensor};

/// Element-wise sum of any number of equally shaped tensors, computed in a
/// single parallel sweep over the output (each worker accumulates all
/// inputs for its chunk, in input order).
///
/// # Errors
/// Returns an error when no inputs are given or shapes differ.
pub fn eltwise_sum_forward(inputs: &[&Tensor]) -> Result<Tensor> {
    let first = inputs
        .first()
        .ok_or_else(|| KernelError::InvalidArgument("element-wise sum needs inputs".to_string()))?;
    let mut out = Tensor::zeros(first.shape().clone());
    eltwise_sum_forward_into(inputs, &mut out)?;
    Ok(out)
}

/// [`eltwise_sum_forward`] into a caller-provided output tensor (the first
/// input is written, the rest accumulate, in one sweep — no intermediate
/// copy). Every element of `out` is overwritten.
///
/// # Errors
/// Returns an error when no inputs are given or shapes differ.
pub fn eltwise_sum_forward_into(inputs: &[&Tensor], out: &mut Tensor) -> Result<()> {
    let first = inputs
        .first()
        .ok_or_else(|| KernelError::InvalidArgument("element-wise sum needs inputs".to_string()))?;
    for t in inputs {
        first.shape().expect_same(t.shape())?;
    }
    first.shape().expect_same(out.shape())?;
    let base = first.as_slice();
    // Resolved on the caller's thread (workers don't inherit `with_isa`);
    // element-wise adds are bit-identical across ISAs, so worker chunk
    // boundaries are free to move with the thread count.
    let isa = active_isa();
    parallel_rows_mut(out.as_mut_slice(), 1, min_items_per_thread(1), |offset, chunk| {
        let len = chunk.len();
        chunk.copy_from_slice(&base[offset..offset + len]);
        for t in &inputs[1..] {
            vecops::add_assign(isa, chunk, &t.as_slice()[offset..offset + len]);
        }
    });
    Ok(())
}

/// Backward pass of the element-wise sum: each input receives the upstream
/// gradient unchanged.
pub fn eltwise_sum_backward(d_y: &Tensor, num_inputs: usize) -> Vec<Tensor> {
    (0..num_inputs).map(|_| d_y.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_tensor::{Shape, Tensor};

    #[test]
    fn sums_inputs() {
        let a = Tensor::filled(Shape::vector(4), 1.0);
        let b = Tensor::filled(Shape::vector(4), 2.0);
        let c = Tensor::filled(Shape::vector(4), 3.0);
        let y = eltwise_sum_forward(&[&a, &b, &c]).unwrap();
        assert_eq!(y.as_slice(), &[6.0; 4]);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(eltwise_sum_forward(&[]).is_err());
        let a = Tensor::zeros(Shape::vector(4));
        let b = Tensor::zeros(Shape::vector(5));
        assert!(eltwise_sum_forward(&[&a, &b]).is_err());
    }

    #[test]
    fn into_variant_overwrites_recycled_buffers() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let b = Tensor::from_slice(&[0.5, 0.5, 0.5]);
        let mut out = Tensor::from_slice(&[9.0, 9.0, 9.0]);
        eltwise_sum_forward_into(&[&a, &b], &mut out).unwrap();
        assert_eq!(out.as_slice(), eltwise_sum_forward(&[&a, &b]).unwrap().as_slice());
        let mut bad = Tensor::zeros(Shape::vector(4));
        assert!(eltwise_sum_forward_into(&[&a, &b], &mut bad).is_err());
        assert!(eltwise_sum_forward_into(&[], &mut out).is_err());
    }

    #[test]
    fn backward_replicates_gradient() {
        let d_y = Tensor::from_slice(&[1.0, 2.0]);
        let grads = eltwise_sum_backward(&d_y, 3);
        assert_eq!(grads.len(), 3);
        for g in grads {
            assert_eq!(g, d_y);
        }
    }
}
