//! Fully-connected (inner-product) layer.

use crate::error::KernelError;
use crate::gemm::{gemm, gemm_nt, gemm_tn};
use crate::Result;
use bnff_tensor::{Shape, Tensor};

/// Flattens an `N × …` tensor into `(N, features)` dimensions.
fn flatten_dims(x: &Tensor) -> Result<(usize, usize)> {
    let n = x.shape().dim(0).map_err(KernelError::Tensor)?;
    if n == 0 {
        return Err(KernelError::InvalidArgument("empty batch".to_string()));
    }
    Ok((n, x.len() / n))
}

/// Fully-connected forward pass: `y = x · Wᵀ + b`.
///
/// `x` is `(N, in)` (any shape with leading batch dimension is flattened),
/// `weights` is `(out, in)` and `bias` has length `out`.
///
/// # Errors
/// Returns an error if the dimensions are inconsistent.
pub fn fc_forward(x: &Tensor, weights: &Tensor, bias: &[f32]) -> Result<Tensor> {
    let (n, _) = flatten_dims(x)?;
    let out_features = weights.shape().dim(0).map_err(KernelError::Tensor)?;
    let mut out = Tensor::zeros(Shape::matrix(n, out_features));
    fc_forward_into(x, weights, bias, &mut out)?;
    Ok(out)
}

/// [`fc_forward`] into a caller-provided `(N, out)` output tensor, so a
/// plan-driven executor can hand the classifier head a recycled buffer.
/// Every element of `out` is overwritten (the GEMM's `beta == 0` path never
/// reads it).
///
/// # Errors
/// Returns an error if the dimensions (including `out`'s) are inconsistent.
pub fn fc_forward_into(x: &Tensor, weights: &Tensor, bias: &[f32], out: &mut Tensor) -> Result<()> {
    let (n, in_features) = flatten_dims(x)?;
    let out_features = weights.shape().dim(0).map_err(KernelError::Tensor)?;
    if weights.len() != out_features * in_features {
        return Err(KernelError::ShapeMismatch(format!(
            "weights {} do not match ({out_features}, {in_features})",
            weights.shape()
        )));
    }
    if bias.len() != out_features {
        return Err(KernelError::ShapeMismatch(format!(
            "bias has {} entries, expected {out_features}",
            bias.len()
        )));
    }
    if out.len() != n * out_features {
        return Err(KernelError::ShapeMismatch(format!(
            "output tensor is {}, fully-connected produces ({n}, {out_features})",
            out.shape()
        )));
    }
    // y (N x out) = x (N x in) · Wᵀ (in x out)
    gemm_nt(n, out_features, in_features, x.as_slice(), weights.as_slice(), out.as_mut_slice())?;
    for row in out.as_mut_slice().chunks_mut(out_features) {
        for (v, b) in row.iter_mut().zip(bias.iter()) {
            *v += b;
        }
    }
    Ok(())
}

/// Fully-connected backward pass.
///
/// Returns `(d_x, d_weights, d_bias)` where `d_x` has the shape of the
/// original (possibly 4-D) input.
///
/// # Errors
/// Returns an error if the dimensions are inconsistent.
pub fn fc_backward(
    x: &Tensor,
    weights: &Tensor,
    d_y: &Tensor,
) -> Result<(Tensor, Tensor, Vec<f32>)> {
    let (n, in_features) = flatten_dims(x)?;
    let (n2, out_features) = flatten_dims(d_y)?;
    if n != n2 {
        return Err(KernelError::ShapeMismatch(format!("batch mismatch {n} vs {n2}")));
    }
    if weights.len() != out_features * in_features {
        return Err(KernelError::ShapeMismatch(format!(
            "weights {} do not match ({out_features}, {in_features})",
            weights.shape()
        )));
    }

    // d_x (N x in) = d_y (N x out) · W (out x in)
    let mut d_x_flat = vec![0.0f32; n * in_features];
    gemm(
        n,
        in_features,
        out_features,
        1.0,
        d_y.as_slice(),
        weights.as_slice(),
        0.0,
        &mut d_x_flat,
    )?;
    let d_x = Tensor::from_vec(x.shape().clone(), d_x_flat)?;

    // d_W (out x in) = d_yᵀ (out x N) · x (N x in)
    let mut d_w = Tensor::zeros(weights.shape().clone());
    gemm_tn(out_features, in_features, n, d_y.as_slice(), x.as_slice(), d_w.as_mut_slice())?;

    // d_b = column sums of d_y.
    let mut d_bias = vec![0.0f32; out_features];
    for row in 0..n {
        for (j, b) in d_bias.iter_mut().enumerate() {
            *b += d_y.as_slice()[row * out_features + j];
        }
    }
    Ok((d_x, d_w, d_bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_tensor::init::Initializer;

    #[test]
    fn forward_known_values() {
        let x = Tensor::from_vec(Shape::matrix(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let w = Tensor::from_vec(Shape::matrix(2, 3), vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]).unwrap();
        let y = fc_forward(&x, &w, &[0.5, -0.5]).unwrap();
        assert_eq!(y.as_slice(), &[1.5, 1.5, 4.5, 4.5]);
    }

    #[test]
    fn accepts_nchw_input() {
        let x = Tensor::ones(Shape::nchw(2, 3, 1, 1));
        let w = Tensor::ones(Shape::matrix(4, 3));
        let y = fc_forward(&x, &w, &[0.0; 4]).unwrap();
        assert_eq!(y.shape(), &Shape::matrix(2, 4));
        assert_eq!(y.as_slice(), &[3.0; 8]);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let x = Tensor::ones(Shape::matrix(2, 3));
        let w = Tensor::ones(Shape::matrix(4, 5));
        assert!(fc_forward(&x, &w, &[0.0; 4]).is_err());
        let w = Tensor::ones(Shape::matrix(4, 3));
        assert!(fc_forward(&x, &w, &[0.0; 3]).is_err());
    }

    #[test]
    fn gradient_check() {
        let mut init = Initializer::seeded(11);
        let x = init.uniform(Shape::matrix(3, 4), -1.0, 1.0);
        let w = init.uniform(Shape::matrix(2, 4), -1.0, 1.0);
        let bias = vec![0.1, -0.2];
        let g = init.uniform(Shape::matrix(3, 2), -1.0, 1.0);

        let loss = |x: &Tensor, w: &Tensor, b: &[f32]| -> f64 {
            let y = fc_forward(x, w, b).unwrap();
            y.as_slice().iter().zip(g.as_slice()).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum()
        };

        let (d_x, d_w, d_b) = fc_backward(&x, &w, &g).unwrap();
        let h = 1e-2f32;
        for idx in [0usize, 3, 7, 11] {
            let mut xp = x.clone();
            xp.set(idx, x.get(idx).unwrap() + h).unwrap();
            let mut xm = x.clone();
            xm.set(idx, x.get(idx).unwrap() - h).unwrap();
            let numeric = (loss(&xp, &w, &bias) - loss(&xm, &w, &bias)) / (2.0 * f64::from(h));
            assert!((numeric - f64::from(d_x.get(idx).unwrap())).abs() < 1e-2);
        }
        for idx in [0usize, 2, 5, 7] {
            let mut wp = w.clone();
            wp.set(idx, w.get(idx).unwrap() + h).unwrap();
            let mut wm = w.clone();
            wm.set(idx, w.get(idx).unwrap() - h).unwrap();
            let numeric = (loss(&x, &wp, &bias) - loss(&x, &wm, &bias)) / (2.0 * f64::from(h));
            assert!((numeric - f64::from(d_w.get(idx).unwrap())).abs() < 1e-2);
        }
        // Bias gradient equals column sums of g.
        assert!((d_b[0] - g.as_slice().iter().step_by(2).sum::<f32>()).abs() < 1e-4);
    }

    #[test]
    fn backward_preserves_input_shape() {
        let x = Tensor::ones(Shape::nchw(2, 3, 2, 2));
        let w = Tensor::ones(Shape::matrix(5, 12));
        let d_y = Tensor::ones(Shape::matrix(2, 5));
        let (d_x, d_w, d_b) = fc_backward(&x, &w, &d_y).unwrap();
        assert_eq!(d_x.shape(), x.shape());
        assert_eq!(d_w.shape(), w.shape());
        assert_eq!(d_b.len(), 5);
    }
}
