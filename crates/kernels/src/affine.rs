//! Inference-time per-channel affine kernels.
//!
//! When a model is frozen for serving, Batch Normalization collapses into
//! `y = scale[c]·x + shift[c]` with coefficients derived from γ/β and the
//! *running* statistics ([`bn_affine_coefficients`]). Wherever the affine
//! sits directly behind a convolution it is folded into the weights and
//! never executed; this kernel covers the residual cases (an affine behind
//! a `Concat` or an element-wise sum), plus the coefficient math the fold
//! itself shares.

use crate::error::KernelError;
use crate::vecops;
use crate::Result;
use bnff_parallel::{min_items_per_thread, parallel_rows_mut};
use bnff_tensor::{active_isa, Tensor};

/// Lowers BN parameters + running statistics into affine coefficients:
/// `scale[c] = γ[c]/√(var[c]+ε)`, `shift[c] = β[c] − scale[c]·mean[c]`.
///
/// # Errors
/// Returns an error when the per-channel vectors disagree in length or the
/// epsilon is not positive.
pub fn bn_affine_coefficients(
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    epsilon: f32,
) -> Result<(Vec<f32>, Vec<f32>)> {
    let c = gamma.len();
    if beta.len() != c || mean.len() != c || var.len() != c {
        return Err(KernelError::ShapeMismatch(format!(
            "affine coefficient inputs disagree: γ {}, β {}, μ {}, σ² {}",
            c,
            beta.len(),
            mean.len(),
            var.len()
        )));
    }
    if epsilon <= 0.0 {
        return Err(KernelError::InvalidArgument("epsilon must be positive".to_string()));
    }
    let mut scale = Vec::with_capacity(c);
    let mut shift = Vec::with_capacity(c);
    for ci in 0..c {
        let s = gamma[ci] / (var[ci] + epsilon).sqrt();
        scale.push(s);
        shift.push(beta[ci] - s * mean[ci]);
    }
    Ok((scale, shift))
}

/// The channel count an affine sees: dim 1 both for `N×C×H×W` feature maps
/// and for `batch × features` matrices.
fn affine_channels(x: &Tensor) -> Result<usize> {
    if x.shape().rank() < 2 {
        return Err(KernelError::ShapeMismatch(format!(
            "channel affine needs a rank ≥ 2 input, got {}",
            x.shape()
        )));
    }
    x.shape().dim(1).map_err(KernelError::from)
}

/// `y = scale[c]·x + shift[c]` into a caller-provided output tensor; every
/// element of `out` is overwritten. Accepts `N×C×H×W` feature maps (affine
/// per channel plane) and 2-D `batch × features` matrices (affine per
/// column).
///
/// # Errors
/// Returns an error if shapes or channel counts disagree.
pub fn channel_affine_into(
    x: &Tensor,
    scale: &[f32],
    shift: &[f32],
    out: &mut Tensor,
) -> Result<()> {
    channel_affine_into_impl(x, scale, shift, out, false)
}

/// `y = max(scale[c]·x + shift[c], 0)`: [`channel_affine_into`] with the
/// ReLU clamp fused into the same write sweep, so a frozen
/// `affine → ReLU` pair costs one pass instead of two. Bit-identical to
/// running the two kernels back to back — `max(·, 0)` of the stored value
/// equals `max(·, 0)` of the just-computed value.
///
/// # Errors
/// Returns an error if shapes or channel counts disagree.
pub fn channel_affine_relu_into(
    x: &Tensor,
    scale: &[f32],
    shift: &[f32],
    out: &mut Tensor,
) -> Result<()> {
    channel_affine_into_impl(x, scale, shift, out, true)
}

/// In-place [`channel_affine_into`]: `x = scale[c]·x + shift[c]`
/// overwriting the input buffer. Each element is read once and written
/// once, so the result is bit-identical to the out-of-place kernel; a tape
/// executor uses this when the planner proved the input buffer dead and
/// recycled it for the output.
///
/// # Errors
/// Returns an error if channel counts disagree.
pub fn channel_affine_in_place(x: &mut Tensor, scale: &[f32], shift: &[f32]) -> Result<()> {
    channel_affine_in_place_impl(x, scale, shift, false)
}

/// In-place [`channel_affine_relu_into`]: `x = max(scale[c]·x + shift[c],
/// 0)` overwriting the input buffer (see [`channel_affine_in_place`]).
///
/// # Errors
/// Returns an error if channel counts disagree.
pub fn channel_affine_relu_in_place(x: &mut Tensor, scale: &[f32], shift: &[f32]) -> Result<()> {
    channel_affine_in_place_impl(x, scale, shift, true)
}

fn channel_affine_in_place_impl(
    x: &mut Tensor,
    scale: &[f32],
    shift: &[f32],
    fuse_relu: bool,
) -> Result<()> {
    let c = affine_channels(x)?;
    if scale.len() != c || shift.len() != c {
        return Err(KernelError::ShapeMismatch(format!(
            "input has {c} channels but coefficients have {} / {}",
            scale.len(),
            shift.len()
        )));
    }
    let plane_len = x.shape().volume() / (x.shape().dim(0).unwrap_or(1).max(1) * c.max(1));
    let plane_len = plane_len.max(1);
    // Resolved here because pool workers don't inherit the caller's
    // `with_isa` override. Workers split on whole planes, so the FMA
    // contraction inside a plane never moves with the thread count.
    let isa = active_isa();
    parallel_rows_mut(
        x.as_mut_slice(),
        plane_len,
        min_items_per_thread(plane_len.saturating_mul(2)),
        |first_plane, block| {
            for (p_local, plane) in block.chunks_mut(plane_len).enumerate() {
                let p = first_plane + p_local;
                let ci = p % c;
                vecops::affine_inplace(isa, plane, scale[ci], shift[ci], fuse_relu);
            }
        },
    );
    Ok(())
}

fn channel_affine_into_impl(
    x: &Tensor,
    scale: &[f32],
    shift: &[f32],
    out: &mut Tensor,
    fuse_relu: bool,
) -> Result<()> {
    let c = affine_channels(x)?;
    if scale.len() != c || shift.len() != c {
        return Err(KernelError::ShapeMismatch(format!(
            "input has {c} channels but coefficients have {} / {}",
            scale.len(),
            shift.len()
        )));
    }
    x.shape().expect_same(out.shape())?;
    // Plane length: H·W for feature maps, 1 for matrices — either way the
    // channel index of plane `p` is `p % c`.
    let plane_len = x.shape().volume() / (x.shape().dim(0).unwrap_or(1).max(1) * c.max(1));
    let plane_len = plane_len.max(1);
    let src = x.as_slice();
    let isa = active_isa();
    parallel_rows_mut(
        out.as_mut_slice(),
        plane_len,
        min_items_per_thread(plane_len.saturating_mul(2)),
        |first_plane, block| {
            for (p_local, plane) in block.chunks_mut(plane_len).enumerate() {
                let p = first_plane + p_local;
                let ci = p % c;
                let src_plane = &src[p * plane_len..(p + 1) * plane_len];
                vecops::affine(isa, src_plane, plane, scale[ci], shift[ci], fuse_relu);
            }
        },
    );
    Ok(())
}

/// Allocating convenience wrapper around [`channel_affine_into`].
///
/// # Errors
/// Returns an error if shapes or channel counts disagree.
pub fn channel_affine(x: &Tensor, scale: &[f32], shift: &[f32]) -> Result<Tensor> {
    let mut out = Tensor::zeros(x.shape().clone());
    channel_affine_into(x, scale, shift, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batchnorm::{bn_normalize, BnParams};
    use bnff_tensor::init::Initializer;
    use bnff_tensor::stats::ChannelStats;
    use bnff_tensor::Shape;

    #[test]
    fn affine_applies_per_channel() {
        let x = Tensor::ones(Shape::nchw(2, 2, 2, 2));
        let y = channel_affine(&x, &[2.0, -1.0], &[0.5, 0.25]).unwrap();
        for ni in 0..2 {
            assert!(y.channel_plane(ni, 0).iter().all(|&v| v == 2.5));
            assert!(y.channel_plane(ni, 1).iter().all(|&v| v == -0.75));
        }
    }

    #[test]
    fn affine_handles_matrices() {
        let x = Tensor::from_vec(Shape::matrix(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = channel_affine(&x, &[1.0, 10.0, 100.0], &[0.0, 0.0, 1.0]).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 20.0, 301.0, 4.0, 50.0, 601.0]);
    }

    #[test]
    fn coefficients_reproduce_bn_within_tolerance() {
        let mut init = Initializer::seeded(3);
        let x = init.uniform(Shape::nchw(3, 4, 5, 5), -2.0, 2.0);
        let params = BnParams::new(vec![1.2, 0.7, -0.4, 2.0], vec![0.1, -0.2, 0.3, 0.0]).unwrap();
        let stats = ChannelStats {
            mean: vec![0.1, -0.3, 0.25, 0.0],
            var: vec![1.1, 0.4, 2.0, 0.9],
            count: 0,
        };
        let eps = 1e-5;
        let (reference, _) = bn_normalize(&x, &stats, &params, eps).unwrap();
        let (scale, shift) =
            bn_affine_coefficients(&params.gamma, &params.beta, &stats.mean, &stats.var, eps)
                .unwrap();
        let affine = channel_affine(&x, &scale, &shift).unwrap();
        assert!(affine.all_close(&reference, 1e-5).unwrap());
    }

    #[test]
    fn fused_relu_matches_two_kernels_and_in_place_matches_fused() {
        let mut init = Initializer::seeded(5);
        let x = init.uniform(Shape::nchw(2, 3, 4, 4), -2.0, 2.0);
        let scale = [1.5, -0.5, 0.25];
        let shift = [0.1, -0.3, 0.0];
        let affine = channel_affine(&x, &scale, &shift).unwrap();
        let mut fused = Tensor::zeros(x.shape().clone());
        channel_affine_relu_into(&x, &scale, &shift, &mut fused).unwrap();
        for (f, a) in fused.as_slice().iter().zip(affine.as_slice()) {
            assert_eq!(f.to_bits(), a.max(0.0).to_bits());
        }
        let mut in_place = x.clone();
        channel_affine_relu_in_place(&mut in_place, &scale, &shift).unwrap();
        for (i, f) in in_place.as_slice().iter().zip(fused.as_slice()) {
            assert_eq!(i.to_bits(), f.to_bits());
        }
        let mut plain = x.clone();
        channel_affine_in_place(&mut plain, &scale, &shift).unwrap();
        for (p, a) in plain.as_slice().iter().zip(affine.as_slice()) {
            assert_eq!(p.to_bits(), a.to_bits());
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let x = Tensor::ones(Shape::nchw(1, 2, 2, 2));
        assert!(channel_affine(&x, &[1.0], &[0.0, 0.0]).is_err());
        assert!(channel_affine(&x, &[1.0, 1.0], &[0.0]).is_err());
        let v = Tensor::from_slice(&[1.0, 2.0]);
        assert!(channel_affine(&v, &[1.0, 1.0], &[0.0, 0.0]).is_err());
        assert!(bn_affine_coefficients(&[1.0], &[0.0], &[0.0], &[1.0], 0.0).is_err());
        assert!(bn_affine_coefficients(&[1.0, 2.0], &[0.0], &[0.0], &[1.0], 1e-5).is_err());
    }
}
