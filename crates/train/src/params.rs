//! Learnable parameters and their gradients, keyed by graph node.

use crate::error::TrainError;
use crate::Result;
use bnff_graph::op::OpKind;
use bnff_graph::{Graph, NodeId};
use bnff_kernels::batchnorm::BnParams;
use bnff_tensor::init::Initializer;
use bnff_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The learnable parameters owned by one graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeParams {
    /// A convolution's filters and optional bias.
    Conv {
        /// Filter tensor `(Cout, Cin, Kh, Kw)`.
        weights: Tensor,
        /// Optional per-output-channel bias.
        bias: Option<Vec<f32>>,
    },
    /// A Batch Normalization layer's γ/β.
    Bn(BnParams),
    /// A fused convolution that also owns the γ/β of the normalization it
    /// absorbed on its input side.
    ConvBn {
        /// Filter tensor `(Cout, Cin, Kh, Kw)`.
        weights: Tensor,
        /// Optional per-output-channel bias.
        bias: Option<Vec<f32>>,
        /// γ/β of the absorbed BN (channel count = the conv's input channels).
        bn: BnParams,
    },
    /// A fully-connected layer's weights `(out, in)` and bias.
    Fc {
        /// Weight matrix `(out, in)`.
        weights: Tensor,
        /// Bias of length `out`.
        bias: Vec<f32>,
    },
}

/// Gradients matching a [`NodeParams`] entry.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeParamGrads {
    /// Convolution gradients.
    Conv {
        /// Filter gradients.
        d_weights: Tensor,
        /// Bias gradients (empty when the layer has no bias).
        d_bias: Vec<f32>,
    },
    /// BN γ/β gradients.
    Bn {
        /// ∂L/∂γ.
        d_gamma: Vec<f32>,
        /// ∂L/∂β.
        d_beta: Vec<f32>,
    },
    /// Fused conv + absorbed-BN gradients.
    ConvBn {
        /// Filter gradients.
        d_weights: Tensor,
        /// Bias gradients (empty when the layer has no bias).
        d_bias: Vec<f32>,
        /// ∂L/∂γ of the absorbed BN.
        d_gamma: Vec<f32>,
        /// ∂L/∂β of the absorbed BN.
        d_beta: Vec<f32>,
    },
    /// Fully-connected gradients.
    Fc {
        /// Weight gradients.
        d_weights: Tensor,
        /// Bias gradients.
        d_bias: Vec<f32>,
    },
}

/// All parameters of a graph, keyed by node id index.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParamSet {
    entries: HashMap<usize, NodeParams>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        ParamSet { entries: HashMap::new() }
    }

    /// Initializes parameters for every parameterised node of `graph`,
    /// deterministically from `seed`.
    ///
    /// # Errors
    /// Returns an error if a node's input shapes cannot be resolved.
    pub fn initialize(graph: &Graph, seed: u64) -> Result<Self> {
        let mut init = Initializer::seeded(seed);
        let mut entries = HashMap::new();
        for node in graph.nodes() {
            let in_shape = node
                .inputs
                .first()
                .and_then(|id| graph.node(*id).ok())
                .map(|n| n.output_shape.clone());
            let params = match &node.op {
                OpKind::Conv2d(a) | OpKind::ReluConv(a) | OpKind::ConvStats { conv: a, .. } => {
                    let in_c = in_shape
                        .as_ref()
                        .ok_or_else(|| TrainError::Missing(format!("input of {}", node.name)))?
                        .c();
                    let fan_in = in_c * a.kernel_h * a.kernel_w;
                    let weights = init.he_normal(
                        Shape::nchw(a.out_channels, in_c, a.kernel_h, a.kernel_w),
                        fan_in,
                    );
                    let bias = if a.bias { Some(vec![0.0; a.out_channels]) } else { None };
                    Some(NodeParams::Conv { weights, bias })
                }
                OpKind::NormReluConv { conv: a, .. }
                | OpKind::NormReluConvStats { conv: a, .. } => {
                    let in_c = in_shape
                        .as_ref()
                        .ok_or_else(|| TrainError::Missing(format!("input of {}", node.name)))?
                        .c();
                    let fan_in = in_c * a.kernel_h * a.kernel_w;
                    let weights = init.he_normal(
                        Shape::nchw(a.out_channels, in_c, a.kernel_h, a.kernel_w),
                        fan_in,
                    );
                    let bias = if a.bias { Some(vec![0.0; a.out_channels]) } else { None };
                    Some(NodeParams::ConvBn { weights, bias, bn: BnParams::identity(in_c) })
                }
                OpKind::BatchNorm(_) | OpKind::SubBnNorm(_) | OpKind::NormRelu(_) => {
                    let channels = node.output_shape.c();
                    Some(NodeParams::Bn(BnParams::identity(channels)))
                }
                OpKind::FullyConnected { out_features } => {
                    let in_shape = in_shape
                        .ok_or_else(|| TrainError::Missing(format!("input of {}", node.name)))?;
                    let in_features =
                        in_shape.volume() / in_shape.dim(0).map_err(TrainError::Tensor)?.max(1);
                    let weights = init.xavier_uniform(
                        Shape::matrix(*out_features, in_features),
                        in_features,
                        *out_features,
                    );
                    Some(NodeParams::Fc { weights, bias: vec![0.0; *out_features] })
                }
                _ => None,
            };
            if let Some(p) = params {
                entries.insert(node.id.index(), p);
            }
        }
        Ok(ParamSet { entries })
    }

    /// Looks up the parameters of a node.
    pub fn get(&self, id: NodeId) -> Option<&NodeParams> {
        self.entries.get(&id.index())
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut NodeParams> {
        self.entries.get_mut(&id.index())
    }

    /// Inserts or replaces the parameters of a node.
    pub fn insert(&mut self, id: NodeId, params: NodeParams) {
        self.entries.insert(id.index(), params);
    }

    /// Number of parameterised nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(node index, params)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&usize, &NodeParams)> {
        self.entries.iter()
    }

    /// Iterates mutably over `(node index, params)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&usize, &mut NodeParams)> {
        self.entries.iter_mut()
    }

    /// Total number of scalar parameters stored.
    pub fn scalar_count(&self) -> usize {
        self.entries
            .values()
            .map(|p| match p {
                NodeParams::Conv { weights, bias } => {
                    weights.len() + bias.as_ref().map(Vec::len).unwrap_or(0)
                }
                NodeParams::Bn(bn) => 2 * bn.channels(),
                NodeParams::ConvBn { weights, bias, bn } => {
                    weights.len() + bias.as_ref().map(Vec::len).unwrap_or(0) + 2 * bn.channels()
                }
                NodeParams::Fc { weights, bias } => weights.len() + bias.len(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_graph::passes::{BnffPass, Pass};

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new("sample");
        let x = b.input("data", Shape::nchw(2, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::same_3x3(8), "conv").unwrap();
        let bn = b.batch_norm_default(c, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        let g = b.global_avg_pool(r, "gap").unwrap();
        let fc = b.fully_connected(g, 4, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        b.finish()
    }

    #[test]
    fn initializes_every_parameterised_node() {
        let g = sample_graph();
        let params = ParamSet::initialize(&g, 7).unwrap();
        // conv, bn, fc
        assert_eq!(params.len(), 3);
        assert_eq!(params.scalar_count(), 8 * 3 * 9 + 2 * 8 + (8 * 4 + 4));
        assert_eq!(params.scalar_count(), g.parameter_count());
    }

    #[test]
    fn initialization_is_deterministic() {
        let g = sample_graph();
        let a = ParamSet::initialize(&g, 42).unwrap();
        let b = ParamSet::initialize(&g, 42).unwrap();
        let c = ParamSet::initialize(&g, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fused_graphs_get_conv_bn_entries() {
        let mut b = GraphBuilder::new("cpl");
        let x = b.input("data", Shape::nchw(2, 8, 8, 8)).unwrap();
        let c1 = b.conv2d(x, Conv2dAttrs::pointwise(16), "conv1").unwrap();
        let bn = b.batch_norm_default(c1, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        b.conv2d(r, Conv2dAttrs::same_3x3(8), "conv2").unwrap();
        let fused = BnffPass::new().run(&b.finish()).unwrap();
        let params = ParamSet::initialize(&fused, 1).unwrap();
        let has_conv_bn = params.iter().any(|(_, p)| matches!(p, NodeParams::ConvBn { .. }));
        assert!(has_conv_bn, "fused graph must own ConvBn parameters");
    }

    #[test]
    fn lookup_and_insert() {
        let g = sample_graph();
        let mut params = ParamSet::initialize(&g, 7).unwrap();
        let conv_id = g.nodes().find(|n| n.name == "conv").unwrap().id;
        assert!(params.get(conv_id).is_some());
        assert!(params.get_mut(conv_id).is_some());
        let missing = g.nodes().find(|n| n.name == "relu").unwrap().id;
        assert!(params.get(missing).is_none());
        params.insert(missing, NodeParams::Bn(BnParams::identity(4)));
        assert!(params.get(missing).is_some());
        assert!(!params.is_empty());
    }
}
