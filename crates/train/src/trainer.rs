//! A small training loop tying the executor, optimizer and synthetic data
//! together.

use crate::data::SyntheticDataset;
use crate::error::TrainError;
use crate::executor::Executor;
use crate::optimizer::SgdOptimizer;
use crate::Result;
use bnff_graph::Graph;

/// Configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of optimization steps.
    pub steps: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// RNG seed for parameters and data ordering.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 8,
            steps: 50,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 7,
        }
    }
}

/// Metrics recorded at one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMetrics {
    /// Step index (0-based).
    pub step: usize,
    /// Mini-batch loss.
    pub loss: f32,
    /// Mini-batch accuracy.
    pub accuracy: f32,
}

/// The trainer: owns an executor, an optimizer and a dataset.
#[derive(Debug)]
pub struct Trainer {
    executor: Executor,
    optimizer: SgdOptimizer,
    dataset: SyntheticDataset,
    config: TrainConfig,
    history: Vec<StepMetrics>,
}

impl Trainer {
    /// Creates a trainer for `graph` over `dataset`.
    ///
    /// # Errors
    /// Returns an error for invalid hyper-parameters or an invalid graph.
    pub fn new(graph: Graph, dataset: SyntheticDataset, config: TrainConfig) -> Result<Self> {
        if config.batch_size == 0 || config.steps == 0 {
            return Err(TrainError::InvalidArgument(
                "batch size and steps must be positive".to_string(),
            ));
        }
        let executor = Executor::new(graph, config.seed)?;
        let optimizer =
            SgdOptimizer::new(config.learning_rate, config.momentum, config.weight_decay)?;
        Ok(Trainer { executor, optimizer, dataset, config, history: Vec::new() })
    }

    /// The executor (parameters included).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The per-step metric history so far.
    pub fn history(&self) -> &[StepMetrics] {
        &self.history
    }

    /// Runs a single optimization step, returning its metrics.
    ///
    /// # Errors
    /// Returns an error if the forward/backward pass fails.
    pub fn step(&mut self, step_index: usize) -> Result<StepMetrics> {
        let (data, labels) = self.dataset.batch(self.config.batch_size, step_index as u64)?;
        let fwd = self.executor.forward(&data, &labels)?;
        let grads = self.executor.backward(&fwd)?;
        // Fold this batch's BN statistics into the running EMA the eval
        // forward (and the freeze pass) normalizes with.
        self.executor.update_running_stats(&fwd)?;
        self.optimizer.step(self.executor.params_mut(), &grads)?;
        let metrics = StepMetrics { step: step_index, loss: fwd.loss, accuracy: fwd.accuracy };
        self.history.push(metrics);
        Ok(metrics)
    }

    /// Runs the configured number of steps, returning the full history.
    ///
    /// # Errors
    /// Returns an error if any step fails.
    pub fn run(&mut self) -> Result<Vec<StepMetrics>> {
        for step in 0..self.config.steps {
            self.step(step)?;
        }
        Ok(self.history.clone())
    }

    /// Evaluates the current parameters on a fresh mini-batch (same batch
    /// size as training, since the graph's input shape is fixed) without
    /// updating them.
    ///
    /// Evaluation runs with *inference* semantics — running statistics, not
    /// the held-out batch's — so the result does not depend on which
    /// samples happen to share the evaluation batch.
    ///
    /// # Errors
    /// Returns an error if the forward pass fails.
    pub fn evaluate(&self, seed: u64) -> Result<StepMetrics> {
        let (data, labels) = self.dataset.batch(self.config.batch_size, seed)?;
        let fwd = self.executor.forward_eval(&data, &labels)?;
        Ok(StepMetrics { step: usize::MAX, loss: fwd.loss, accuracy: fwd.accuracy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_tensor::Shape;

    fn small_graph(batch: usize, classes: usize) -> Graph {
        let mut b = GraphBuilder::new("small");
        let x = b.input("data", Shape::nchw(batch, 2, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(batch)).unwrap();
        let c1 = b.conv2d(x, Conv2dAttrs::same_3x3(8), "conv1").unwrap();
        let bn = b.batch_norm_default(c1, "bn1").unwrap();
        let r = b.relu(bn, "relu1").unwrap();
        let gap = b.global_avg_pool(r, "gap").unwrap();
        let fc = b.fully_connected(gap, classes, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        b.finish()
    }

    #[test]
    fn training_reduces_loss_on_synthetic_task() {
        let classes = 3;
        let batch = 12;
        let dataset = SyntheticDataset::new(classes, 2, 8, 0.05, 11).unwrap();
        let config = TrainConfig {
            batch_size: batch,
            steps: 40,
            learning_rate: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            seed: 3,
        };
        let mut trainer = Trainer::new(small_graph(batch, classes), dataset, config).unwrap();
        let history = trainer.run().unwrap();
        let first: f32 = history[..5].iter().map(|m| m.loss).sum::<f32>() / 5.0;
        let last: f32 = history[history.len() - 5..].iter().map(|m| m.loss).sum::<f32>() / 5.0;
        assert!(last < first * 0.8, "loss did not drop: first {first}, last {last}");
        // The executor's BN runs in training mode (batch statistics), so a
        // single held-out batch with a skewed label mix can distort the
        // normalization and sink its accuracy; average a few batches so the
        // check measures the model, not one batch's label draw.
        let eval_seeds = [999u64, 1000, 1001, 1002];
        let accuracy: f32 =
            eval_seeds.iter().map(|&s| trainer.evaluate(s).unwrap().accuracy).sum::<f32>()
                / eval_seeds.len() as f32;
        assert!(accuracy > 1.0 / classes as f32, "accuracy {accuracy} at chance");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let dataset = SyntheticDataset::new(2, 2, 8, 0.1, 1).unwrap();
        let bad = TrainConfig { batch_size: 0, ..TrainConfig::default() };
        assert!(Trainer::new(small_graph(4, 2), dataset.clone(), bad).is_err());
        let bad = TrainConfig { steps: 0, ..TrainConfig::default() };
        assert!(Trainer::new(small_graph(4, 2), dataset, bad).is_err());
    }

    #[test]
    fn history_accumulates_per_step() {
        let dataset = SyntheticDataset::new(2, 2, 8, 0.1, 5).unwrap();
        let config = TrainConfig { batch_size: 4, steps: 3, ..TrainConfig::default() };
        let mut trainer = Trainer::new(small_graph(4, 2), dataset, config).unwrap();
        trainer.step(0).unwrap();
        trainer.step(1).unwrap();
        assert_eq!(trainer.history().len(), 2);
        assert_eq!(trainer.history()[1].step, 1);
    }
}
