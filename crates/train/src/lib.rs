//! # bnff-train — numeric training substrate
//!
//! This crate runs the real arithmetic of the model graphs: a
//! [`Executor`](executor::Executor) walks a graph in topological order,
//! dispatching every node (including the fused BNFF operators) to the
//! kernels in `bnff-kernels`, keeps the per-node state the backward pass
//! needs, and produces parameter gradients; an [`SgdOptimizer`](optimizer::SgdOptimizer)
//! applies them. Synthetic labelled datasets ([`data`]) make end-to-end
//! training runs self-contained, and [`validate`] holds the numerical
//! equivalence checks that justify the paper's restructuring:
//!
//! * MVF (single-sweep `E[X²]−E[X]²` statistics) yields the same losses and
//!   gradients as the two-pass baseline;
//! * the fused `CONV+stats` / `norm+ReLU+CONV` kernels reproduce the
//!   unfused composite-layer arithmetic, forward and backward;
//! * a CIFAR-scale DenseNet trains to better-than-chance accuracy on a
//!   synthetic task with either implementation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod data;
pub mod error;
pub mod executor;
pub mod optimizer;
pub mod params;
pub mod trainer;
pub mod validate;

pub use error::TrainError;
pub use executor::{Executor, ForwardResult, Gradients};
pub use optimizer::SgdOptimizer;
pub use params::{NodeParams, ParamSet};
pub use trainer::{TrainConfig, Trainer};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TrainError>;
