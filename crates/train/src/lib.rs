//! # bnff-train — numeric training substrate
//!
//! This crate runs the real arithmetic of the model graphs: an
//! [`Executor`] walks a graph in topological order, dispatching every node
//! (including the fused BNFF operators) to the kernels in `bnff-kernels`,
//! keeps the per-node state the backward pass needs, and produces
//! parameter gradients; an [`SgdOptimizer`] applies them. Synthetic labelled datasets ([`data`]) make end-to-end
//! training runs self-contained, and [`validate`] holds the numerical
//! equivalence checks that justify the paper's restructuring:
//!
//! * MVF (single-sweep `E[X²]−E[X]²` statistics) yields the same losses and
//!   gradients as the two-pass baseline;
//! * the fused `CONV+stats` / `norm+ReLU+CONV` kernels reproduce the
//!   unfused composite-layer arithmetic, forward and backward;
//! * a CIFAR-scale DenseNet trains to better-than-chance accuracy on a
//!   synthetic task with either implementation.
//!
//! Each dispatched kernel fans out across the `bnff-parallel` pool, so a
//! training step uses every core `BNFF_THREADS` allows.
//!
//! ## Example
//!
//! ```rust
//! use bnff_graph::builder::GraphBuilder;
//! use bnff_graph::op::Conv2dAttrs;
//! use bnff_tensor::{init::Initializer, Shape};
//! use bnff_train::Executor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A minimal classifier: conv -> BN -> ReLU -> GAP -> FC -> loss.
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input("data", Shape::nchw(2, 3, 8, 8))?;
//! let labels = b.input("labels", Shape::vector(2))?;
//! let c = b.conv2d(x, Conv2dAttrs::same_3x3(4), "conv")?;
//! let bn = b.batch_norm_default(c, "bn")?;
//! let r = b.relu(bn, "relu")?;
//! let gap = b.global_avg_pool(r, "gap")?;
//! let fc = b.fully_connected(gap, 2, "fc")?;
//! b.softmax_loss(fc, labels, "loss")?;
//!
//! let exec = Executor::new(b.finish(), 42)?;
//! let data = Initializer::seeded(1).uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0);
//! let fwd = exec.forward(&data, &[0, 1])?;
//! assert!(fwd.loss.is_finite());
//! let grads = exec.backward(&fwd)?;
//! assert!(grads.global_norm() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod data;
pub mod error;
pub mod executor;
pub mod optimizer;
pub mod params;
pub mod running;
pub mod trainer;
pub mod validate;

pub use checkpoint::Checkpoint;
pub use error::TrainError;
pub use executor::{Executor, ForwardResult, Gradients};
pub use optimizer::SgdOptimizer;
pub use params::{NodeParams, ParamSet};
pub use running::{RunningStatSet, RunningStats};
pub use trainer::{TrainConfig, Trainer};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TrainError>;
