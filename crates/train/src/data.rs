//! Synthetic labelled datasets.
//!
//! The paper trains on ImageNet, which is not redistributable here; for the
//! numerical experiments a synthetic classification task is enough because
//! the property under test is *arithmetic equivalence and trainability*,
//! not final ImageNet accuracy. Each class is a Gaussian blob around a
//! random prototype image, so a small CNN can separate the classes within a
//! few hundred steps.

use crate::error::TrainError;
use crate::Result;
use bnff_tensor::init::Initializer;
use bnff_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic classification dataset of Gaussian class prototypes.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    prototypes: Vec<Tensor>,
    image_shape: Shape,
    noise: f32,
    rng_seed: u64,
}

impl SyntheticDataset {
    /// Creates a dataset with `classes` prototypes of shape
    /// `channels × size × size`.
    ///
    /// # Errors
    /// Returns an error for zero classes or a zero-sized image.
    pub fn new(
        classes: usize,
        channels: usize,
        size: usize,
        noise: f32,
        seed: u64,
    ) -> Result<Self> {
        if classes == 0 || channels == 0 || size == 0 {
            return Err(TrainError::InvalidArgument(
                "classes, channels and size must be positive".to_string(),
            ));
        }
        let mut init = Initializer::seeded(seed);
        let prototypes = (0..classes)
            .map(|_| init.uniform(Shape::nchw(1, channels, size, size), -1.0, 1.0))
            .collect();
        Ok(SyntheticDataset {
            prototypes,
            image_shape: Shape::nchw(1, channels, size, size),
            noise,
            rng_seed: seed,
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.prototypes.len()
    }

    /// Samples a mini-batch of `batch` images with their labels. `step`
    /// seeds the per-batch randomness so the stream is reproducible.
    ///
    /// # Errors
    /// Returns an error for an empty batch.
    pub fn batch(&self, batch: usize, step: u64) -> Result<(Tensor, Vec<usize>)> {
        if batch == 0 {
            return Err(TrainError::InvalidArgument("batch must be positive".to_string()));
        }
        let mut rng =
            StdRng::seed_from_u64(self.rng_seed ^ (step.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let c = self.image_shape.c();
        let h = self.image_shape.h();
        let w = self.image_shape.w();
        let mut data = Tensor::zeros(Shape::nchw(batch, c, h, w));
        let mut labels = Vec::with_capacity(batch);
        for ni in 0..batch {
            let label = rng.gen_range(0..self.prototypes.len());
            labels.push(label);
            let proto = &self.prototypes[label];
            for ci in 0..c {
                let src = proto.channel_plane(0, ci).to_vec();
                let dst = data.channel_plane_mut(ni, ci);
                for (d, s) in dst.iter_mut().zip(src.iter()) {
                    *d = s + rng.gen_range(-self.noise..=self.noise);
                }
            }
        }
        Ok((data, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_requested_shape() {
        let ds = SyntheticDataset::new(4, 3, 8, 0.1, 1).unwrap();
        let (data, labels) = ds.batch(6, 0).unwrap();
        assert_eq!(data.shape(), &Shape::nchw(6, 3, 8, 8));
        assert_eq!(labels.len(), 6);
        assert!(labels.iter().all(|&l| l < 4));
        assert_eq!(ds.classes(), 4);
    }

    #[test]
    fn batches_are_reproducible_per_step() {
        let ds = SyntheticDataset::new(3, 1, 4, 0.2, 9);
        let ds = ds.unwrap();
        let (a, la) = ds.batch(4, 5).unwrap();
        let (b, lb) = ds.batch(4, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = ds.batch(4, 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn same_class_samples_cluster_around_prototype() {
        let ds = SyntheticDataset::new(2, 1, 4, 0.01, 3).unwrap();
        let (data, labels) = ds.batch(16, 1).unwrap();
        // Two samples with the same label differ by at most the noise range.
        let mut by_class: Vec<Vec<usize>> = vec![vec![], vec![]];
        for (i, &l) in labels.iter().enumerate() {
            by_class[l].push(i);
        }
        for class in by_class.iter().filter(|c| c.len() >= 2) {
            let a = data.channel_plane(class[0], 0);
            let b = data.channel_plane(class[1], 0);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() <= 0.02 + 1e-6);
            }
        }
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(SyntheticDataset::new(0, 3, 8, 0.1, 1).is_err());
        assert!(SyntheticDataset::new(2, 0, 8, 0.1, 1).is_err());
        let ds = SyntheticDataset::new(2, 1, 4, 0.1, 1).unwrap();
        assert!(ds.batch(0, 0).is_err());
    }
}
