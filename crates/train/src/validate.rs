//! Numerical-equivalence validation of the BN restructuring.
//!
//! The paper's transformation is only legal if it does not change what the
//! network learns. Three properties are checked here (and exercised by the
//! crate's tests and the workspace integration tests):
//!
//! 1. **MVF equivalence** — switching every BN layer to single-sweep
//!    `E[X²]−E[X]²` statistics ([`MvfPass`]) leaves the loss and the
//!    parameter gradients essentially unchanged (Section 3.2 argues single
//!    precision is sufficient; [`mvf_divergence`] measures exactly that).
//! 2. **Restructured-graph trainability** — a BNFF-restructured graph can be
//!    trained end to end and reaches the same loss scale as the baseline
//!    ([`compare_training`]).
//! 3. **Kernel-level equivalence** of the fused operators, covered by the
//!    `bnff-kernels` test-suite.
//! 4. **Inference equivalence** — the eval-mode forward pass (running
//!    statistics) must match the frozen graph's output within `1e-5` for
//!    every zoo model at every measured fusion level. The frozen executor
//!    lives above this crate in `bnff-serve`, so the assertion itself runs
//!    in that crate's test-suite and the workspace `serve_equivalence`
//!    integration tests, both built on [`score_divergence`].

use crate::data::SyntheticDataset;
use crate::executor::Executor;
use crate::trainer::{TrainConfig, Trainer};
use crate::Result;
use bnff_graph::passes::{MvfPass, Pass};
use bnff_graph::Graph;
use bnff_tensor::Tensor;

/// The divergence between a baseline graph and its MVF-restructured twin on
/// one mini-batch: identical parameters, identical input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvfDivergence {
    /// Baseline (two-pass statistics) loss.
    pub baseline_loss: f32,
    /// One-pass (`E[X²]−E[X]²`) loss.
    pub one_pass_loss: f32,
    /// Absolute loss difference.
    pub loss_diff: f32,
    /// Largest absolute difference across all parameter-gradient tensors.
    pub max_grad_diff: f32,
}

/// Measures the loss / gradient divergence introduced by MVF on one batch.
///
/// The MVF pass rewrites attributes only, so node ids (and therefore
/// parameters) are shared one-to-one between the two graphs.
///
/// # Errors
/// Returns an error if the graphs cannot be executed.
pub fn mvf_divergence(
    graph: &Graph,
    data: &Tensor,
    labels: &[usize],
    seed: u64,
) -> Result<MvfDivergence> {
    let baseline = Executor::new(graph.clone(), seed)?;
    let one_pass_graph = MvfPass::new().run(graph)?;
    let one_pass = Executor::with_params(one_pass_graph, baseline.params().clone())?;

    let fwd_base = baseline.forward(data, labels)?;
    let fwd_mvf = one_pass.forward(data, labels)?;
    let grads_base = baseline.backward(&fwd_base)?;
    let grads_mvf = one_pass.backward(&fwd_mvf)?;

    let mut max_grad_diff = 0.0f32;
    for (idx, g_base) in &grads_base.per_node {
        let Some(g_mvf) = grads_mvf.per_node.get(idx) else { continue };
        use crate::params::NodeParamGrads as G;
        let diff = match (g_base, g_mvf) {
            (G::Conv { d_weights: a, .. }, G::Conv { d_weights: b, .. }) => {
                a.max_abs_diff(b).unwrap_or(f32::INFINITY)
            }
            (G::Fc { d_weights: a, .. }, G::Fc { d_weights: b, .. }) => {
                a.max_abs_diff(b).unwrap_or(f32::INFINITY)
            }
            (G::Bn { d_gamma: ga, d_beta: ba }, G::Bn { d_gamma: gb, d_beta: bb }) => ga
                .iter()
                .zip(gb)
                .chain(ba.iter().zip(bb))
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f32::max),
            (G::ConvBn { d_weights: a, .. }, G::ConvBn { d_weights: b, .. }) => {
                a.max_abs_diff(b).unwrap_or(f32::INFINITY)
            }
            _ => f32::INFINITY,
        };
        max_grad_diff = max_grad_diff.max(diff);
    }

    Ok(MvfDivergence {
        baseline_loss: fwd_base.loss,
        one_pass_loss: fwd_mvf.loss,
        loss_diff: (fwd_base.loss - fwd_mvf.loss).abs(),
        max_grad_diff,
    })
}

/// Largest absolute element-wise difference between two score tensors —
/// the metric the freeze-equivalence tests bound by `1e-5` when comparing
/// an eval-mode forward against a frozen-graph inference.
///
/// # Errors
/// Returns an error when the shapes differ.
pub fn score_divergence(a: &Tensor, b: &Tensor) -> Result<f32> {
    a.max_abs_diff(b).map_err(crate::TrainError::Tensor)
}

/// Result of training two graph variants on the same synthetic task.
#[derive(Debug, Clone)]
pub struct TrainingComparison {
    /// Final-window average loss of the first variant.
    pub loss_a: f32,
    /// Final-window average loss of the second variant.
    pub loss_b: f32,
    /// Final evaluation accuracy of the first variant.
    pub accuracy_a: f32,
    /// Final evaluation accuracy of the second variant.
    pub accuracy_b: f32,
}

fn tail_loss(history: &[crate::trainer::StepMetrics]) -> f32 {
    let window = history.len().clamp(1, 5);
    history[history.len() - window..].iter().map(|m| m.loss).sum::<f32>() / window as f32
}

/// Trains two graph variants (e.g. baseline and BNFF-restructured) on the
/// same synthetic dataset and reports their final losses and accuracies.
///
/// # Errors
/// Returns an error if either training run fails.
pub fn compare_training(
    graph_a: &Graph,
    graph_b: &Graph,
    dataset: &SyntheticDataset,
    config: &TrainConfig,
) -> Result<TrainingComparison> {
    let mut trainer_a = Trainer::new(graph_a.clone(), dataset.clone(), config.clone())?;
    let mut trainer_b = Trainer::new(graph_b.clone(), dataset.clone(), config.clone())?;
    let history_a = trainer_a.run()?;
    let history_b = trainer_b.run()?;
    let eval_a = trainer_a.evaluate(10_007)?;
    let eval_b = trainer_b.evaluate(10_007)?;
    Ok(TrainingComparison {
        loss_a: tail_loss(&history_a),
        loss_b: tail_loss(&history_b),
        accuracy_a: eval_a.accuracy,
        accuracy_b: eval_b.accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_graph::passes::BnffPass;
    use bnff_tensor::init::Initializer;
    use bnff_tensor::Shape;

    fn cpl_classifier(batch: usize, classes: usize) -> Graph {
        let mut b = GraphBuilder::new("cpl-classifier");
        let x = b.input("data", Shape::nchw(batch, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(batch)).unwrap();
        let c0 = b.conv2d(x, Conv2dAttrs::same_3x3(8), "stem").unwrap();
        let c1 = b.bn_relu_conv(c0, Conv2dAttrs::pointwise(16), "cpl/a").unwrap();
        let c2 = b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(8), "cpl/b").unwrap();
        let cat = b.concat(vec![c0, c2], "concat").unwrap();
        let gap = b.global_avg_pool(cat, "gap").unwrap();
        let fc = b.fully_connected(gap, classes, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        b.finish()
    }

    #[test]
    fn mvf_changes_nothing_measurable() {
        let g = cpl_classifier(6, 3);
        let mut init = Initializer::seeded(21);
        let data = init.uniform(Shape::nchw(6, 3, 8, 8), -1.0, 1.0);
        let labels: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let div = mvf_divergence(&g, &data, &labels, 17).unwrap();
        assert!(div.loss_diff < 1e-4, "loss diverged by {}", div.loss_diff);
        assert!(div.max_grad_diff < 1e-2, "gradients diverged by {}", div.max_grad_diff);
        assert!(div.baseline_loss.is_finite() && div.one_pass_loss.is_finite());
    }

    #[test]
    fn bnff_restructured_network_trains_like_the_baseline() {
        let baseline = cpl_classifier(8, 3);
        let restructured = BnffPass::new().run(&baseline).unwrap();
        let dataset = SyntheticDataset::new(3, 3, 8, 0.05, 33).unwrap();
        let config = TrainConfig {
            batch_size: 8,
            steps: 30,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            seed: 5,
        };
        let cmp = compare_training(&baseline, &restructured, &dataset, &config).unwrap();
        // Both must clearly learn the synthetic task...
        assert!(cmp.accuracy_a > 0.5, "baseline accuracy {}", cmp.accuracy_a);
        assert!(cmp.accuracy_b > 0.5, "restructured accuracy {}", cmp.accuracy_b);
        // ...and end up at comparable loss scales.
        assert!(
            (cmp.loss_a - cmp.loss_b).abs() < 0.5 * cmp.loss_a.max(cmp.loss_b).max(0.2),
            "final losses diverged: {} vs {}",
            cmp.loss_a,
            cmp.loss_b
        );
    }
}
