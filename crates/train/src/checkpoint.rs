//! Model checkpoints: a serde-based snapshot of everything serving needs.
//!
//! A [`Checkpoint`] captures the three things that define a trained model —
//! the graph topology, the learnable parameters, and the running Batch
//! Normalization statistics — as one JSON document, so training and serving
//! can run as separate processes: the trainer writes a file, `bnff-serve`
//! loads it, freezes the graph and folds the running statistics into the
//! weights without ever touching the training code path again.
//!
//! The format round-trips **bit-identically**: every `f32` is serialized in
//! its shortest round-trip decimal form, node ids stay dense, and
//! `save → load` reproduces parameters, statistics and topology exactly
//! (locked in by the round-trip proptest in `tests/checkpoint_roundtrip.rs`).

use crate::error::TrainError;
use crate::executor::Executor;
use crate::params::ParamSet;
use crate::running::RunningStatSet;
use crate::Result;
use bnff_graph::Graph;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// A serializable snapshot of a trained model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version, for forward-compatibility checks on load.
    pub format_version: u32,
    /// The (training) graph topology.
    pub graph: Graph,
    /// All learnable parameters, keyed by node index.
    pub params: ParamSet,
    /// Running BN statistics, keyed by statistics-producer node index.
    pub running: RunningStatSet,
}

impl Checkpoint {
    /// Snapshots an executor's graph, parameters and running statistics.
    pub fn capture(executor: &Executor) -> Self {
        Checkpoint {
            format_version: FORMAT_VERSION,
            graph: executor.graph().clone(),
            params: executor.params().clone(),
            running: executor.running_stats().clone(),
        }
    }

    /// Rebuilds an executor from the snapshot (the inverse of
    /// [`Checkpoint::capture`]).
    ///
    /// # Errors
    /// Returns an error when the stored graph fails validation or memory
    /// planning.
    pub fn into_executor(self) -> Result<Executor> {
        self.graph.validate()?;
        Executor::with_state(self.graph, self.params, self.running)
    }

    /// Serializes the checkpoint as a JSON document.
    ///
    /// # Errors
    /// Returns an error when serialization fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| TrainError::Checkpoint(e.to_string()))
    }

    /// Parses a checkpoint from its JSON form, checking the format version.
    ///
    /// # Errors
    /// Returns an error on malformed JSON, a shape mismatch, or an
    /// unsupported format version.
    pub fn from_json(json: &str) -> Result<Self> {
        let value = serde_json::parse(json).map_err(|e| TrainError::Checkpoint(e.to_string()))?;
        // Check the version *before* deserializing the body, so a
        // future-format file fails with the version message rather than
        // whatever shape mismatch its changed layout trips first.
        let version = value
            .get("format_version")
            .and_then(|v| u32::from_value(v).ok())
            .ok_or(TrainError::CheckpointVersion { found: None, supported: FORMAT_VERSION })?;
        if version != FORMAT_VERSION {
            return Err(TrainError::CheckpointVersion {
                found: Some(version),
                supported: FORMAT_VERSION,
            });
        }
        serde_json::from_value(&value).map_err(|e| TrainError::Checkpoint(e.to_string()))
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    /// Returns an error when serialization or the write fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()?)
            .map_err(|e| TrainError::Checkpoint(format!("writing {}: {e}", path.display())))
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    /// Returns an error when the read, parse or version check fails.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| TrainError::Checkpoint(format!("reading {}: {e}", path.display())))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_tensor::init::Initializer;
    use bnff_tensor::Shape;

    fn trained_executor() -> Executor {
        let mut b = GraphBuilder::new("ckpt");
        let x = b.input("data", Shape::nchw(2, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        let c = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(4), "block").unwrap();
        let gap = b.global_avg_pool(c, "gap").unwrap();
        let fc = b.fully_connected(gap, 2, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let mut exec = Executor::new(b.finish(), 7).unwrap();
        // Move the running statistics off their identity initialization.
        let mut init = Initializer::seeded(8);
        let data = init.uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0);
        let fwd = exec.forward(&data, &[0, 1]).unwrap();
        exec.update_running_stats(&fwd).unwrap();
        exec
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let exec = trained_executor();
        let ckpt = Checkpoint::capture(&exec);
        let back = Checkpoint::from_json(&ckpt.to_json().unwrap()).unwrap();
        assert_eq!(back, ckpt);
        let restored = back.into_executor().unwrap();
        assert_eq!(restored.params(), exec.params());
        assert_eq!(restored.running_stats(), exec.running_stats());
        assert_eq!(restored.graph(), exec.graph());
    }

    #[test]
    fn save_load_through_a_file() {
        let exec = trained_executor();
        let ckpt = Checkpoint::capture(&exec);
        let dir = std::env::temp_dir().join(format!("bnff-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let exec = trained_executor();
        let mut ckpt = Checkpoint::capture(&exec);
        ckpt.format_version = 99;
        let json = serde_json::to_string(&ckpt).unwrap();
        let err = Checkpoint::from_json(&json).unwrap_err();
        assert_eq!(err, TrainError::CheckpointVersion { found: Some(99), supported: 1 });
        assert!(err.to_string().contains("format version 99"));
        assert!(Checkpoint::load("/nonexistent/bnff.json").is_err());
    }

    #[test]
    fn missing_version_is_a_typed_error() {
        let err = Checkpoint::from_json("{\"graph\": {}}").unwrap_err();
        assert_eq!(err, TrainError::CheckpointVersion { found: None, supported: 1 });
        assert!(err.to_string().contains("format_version"));
        let err = Checkpoint::from_json("{\"format_version\": \"one\"}").unwrap_err();
        assert_eq!(err, TrainError::CheckpointVersion { found: None, supported: 1 });
    }
}
