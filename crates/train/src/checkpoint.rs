//! Model checkpoints: a serde-based snapshot of everything serving needs.
//!
//! A [`Checkpoint`] captures the three things that define a trained model —
//! the graph topology, the learnable parameters, and the running Batch
//! Normalization statistics — as one JSON document, so training and serving
//! can run as separate processes: the trainer writes a file, `bnff-serve`
//! loads it, freezes the graph and folds the running statistics into the
//! weights without ever touching the training code path again.
//!
//! The format round-trips **bit-identically**: every `f32` is serialized in
//! its shortest round-trip decimal form, node ids stay dense, and
//! `save → load` reproduces parameters, statistics and topology exactly
//! (locked in by the round-trip proptest in `tests/checkpoint_roundtrip.rs`).

use crate::executor::Executor;
use crate::params::{NodeParams, ParamSet};
use crate::running::{RunningStatSet, RunningStats};
use crate::Result;
use bnff_artifact::{Artifact, ArtifactWriter, ModelError, ParamKind, Provenance};
use bnff_graph::{Graph, NodeId};
use bnff_kernels::batchnorm::BnParams;
use bnff_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// The current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// A serializable snapshot of a trained model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version, for forward-compatibility checks on load.
    pub format_version: u32,
    /// The (training) graph topology.
    pub graph: Graph,
    /// All learnable parameters, keyed by node index.
    pub params: ParamSet,
    /// Running BN statistics, keyed by statistics-producer node index.
    pub running: RunningStatSet,
}

impl Checkpoint {
    /// Snapshots an executor's graph, parameters and running statistics.
    pub fn capture(executor: &Executor) -> Self {
        Checkpoint {
            format_version: FORMAT_VERSION,
            graph: executor.graph().clone(),
            params: executor.params().clone(),
            running: executor.running_stats().clone(),
        }
    }

    /// Rebuilds an executor from the snapshot (the inverse of
    /// [`Checkpoint::capture`]).
    ///
    /// # Errors
    /// Returns an error when the stored graph fails validation or memory
    /// planning.
    pub fn into_executor(self) -> Result<Executor> {
        self.graph.validate()?;
        Executor::with_state(self.graph, self.params, self.running)
    }

    /// Serializes the checkpoint as a JSON document.
    ///
    /// # Errors
    /// Returns an error when serialization fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| ModelError::Manifest(e.to_string()).into())
    }

    /// Parses a checkpoint from its JSON form, checking the format version.
    ///
    /// # Errors
    /// Returns an error on malformed JSON, a shape mismatch, or an
    /// unsupported format version.
    pub fn from_json(json: &str) -> Result<Self> {
        let value = serde_json::parse(json).map_err(|e| ModelError::Manifest(e.to_string()))?;
        // Check the version *before* deserializing the body, so a
        // future-format file fails with the version message rather than
        // whatever shape mismatch its changed layout trips first.
        let version = value
            .get("format_version")
            .and_then(|v| u32::from_value(v).ok())
            .ok_or(ModelError::UnsupportedVersion { found: None, supported: FORMAT_VERSION })?;
        if version != FORMAT_VERSION {
            return Err(ModelError::UnsupportedVersion {
                found: Some(version),
                supported: FORMAT_VERSION,
            }
            .into());
        }
        serde_json::from_value(&value).map_err(|e| ModelError::Manifest(e.to_string()).into())
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    /// Returns an error when serialization or the write fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()?)
            .map_err(|e| ModelError::Io(format!("writing {}: {e}", path.display())).into())
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    /// Returns an error when the read, parse or version check fails.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| ModelError::Io(format!("reading {}: {e}", path.display())))?;
        Self::from_json(&json)
    }

    /// Serializes the checkpoint as a single-file binary model artifact
    /// (see `bnff-artifact` for the byte layout). The conversion is
    /// lossless: [`Checkpoint::from_artifact`] reproduces the checkpoint
    /// bit-identically.
    ///
    /// # Errors
    /// Returns an error when a tensor's shape and data disagree or the
    /// manifest cannot be serialized.
    pub fn to_artifact_bytes(&self) -> Result<Vec<u8>> {
        let provenance = Provenance {
            created_by: format!("bnff-train {}", env!("CARGO_PKG_VERSION")),
            source: self.graph.name().to_string(),
            source_format_version: self.format_version,
        };
        let mut writer =
            ArtifactWriter::new(self.graph.clone(), self.running.momentum(), provenance);
        // HashMap iteration order is arbitrary; sort by node index so the
        // same checkpoint always produces the same artifact bytes.
        let mut param_nodes: Vec<usize> = self.params.iter().map(|(i, _)| *i).collect();
        param_nodes.sort_unstable();
        for idx in param_nodes {
            let params = self.params.get(NodeId::new(idx)).expect("index from iter");
            let kind = match params {
                NodeParams::Conv { weights, bias } => ParamKind::Conv {
                    weights: add_tensor(&mut writer, idx, "weights", weights)?,
                    bias: match bias {
                        Some(b) => Some(add_vec(&mut writer, idx, "bias", b)?),
                        None => None,
                    },
                },
                NodeParams::Bn(bn) => ParamKind::Bn {
                    gamma: add_vec(&mut writer, idx, "gamma", &bn.gamma)?,
                    beta: add_vec(&mut writer, idx, "beta", &bn.beta)?,
                },
                NodeParams::ConvBn { weights, bias, bn } => ParamKind::ConvBn {
                    weights: add_tensor(&mut writer, idx, "weights", weights)?,
                    bias: match bias {
                        Some(b) => Some(add_vec(&mut writer, idx, "bias", b)?),
                        None => None,
                    },
                    gamma: add_vec(&mut writer, idx, "gamma", &bn.gamma)?,
                    beta: add_vec(&mut writer, idx, "beta", &bn.beta)?,
                },
                NodeParams::Fc { weights, bias } => ParamKind::Fc {
                    weights: add_tensor(&mut writer, idx, "weights", weights)?,
                    bias: add_vec(&mut writer, idx, "bias", bias)?,
                },
            };
            writer.add_param(idx, kind);
        }
        let mut stat_nodes: Vec<usize> = self.running.iter().map(|(i, _)| *i).collect();
        stat_nodes.sort_unstable();
        for idx in stat_nodes {
            let stats = self.running.get(NodeId::new(idx)).expect("index from iter");
            let mean = add_vec(&mut writer, idx, "running_mean", &stats.mean)?;
            let var = add_vec(&mut writer, idx, "running_var", &stats.var)?;
            writer.add_stats(idx, mean, var);
        }
        Ok(writer.to_bytes()?)
    }

    /// Rebuilds a checkpoint from a loaded model artifact — the inverse of
    /// [`Checkpoint::to_artifact_bytes`].
    ///
    /// # Errors
    /// Returns an error when the artifact references tensors that fail
    /// validation or was exported from an unsupported checkpoint version.
    pub fn from_artifact(artifact: &Artifact) -> Result<Self> {
        let manifest = artifact.manifest();
        let source_version = manifest.provenance.source_format_version;
        if source_version != FORMAT_VERSION {
            return Err(ModelError::UnsupportedVersion {
                found: Some(source_version),
                supported: FORMAT_VERSION,
            }
            .into());
        }
        let mut params = ParamSet::new();
        for entry in &manifest.params {
            let node = NodeId::new(entry.node);
            let p = match &entry.kind {
                ParamKind::Conv { weights, bias } => NodeParams::Conv {
                    weights: read_tensor(artifact, *weights)?,
                    bias: match bias {
                        Some(b) => Some(read_vec(artifact, *b)?),
                        None => None,
                    },
                },
                ParamKind::Bn { gamma, beta } => NodeParams::Bn(BnParams::new(
                    read_vec(artifact, *gamma)?,
                    read_vec(artifact, *beta)?,
                )?),
                ParamKind::ConvBn { weights, bias, gamma, beta } => NodeParams::ConvBn {
                    weights: read_tensor(artifact, *weights)?,
                    bias: match bias {
                        Some(b) => Some(read_vec(artifact, *b)?),
                        None => None,
                    },
                    bn: BnParams::new(read_vec(artifact, *gamma)?, read_vec(artifact, *beta)?)?,
                },
                ParamKind::Fc { weights, bias } => NodeParams::Fc {
                    weights: read_tensor(artifact, *weights)?,
                    bias: read_vec(artifact, *bias)?,
                },
            };
            params.insert(node, p);
        }
        let mut entries = HashMap::new();
        for stats in &manifest.stats {
            entries.insert(
                stats.node,
                RunningStats {
                    mean: read_vec(artifact, stats.mean)?,
                    var: read_vec(artifact, stats.var)?,
                },
            );
        }
        Ok(Checkpoint {
            format_version: source_version,
            graph: manifest.graph.clone(),
            params,
            running: RunningStatSet::from_entries(entries, manifest.momentum),
        })
    }

    /// Writes the checkpoint to `path` as a binary model artifact.
    ///
    /// # Errors
    /// Returns an error when conversion or the write fails.
    pub fn write_artifact(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_artifact_bytes()?)
            .map_err(|e| ModelError::Io(format!("writing {}: {e}", path.display())).into())
    }

    /// Reads a checkpoint back from a binary model artifact file.
    ///
    /// # Errors
    /// Returns an error when the file fails any artifact validation
    /// (magic, version, checksums, layout) or describes unusable tensors.
    pub fn read_artifact(path: impl AsRef<Path>) -> Result<Self> {
        let artifact = Artifact::open(path)?;
        Self::from_artifact(&artifact)
    }
}

/// Stores one tensor under the artifact's `node<idx>/<role>` naming scheme.
fn add_tensor(
    writer: &mut ArtifactWriter,
    node: usize,
    role: &str,
    tensor: &Tensor,
) -> Result<usize> {
    Ok(writer.add_tensor(
        format!("node{node}/{role}"),
        tensor.shape().dims().to_vec(),
        tensor.as_slice(),
    )?)
}

/// Stores one per-channel vector as a rank-1 tensor.
fn add_vec(writer: &mut ArtifactWriter, node: usize, role: &str, data: &[f32]) -> Result<usize> {
    Ok(writer.add_tensor(format!("node{node}/{role}"), vec![data.len()], data)?)
}

/// Materializes a stored tensor as an owned [`Tensor`].
fn read_tensor(artifact: &Artifact, id: usize) -> Result<Tensor> {
    let view = artifact.tensor(id)?;
    Ok(Tensor::from_vec(Shape::new(view.shape().to_vec()), view.data.to_vec())?)
}

/// Materializes a stored rank-1 tensor as a plain vector.
fn read_vec(artifact: &Artifact, id: usize) -> Result<Vec<f32>> {
    Ok(artifact.tensor(id)?.data.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TrainError;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_tensor::init::Initializer;
    use bnff_tensor::Shape;

    fn trained_executor() -> Executor {
        let mut b = GraphBuilder::new("ckpt");
        let x = b.input("data", Shape::nchw(2, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        let c = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(4), "block").unwrap();
        let gap = b.global_avg_pool(c, "gap").unwrap();
        let fc = b.fully_connected(gap, 2, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let mut exec = Executor::new(b.finish(), 7).unwrap();
        // Move the running statistics off their identity initialization.
        let mut init = Initializer::seeded(8);
        let data = init.uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0);
        let fwd = exec.forward(&data, &[0, 1]).unwrap();
        exec.update_running_stats(&fwd).unwrap();
        exec
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let exec = trained_executor();
        let ckpt = Checkpoint::capture(&exec);
        let back = Checkpoint::from_json(&ckpt.to_json().unwrap()).unwrap();
        assert_eq!(back, ckpt);
        let restored = back.into_executor().unwrap();
        assert_eq!(restored.params(), exec.params());
        assert_eq!(restored.running_stats(), exec.running_stats());
        assert_eq!(restored.graph(), exec.graph());
    }

    #[test]
    fn save_load_through_a_file() {
        let exec = trained_executor();
        let ckpt = Checkpoint::capture(&exec);
        let dir = std::env::temp_dir().join(format!("bnff-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let exec = trained_executor();
        let mut ckpt = Checkpoint::capture(&exec);
        ckpt.format_version = 99;
        let json = serde_json::to_string(&ckpt).unwrap();
        let err = Checkpoint::from_json(&json).unwrap_err();
        assert_eq!(
            err,
            TrainError::Model(ModelError::UnsupportedVersion { found: Some(99), supported: 1 })
        );
        assert!(err.to_string().contains("format version 99"));
        assert!(Checkpoint::load("/nonexistent/bnff.json").is_err());
    }

    #[test]
    fn missing_version_is_a_typed_error() {
        let err = Checkpoint::from_json("{\"graph\": {}}").unwrap_err();
        assert_eq!(
            err,
            TrainError::Model(ModelError::UnsupportedVersion { found: None, supported: 1 })
        );
        assert!(err.to_string().contains("no numeric format version"));
        let err = Checkpoint::from_json("{\"format_version\": \"one\"}").unwrap_err();
        assert_eq!(
            err,
            TrainError::Model(ModelError::UnsupportedVersion { found: None, supported: 1 })
        );
    }

    #[test]
    fn artifact_round_trip_is_bit_identical() {
        let exec = trained_executor();
        let ckpt = Checkpoint::capture(&exec);
        let bytes = ckpt.to_artifact_bytes().unwrap();
        assert!(bnff_artifact::is_artifact(&bytes));
        let artifact = Artifact::from_bytes(&bytes).unwrap();
        let back = Checkpoint::from_artifact(&artifact).unwrap();
        assert_eq!(back, ckpt);
        // Conversion is deterministic: same checkpoint, same bytes.
        assert_eq!(ckpt.to_artifact_bytes().unwrap(), bytes);
    }

    #[test]
    fn artifact_file_round_trip_and_foreign_source_version() {
        let exec = trained_executor();
        let ckpt = Checkpoint::capture(&exec);
        let dir = std::env::temp_dir().join(format!("bnff-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bnff");
        ckpt.write_artifact(&path).unwrap();
        let loaded = Checkpoint::read_artifact(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_dir_all(&dir).ok();

        // An artifact exported from a future checkpoint version is rejected
        // with the same typed error as a future JSON checkpoint.
        let mut future = ckpt;
        future.format_version = 7;
        let bytes = future.to_artifact_bytes().unwrap();
        let artifact = Artifact::from_bytes(&bytes).unwrap();
        let err = Checkpoint::from_artifact(&artifact).unwrap_err();
        assert_eq!(
            err,
            TrainError::Model(ModelError::UnsupportedVersion { found: Some(7), supported: 1 })
        );
    }
}
