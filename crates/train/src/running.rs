//! Running (inference-time) Batch Normalization statistics.
//!
//! Training-mode BN normalizes with *mini-batch* statistics; at inference
//! the batch is arbitrary (often a single sample coalesced into a dynamic
//! batch), so normalization must use statistics accumulated over training —
//! an exponential moving average of the per-channel batch mean/variance
//! (Hajaj & Gillies, arXiv:1802.07590, motivate why inference must not see
//! batch structure). The freeze pass folds exactly these running statistics
//! into the adjacent convolutions.
//!
//! One [`RunningStats`] entry exists per *statistics-producing* node: a
//! `BatchNorm` owns its own, while under BNFF restructuring the producers
//! are the fission/fusion operators (`SubBnStats`, `ConvStats`,
//! `ConcatStats`, `NormReluConvStats`).

use crate::Result;
use bnff_graph::op::OpKind;
use bnff_graph::{Graph, NodeId};
use bnff_tensor::stats::ChannelStats;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The default EMA momentum: `running = (1−m)·running + m·batch`.
pub const DEFAULT_MOMENTUM: f32 = 0.1;

/// Running mean/variance of one statistics-producing node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    /// Per-channel running mean.
    pub mean: Vec<f32>,
    /// Per-channel running (biased) variance.
    pub var: Vec<f32>,
}

impl RunningStats {
    /// Identity statistics (mean 0, variance 1) for `channels` channels —
    /// the state before any batch has been observed.
    pub fn identity(channels: usize) -> Self {
        RunningStats { mean: vec![0.0; channels], var: vec![1.0; channels] }
    }

    /// Number of channels covered.
    pub fn channels(&self) -> usize {
        self.mean.len()
    }

    /// The statistics as a [`ChannelStats`] the normalization kernels accept.
    pub fn as_channel_stats(&self) -> ChannelStats {
        ChannelStats { mean: self.mean.clone(), var: self.var.clone(), count: 0 }
    }

    /// Blends one mini-batch's statistics in with EMA weight `momentum`.
    fn update(&mut self, batch: &ChannelStats, momentum: f32) {
        for ci in 0..self.mean.len().min(batch.channels()) {
            self.mean[ci] = (1.0 - momentum) * self.mean[ci] + momentum * batch.mean[ci];
            self.var[ci] = (1.0 - momentum) * self.var[ci] + momentum * batch.var[ci];
        }
    }
}

/// The number of channels a statistics-producing node covers, if it
/// produces statistics at all.
fn stats_channels(graph: &Graph, id: NodeId) -> Option<usize> {
    let node = graph.node(id).ok()?;
    match &node.op {
        // A BatchNorm's statistics cover its own (NCHW) output channels.
        OpKind::BatchNorm(_) => Some(node.output_shape.c()),
        // SubBnStats emits a 2×C summary matrix.
        OpKind::SubBnStats(_) => node.output_shape.dim(1).ok(),
        OpKind::ConvStats { .. } | OpKind::ConcatStats(_) | OpKind::NormReluConvStats { .. } => {
            Some(node.output_shape.c())
        }
        _ => None,
    }
}

/// Running statistics for every statistics-producing node of one graph,
/// keyed by node index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningStatSet {
    entries: HashMap<usize, RunningStats>,
    momentum: f32,
}

impl RunningStatSet {
    /// Identity running statistics for every statistics-producing node of
    /// `graph`, with the [`DEFAULT_MOMENTUM`].
    pub fn initialize(graph: &Graph) -> Self {
        let entries = graph
            .nodes()
            .filter_map(|n| {
                stats_channels(graph, n.id).map(|c| (n.id.index(), RunningStats::identity(c)))
            })
            .collect();
        RunningStatSet { entries, momentum: DEFAULT_MOMENTUM }
    }

    /// Rebuilds a set from raw `(node index → stats)` entries and a
    /// momentum — the inverse of [`RunningStatSet::iter`] +
    /// [`RunningStatSet::momentum`], used when restoring from a model
    /// artifact.
    pub fn from_entries(entries: HashMap<usize, RunningStats>, momentum: f32) -> Self {
        RunningStatSet { entries, momentum: momentum.clamp(f32::MIN_POSITIVE, 1.0) }
    }

    /// Returns a copy with a different EMA momentum (must be in `(0, 1]`).
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum.clamp(f32::MIN_POSITIVE, 1.0);
        self
    }

    /// The EMA momentum.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// The running statistics of one node.
    pub fn get(&self, id: NodeId) -> Option<&RunningStats> {
        self.entries.get(&id.index())
    }

    /// Replaces the statistics of one node (checkpoint restore, tests).
    pub fn insert(&mut self, id: NodeId, stats: RunningStats) {
        self.entries.insert(id.index(), stats);
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no node is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(node index, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&usize, &RunningStats)> {
        self.entries.iter()
    }

    /// Folds one observed mini-batch statistic into the EMA of node `id`.
    ///
    /// # Errors
    /// Returns an error when the node is untracked or the channel counts
    /// disagree.
    pub fn observe(&mut self, id: NodeId, batch: &ChannelStats) -> Result<()> {
        let momentum = self.momentum;
        let entry = self.entries.get_mut(&id.index()).ok_or_else(|| {
            crate::TrainError::Missing(format!("running statistics entry for {id}"))
        })?;
        if entry.channels() != batch.channels() {
            return Err(crate::TrainError::InvalidArgument(format!(
                "running statistics of {id} cover {} channels, batch has {}",
                entry.channels(),
                batch.channels()
            )));
        }
        entry.update(batch, momentum);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_graph::passes::{BnffPass, Pass};
    use bnff_tensor::Shape;

    fn bn_graph() -> Graph {
        let mut b = GraphBuilder::new("g");
        let x = b.input("data", Shape::nchw(2, 3, 8, 8)).unwrap();
        let c = b.conv2d(x, Conv2dAttrs::same_3x3(8), "conv").unwrap();
        let bn = b.batch_norm_default(c, "bn").unwrap();
        let r = b.relu(bn, "relu").unwrap();
        b.conv2d(r, Conv2dAttrs::pointwise(4), "conv2").unwrap();
        b.finish()
    }

    #[test]
    fn initialize_tracks_every_stats_producer() {
        let g = bn_graph();
        let set = RunningStatSet::initialize(&g);
        assert_eq!(set.len(), 1);
        let bn = g.nodes().find(|n| n.name == "bn").unwrap().id;
        assert_eq!(set.get(bn).unwrap().channels(), 8);
        // The BNFF-restructured twin tracks its fused stats producers.
        let fused = BnffPass::new().run(&g).unwrap();
        let fused_set = RunningStatSet::initialize(&fused);
        assert!(!fused_set.is_empty());
        for (_, stats) in fused_set.iter() {
            assert!(stats.channels() > 0);
        }
    }

    #[test]
    fn observe_moves_the_ema_toward_the_batch() {
        let g = bn_graph();
        let mut set = RunningStatSet::initialize(&g).with_momentum(0.5);
        let bn = g.nodes().find(|n| n.name == "bn").unwrap().id;
        let batch = ChannelStats { mean: vec![2.0; 8], var: vec![3.0; 8], count: 128 };
        set.observe(bn, &batch).unwrap();
        let stats = set.get(bn).unwrap();
        assert!((stats.mean[0] - 1.0).abs() < 1e-6);
        assert!((stats.var[0] - 2.0).abs() < 1e-6);
        // Unknown nodes and channel mismatches are rejected.
        assert!(set.observe(NodeId::new(0), &batch).is_err());
        let bad = ChannelStats::zeros(3);
        assert!(set.observe(bn, &bad).is_err());
    }

    #[test]
    fn serde_round_trip_is_bit_identical() {
        let g = bn_graph();
        let mut set = RunningStatSet::initialize(&g).with_momentum(0.25);
        let bn = g.nodes().find(|n| n.name == "bn").unwrap().id;
        let batch = ChannelStats {
            mean: (0..8).map(|i| 0.1 + i as f32 * 0.37).collect(),
            var: (0..8).map(|i| 1.0 + i as f32 * 0.13).collect(),
            count: 64,
        };
        set.observe(bn, &batch).unwrap();
        let json = serde_json::to_string(&set).unwrap();
        let back: RunningStatSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }
}
