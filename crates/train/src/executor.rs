//! The numeric graph executor: plan-driven forward and backward passes over
//! a model graph, dispatching to the kernels crate, including the fused BNFF
//! operators.
//!
//! Execution is organized around a [`bnff_graph::plan::ExecutionPlan`]
//! computed once per graph: node outputs live in a slot vector indexed by
//! node id (inputs are *borrowed*, never cloned out of a map), tensors the
//! backward pass never revisits are released at their last forward use, and
//! their storage is recycled through a per-executor arena (one bin per plan
//! slot) plus a [`BufferPool`] for backward gradients — both persistent
//! across training steps. [`Executor::forward_naive`] keeps the old
//! one-buffer-per-node behaviour as the reference the equivalence tests
//! compare against; both paths are bit-identical.
//!
//! Nodes execute in topological order (layer dependencies are sequential),
//! but every dispatched kernel fans its per-sample / per-channel / per-row
//! work out across the `bnff-parallel` pool, so one training step saturates
//! `BNFF_THREADS` cores: convolutions lower to the cache-blocked packed
//! GEMM (im2col column matrices recycled across steps), which partitions
//! MC-aligned output row blocks, BN reduces its mini-batch statistics with one
//! partial per channel, and the gradient accumulation between branches
//! (`ops::add_assign`) sweeps in parallel chunks.

use crate::error::TrainError;
use crate::params::{NodeParamGrads, NodeParams, ParamSet};
use crate::running::RunningStatSet;
use crate::Result;
use bnff_graph::op::{OpKind, PoolKind};
use bnff_graph::plan::ExecutionPlan;
use bnff_graph::{Graph, Node, NodeId};
use bnff_kernels::batchnorm::{bn_backward, bn_normalize_into, bn_statistics, BnForwardState};
use bnff_kernels::concat::{concat_backward, concat_forward_into};
use bnff_kernels::conv::{
    conv2d_backward_input_into, conv2d_backward_weights, conv2d_forward_into,
};
use bnff_kernels::eltwise::eltwise_sum_forward_into;
use bnff_kernels::fc::{fc_backward, fc_forward};
use bnff_kernels::fused::{
    concat_forward_with_stats_into, conv2d_forward_with_stats_into, norm_relu_conv_backward,
    norm_relu_conv_forward_into, NormReluConvState,
};
use bnff_kernels::pool::{
    avg_pool_backward, avg_pool_forward_into, global_avg_pool_backward, global_avg_pool_forward,
    max_pool_backward, max_pool_forward, MaxPoolState,
};
use bnff_kernels::relu::{relu_backward, relu_forward, relu_forward_inplace, relu_forward_into};
use bnff_kernels::softmax::{
    accuracy, softmax_loss_backward, softmax_loss_forward, SoftmaxLossState,
};
use bnff_tensor::pool::BufferPool;
use bnff_tensor::stats::ChannelStats;
use bnff_tensor::{ops, Shape, Tensor};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Which statistics a forward pass normalizes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    /// Training semantics: per-channel statistics of the current mini-batch.
    Batch,
    /// Inference (eval) semantics: the executor's running statistics — the
    /// same numbers the freeze pass folds into a frozen graph.
    Running,
}

/// Per-node state captured during the forward pass for reuse in backward.
#[derive(Debug, Clone)]
enum NodeState {
    Bn(BnForwardState),
    MaxPool(MaxPoolState),
    Softmax(SoftmaxLossState),
    NormReluConv(NormReluConvState),
    /// The clipped (post-ReLU) input a fused ReluConv fed to its convolution.
    ClippedInput(Tensor),
}

/// The result of one forward pass.
#[derive(Debug, Clone)]
pub struct ForwardResult {
    /// Mean cross-entropy loss over the mini-batch.
    pub loss: f32,
    /// Classification accuracy over the mini-batch.
    pub accuracy: f32,
    /// The classifier scores fed into the loss node.
    pub scores: Tensor,
    /// Node outputs, indexed by node id. Under the planned path only the
    /// tensors the backward pass revisits survive; the naive path keeps
    /// every output.
    values: Vec<Option<Tensor>>,
    /// Split nodes forward their input's tensor: alias[i] names the node
    /// whose output a lookup of node `i` resolves to.
    alias: Vec<Option<usize>>,
    stats: Vec<Option<ChannelStats>>,
    states: Vec<Option<NodeState>>,
    labels: Vec<usize>,
}

impl ForwardResult {
    /// The output tensor of a node, if it was retained.
    ///
    /// The planned forward pass ([`Executor::forward`]) retains only the
    /// tensors its liveness analysis says the backward pass re-reads;
    /// [`Executor::forward_naive`] retains every node output.
    pub fn output(&self, id: NodeId) -> Option<&Tensor> {
        let idx = self.alias.get(id.index()).copied().flatten().unwrap_or(id.index());
        self.values.get(idx).and_then(Option::as_ref)
    }

    /// The mini-batch statistics produced by a statistics-bearing node.
    pub fn stats(&self, id: NodeId) -> Option<&ChannelStats> {
        self.stats.get(id.index()).and_then(Option::as_ref)
    }

    fn input_tensor(&self, node: &Node, idx: usize) -> Result<&Tensor> {
        self.output(node.inputs[idx])
            .ok_or_else(|| TrainError::Missing(format!("forward output of {}", node.inputs[idx])))
    }
}

/// Parameter gradients (and the data gradient) of one backward pass.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Per-node parameter gradients, keyed by node id index.
    pub per_node: HashMap<usize, NodeParamGrads>,
    /// Gradient with respect to the data input, when requested.
    pub d_data: Option<Tensor>,
}

impl Gradients {
    /// Looks up the gradients of one node.
    pub fn node(&self, id: NodeId) -> Option<&NodeParamGrads> {
        self.per_node.get(&id.index())
    }

    /// Global L2 norm of all parameter gradients (useful for debugging
    /// exploding/vanishing gradients).
    pub fn global_norm(&self) -> f64 {
        let mut acc = 0.0f64;
        for g in self.per_node.values() {
            match g {
                NodeParamGrads::Conv { d_weights, d_bias } => {
                    acc += d_weights.sq_norm();
                    acc += d_bias.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                }
                NodeParamGrads::Bn { d_gamma, d_beta } => {
                    acc += d_gamma.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                    acc += d_beta.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                }
                NodeParamGrads::ConvBn { d_weights, d_bias, d_gamma, d_beta } => {
                    acc += d_weights.sq_norm();
                    acc += d_bias.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                    acc += d_gamma.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                    acc += d_beta.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                }
                NodeParamGrads::Fc { d_weights, d_bias } => {
                    acc += d_weights.sq_norm();
                    acc += d_bias.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                }
            }
        }
        acc.sqrt()
    }
}

/// The persistent buffer storage one executor recycles across nodes and
/// across training steps: one bin per plan slot for forward activations,
/// plus a best-fit free list for backward gradients.
struct Workspace {
    arena: Vec<Option<Vec<f32>>>,
    pool: BufferPool,
}

impl Workspace {
    fn for_plan(plan: &ExecutionPlan) -> Self {
        Workspace {
            arena: vec![None; plan.slot_count()],
            // Backward releases roughly one gradient buffer per activation;
            // bound the free list so give/take imbalance can never grow the
            // pool without limit across steps.
            pool: BufferPool::bounded(2 * plan.naive_total_bytes() + (1 << 20)),
        }
    }
}

impl fmt::Debug for Workspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workspace")
            .field("arena_slots", &self.arena.len())
            .field("arena_filled", &self.arena.iter().flatten().count())
            .field("pool_free_bytes", &self.pool.free_bytes())
            .finish()
    }
}

/// A numeric executor bound to one graph and one parameter set.
#[derive(Debug)]
pub struct Executor {
    graph: Graph,
    params: ParamSet,
    plan: ExecutionPlan,
    running: RunningStatSet,
    workspace: Mutex<Workspace>,
}

impl Clone for Executor {
    fn clone(&self) -> Self {
        Executor {
            graph: self.graph.clone(),
            params: self.params.clone(),
            plan: self.plan.clone(),
            running: self.running.clone(),
            // Recycled buffers are per-executor scratch, not state.
            workspace: Mutex::new(Workspace::for_plan(&self.plan)),
        }
    }
}

impl Executor {
    /// Creates an executor with freshly initialized parameters.
    ///
    /// # Errors
    /// Returns an error if the graph is structurally invalid.
    pub fn new(graph: Graph, seed: u64) -> Result<Self> {
        graph.validate()?;
        let params = ParamSet::initialize(&graph, seed)?;
        Self::with_params(graph, params)
    }

    /// Creates an executor around an existing parameter set.
    ///
    /// # Errors
    /// Returns an error if the graph cannot be memory-planned (e.g. it is
    /// cyclic).
    pub fn with_params(graph: Graph, params: ParamSet) -> Result<Self> {
        let running = RunningStatSet::initialize(&graph);
        Self::with_state(graph, params, running)
    }

    /// Creates an executor around an existing parameter set *and* running
    /// statistics (checkpoint restore).
    ///
    /// # Errors
    /// Returns an error if the graph cannot be memory-planned (e.g. it is
    /// cyclic).
    pub fn with_state(graph: Graph, params: ParamSet, running: RunningStatSet) -> Result<Self> {
        let plan = ExecutionPlan::for_graph(&graph)?;
        let workspace = Mutex::new(Workspace::for_plan(&plan));
        Ok(Executor { graph, params, plan, running, workspace })
    }

    /// The executor's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The memory plan execution is driven by.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The executor's parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the parameters (used by the optimizer).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// The executor's running (inference) Batch Normalization statistics.
    pub fn running_stats(&self) -> &RunningStatSet {
        &self.running
    }

    /// Replaces the running statistics wholesale (checkpoint restore).
    pub fn set_running_stats(&mut self, running: RunningStatSet) {
        self.running = running;
    }

    /// Folds the mini-batch statistics recorded by a (training-mode)
    /// forward pass into the running EMA — one call per optimization step,
    /// mirroring what training frameworks do inside their BN layers.
    ///
    /// # Errors
    /// Returns an error when a tracked node's statistics are absent from
    /// `fwd` (e.g. the result came from an eval-mode forward).
    pub fn update_running_stats(&mut self, fwd: &ForwardResult) -> Result<()> {
        let tracked: Vec<usize> = self.running.iter().map(|(idx, _)| *idx).collect();
        for idx in tracked {
            let id = NodeId::new(idx);
            let stats = fwd.stats(id).ok_or_else(|| {
                TrainError::Missing(format!("mini-batch statistics of {id} in forward result"))
            })?;
            let stats = stats.clone();
            self.running.observe(id, &stats)?;
        }
        Ok(())
    }

    fn data_input(&self) -> Result<NodeId> {
        self.graph
            .input_nodes()
            .into_iter()
            .find(|id| self.graph.node(*id).map(|n| n.output_shape.is_nchw()).unwrap_or(false))
            .ok_or_else(|| TrainError::Missing("4-D data input node".to_string()))
    }

    fn conv_params(&self, node: &Node) -> Result<(&Tensor, Option<&[f32]>)> {
        match self.params.get(node.id) {
            Some(NodeParams::Conv { weights, bias }) => Ok((weights, bias.as_deref())),
            Some(NodeParams::ConvBn { weights, bias, .. }) => Ok((weights, bias.as_deref())),
            _ => Err(TrainError::Missing(format!("convolution parameters for '{}'", node.name))),
        }
    }

    fn bn_params(&self, node: &Node) -> Result<&bnff_kernels::batchnorm::BnParams> {
        match self.params.get(node.id) {
            Some(NodeParams::Bn(p)) => Ok(p),
            Some(NodeParams::ConvBn { bn, .. }) => Ok(bn),
            _ => Err(TrainError::Missing(format!("BN parameters for '{}'", node.name))),
        }
    }

    /// The shape of a node's first input.
    fn input_shape(&self, node: &Node, idx: usize) -> Result<Shape> {
        Ok(self.graph.node(node.inputs[idx])?.output_shape.clone())
    }

    /// Allocates the output tensor for `id`: from the arena bin of its plan
    /// slot when the planned path's workspace is supplied, fresh otherwise
    /// (naive path, or an output the plan retains for backward).
    fn alloc_output(&self, ws: Option<&mut Workspace>, id: NodeId, shape: &Shape) -> Tensor {
        if let Some(ws) = ws {
            if let Some(slot) = self.plan.slot(id) {
                if let Some(mut buf) = ws.arena[slot].take() {
                    // Every kernel fed from the arena overwrites its whole
                    // output, so only growth needs (zero-)initialization;
                    // the surviving prefix is left dirty on purpose.
                    buf.resize(shape.volume(), 0.0);
                    return Tensor::from_vec(shape.clone(), buf)
                        .expect("arena buffer resized to the shape's volume");
                }
            }
        }
        Tensor::zeros(shape.clone())
    }

    /// Releases every tensor whose last forward use was the node at
    /// topological position `pos` back into its arena bin.
    fn release_dead(&self, ws: &mut Workspace, values: &mut [Option<Tensor>], pos: usize) {
        for &dead in self.plan.released_after(pos) {
            if let Some(tensor) = values[dead].take() {
                // The planner assigns every transient producer a slot, and
                // only transient producers appear in the release schedule.
                let slot = self
                    .plan
                    .slot(NodeId::new(dead))
                    .expect("released tensors always have a plan slot");
                ws.arena[slot] = Some(tensor.into_vec());
            }
        }
    }

    /// Runs the plan-driven forward pass on a mini-batch: inputs are
    /// borrowed from the slot vector, transient outputs are written into
    /// recycled arena buffers and released at their last use.
    ///
    /// # Errors
    /// Returns an error if an operation cannot be executed or shapes are
    /// inconsistent with the graph.
    pub fn forward(&self, data: &Tensor, labels: &[usize]) -> Result<ForwardResult> {
        self.run_forward(data, labels, true, StatsMode::Batch)
    }

    /// Runs the plan-driven forward pass with *inference* semantics: every
    /// normalization uses the executor's running statistics instead of the
    /// mini-batch's, so the output is independent of which samples share
    /// the batch — exactly what a frozen graph computes.
    ///
    /// # Errors
    /// Returns an error if an operation cannot be executed, shapes are
    /// inconsistent with the graph, or a normalization has no running
    /// statistics entry.
    pub fn forward_eval(&self, data: &Tensor, labels: &[usize]) -> Result<ForwardResult> {
        self.run_forward(data, labels, true, StatsMode::Running)
    }

    /// The reference forward pass: one freshly allocated buffer per node,
    /// every output retained until the result is dropped. The planned path
    /// is bit-identical to this one (see `tests/memory_plan.rs`).
    ///
    /// # Errors
    /// Returns an error if an operation cannot be executed or shapes are
    /// inconsistent with the graph.
    pub fn forward_naive(&self, data: &Tensor, labels: &[usize]) -> Result<ForwardResult> {
        self.run_forward(data, labels, false, StatsMode::Batch)
    }

    /// The running statistics of node `id` as kernel-ready [`ChannelStats`].
    fn running_channel_stats(&self, id: NodeId) -> Result<ChannelStats> {
        self.running
            .get(id)
            .map(crate::running::RunningStats::as_channel_stats)
            .ok_or_else(|| TrainError::Missing(format!("running statistics for {id}")))
    }

    fn run_forward(
        &self,
        data: &Tensor,
        labels: &[usize],
        planned: bool,
        mode: StatsMode,
    ) -> Result<ForwardResult> {
        let data_id = self.data_input()?;
        let expected = &self.graph.node(data_id)?.output_shape;
        expected.expect_same(data.shape()).map_err(TrainError::Tensor)?;

        let n = self.graph.node_count();
        let mut values: Vec<Option<Tensor>> = vec![None; n];
        let mut stats: Vec<Option<ChannelStats>> = vec![None; n];
        let mut states: Vec<Option<NodeState>> = vec![None; n];
        let alias: Vec<Option<usize>> = (0..n)
            .map(|i| {
                let id = NodeId::new(i);
                self.plan.is_alias(id).then(|| self.plan.resolve(id).index())
            })
            .collect();
        let mut loss = 0.0f32;
        let mut scores: Option<Tensor> = None;
        values[data_id.index()] = Some(data.clone());

        // The naive reference path never touches the workspace, so only the
        // planned path takes the lock (a poisoned lock is recovered — the
        // workspace is pure scratch, safe to reuse after a panic).
        let mut ws = planned
            .then(|| self.workspace.lock().unwrap_or_else(std::sync::PoisonError::into_inner));

        for (pos, &id) in self.plan.order().iter().enumerate() {
            let node = self.graph.node(id)?;
            let out = match &node.op {
                OpKind::Input => {
                    // Label inputs carry no tensor; the data input is
                    // pre-seeded.
                    None
                }
                OpKind::Conv2d(a) => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (w, b) = self.conv_params(node)?;
                    let mut out = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    conv2d_forward_into(x, w, b, a, &mut out)?;
                    Some(out)
                }
                OpKind::ReluConv(a) => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (w, b) = self.conv_params(node)?;
                    // The clipped activation is computed once: it feeds the
                    // convolution and is then moved (not re-cloned) into the
                    // node state for the backward pass.
                    let clipped = relu_forward(x);
                    let mut out = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    conv2d_forward_into(&clipped, w, b, a, &mut out)?;
                    states[id.index()] = Some(NodeState::ClippedInput(clipped));
                    Some(out)
                }
                OpKind::ConvStats { conv: a, .. } => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (w, b) = self.conv_params(node)?;
                    let mut out = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    let s = match mode {
                        StatsMode::Batch => conv2d_forward_with_stats_into(x, w, b, a, &mut out)?,
                        StatsMode::Running => {
                            // Inference needs no batch statistics: run the
                            // plain convolution and hand consumers the
                            // running statistics instead.
                            conv2d_forward_into(x, w, b, a, &mut out)?;
                            self.running_channel_stats(id)?
                        }
                    };
                    stats[id.index()] = Some(s);
                    Some(out)
                }
                OpKind::BatchNorm(attrs) => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let p = self.bn_params(node)?;
                    let s = match mode {
                        StatsMode::Batch => bn_statistics(x, attrs.one_pass_stats)?,
                        StatsMode::Running => self.running_channel_stats(id)?,
                    };
                    stats[id.index()] = Some(s.clone());
                    let mut y = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    let x_hat = bn_normalize_into(x, &s, p, attrs.epsilon, &mut y)?;
                    states[id.index()] = Some(NodeState::Bn(BnForwardState { stats: s, x_hat }));
                    Some(y)
                }
                OpKind::SubBnStats(attrs) => {
                    let s = match mode {
                        StatsMode::Batch => {
                            let x = input_value(&self.plan, &values, node, 0)?;
                            bn_statistics(x, attrs.one_pass_stats)?
                        }
                        StatsMode::Running => self.running_channel_stats(id)?,
                    };
                    // The 2×C summary is assembled directly from the
                    // mean/var slices.
                    let mut summary = Vec::with_capacity(2 * s.channels());
                    summary.extend_from_slice(&s.mean);
                    summary.extend_from_slice(&s.var);
                    let summary = Tensor::from_vec(Shape::matrix(2, s.channels()), summary)
                        .map_err(TrainError::Tensor)?;
                    stats[id.index()] = Some(s);
                    Some(summary)
                }
                OpKind::SubBnNorm(attrs) => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let p = self.bn_params(node)?;
                    let s = node_stats(&stats, node, 1)?.clone();
                    let mut y = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    let x_hat = bn_normalize_into(x, &s, p, attrs.epsilon, &mut y)?;
                    states[id.index()] = Some(NodeState::Bn(BnForwardState { stats: s, x_hat }));
                    Some(y)
                }
                OpKind::NormRelu(attrs) => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let p = self.bn_params(node)?;
                    let s = node_stats(&stats, node, 1)?.clone();
                    // The output is retained as the backward ReLU mask
                    // (saved outputs have no arena slot); clip in place
                    // instead of materializing a separate post-ReLU copy.
                    let mut y = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    let x_hat = bn_normalize_into(x, &s, p, attrs.epsilon, &mut y)?;
                    relu_forward_inplace(&mut y);
                    states[id.index()] = Some(NodeState::Bn(BnForwardState { stats: s, x_hat }));
                    Some(y)
                }
                OpKind::NormReluConv { conv: a, bn: attrs }
                | OpKind::NormReluConvStats { conv: a, bn_in: attrs, .. } => {
                    let raw = input_value(&self.plan, &values, node, 0)?;
                    let s = node_stats(&stats, node, 1)?.clone();
                    let (w, b) = self.conv_params(node)?;
                    let bn_p = self.bn_params(node)?;
                    let mut out = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    let state = norm_relu_conv_forward_into(
                        raw,
                        &s,
                        bn_p,
                        attrs.epsilon,
                        w,
                        b,
                        a,
                        &mut out,
                    )?;
                    if let OpKind::NormReluConvStats { bn_out, .. } = &node.op {
                        stats[id.index()] = Some(match mode {
                            StatsMode::Batch => bn_statistics(&out, bn_out.one_pass_stats)?,
                            StatsMode::Running => self.running_channel_stats(id)?,
                        });
                    }
                    states[id.index()] = Some(NodeState::NormReluConv(state));
                    Some(out)
                }
                OpKind::Relu => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let mut out = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    relu_forward_into(x, &mut out)?;
                    Some(out)
                }
                OpKind::Pool { kind, attrs } => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    match kind {
                        PoolKind::Max => {
                            // The state keeps only shape + argmax, so the
                            // pooled output is owned once by the slot vector.
                            let (out, state) = max_pool_forward(x, attrs)?;
                            states[id.index()] = Some(NodeState::MaxPool(state));
                            Some(out)
                        }
                        PoolKind::Average => {
                            let mut out =
                                self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                            avg_pool_forward_into(x, attrs, &mut out)?;
                            Some(out)
                        }
                    }
                }
                OpKind::GlobalAvgPool => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    Some(global_avg_pool_forward(x)?)
                }
                OpKind::Concat => {
                    let refs = input_values(&self.plan, &values, node)?;
                    let mut out = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    concat_forward_into(&refs, &mut out)?;
                    Some(out)
                }
                OpKind::ConcatStats(_) => {
                    let refs = input_values(&self.plan, &values, node)?;
                    let mut out = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    let s = match mode {
                        StatsMode::Batch => concat_forward_with_stats_into(&refs, &mut out)?,
                        StatsMode::Running => {
                            concat_forward_into(&refs, &mut out)?;
                            self.running_channel_stats(id)?
                        }
                    };
                    stats[id.index()] = Some(s);
                    Some(out)
                }
                OpKind::Split { .. } => {
                    // A pointer pass: consumers resolve to the aliased
                    // producer through the plan, so no tensor is stored.
                    None
                }
                OpKind::EltwiseSum => {
                    let refs = input_values(&self.plan, &values, node)?;
                    let mut out = self.alloc_output(ws.as_deref_mut(), id, &node.output_shape);
                    eltwise_sum_forward_into(&refs, &mut out)?;
                    Some(out)
                }
                OpKind::FullyConnected { .. } => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (w, b) = match self.params.get(node.id) {
                        Some(NodeParams::Fc { weights, bias }) => (weights, bias),
                        _ => {
                            return Err(TrainError::Missing(format!(
                                "FC parameters for '{}'",
                                node.name
                            )))
                        }
                    };
                    Some(fc_forward(x, w, b)?)
                }
                OpKind::ConvRelu(_) | OpKind::ChannelAffine => {
                    return Err(TrainError::Unsupported(format!(
                        "'{}' is an inference-only operator; run frozen graphs on the \
                         bnff-serve executor",
                        node.name
                    )));
                }
                OpKind::SoftmaxLoss => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let state = softmax_loss_forward(x, labels)?;
                    loss = state.loss;
                    scores = Some(x.clone());
                    states[id.index()] = Some(NodeState::Softmax(state));
                    Some(Tensor::from_slice(&[loss]))
                }
            };
            if let Some(out) = out {
                values[id.index()] = Some(out);
            }
            if let Some(ws) = ws.as_deref_mut() {
                self.release_dead(ws, &mut values, pos);
            }
        }

        let scores = scores.ok_or_else(|| TrainError::Missing("softmax loss node".to_string()))?;
        let acc = accuracy(&scores, labels)?;
        Ok(ForwardResult {
            loss,
            accuracy: acc,
            scores,
            values,
            alias,
            stats,
            states,
            labels: labels.to_vec(),
        })
    }

    /// Runs the backward pass, producing parameter gradients. Gradient
    /// buffers are released into the executor's pool as soon as a node's
    /// backward has consumed them.
    ///
    /// # Errors
    /// Returns an error if the forward result does not match this graph.
    pub fn backward(&self, fwd: &ForwardResult) -> Result<Gradients> {
        let n = self.graph.node_count();
        let mut d_vals: Vec<Option<Tensor>> = vec![None; n];
        let mut per_node: HashMap<usize, NodeParamGrads> = HashMap::new();
        let data_id = self.data_input()?;

        let mut ws = self.workspace.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let pool = &mut ws.pool;

        for &id in self.plan.order().iter().rev() {
            let node = self.graph.node(id)?;
            match &node.op {
                OpKind::SoftmaxLoss => {
                    let state = match states_ref(&fwd.states, id) {
                        Some(NodeState::Softmax(s)) => s,
                        _ => return Err(TrainError::Missing("softmax state".to_string())),
                    };
                    let d_scores = softmax_loss_backward(state, &fwd.labels)?;
                    accumulate(&mut d_vals, node.inputs[0], d_scores)?;
                }
                OpKind::Input => {}
                OpKind::Split { .. } => {
                    // The gradient flows through unchanged; move it rather
                    // than copying.
                    if let Some(grad) = d_vals[id.index()].take() {
                        accumulate(&mut d_vals, node.inputs[0], grad)?;
                    }
                }
                OpKind::EltwiseSum => {
                    if let Some(grad) = d_vals[id.index()].take() {
                        let (last, rest) =
                            node.inputs.split_last().expect("eltwise sum has inputs");
                        for input in rest {
                            // Occupied slots accumulate by reference; only a
                            // first insertion pays for a copy.
                            accumulate_ref(&mut d_vals, *input, &grad)?;
                        }
                        accumulate(&mut d_vals, *last, grad)?;
                    }
                }
                _ => {
                    let Some(grad) = d_vals[id.index()].take() else {
                        continue;
                    };
                    match &node.op {
                        OpKind::Conv2d(a) | OpKind::ConvStats { conv: a, .. } => {
                            let x = fwd.input_tensor(node, 0)?;
                            let (w, b) = self.conv_params(node)?;
                            // The input gradient accumulates into a zeroed
                            // buffer recycled from the pool.
                            let mut d_x =
                                Tensor::from_vec(x.shape().clone(), pool.take(x.shape().volume()))
                                    .map_err(TrainError::Tensor)?;
                            conv2d_backward_input_into(&grad, w, a, &mut d_x)?;
                            let (d_w, d_b) = conv2d_backward_weights(x, &grad, a, b.is_some())?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Conv { d_weights: d_w, d_bias: d_b },
                            );
                            accumulate(&mut d_vals, node.inputs[0], d_x)?;
                        }
                        OpKind::ReluConv(a) => {
                            let x = fwd.input_tensor(node, 0)?;
                            // The forward pass saved the clipped input; only
                            // a stale result (never produced by this
                            // executor) forces a recompute.
                            let recomputed;
                            let clipped: &Tensor = match states_ref(&fwd.states, id) {
                                Some(NodeState::ClippedInput(t)) => t,
                                _ => {
                                    recomputed = relu_forward(x);
                                    &recomputed
                                }
                            };
                            let (w, b) = self.conv_params(node)?;
                            let mut d_clipped = Tensor::from_vec(
                                clipped.shape().clone(),
                                pool.take(clipped.shape().volume()),
                            )
                            .map_err(TrainError::Tensor)?;
                            conv2d_backward_input_into(&grad, w, a, &mut d_clipped)?;
                            let (d_w, d_b) =
                                conv2d_backward_weights(clipped, &grad, a, b.is_some())?;
                            let d_x = relu_backward(&d_clipped, x)?;
                            pool.give(d_clipped.into_vec());
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Conv { d_weights: d_w, d_bias: d_b },
                            );
                            accumulate(&mut d_vals, node.inputs[0], d_x)?;
                        }
                        OpKind::NormReluConv { conv: a, bn: attrs }
                        | OpKind::NormReluConvStats { conv: a, bn_in: attrs, .. } => {
                            let state = match states_ref(&fwd.states, id) {
                                Some(NodeState::NormReluConv(s)) => s,
                                _ => {
                                    return Err(TrainError::Missing(format!(
                                        "fused state for '{}'",
                                        node.name
                                    )))
                                }
                            };
                            let (w, b) = self.conv_params(node)?;
                            let bn_p = self.bn_params(node)?;
                            let grads = norm_relu_conv_backward(
                                &grad,
                                state,
                                bn_p,
                                attrs.epsilon,
                                w,
                                a,
                                b.is_some(),
                            )?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::ConvBn {
                                    d_weights: grads.d_weights,
                                    d_bias: grads.d_bias,
                                    d_gamma: grads.d_bn.d_gamma,
                                    d_beta: grads.d_bn.d_beta,
                                },
                            );
                            accumulate(&mut d_vals, node.inputs[0], grads.d_raw)?;
                        }
                        OpKind::BatchNorm(attrs) | OpKind::SubBnNorm(attrs) => {
                            let state = match states_ref(&fwd.states, id) {
                                Some(NodeState::Bn(s)) => s,
                                _ => {
                                    return Err(TrainError::Missing(format!(
                                        "BN state for '{}'",
                                        node.name
                                    )))
                                }
                            };
                            let p = self.bn_params(node)?;
                            let (d_x, g) = bn_backward(&grad, state, p, attrs.epsilon)?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Bn { d_gamma: g.d_gamma, d_beta: g.d_beta },
                            );
                            accumulate(&mut d_vals, node.inputs[0], d_x)?;
                        }
                        OpKind::NormRelu(attrs) => {
                            let state = match states_ref(&fwd.states, id) {
                                Some(NodeState::Bn(s)) => s,
                                _ => {
                                    return Err(TrainError::Missing(format!(
                                        "BN state for '{}'",
                                        node.name
                                    )))
                                }
                            };
                            let p = self.bn_params(node)?;
                            let y = fwd
                                .output(id)
                                .ok_or_else(|| TrainError::Missing("NormRelu output".into()))?;
                            let d_post_bn = relu_backward(&grad, y)?;
                            let (d_x, g) = bn_backward(&d_post_bn, state, p, attrs.epsilon)?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Bn { d_gamma: g.d_gamma, d_beta: g.d_beta },
                            );
                            accumulate(&mut d_vals, node.inputs[0], d_x)?;
                        }
                        OpKind::SubBnStats(_) => {
                            // The statistics path carries no independent
                            // gradient: the normalization backward already
                            // differentiates through mean/variance.
                        }
                        OpKind::Relu => {
                            let x = fwd.input_tensor(node, 0)?;
                            let d_x = relu_backward(&grad, x)?;
                            accumulate(&mut d_vals, node.inputs[0], d_x)?;
                        }
                        OpKind::Pool { kind, attrs } => {
                            // Pooling backward needs only the input *shape*,
                            // which the graph records; the input tensor
                            // itself was not retained.
                            let in_shape = self.input_shape(node, 0)?;
                            let d_x = match kind {
                                PoolKind::Max => {
                                    let state = match states_ref(&fwd.states, id) {
                                        Some(NodeState::MaxPool(s)) => s,
                                        _ => {
                                            return Err(TrainError::Missing(format!(
                                                "max pool state for '{}'",
                                                node.name
                                            )))
                                        }
                                    };
                                    max_pool_backward(&grad, state, &in_shape)?
                                }
                                PoolKind::Average => avg_pool_backward(&grad, &in_shape, attrs)?,
                            };
                            accumulate(&mut d_vals, node.inputs[0], d_x)?;
                        }
                        OpKind::GlobalAvgPool => {
                            let in_shape = self.input_shape(node, 0)?;
                            let d_x = global_avg_pool_backward(&grad, &in_shape)?;
                            accumulate(&mut d_vals, node.inputs[0], d_x)?;
                        }
                        OpKind::Concat | OpKind::ConcatStats(_) => {
                            let shapes: Vec<Shape> = node
                                .inputs
                                .iter()
                                .map(|i| self.graph.node(*i).map(|n| n.output_shape.clone()))
                                .collect::<bnff_graph::Result<_>>()?;
                            let grads = concat_backward(&grad, &shapes)?;
                            for (input, g) in node.inputs.iter().zip(grads) {
                                accumulate(&mut d_vals, *input, g)?;
                            }
                        }
                        OpKind::FullyConnected { .. } => {
                            let x = fwd.input_tensor(node, 0)?;
                            let w = match self.params.get(node.id) {
                                Some(NodeParams::Fc { weights, .. }) => weights,
                                _ => {
                                    return Err(TrainError::Missing(format!(
                                        "FC parameters for '{}'",
                                        node.name
                                    )))
                                }
                            };
                            let (d_x, d_w, d_b) = fc_backward(x, w, &grad)?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Fc { d_weights: d_w, d_bias: d_b },
                            );
                            accumulate(&mut d_vals, node.inputs[0], d_x)?;
                        }
                        OpKind::ConvRelu(_) | OpKind::ChannelAffine => {
                            return Err(TrainError::Unsupported(format!(
                                "'{}' is an inference-only operator with no backward pass",
                                node.name
                            )));
                        }
                        OpKind::Input
                        | OpKind::SoftmaxLoss
                        | OpKind::Split { .. }
                        | OpKind::EltwiseSum => {
                            unreachable!("handled above")
                        }
                    }
                    // This node's incoming gradient is fully consumed;
                    // recycle its storage for the next allocation.
                    pool.give(grad.into_vec());
                }
            }
        }

        Ok(Gradients { per_node, d_data: d_vals[data_id.index()].take() })
    }
}

/// Borrows the resolved output tensor of a node's `idx`-th input.
fn input_value<'a>(
    plan: &ExecutionPlan,
    values: &'a [Option<Tensor>],
    node: &Node,
    idx: usize,
) -> Result<&'a Tensor> {
    let input = node.inputs[idx];
    values[plan.resolve(input).index()]
        .as_ref()
        .ok_or_else(|| TrainError::Missing(format!("output of {input}")))
}

/// Borrows the resolved output tensors of all of a node's inputs.
fn input_values<'a>(
    plan: &ExecutionPlan,
    values: &'a [Option<Tensor>],
    node: &Node,
) -> Result<Vec<&'a Tensor>> {
    (0..node.inputs.len()).map(|i| input_value(plan, values, node, i)).collect()
}

/// The mini-batch statistics attached to a node's `idx`-th input.
fn node_stats<'a>(
    stats: &'a [Option<ChannelStats>],
    node: &Node,
    idx: usize,
) -> Result<&'a ChannelStats> {
    stats[node.inputs[idx].index()]
        .as_ref()
        .ok_or_else(|| TrainError::Missing(format!("statistics for '{}'", node.name)))
}

fn states_ref(states: &[Option<NodeState>], id: NodeId) -> Option<&NodeState> {
    states.get(id.index()).and_then(Option::as_ref)
}

/// Adds `grad` into the gradient slot of `id`, cloning it only when the
/// slot is still empty.
fn accumulate_ref(d_vals: &mut [Option<Tensor>], id: NodeId, grad: &Tensor) -> Result<()> {
    match d_vals[id.index()].as_mut() {
        Some(existing) => {
            ops::add_assign(existing, grad).map_err(TrainError::Tensor)?;
        }
        None => {
            d_vals[id.index()] = Some(grad.clone());
        }
    }
    Ok(())
}

/// Adds `grad` into the gradient slot of `id`, moving it in when the slot
/// is still empty.
fn accumulate(d_vals: &mut [Option<Tensor>], id: NodeId, grad: Tensor) -> Result<()> {
    match d_vals[id.index()].as_mut() {
        Some(existing) => {
            ops::add_assign(existing, &grad).map_err(TrainError::Tensor)?;
        }
        None => {
            d_vals[id.index()] = Some(grad);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_graph::passes::{BnffPass, Pass};
    use bnff_tensor::init::Initializer;

    fn tiny_classifier(batch: usize) -> Graph {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input("data", Shape::nchw(batch, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(batch)).unwrap();
        let c1 = b.conv2d(x, Conv2dAttrs::same_3x3(8), "conv1").unwrap();
        let bn = b.batch_norm_default(c1, "bn1").unwrap();
        let r = b.relu(bn, "relu1").unwrap();
        let c2 = b.conv2d(r, Conv2dAttrs::pointwise(8), "conv2").unwrap();
        let gap = b.global_avg_pool(c2, "gap").unwrap();
        let fc = b.fully_connected(gap, 4, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        b.finish()
    }

    fn random_batch(batch: usize, classes: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut init = Initializer::seeded(seed);
        let data = init.uniform(Shape::nchw(batch, 3, 8, 8), -1.0, 1.0);
        let labels = (0..batch).map(|i| i % classes).collect();
        (data, labels)
    }

    #[test]
    fn forward_produces_finite_loss() {
        let exec = Executor::new(tiny_classifier(4), 1).unwrap();
        let (data, labels) = random_batch(4, 4, 2);
        let fwd = exec.forward(&data, &labels).unwrap();
        assert!(fwd.loss.is_finite());
        assert!(fwd.loss > 0.0);
        assert!((0.0..=1.0).contains(&fwd.accuracy));
        assert_eq!(fwd.scores.shape(), &Shape::matrix(4, 4));
    }

    #[test]
    fn forward_rejects_wrong_input_shape() {
        let exec = Executor::new(tiny_classifier(4), 1).unwrap();
        let (data, labels) = random_batch(2, 4, 2);
        assert!(exec.forward(&data, &labels).is_err());
    }

    #[test]
    fn backward_produces_gradients_for_every_parameterised_node() {
        let exec = Executor::new(tiny_classifier(4), 3).unwrap();
        let (data, labels) = random_batch(4, 4, 4);
        let fwd = exec.forward(&data, &labels).unwrap();
        let grads = exec.backward(&fwd).unwrap();
        assert_eq!(grads.per_node.len(), exec.params().len());
        assert!(grads.global_norm() > 0.0);
        assert!(grads.d_data.is_some());
    }

    #[test]
    fn planned_and_naive_paths_are_bit_identical() {
        let exec = Executor::new(tiny_classifier(4), 11).unwrap();
        let (data, labels) = random_batch(4, 4, 12);
        let planned = exec.forward(&data, &labels).unwrap();
        let naive = exec.forward_naive(&data, &labels).unwrap();
        assert_eq!(planned.loss.to_bits(), naive.loss.to_bits());
        assert_eq!(planned.scores.as_slice(), naive.scores.as_slice());
        // A second planned step over recycled buffers must not drift.
        let again = exec.forward(&data, &labels).unwrap();
        assert_eq!(again.loss.to_bits(), planned.loss.to_bits());
    }

    #[test]
    fn planned_forward_retains_only_backward_reads() {
        let exec = Executor::new(tiny_classifier(4), 13).unwrap();
        let (data, labels) = random_batch(4, 4, 14);
        let fwd = exec.forward(&data, &labels).unwrap();
        let find = |name: &str| exec.graph().nodes().find(|n| n.name == name).unwrap().id;
        // conv1's output feeds only BN, which keeps its own state.
        assert!(fwd.output(find("conv1")).is_none());
        // relu1's output is conv2's saved ifmap.
        assert!(fwd.output(find("relu1")).is_some());
        // The naive path retains everything.
        let naive = exec.forward_naive(&data, &labels).unwrap();
        assert!(naive.output(find("conv1")).is_some());
    }

    #[test]
    fn workspace_recycles_buffers_across_steps() {
        let exec = Executor::new(tiny_classifier(4), 15).unwrap();
        let (data, labels) = random_batch(4, 4, 16);
        let fwd = exec.forward(&data, &labels).unwrap();
        let _ = exec.backward(&fwd).unwrap();
        drop(fwd);
        let before = exec.workspace.lock().unwrap().pool.hits();
        let fwd = exec.forward(&data, &labels).unwrap();
        let _ = exec.backward(&fwd).unwrap();
        let after = exec.workspace.lock().unwrap().pool.hits();
        assert!(after > before, "second step should reuse pooled gradient buffers");
    }

    #[test]
    fn loss_gradient_check_through_the_whole_network() {
        // Perturb a single convolution weight and compare the numerical
        // derivative of the loss against the analytic gradient.
        let exec = Executor::new(tiny_classifier(2), 5).unwrap();
        let (data, labels) = random_batch(2, 4, 6);
        let fwd = exec.forward(&data, &labels).unwrap();
        let grads = exec.backward(&fwd).unwrap();

        let conv_id = exec.graph().nodes().find(|n| n.name == "conv1").unwrap().id;
        let analytic = match grads.node(conv_id).unwrap() {
            NodeParamGrads::Conv { d_weights, .. } => d_weights.get(11).unwrap(),
            _ => panic!("expected conv gradients"),
        };

        let h = 1e-2f32;
        let mut plus = exec.clone();
        if let Some(NodeParams::Conv { weights, .. }) = plus.params_mut().get_mut(conv_id) {
            let v = weights.get(11).unwrap();
            weights.set(11, v + h).unwrap();
        }
        let mut minus = exec.clone();
        if let Some(NodeParams::Conv { weights, .. }) = minus.params_mut().get_mut(conv_id) {
            let v = weights.get(11).unwrap();
            weights.set(11, v - h).unwrap();
        }
        let lp = plus.forward(&data, &labels).unwrap().loss;
        let lm = minus.forward(&data, &labels).unwrap().loss;
        let numeric = f64::from(lp - lm) / (2.0 * f64::from(h));
        assert!(
            (numeric - f64::from(analytic)).abs() < 5e-3,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn executes_bnff_restructured_graphs() {
        let baseline = tiny_classifier(4);
        let restructured = BnffPass::new().run(&baseline).unwrap();
        let exec = Executor::new(restructured, 7).unwrap();
        let (data, labels) = random_batch(4, 4, 8);
        let fwd = exec.forward(&data, &labels).unwrap();
        assert!(fwd.loss.is_finite());
        let grads = exec.backward(&fwd).unwrap();
        assert!(grads.global_norm() > 0.0);
        // The fused graph must still own parameters for every conv/BN/FC.
        assert!(!grads.per_node.is_empty());
    }

    #[test]
    fn forward_exposes_stats_and_naive_outputs() {
        let baseline = tiny_classifier(2);
        let restructured = BnffPass::new().run(&baseline).unwrap();
        let exec = Executor::new(restructured, 9).unwrap();
        let (data, labels) = random_batch(2, 4, 10);
        let stats_node =
            exec.graph().nodes().find(|n| matches!(n.op, OpKind::ConvStats { .. })).unwrap().id;
        let fwd = exec.forward(&data, &labels).unwrap();
        assert!(fwd.stats(stats_node).is_some());
        // The naive reference path still exposes every intermediate output.
        let naive = exec.forward_naive(&data, &labels).unwrap();
        assert!(naive.stats(stats_node).is_some());
        assert!(naive.output(stats_node).is_some());
    }

    #[test]
    fn plan_reports_memory_savings_for_the_executor_graph() {
        let exec = Executor::new(tiny_classifier(4), 17).unwrap();
        let plan = exec.plan();
        assert!(plan.planned_peak_bytes() <= plan.naive_total_bytes());
        assert!(plan.slot_count() >= 1);
    }
}
