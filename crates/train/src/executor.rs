//! The numeric graph executor: forward and backward passes over a model
//! graph, dispatching to the kernels crate, including the fused BNFF
//! operators.
//!
//! Nodes execute in topological order (layer dependencies are sequential),
//! but every dispatched kernel fans its per-sample / per-channel / per-row
//! work out across the `bnff-parallel` pool, so one training step saturates
//! `BNFF_THREADS` cores: convolutions partition output planes, GEMMs
//! partition output rows, BN reduces its mini-batch statistics with one
//! partial per channel, and the gradient accumulation between branches
//! (`ops::add_assign`) sweeps in parallel chunks.

use crate::error::TrainError;
use crate::params::{NodeParamGrads, NodeParams, ParamSet};
use crate::Result;
use bnff_graph::op::{OpKind, PoolKind};
use bnff_graph::{Graph, Node, NodeId};
use bnff_kernels::batchnorm::{bn_backward, bn_normalize, bn_statistics, BnForwardState};
use bnff_kernels::concat::{concat_backward, concat_forward};
use bnff_kernels::conv::{
    conv2d_backward_input, conv2d_backward_weights, conv2d_forward_direct,
};
use bnff_kernels::eltwise::eltwise_sum_forward;
use bnff_kernels::fc::{fc_backward, fc_forward};
use bnff_kernels::fused::{
    concat_forward_with_stats, conv2d_forward_with_stats, norm_relu_conv_backward,
    norm_relu_conv_forward, NormReluConvState,
};
use bnff_kernels::pool::{
    avg_pool_backward, avg_pool_forward, global_avg_pool_backward, global_avg_pool_forward,
    max_pool_backward, max_pool_forward, MaxPoolState,
};
use bnff_kernels::relu::{relu_backward, relu_forward};
use bnff_kernels::softmax::{
    accuracy, softmax_loss_backward, softmax_loss_forward, SoftmaxLossState,
};
use bnff_tensor::stats::ChannelStats;
use bnff_tensor::{ops, Shape, Tensor};
use std::collections::HashMap;

/// Per-node state captured during the forward pass for reuse in backward.
#[derive(Debug, Clone)]
enum NodeState {
    Bn(BnForwardState),
    MaxPool(MaxPoolState),
    Softmax(SoftmaxLossState),
    NormReluConv(NormReluConvState),
    /// The clipped (post-ReLU) input a fused ReluConv fed to its convolution.
    ClippedInput(Tensor),
}

/// The result of one forward pass.
#[derive(Debug, Clone)]
pub struct ForwardResult {
    /// Mean cross-entropy loss over the mini-batch.
    pub loss: f32,
    /// Classification accuracy over the mini-batch.
    pub accuracy: f32,
    /// The classifier scores fed into the loss node.
    pub scores: Tensor,
    outputs: HashMap<usize, Tensor>,
    stats: HashMap<usize, ChannelStats>,
    states: HashMap<usize, NodeState>,
    labels: Vec<usize>,
}

impl ForwardResult {
    /// The output tensor of a node, if it was produced.
    pub fn output(&self, id: NodeId) -> Option<&Tensor> {
        self.outputs.get(&id.index())
    }

    /// The mini-batch statistics produced by a statistics-bearing node.
    pub fn stats(&self, id: NodeId) -> Option<&ChannelStats> {
        self.stats.get(&id.index())
    }
}

/// Parameter gradients (and the data gradient) of one backward pass.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Per-node parameter gradients, keyed by node id index.
    pub per_node: HashMap<usize, NodeParamGrads>,
    /// Gradient with respect to the data input, when requested.
    pub d_data: Option<Tensor>,
}

impl Gradients {
    /// Looks up the gradients of one node.
    pub fn node(&self, id: NodeId) -> Option<&NodeParamGrads> {
        self.per_node.get(&id.index())
    }

    /// Global L2 norm of all parameter gradients (useful for debugging
    /// exploding/vanishing gradients).
    pub fn global_norm(&self) -> f64 {
        let mut acc = 0.0f64;
        for g in self.per_node.values() {
            match g {
                NodeParamGrads::Conv { d_weights, d_bias } => {
                    acc += d_weights.sq_norm();
                    acc += d_bias.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                }
                NodeParamGrads::Bn { d_gamma, d_beta } => {
                    acc += d_gamma.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                    acc += d_beta.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                }
                NodeParamGrads::ConvBn { d_weights, d_bias, d_gamma, d_beta } => {
                    acc += d_weights.sq_norm();
                    acc += d_bias.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                    acc += d_gamma.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                    acc += d_beta.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                }
                NodeParamGrads::Fc { d_weights, d_bias } => {
                    acc += d_weights.sq_norm();
                    acc += d_bias.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                }
            }
        }
        acc.sqrt()
    }
}

/// A numeric executor bound to one graph and one parameter set.
#[derive(Debug, Clone)]
pub struct Executor {
    graph: Graph,
    params: ParamSet,
}

impl Executor {
    /// Creates an executor with freshly initialized parameters.
    ///
    /// # Errors
    /// Returns an error if the graph is structurally invalid.
    pub fn new(graph: Graph, seed: u64) -> Result<Self> {
        graph.validate()?;
        let params = ParamSet::initialize(&graph, seed)?;
        Ok(Executor { graph, params })
    }

    /// Creates an executor around an existing parameter set.
    pub fn with_params(graph: Graph, params: ParamSet) -> Self {
        Executor { graph, params }
    }

    /// The executor's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The executor's parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the parameters (used by the optimizer).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn data_input(&self) -> Result<NodeId> {
        self.graph
            .input_nodes()
            .into_iter()
            .find(|id| {
                self.graph
                    .node(*id)
                    .map(|n| n.output_shape.is_nchw())
                    .unwrap_or(false)
            })
            .ok_or_else(|| TrainError::Missing("4-D data input node".to_string()))
    }

    fn conv_params(&self, node: &Node) -> Result<(&Tensor, Option<&[f32]>)> {
        match self.params.get(node.id) {
            Some(NodeParams::Conv { weights, bias }) => Ok((weights, bias.as_deref())),
            Some(NodeParams::ConvBn { weights, bias, .. }) => Ok((weights, bias.as_deref())),
            _ => Err(TrainError::Missing(format!("convolution parameters for '{}'", node.name))),
        }
    }

    fn bn_params(&self, node: &Node) -> Result<&bnff_kernels::batchnorm::BnParams> {
        match self.params.get(node.id) {
            Some(NodeParams::Bn(p)) => Ok(p),
            Some(NodeParams::ConvBn { bn, .. }) => Ok(bn),
            _ => Err(TrainError::Missing(format!("BN parameters for '{}'", node.name))),
        }
    }

    /// Runs the forward pass on a mini-batch.
    ///
    /// # Errors
    /// Returns an error if an operation cannot be executed or shapes are
    /// inconsistent with the graph.
    pub fn forward(&self, data: &Tensor, labels: &[usize]) -> Result<ForwardResult> {
        let data_id = self.data_input()?;
        let expected = &self.graph.node(data_id)?.output_shape;
        expected.expect_same(data.shape()).map_err(TrainError::Tensor)?;

        let mut outputs: HashMap<usize, Tensor> = HashMap::new();
        let mut stats: HashMap<usize, ChannelStats> = HashMap::new();
        let mut states: HashMap<usize, NodeState> = HashMap::new();
        let mut loss = 0.0f32;
        let mut scores: Option<Tensor> = None;
        outputs.insert(data_id.index(), data.clone());

        for id in self.graph.topo_order()? {
            let node = self.graph.node(id)?.clone();
            let get_out = |outputs: &HashMap<usize, Tensor>, idx: usize| -> Result<Tensor> {
                outputs
                    .get(&node.inputs[idx].index())
                    .cloned()
                    .ok_or_else(|| TrainError::Missing(format!("output of {}", node.inputs[idx])))
            };
            match &node.op {
                OpKind::Input => {
                    // Label inputs carry no tensor; the data input is pre-seeded.
                }
                OpKind::Conv2d(a) => {
                    let x = get_out(&outputs, 0)?;
                    let (w, b) = self.conv_params(&node)?;
                    outputs.insert(id.index(), conv2d_forward_direct(&x, w, b, a)?);
                }
                OpKind::ReluConv(a) => {
                    let x = get_out(&outputs, 0)?;
                    let (w, b) = self.conv_params(&node)?;
                    let clipped = relu_forward(&x);
                    states.insert(id.index(), NodeState::ClippedInput(clipped.clone()));
                    outputs.insert(id.index(), conv2d_forward_direct(&clipped, w, b, a)?);
                }
                OpKind::ConvStats { conv: a, bn } => {
                    let x = get_out(&outputs, 0)?;
                    let (w, b) = self.conv_params(&node)?;
                    let _ = bn;
                    let (out, s) = conv2d_forward_with_stats(&x, w, b, a)?;
                    stats.insert(id.index(), s);
                    outputs.insert(id.index(), out);
                }
                OpKind::BatchNorm(attrs) => {
                    let x = get_out(&outputs, 0)?;
                    let p = self.bn_params(&node)?;
                    let s = bn_statistics(&x, attrs.one_pass_stats)?;
                    let (y, x_hat) = bn_normalize(&x, &s, p, attrs.epsilon)?;
                    states.insert(id.index(), NodeState::Bn(BnForwardState { stats: s, x_hat }));
                    outputs.insert(id.index(), y);
                }
                OpKind::SubBnStats(attrs) => {
                    let x = get_out(&outputs, 0)?;
                    let s = bn_statistics(&x, attrs.one_pass_stats)?;
                    let mut summary = Tensor::zeros(Shape::matrix(2, s.channels()));
                    for (c, (&m, &v)) in s.mean.iter().zip(s.var.iter()).enumerate() {
                        summary.set(c, m).map_err(TrainError::Tensor)?;
                        summary.set(s.channels() + c, v).map_err(TrainError::Tensor)?;
                    }
                    stats.insert(id.index(), s);
                    outputs.insert(id.index(), summary);
                }
                OpKind::SubBnNorm(attrs) => {
                    let x = get_out(&outputs, 0)?;
                    let p = self.bn_params(&node)?;
                    let s = stats
                        .get(&node.inputs[1].index())
                        .cloned()
                        .ok_or_else(|| {
                            TrainError::Missing(format!("statistics for '{}'", node.name))
                        })?;
                    let (y, x_hat) = bn_normalize(&x, &s, p, attrs.epsilon)?;
                    states.insert(id.index(), NodeState::Bn(BnForwardState { stats: s, x_hat }));
                    outputs.insert(id.index(), y);
                }
                OpKind::NormRelu(attrs) => {
                    let x = get_out(&outputs, 0)?;
                    let p = self.bn_params(&node)?;
                    let s = stats
                        .get(&node.inputs[1].index())
                        .cloned()
                        .ok_or_else(|| {
                            TrainError::Missing(format!("statistics for '{}'", node.name))
                        })?;
                    let (y, x_hat) = bn_normalize(&x, &s, p, attrs.epsilon)?;
                    states.insert(id.index(), NodeState::Bn(BnForwardState { stats: s, x_hat }));
                    outputs.insert(id.index(), relu_forward(&y));
                }
                OpKind::NormReluConv { conv: a, bn: attrs }
                | OpKind::NormReluConvStats { conv: a, bn_in: attrs, .. } => {
                    let raw = get_out(&outputs, 0)?;
                    let s = stats
                        .get(&node.inputs[1].index())
                        .cloned()
                        .ok_or_else(|| {
                            TrainError::Missing(format!("statistics for '{}'", node.name))
                        })?;
                    let (w, b) = self.conv_params(&node)?;
                    let bn_p = self.bn_params(&node)?;
                    let (out, state) =
                        norm_relu_conv_forward(&raw, &s, bn_p, attrs.epsilon, w, b, a)?;
                    if let OpKind::NormReluConvStats { bn_out, .. } = &node.op {
                        stats.insert(id.index(), bn_statistics(&out, bn_out.one_pass_stats)?);
                    }
                    states.insert(id.index(), NodeState::NormReluConv(state));
                    outputs.insert(id.index(), out);
                }
                OpKind::Relu => {
                    let x = get_out(&outputs, 0)?;
                    outputs.insert(id.index(), relu_forward(&x));
                }
                OpKind::Pool { kind, attrs } => {
                    let x = get_out(&outputs, 0)?;
                    match kind {
                        PoolKind::Max => {
                            let state = max_pool_forward(&x, attrs)?;
                            outputs.insert(id.index(), state.output.clone());
                            states.insert(id.index(), NodeState::MaxPool(state));
                        }
                        PoolKind::Average => {
                            outputs.insert(id.index(), avg_pool_forward(&x, attrs)?);
                        }
                    }
                }
                OpKind::GlobalAvgPool => {
                    let x = get_out(&outputs, 0)?;
                    outputs.insert(id.index(), global_avg_pool_forward(&x)?);
                }
                OpKind::Concat => {
                    let xs: Vec<Tensor> = node
                        .inputs
                        .iter()
                        .map(|i| {
                            outputs
                                .get(&i.index())
                                .cloned()
                                .ok_or_else(|| TrainError::Missing(format!("output of {i}")))
                        })
                        .collect::<Result<_>>()?;
                    let refs: Vec<&Tensor> = xs.iter().collect();
                    outputs.insert(id.index(), concat_forward(&refs)?);
                }
                OpKind::ConcatStats(_) => {
                    let xs: Vec<Tensor> = node
                        .inputs
                        .iter()
                        .map(|i| {
                            outputs
                                .get(&i.index())
                                .cloned()
                                .ok_or_else(|| TrainError::Missing(format!("output of {i}")))
                        })
                        .collect::<Result<_>>()?;
                    let refs: Vec<&Tensor> = xs.iter().collect();
                    let (out, s) = concat_forward_with_stats(&refs)?;
                    stats.insert(id.index(), s);
                    outputs.insert(id.index(), out);
                }
                OpKind::Split { .. } => {
                    let x = get_out(&outputs, 0)?;
                    outputs.insert(id.index(), x);
                }
                OpKind::EltwiseSum => {
                    let xs: Vec<Tensor> = node
                        .inputs
                        .iter()
                        .map(|i| {
                            outputs
                                .get(&i.index())
                                .cloned()
                                .ok_or_else(|| TrainError::Missing(format!("output of {i}")))
                        })
                        .collect::<Result<_>>()?;
                    let refs: Vec<&Tensor> = xs.iter().collect();
                    outputs.insert(id.index(), eltwise_sum_forward(&refs)?);
                }
                OpKind::FullyConnected { .. } => {
                    let x = get_out(&outputs, 0)?;
                    let (w, b) = match self.params.get(node.id) {
                        Some(NodeParams::Fc { weights, bias }) => (weights, bias),
                        _ => {
                            return Err(TrainError::Missing(format!(
                                "FC parameters for '{}'",
                                node.name
                            )))
                        }
                    };
                    outputs.insert(id.index(), fc_forward(&x, w, b)?);
                }
                OpKind::SoftmaxLoss => {
                    let x = get_out(&outputs, 0)?;
                    let state = softmax_loss_forward(&x, labels)?;
                    loss = state.loss;
                    scores = Some(x.clone());
                    states.insert(id.index(), NodeState::Softmax(state));
                    outputs.insert(id.index(), Tensor::from_slice(&[loss]));
                }
            }
        }

        let scores = scores.ok_or_else(|| TrainError::Missing("softmax loss node".to_string()))?;
        let acc = accuracy(&scores, labels)?;
        Ok(ForwardResult {
            loss,
            accuracy: acc,
            scores,
            outputs,
            stats,
            states,
            labels: labels.to_vec(),
        })
    }

    /// Runs the backward pass, producing parameter gradients.
    ///
    /// # Errors
    /// Returns an error if the forward result does not match this graph.
    pub fn backward(&self, fwd: &ForwardResult) -> Result<Gradients> {
        let mut d_out: HashMap<usize, Tensor> = HashMap::new();
        let mut per_node: HashMap<usize, NodeParamGrads> = HashMap::new();
        let data_id = self.data_input()?;

        let accumulate = |map: &mut HashMap<usize, Tensor>, id: NodeId, grad: Tensor| -> Result<()> {
            match map.get_mut(&id.index()) {
                Some(existing) => {
                    ops::add_assign(existing, &grad).map_err(TrainError::Tensor)?;
                }
                None => {
                    map.insert(id.index(), grad);
                }
            }
            Ok(())
        };

        let order = self.graph.topo_order()?;
        for id in order.into_iter().rev() {
            let node = self.graph.node(id)?.clone();
            match &node.op {
                OpKind::SoftmaxLoss => {
                    let state = match fwd.states.get(&id.index()) {
                        Some(NodeState::Softmax(s)) => s,
                        _ => return Err(TrainError::Missing("softmax state".to_string())),
                    };
                    let d_scores = softmax_loss_backward(state, &fwd.labels)?;
                    accumulate(&mut d_out, node.inputs[0], d_scores)?;
                }
                OpKind::Input => {}
                _ => {
                    let Some(grad) = d_out.get(&id.index()).cloned() else {
                        continue;
                    };
                    let input_tensor = |idx: usize| -> Result<Tensor> {
                        fwd.outputs
                            .get(&node.inputs[idx].index())
                            .cloned()
                            .ok_or_else(|| {
                                TrainError::Missing(format!("forward output of {}", node.inputs[idx]))
                            })
                    };
                    match &node.op {
                        OpKind::Conv2d(a) | OpKind::ConvStats { conv: a, .. } => {
                            let x = input_tensor(0)?;
                            let (w, b) = self.conv_params(&node)?;
                            let d_x = conv2d_backward_input(&grad, w, x.shape(), a)?;
                            let (d_w, d_b) = conv2d_backward_weights(&x, &grad, a, b.is_some())?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Conv { d_weights: d_w, d_bias: d_b },
                            );
                            accumulate(&mut d_out, node.inputs[0], d_x)?;
                        }
                        OpKind::ReluConv(a) => {
                            let x = input_tensor(0)?;
                            let clipped = match fwd.states.get(&id.index()) {
                                Some(NodeState::ClippedInput(t)) => t.clone(),
                                _ => relu_forward(&x),
                            };
                            let (w, b) = self.conv_params(&node)?;
                            let d_clipped = conv2d_backward_input(&grad, w, clipped.shape(), a)?;
                            let (d_w, d_b) =
                                conv2d_backward_weights(&clipped, &grad, a, b.is_some())?;
                            let d_x = relu_backward(&d_clipped, &x)?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Conv { d_weights: d_w, d_bias: d_b },
                            );
                            accumulate(&mut d_out, node.inputs[0], d_x)?;
                        }
                        OpKind::NormReluConv { conv: a, bn: attrs }
                        | OpKind::NormReluConvStats { conv: a, bn_in: attrs, .. } => {
                            let state = match fwd.states.get(&id.index()) {
                                Some(NodeState::NormReluConv(s)) => s,
                                _ => {
                                    return Err(TrainError::Missing(format!(
                                        "fused state for '{}'",
                                        node.name
                                    )))
                                }
                            };
                            let (w, b) = self.conv_params(&node)?;
                            let bn_p = self.bn_params(&node)?;
                            let grads = norm_relu_conv_backward(
                                &grad,
                                state,
                                bn_p,
                                attrs.epsilon,
                                w,
                                a,
                                b.is_some(),
                            )?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::ConvBn {
                                    d_weights: grads.d_weights,
                                    d_bias: grads.d_bias,
                                    d_gamma: grads.d_bn.d_gamma,
                                    d_beta: grads.d_bn.d_beta,
                                },
                            );
                            accumulate(&mut d_out, node.inputs[0], grads.d_raw)?;
                        }
                        OpKind::BatchNorm(attrs) | OpKind::SubBnNorm(attrs) => {
                            let state = match fwd.states.get(&id.index()) {
                                Some(NodeState::Bn(s)) => s,
                                _ => {
                                    return Err(TrainError::Missing(format!(
                                        "BN state for '{}'",
                                        node.name
                                    )))
                                }
                            };
                            let p = self.bn_params(&node)?;
                            let (d_x, g) = bn_backward(&grad, state, p, attrs.epsilon)?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Bn { d_gamma: g.d_gamma, d_beta: g.d_beta },
                            );
                            accumulate(&mut d_out, node.inputs[0], d_x)?;
                        }
                        OpKind::NormRelu(attrs) => {
                            let state = match fwd.states.get(&id.index()) {
                                Some(NodeState::Bn(s)) => s,
                                _ => {
                                    return Err(TrainError::Missing(format!(
                                        "BN state for '{}'",
                                        node.name
                                    )))
                                }
                            };
                            let p = self.bn_params(&node)?;
                            let y = fwd
                                .outputs
                                .get(&id.index())
                                .cloned()
                                .ok_or_else(|| TrainError::Missing("NormRelu output".into()))?;
                            let d_post_bn = relu_backward(&grad, &y)?;
                            let (d_x, g) = bn_backward(&d_post_bn, state, p, attrs.epsilon)?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Bn { d_gamma: g.d_gamma, d_beta: g.d_beta },
                            );
                            accumulate(&mut d_out, node.inputs[0], d_x)?;
                        }
                        OpKind::SubBnStats(_) => {
                            // The statistics path carries no independent
                            // gradient: the normalization backward already
                            // differentiates through mean/variance.
                        }
                        OpKind::Relu => {
                            let x = input_tensor(0)?;
                            let d_x = relu_backward(&grad, &x)?;
                            accumulate(&mut d_out, node.inputs[0], d_x)?;
                        }
                        OpKind::Pool { kind, attrs } => {
                            let x = input_tensor(0)?;
                            let d_x = match kind {
                                PoolKind::Max => {
                                    let state = match fwd.states.get(&id.index()) {
                                        Some(NodeState::MaxPool(s)) => s,
                                        _ => {
                                            return Err(TrainError::Missing(format!(
                                                "max pool state for '{}'",
                                                node.name
                                            )))
                                        }
                                    };
                                    max_pool_backward(&grad, state, x.shape())?
                                }
                                PoolKind::Average => avg_pool_backward(&grad, x.shape(), attrs)?,
                            };
                            accumulate(&mut d_out, node.inputs[0], d_x)?;
                        }
                        OpKind::GlobalAvgPool => {
                            let x = input_tensor(0)?;
                            let d_x = global_avg_pool_backward(&grad, x.shape())?;
                            accumulate(&mut d_out, node.inputs[0], d_x)?;
                        }
                        OpKind::Concat | OpKind::ConcatStats(_) => {
                            let shapes: Vec<Shape> = node
                                .inputs
                                .iter()
                                .map(|i| self.graph.node(*i).map(|n| n.output_shape.clone()))
                                .collect::<bnff_graph::Result<_>>()?;
                            let grads = concat_backward(&grad, &shapes)?;
                            for (input, g) in node.inputs.iter().zip(grads) {
                                accumulate(&mut d_out, *input, g)?;
                            }
                        }
                        OpKind::Split { .. } => {
                            accumulate(&mut d_out, node.inputs[0], grad)?;
                        }
                        OpKind::EltwiseSum => {
                            for input in &node.inputs {
                                accumulate(&mut d_out, *input, grad.clone())?;
                            }
                        }
                        OpKind::FullyConnected { .. } => {
                            let x = input_tensor(0)?;
                            let w = match self.params.get(node.id) {
                                Some(NodeParams::Fc { weights, .. }) => weights,
                                _ => {
                                    return Err(TrainError::Missing(format!(
                                        "FC parameters for '{}'",
                                        node.name
                                    )))
                                }
                            };
                            let (d_x, d_w, d_b) = fc_backward(&x, w, &grad)?;
                            per_node.insert(
                                id.index(),
                                NodeParamGrads::Fc { d_weights: d_w, d_bias: d_b },
                            );
                            accumulate(&mut d_out, node.inputs[0], d_x)?;
                        }
                        OpKind::Input | OpKind::SoftmaxLoss => unreachable!("handled above"),
                    }
                }
            }
        }

        Ok(Gradients { per_node, d_data: d_out.remove(&data_id.index()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_graph::builder::GraphBuilder;
    use bnff_graph::op::Conv2dAttrs;
    use bnff_graph::passes::{BnffPass, Pass};
    use bnff_tensor::init::Initializer;

    fn tiny_classifier(batch: usize) -> Graph {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input("data", Shape::nchw(batch, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(batch)).unwrap();
        let c1 = b.conv2d(x, Conv2dAttrs::same_3x3(8), "conv1").unwrap();
        let bn = b.batch_norm_default(c1, "bn1").unwrap();
        let r = b.relu(bn, "relu1").unwrap();
        let c2 = b.conv2d(r, Conv2dAttrs::pointwise(8), "conv2").unwrap();
        let gap = b.global_avg_pool(c2, "gap").unwrap();
        let fc = b.fully_connected(gap, 4, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        b.finish()
    }

    fn random_batch(batch: usize, classes: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut init = Initializer::seeded(seed);
        let data = init.uniform(Shape::nchw(batch, 3, 8, 8), -1.0, 1.0);
        let labels = (0..batch).map(|i| i % classes).collect();
        (data, labels)
    }

    #[test]
    fn forward_produces_finite_loss() {
        let exec = Executor::new(tiny_classifier(4), 1).unwrap();
        let (data, labels) = random_batch(4, 4, 2);
        let fwd = exec.forward(&data, &labels).unwrap();
        assert!(fwd.loss.is_finite());
        assert!(fwd.loss > 0.0);
        assert!((0.0..=1.0).contains(&fwd.accuracy));
        assert_eq!(fwd.scores.shape(), &Shape::matrix(4, 4));
    }

    #[test]
    fn forward_rejects_wrong_input_shape() {
        let exec = Executor::new(tiny_classifier(4), 1).unwrap();
        let (data, labels) = random_batch(2, 4, 2);
        assert!(exec.forward(&data, &labels).is_err());
    }

    #[test]
    fn backward_produces_gradients_for_every_parameterised_node() {
        let exec = Executor::new(tiny_classifier(4), 3).unwrap();
        let (data, labels) = random_batch(4, 4, 4);
        let fwd = exec.forward(&data, &labels).unwrap();
        let grads = exec.backward(&fwd).unwrap();
        assert_eq!(grads.per_node.len(), exec.params().len());
        assert!(grads.global_norm() > 0.0);
        assert!(grads.d_data.is_some());
    }

    #[test]
    fn loss_gradient_check_through_the_whole_network() {
        // Perturb a single convolution weight and compare the numerical
        // derivative of the loss against the analytic gradient.
        let exec = Executor::new(tiny_classifier(2), 5).unwrap();
        let (data, labels) = random_batch(2, 4, 6);
        let fwd = exec.forward(&data, &labels).unwrap();
        let grads = exec.backward(&fwd).unwrap();

        let conv_id = exec.graph().nodes().find(|n| n.name == "conv1").unwrap().id;
        let analytic = match grads.node(conv_id).unwrap() {
            NodeParamGrads::Conv { d_weights, .. } => d_weights.get(11).unwrap(),
            _ => panic!("expected conv gradients"),
        };

        let h = 1e-2f32;
        let mut plus = exec.clone();
        if let Some(NodeParams::Conv { weights, .. }) = plus.params_mut().get_mut(conv_id) {
            let v = weights.get(11).unwrap();
            weights.set(11, v + h).unwrap();
        }
        let mut minus = exec.clone();
        if let Some(NodeParams::Conv { weights, .. }) = minus.params_mut().get_mut(conv_id) {
            let v = weights.get(11).unwrap();
            weights.set(11, v - h).unwrap();
        }
        let lp = plus.forward(&data, &labels).unwrap().loss;
        let lm = minus.forward(&data, &labels).unwrap().loss;
        let numeric = f64::from(lp - lm) / (2.0 * f64::from(h));
        assert!(
            (numeric - f64::from(analytic)).abs() < 5e-3,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn executes_bnff_restructured_graphs() {
        let baseline = tiny_classifier(4);
        let restructured = BnffPass::new().run(&baseline).unwrap();
        let exec = Executor::new(restructured, 7).unwrap();
        let (data, labels) = random_batch(4, 4, 8);
        let fwd = exec.forward(&data, &labels).unwrap();
        assert!(fwd.loss.is_finite());
        let grads = exec.backward(&fwd).unwrap();
        assert!(grads.global_norm() > 0.0);
        // The fused graph must still own parameters for every conv/BN/FC.
        assert!(!grads.per_node.is_empty());
    }

    #[test]
    fn forward_exposes_intermediate_outputs_and_stats() {
        let baseline = tiny_classifier(2);
        let restructured = BnffPass::new().run(&baseline).unwrap();
        let exec = Executor::new(restructured, 9).unwrap();
        let (data, labels) = random_batch(2, 4, 10);
        let fwd = exec.forward(&data, &labels).unwrap();
        let stats_node = exec
            .graph()
            .nodes()
            .find(|n| matches!(n.op, OpKind::ConvStats { .. }))
            .unwrap()
            .id;
        assert!(fwd.stats(stats_node).is_some());
        assert!(fwd.output(stats_node).is_some());
    }
}
