//! Error type for the training substrate.

use std::fmt;

/// Errors produced by the executor, optimizer or trainer.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The executor met an operation it cannot execute numerically.
    Unsupported(String),
    /// A required input, parameter or intermediate value was missing.
    Missing(String),
    /// An invalid configuration or argument.
    InvalidArgument(String),
    /// An error bubbled up from the graph crate.
    Graph(bnff_graph::GraphError),
    /// An error bubbled up from a kernel.
    Kernel(bnff_kernels::KernelError),
    /// An error bubbled up from the tensor substrate.
    Tensor(bnff_tensor::TensorError),
    /// A model (JSON checkpoint or binary artifact) could not be loaded or
    /// stored — the shared typed hierarchy from `bnff-artifact`.
    Model(bnff_artifact::ModelError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            TrainError::Missing(msg) => write!(f, "missing value: {msg}"),
            TrainError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TrainError::Graph(err) => write!(f, "graph error: {err}"),
            TrainError::Kernel(err) => write!(f, "kernel error: {err}"),
            TrainError::Tensor(err) => write!(f, "tensor error: {err}"),
            TrainError::Model(err) => write!(f, "model error: {err}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Graph(err) => Some(err),
            TrainError::Kernel(err) => Some(err),
            TrainError::Tensor(err) => Some(err),
            TrainError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<bnff_graph::GraphError> for TrainError {
    fn from(err: bnff_graph::GraphError) -> Self {
        TrainError::Graph(err)
    }
}

impl From<bnff_kernels::KernelError> for TrainError {
    fn from(err: bnff_kernels::KernelError) -> Self {
        TrainError::Kernel(err)
    }
}

impl From<bnff_tensor::TensorError> for TrainError {
    fn from(err: bnff_tensor::TensorError) -> Self {
        TrainError::Tensor(err)
    }
}

impl From<bnff_artifact::ModelError> for TrainError {
    fn from(err: bnff_artifact::ModelError) -> Self {
        TrainError::Model(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: TrainError = bnff_graph::GraphError::CyclicGraph.into();
        assert!(e.to_string().contains("cycle"));
        let e: TrainError = bnff_kernels::KernelError::InvalidArgument("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: TrainError = bnff_tensor::TensorError::InvalidArgument("y".into()).into();
        assert!(e.to_string().contains("tensor"));
        let e = TrainError::Unsupported("op".into());
        assert!(e.to_string().contains("unsupported"));
        let e: TrainError = bnff_artifact::ModelError::Truncated { needed: 9, available: 1 }.into();
        assert!(e.to_string().contains("truncated"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TrainError>();
    }
}
