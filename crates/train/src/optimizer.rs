//! Stochastic gradient descent with momentum and weight decay.

use crate::error::TrainError;
use crate::executor::Gradients;
use crate::params::{NodeParamGrads, NodeParams, ParamSet};
use crate::Result;
use bnff_parallel::{min_items_per_thread, parallel_rows_mut2};
use bnff_tensor::Tensor;
use std::collections::HashMap;

/// SGD with classical momentum and (optionally) L2 weight decay on the
/// convolution / FC weights (γ/β and biases are excluded from decay, as is
/// standard for BN networks).
#[derive(Debug, Clone)]
pub struct SgdOptimizer {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient applied to weights.
    pub weight_decay: f32,
    velocity: HashMap<(usize, &'static str), Vec<f32>>,
}

impl SgdOptimizer {
    /// Creates an optimizer.
    ///
    /// # Errors
    /// Returns an error for non-positive learning rates or negative
    /// momentum / weight decay.
    pub fn new(learning_rate: f32, momentum: f32, weight_decay: f32) -> Result<Self> {
        if learning_rate <= 0.0 {
            return Err(TrainError::InvalidArgument("learning rate must be positive".into()));
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(TrainError::InvalidArgument("momentum must lie in [0, 1)".into()));
        }
        if weight_decay < 0.0 {
            return Err(TrainError::InvalidArgument("weight decay must be non-negative".into()));
        }
        Ok(SgdOptimizer { learning_rate, momentum, weight_decay, velocity: HashMap::new() })
    }

    /// Plain SGD without momentum or decay.
    ///
    /// # Errors
    /// Returns an error for a non-positive learning rate.
    pub fn plain(learning_rate: f32) -> Result<Self> {
        Self::new(learning_rate, 0.0, 0.0)
    }

    fn update_vec(
        &mut self,
        key: (usize, &'static str),
        values: &mut [f32],
        grads: &[f32],
        decay: f32,
    ) {
        let lr = self.learning_rate;
        let momentum = self.momentum;
        let velocity = self.velocity.entry(key).or_insert_with(|| vec![0.0; values.len()]);
        // Per-parameter updates are independent; large layers split across
        // workers, with parameter and velocity chunks walked in lockstep.
        parallel_rows_mut2(
            values,
            1,
            velocity,
            1,
            min_items_per_thread(4),
            |offset, vals, vels| {
                let len = vals.len();
                for ((v, vel), g) in
                    vals.iter_mut().zip(vels.iter_mut()).zip(&grads[offset..offset + len])
                {
                    let grad = g + decay * *v;
                    *vel = momentum * *vel + grad;
                    *v -= lr * *vel;
                }
            },
        );
    }

    fn update_tensor(
        &mut self,
        key: (usize, &'static str),
        tensor: &mut Tensor,
        grads: &Tensor,
        decay: f32,
    ) -> Result<()> {
        if tensor.len() != grads.len() {
            return Err(TrainError::InvalidArgument(format!(
                "gradient length {} does not match parameter length {}",
                grads.len(),
                tensor.len()
            )));
        }
        let grads = grads.as_slice().to_vec();
        self.update_vec(key, tensor.as_mut_slice(), &grads, decay);
        Ok(())
    }

    /// Applies one optimization step to `params` using `grads`.
    ///
    /// # Errors
    /// Returns an error when a gradient's layout does not match the
    /// corresponding parameter.
    pub fn step(&mut self, params: &mut ParamSet, grads: &Gradients) -> Result<()> {
        let decay = self.weight_decay;
        let indices: Vec<usize> = grads.per_node.keys().copied().collect();
        for idx in indices {
            let grad = &grads.per_node[&idx];
            let Some(param) = params.get_mut(bnff_graph::NodeId::new(idx)) else {
                return Err(TrainError::Missing(format!("parameters for node index {idx}")));
            };
            match (param, grad) {
                (
                    NodeParams::Conv { weights, bias },
                    NodeParamGrads::Conv { d_weights, d_bias },
                ) => {
                    self.update_tensor((idx, "w"), weights, d_weights, decay)?;
                    if let Some(b) = bias {
                        self.update_vec((idx, "b"), b, d_bias, 0.0);
                    }
                }
                (NodeParams::Bn(bn), NodeParamGrads::Bn { d_gamma, d_beta }) => {
                    self.update_vec((idx, "gamma"), &mut bn.gamma, d_gamma, 0.0);
                    self.update_vec((idx, "beta"), &mut bn.beta, d_beta, 0.0);
                }
                (
                    NodeParams::ConvBn { weights, bias, bn },
                    NodeParamGrads::ConvBn { d_weights, d_bias, d_gamma, d_beta },
                ) => {
                    self.update_tensor((idx, "w"), weights, d_weights, decay)?;
                    if let Some(b) = bias {
                        self.update_vec((idx, "b"), b, d_bias, 0.0);
                    }
                    self.update_vec((idx, "gamma"), &mut bn.gamma, d_gamma, 0.0);
                    self.update_vec((idx, "beta"), &mut bn.beta, d_beta, 0.0);
                }
                (NodeParams::Fc { weights, bias }, NodeParamGrads::Fc { d_weights, d_bias }) => {
                    self.update_tensor((idx, "w"), weights, d_weights, decay)?;
                    self.update_vec((idx, "b"), bias, d_bias, 0.0);
                }
                _ => {
                    return Err(TrainError::InvalidArgument(format!(
                        "gradient kind does not match parameter kind for node index {idx}"
                    )))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnff_kernels::batchnorm::BnParams;
    use bnff_tensor::Shape;

    fn single_param_setup(value: f32) -> (ParamSet, Gradients) {
        let mut params = ParamSet::new();
        params.insert(
            bnff_graph::NodeId::new(0),
            NodeParams::Conv {
                weights: Tensor::filled(Shape::nchw(1, 1, 1, 1), value),
                bias: None,
            },
        );
        let mut per_node = HashMap::new();
        per_node.insert(
            0usize,
            NodeParamGrads::Conv {
                d_weights: Tensor::filled(Shape::nchw(1, 1, 1, 1), 1.0),
                d_bias: vec![],
            },
        );
        (params, Gradients { per_node, d_data: None })
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let (mut params, grads) = single_param_setup(1.0);
        let mut opt = SgdOptimizer::plain(0.1).unwrap();
        opt.step(&mut params, &grads).unwrap();
        match params.get(bnff_graph::NodeId::new(0)).unwrap() {
            NodeParams::Conv { weights, .. } => {
                assert!((weights.get(0).unwrap() - 0.9).abs() < 1e-6);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn momentum_accumulates() {
        let (mut params, grads) = single_param_setup(0.0);
        let mut opt = SgdOptimizer::new(0.1, 0.9, 0.0).unwrap();
        opt.step(&mut params, &grads).unwrap();
        opt.step(&mut params, &grads).unwrap();
        // First step: -0.1; second: velocity = 0.9*1 + 1 = 1.9, so -0.19 more.
        match params.get(bnff_graph::NodeId::new(0)).unwrap() {
            NodeParams::Conv { weights, .. } => {
                assert!((weights.get(0).unwrap() + 0.29).abs() < 1e-6);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (mut params, mut grads) = single_param_setup(2.0);
        // Zero gradient: only the decay term acts.
        grads.per_node.insert(
            0,
            NodeParamGrads::Conv {
                d_weights: Tensor::zeros(Shape::nchw(1, 1, 1, 1)),
                d_bias: vec![],
            },
        );
        let mut opt = SgdOptimizer::new(0.1, 0.0, 0.01).unwrap();
        opt.step(&mut params, &grads).unwrap();
        match params.get(bnff_graph::NodeId::new(0)).unwrap() {
            NodeParams::Conv { weights, .. } => {
                let v = weights.get(0).unwrap();
                assert!(v < 2.0 && v > 1.99);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn invalid_hyperparameters_rejected() {
        assert!(SgdOptimizer::new(0.0, 0.9, 0.0).is_err());
        assert!(SgdOptimizer::new(0.1, 1.5, 0.0).is_err());
        assert!(SgdOptimizer::new(0.1, 0.5, -0.1).is_err());
    }

    #[test]
    fn mismatched_gradient_kind_is_rejected() {
        let (mut params, _) = single_param_setup(1.0);
        let mut per_node = HashMap::new();
        per_node.insert(0usize, NodeParamGrads::Bn { d_gamma: vec![1.0], d_beta: vec![1.0] });
        let grads = Gradients { per_node, d_data: None };
        let mut opt = SgdOptimizer::plain(0.1).unwrap();
        assert!(opt.step(&mut params, &grads).is_err());
    }

    #[test]
    fn bn_params_are_updated() {
        let mut params = ParamSet::new();
        params.insert(bnff_graph::NodeId::new(3), NodeParams::Bn(BnParams::identity(2)));
        let mut per_node = HashMap::new();
        per_node.insert(
            3usize,
            NodeParamGrads::Bn { d_gamma: vec![1.0, -1.0], d_beta: vec![0.5, 0.5] },
        );
        let grads = Gradients { per_node, d_data: None };
        let mut opt = SgdOptimizer::plain(0.1).unwrap();
        opt.step(&mut params, &grads).unwrap();
        match params.get(bnff_graph::NodeId::new(3)).unwrap() {
            NodeParams::Bn(bn) => {
                assert!((bn.gamma[0] - 0.9).abs() < 1e-6);
                assert!((bn.gamma[1] - 1.1).abs() < 1e-6);
                assert!((bn.beta[0] + 0.05).abs() < 1e-6);
            }
            _ => unreachable!(),
        }
    }
}
