//! Property tests: checkpoint → binary artifact → checkpoint must be
//! bit-identical for parameters, running statistics and topology, at
//! baseline and BNFF fusion, including adversarial f32 values (subnormals,
//! negative zero, near-MAX magnitudes).

use bnff_artifact::Artifact;
use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_graph::passes::{BnffPass, Pass};
use bnff_tensor::Shape;
use bnff_train::checkpoint::Checkpoint;
use bnff_train::params::NodeParams;
use bnff_train::running::RunningStats;
use bnff_train::Executor;
use proptest::prelude::*;

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Overwrites every stored scalar with values that stress binary
/// round-tripping: exact zeros and negative zeros, subnormals, and values
/// near the f32 range limits.
fn poison(values: &mut [f32], seed: usize) {
    for (i, v) in values.iter_mut().enumerate() {
        *v = match (i + seed) % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => f32::MIN_POSITIVE,
            3 => -1.5e-42, // subnormal
            4 => 3.4e38,
            5 => -3.4e38,
            6 => (i as f32 + 0.1) * 1e-7,
            _ => ((i * 2654435761 + seed) % 10_007) as f32 * 0.001 - 5.0,
        };
    }
}

fn poison_checkpoint(ckpt: &mut Checkpoint, seed: usize) {
    let ids: Vec<_> = ckpt.graph.nodes().map(|n| n.id).collect();
    for id in ids {
        if let Some(p) = ckpt.params.get(id).cloned() {
            let p = match p {
                NodeParams::Conv { mut weights, mut bias } => {
                    poison(weights.as_mut_slice(), seed);
                    if let Some(b) = bias.as_mut() {
                        poison(b, seed + 1);
                    }
                    NodeParams::Conv { weights, bias }
                }
                NodeParams::Bn(mut bn) => {
                    poison(&mut bn.gamma, seed + 2);
                    poison(&mut bn.beta, seed + 3);
                    NodeParams::Bn(bn)
                }
                NodeParams::ConvBn { mut weights, mut bias, mut bn } => {
                    poison(weights.as_mut_slice(), seed + 4);
                    if let Some(b) = bias.as_mut() {
                        poison(b, seed + 5);
                    }
                    poison(&mut bn.gamma, seed + 6);
                    poison(&mut bn.beta, seed + 7);
                    NodeParams::ConvBn { weights, bias, bn }
                }
                NodeParams::Fc { mut weights, mut bias } => {
                    poison(weights.as_mut_slice(), seed + 8);
                    poison(&mut bias, seed + 9);
                    NodeParams::Fc { weights, bias }
                }
            };
            ckpt.params.insert(id, p);
        }
        if let Some(s) = ckpt.running.get(id).cloned() {
            let mut s = s;
            poison(&mut s.mean, seed + 10);
            poison(&mut s.var, seed + 11);
            ckpt.running.insert(id, s);
        }
    }
}

proptest! {
    /// The full checkpoint → artifact bytes → checkpoint cycle is
    /// bit-identical, for ragged layer widths, both fusion variants and
    /// poisoned adversarial values.
    #[test]
    fn artifact_round_trip_is_bit_identical(
        channels in 1usize..9,
        kernel_odd in 0usize..2,
        classes in 2usize..5,
        seed in 0usize..10_000,
        fused in 0usize..2,
    ) {
        let kernel = 1 + 2 * kernel_odd; // 1 or 3
        let mut b = GraphBuilder::new("prop");
        let batch = 2;
        let x = b.input("data", Shape::nchw(batch, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(batch)).unwrap();
        let c = b.conv_bn_relu(x, Conv2dAttrs::same(channels, kernel), "block").unwrap();
        let c2 = b.bn_relu_conv(c, Conv2dAttrs::pointwise(channels + 1), "cpl").unwrap();
        let gap = b.global_avg_pool(c2, "gap").unwrap();
        let fc = b.fully_connected(gap, classes, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let graph = if fused == 1 {
            BnffPass::new().run(&b.finish()).unwrap()
        } else {
            b.finish()
        };

        let exec = Executor::new(graph, seed as u64 + 1).unwrap();
        let mut ckpt = Checkpoint::capture(&exec);
        poison_checkpoint(&mut ckpt, seed);

        let bytes = ckpt.to_artifact_bytes().unwrap();
        let artifact = Artifact::from_bytes(&bytes).unwrap();
        let back = Checkpoint::from_artifact(&artifact).unwrap();

        prop_assert_eq!(&back.graph, &ckpt.graph);
        prop_assert_eq!(back.format_version, ckpt.format_version);
        for node in ckpt.graph.nodes() {
            match (ckpt.params.get(node.id), back.params.get(node.id)) {
                (None, None) => {}
                (Some(pa), Some(pb)) => {
                    prop_assert!(params_bits_equal(pa, pb), "params of '{}' differ", node.name);
                }
                _ => return Err(TestCaseError::fail(format!(
                    "param presence differs for '{}'", node.name
                ))),
            }
            match (ckpt.running.get(node.id), back.running.get(node.id)) {
                (None, None) => {}
                (Some(sa), Some(sb)) => {
                    prop_assert!(running_bits_equal(sa, sb), "stats of '{}' differ", node.name);
                }
                _ => return Err(TestCaseError::fail(format!(
                    "running-stats presence differs for '{}'", node.name
                ))),
            }
        }
        prop_assert_eq!(back.running.momentum().to_bits(), ckpt.running.momentum().to_bits());

        // Writing the reloaded checkpoint reproduces the same bytes.
        prop_assert_eq!(back.to_artifact_bytes().unwrap(), bytes);
    }
}

fn params_bits_equal(a: &NodeParams, b: &NodeParams) -> bool {
    match (a, b) {
        (
            NodeParams::Conv { weights: wa, bias: ba },
            NodeParams::Conv { weights: wb, bias: bb },
        ) => {
            bits(wa.as_slice()) == bits(wb.as_slice())
                && ba.as_deref().map(bits) == bb.as_deref().map(bits)
        }
        (NodeParams::Bn(pa), NodeParams::Bn(pb)) => {
            bits(&pa.gamma) == bits(&pb.gamma) && bits(&pa.beta) == bits(&pb.beta)
        }
        (
            NodeParams::ConvBn { weights: wa, bias: ba, bn: pa },
            NodeParams::ConvBn { weights: wb, bias: bb, bn: pb },
        ) => {
            bits(wa.as_slice()) == bits(wb.as_slice())
                && ba.as_deref().map(bits) == bb.as_deref().map(bits)
                && bits(&pa.gamma) == bits(&pb.gamma)
                && bits(&pa.beta) == bits(&pb.beta)
        }
        (NodeParams::Fc { weights: wa, bias: ba }, NodeParams::Fc { weights: wb, bias: bb }) => {
            bits(wa.as_slice()) == bits(wb.as_slice()) && bits(ba) == bits(bb)
        }
        _ => false,
    }
}

fn running_bits_equal(a: &RunningStats, b: &RunningStats) -> bool {
    bits(&a.mean) == bits(&b.mean) && bits(&a.var) == bits(&b.var)
}
