//! Property tests: a checkpoint's save → load cycle must be bit-identical
//! for parameters, running statistics and topology — including ragged
//! tensor shapes and graphs at every fusion level.

use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_graph::passes::{BnffPass, Pass};
use bnff_tensor::{Shape, Tensor};
use bnff_train::checkpoint::Checkpoint;
use bnff_train::params::NodeParams;
use bnff_train::running::RunningStats;
use bnff_train::Executor;
use proptest::prelude::*;

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// A tensor of any (ragged) shape with arbitrary finite values
    /// round-trips through JSON bit-for-bit.
    #[test]
    fn tensor_serde_round_trip_is_bit_identical(
        dims in prop::collection::vec(1usize..5, 1..5),
        seed in 0usize..1_000_000,
    ) {
        let shape = Shape::new(dims);
        let volume = shape.volume();
        // A value mix covering subnormals, huge magnitudes and exact zeros.
        let data: Vec<f32> = (0..volume)
            .map(|i| {
                let k = (i + seed) % 7;
                match k {
                    0 => 0.0,
                    1 => -1.5e-42,                         // subnormal
                    2 => 3.4e38,                           // near f32::MAX
                    3 => -(i as f32 + 0.1) * 1e-7,
                    _ => ((i * 2654435761 + seed) % 10_007) as f32 * 0.001 - 5.0,
                }
            })
            .collect();
        let tensor = Tensor::from_vec(shape, data).unwrap();
        let json = serde_json::to_string(&tensor).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.shape(), tensor.shape());
        prop_assert_eq!(bits(back.as_slice()), bits(tensor.as_slice()));
    }

    /// A whole checkpoint (graph + params + running stats) round-trips
    /// bit-identically, for ragged layer widths, at baseline and BNFF
    /// fusion.
    #[test]
    fn checkpoint_round_trip_is_bit_identical(
        channels in 1usize..9,
        kernel_odd in 0usize..2,
        classes in 2usize..5,
        seed in 0usize..10_000,
        fused in 0usize..2,
    ) {
        let kernel = 1 + 2 * kernel_odd; // 1 or 3
        let mut b = GraphBuilder::new("prop");
        let batch = 2;
        let x = b.input("data", Shape::nchw(batch, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(batch)).unwrap();
        let c = b.conv_bn_relu(x, Conv2dAttrs::same(channels, kernel), "block").unwrap();
        let c2 = b.bn_relu_conv(c, Conv2dAttrs::pointwise(channels + 1), "cpl").unwrap();
        let gap = b.global_avg_pool(c2, "gap").unwrap();
        let fc = b.fully_connected(gap, classes, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let graph = if fused == 1 {
            BnffPass::new().run(&b.finish()).unwrap()
        } else {
            b.finish()
        };

        let mut exec = Executor::new(graph, seed as u64 + 1).unwrap();
        // Move the running statistics off identity with one training batch.
        let mut init = bnff_tensor::init::Initializer::seeded(seed as u64 ^ 77);
        let data = init.uniform(Shape::nchw(batch, 3, 8, 8), -1.0, 1.0);
        let fwd = exec.forward(&data, &[0, 1]).unwrap();
        exec.update_running_stats(&fwd).unwrap();

        let ckpt = Checkpoint::capture(&exec);
        let back = Checkpoint::from_json(&ckpt.to_json().unwrap()).unwrap();

        // Topology: node-for-node identical.
        prop_assert_eq!(&back.graph, &ckpt.graph);

        // Parameters: bit-identical tensor by tensor.
        for node in ckpt.graph.nodes() {
            let (a, b) = (ckpt.params.get(node.id), back.params.get(node.id));
            match (a, b) {
                (None, None) => {}
                (Some(pa), Some(pb)) => {
                    prop_assert!(params_bits_equal(pa, pb), "params of '{}' differ", node.name);
                }
                _ => return Err(TestCaseError::fail(format!(
                    "param presence differs for '{}'", node.name
                ))),
            }
            let (ra, rb) = (ckpt.running.get(node.id), back.running.get(node.id));
            match (ra, rb) {
                (None, None) => {}
                (Some(sa), Some(sb)) => {
                    prop_assert!(running_bits_equal(sa, sb), "stats of '{}' differ", node.name);
                }
                _ => return Err(TestCaseError::fail(format!(
                    "running-stats presence differs for '{}'", node.name
                ))),
            }
        }
        prop_assert_eq!(back.running.momentum().to_bits(), ckpt.running.momentum().to_bits());
    }
}

fn params_bits_equal(a: &NodeParams, b: &NodeParams) -> bool {
    match (a, b) {
        (
            NodeParams::Conv { weights: wa, bias: ba },
            NodeParams::Conv { weights: wb, bias: bb },
        ) => {
            bits(wa.as_slice()) == bits(wb.as_slice())
                && ba.as_deref().map(bits) == bb.as_deref().map(bits)
        }
        (NodeParams::Bn(pa), NodeParams::Bn(pb)) => {
            bits(&pa.gamma) == bits(&pb.gamma) && bits(&pa.beta) == bits(&pb.beta)
        }
        (
            NodeParams::ConvBn { weights: wa, bias: ba, bn: pa },
            NodeParams::ConvBn { weights: wb, bias: bb, bn: pb },
        ) => {
            bits(wa.as_slice()) == bits(wb.as_slice())
                && ba.as_deref().map(bits) == bb.as_deref().map(bits)
                && bits(&pa.gamma) == bits(&pb.gamma)
                && bits(&pa.beta) == bits(&pb.beta)
        }
        (NodeParams::Fc { weights: wa, bias: ba }, NodeParams::Fc { weights: wb, bias: bb }) => {
            bits(wa.as_slice()) == bits(wb.as_slice()) && bits(ba) == bits(bb)
        }
        _ => false,
    }
}

fn running_bits_equal(a: &RunningStats, b: &RunningStats) -> bool {
    bits(&a.mean) == bits(&b.mean) && bits(&a.var) == bits(&b.var)
}
