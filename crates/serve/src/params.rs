//! Numeric application of the freeze pass's fold plan.
//!
//! The freeze pass (`bnff_graph::passes::freeze`) is purely structural: it
//! emits [`FoldRecipe`]s that reference *training-graph* nodes. This module
//! applies them against a trained [`ParamSet`] and its [`RunningStatSet`],
//! producing the frozen parameters:
//!
//! * a folded convolution's filters are scaled per **output** channel by
//!   `scale[o] = γ[o]/√(running_var[o]+ε)` and its bias becomes
//!   `scale[o]·b[o] + shift[o]` — BN at inference costs nothing;
//! * a standalone affine keeps its `(scale, shift)` vectors;
//! * everything else (FC, unfolded convs) is copied through.

use crate::error::ServeError;
use crate::Result;
use bnff_graph::passes::freeze::{AffineSource, FoldRecipe, FrozenGraph};
use bnff_graph::NodeId;
use bnff_kernels::affine::bn_affine_coefficients;
use bnff_tensor::Tensor;
use bnff_train::params::NodeParams;
use bnff_train::running::RunningStatSet;
use bnff_train::ParamSet;
use std::collections::HashMap;
use std::sync::Arc;

/// The inference-ready parameters of one frozen node.
#[derive(Debug, Clone, PartialEq)]
pub enum FrozenParams {
    /// Convolution filters (possibly scaled by a folded BN) and bias.
    Conv {
        /// Filter tensor `(Cout, Cin, Kh, Kw)`.
        weights: Tensor,
        /// Per-output-channel bias (present whenever an affine was folded).
        bias: Option<Vec<f32>>,
    },
    /// Fully-connected weights `(out, in)` and bias.
    Fc {
        /// Weight matrix `(out, in)`.
        weights: Tensor,
        /// Bias of length `out`.
        bias: Vec<f32>,
    },
    /// A standalone per-channel affine.
    Affine {
        /// Per-channel scale.
        scale: Vec<f32>,
        /// Per-channel shift.
        shift: Vec<f32>,
    },
}

/// All frozen parameters, keyed by frozen-graph node index. Entries are
/// reference-counted so a tape compiler can pre-bind per-instruction
/// parameter handles without cloning weights.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrozenParamSet {
    entries: HashMap<usize, Arc<FrozenParams>>,
}

impl FrozenParamSet {
    /// Looks up the parameters of a frozen node.
    pub fn get(&self, id: NodeId) -> Option<&FrozenParams> {
        self.entries.get(&id.index()).map(Arc::as_ref)
    }

    /// Looks up the parameters of a frozen node as a shared handle, for
    /// executors that bind parameters per instruction ahead of time.
    pub fn get_shared(&self, id: NodeId) -> Option<Arc<FrozenParams>> {
        self.entries.get(&id.index()).cloned()
    }

    /// Number of parameterised frozen nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters the frozen model carries.
    pub fn scalar_count(&self) -> usize {
        self.entries
            .values()
            .map(|p| match p.as_ref() {
                FrozenParams::Conv { weights, bias } => {
                    weights.len() + bias.as_ref().map(Vec::len).unwrap_or(0)
                }
                FrozenParams::Fc { weights, bias } => weights.len() + bias.len(),
                FrozenParams::Affine { scale, shift } => scale.len() + shift.len(),
            })
            .sum()
    }
}

/// The γ/β a recipe's `gamma_beta` node owns in the training parameters.
fn gamma_beta(params: &ParamSet, id: NodeId) -> Result<(&[f32], &[f32])> {
    match params.get(id) {
        Some(NodeParams::Bn(bn)) => Ok((&bn.gamma, &bn.beta)),
        Some(NodeParams::ConvBn { bn, .. }) => Ok((&bn.gamma, &bn.beta)),
        _ => Err(ServeError::Fold(format!("node {id} owns no γ/β parameters"))),
    }
}

/// The affine `(scale, shift)` of one [`AffineSource`].
fn affine_coefficients(
    params: &ParamSet,
    running: &RunningStatSet,
    src: &AffineSource,
) -> Result<(Vec<f32>, Vec<f32>)> {
    let (gamma, beta) = gamma_beta(params, src.gamma_beta)?;
    let stats = running.get(src.stats).ok_or_else(|| {
        ServeError::Fold(format!("no running statistics for stats node {}", src.stats))
    })?;
    Ok(bn_affine_coefficients(gamma, beta, &stats.mean, &stats.var, src.epsilon)?)
}

/// Scales weight "rows" (leading-axis slices) and folds the affine into the
/// bias: `w'[o] = scale[o]·w[o]`, `b'[o] = scale[o]·b[o] + shift[o]`.
fn fold_into_weights(
    weights: &Tensor,
    bias: Option<&[f32]>,
    scale: &[f32],
    shift: &[f32],
) -> Result<(Tensor, Vec<f32>)> {
    let out_channels = weights.shape().dim(0).map_err(ServeError::Tensor)?;
    if scale.len() != out_channels {
        return Err(ServeError::Fold(format!(
            "affine covers {} channels but the producer has {out_channels} output channels",
            scale.len()
        )));
    }
    let row = weights.len() / out_channels.max(1);
    let mut folded = weights.clone();
    for (oc, chunk) in folded.as_mut_slice().chunks_mut(row.max(1)).enumerate() {
        for v in chunk.iter_mut() {
            *v *= scale[oc];
        }
    }
    let folded_bias = (0..out_channels)
        .map(|oc| scale[oc] * bias.map(|b| b[oc]).unwrap_or(0.0) + shift[oc])
        .collect();
    Ok((folded, folded_bias))
}

/// Applies a [`FrozenGraph`]'s fold plan to a trained parameter set and its
/// running statistics.
///
/// # Errors
/// Returns [`ServeError::Fold`] when a recipe references missing training
/// state or the channel counts disagree.
pub fn fold_params(
    frozen: &FrozenGraph,
    params: &ParamSet,
    running: &RunningStatSet,
) -> Result<FrozenParamSet> {
    let mut entries = HashMap::new();
    for (&idx, recipe) in &frozen.recipes {
        let folded = match recipe {
            FoldRecipe::Conv { source, affine } => {
                let (weights, bias) = match params.get(*source) {
                    Some(NodeParams::Conv { weights, bias }) => (weights, bias.as_deref()),
                    Some(NodeParams::ConvBn { weights, bias, .. }) => (weights, bias.as_deref()),
                    _ => {
                        return Err(ServeError::Fold(format!(
                            "node {source} owns no convolution parameters"
                        )))
                    }
                };
                match affine {
                    Some(src) => {
                        let (scale, shift) = affine_coefficients(params, running, src)?;
                        let (weights, bias) = fold_into_weights(weights, bias, &scale, &shift)?;
                        FrozenParams::Conv { weights, bias: Some(bias) }
                    }
                    None => FrozenParams::Conv {
                        weights: weights.clone(),
                        bias: bias.map(<[f32]>::to_vec),
                    },
                }
            }
            FoldRecipe::Fc { source, affine } => {
                let (weights, bias) = match params.get(*source) {
                    Some(NodeParams::Fc { weights, bias }) => (weights, bias),
                    _ => {
                        return Err(ServeError::Fold(format!(
                            "node {source} owns no fully-connected parameters"
                        )))
                    }
                };
                match affine {
                    Some(src) => {
                        let (scale, shift) = affine_coefficients(params, running, src)?;
                        let (weights, bias) =
                            fold_into_weights(weights, Some(bias), &scale, &shift)?;
                        FrozenParams::Fc { weights, bias }
                    }
                    None => FrozenParams::Fc { weights: weights.clone(), bias: bias.clone() },
                }
            }
            FoldRecipe::Affine(src) => {
                let (scale, shift) = affine_coefficients(params, running, src)?;
                FrozenParams::Affine { scale, shift }
            }
        };
        entries.insert(idx, Arc::new(folded));
    }
    Ok(FrozenParamSet { entries })
}
