//! # bnff-serve — the inference serving subsystem
//!
//! At inference time the paper's restructuring collapses entirely: Batch
//! Normalization (and every BNFF-fused variant of it) normalizes with
//! *running* statistics, which is a per-channel affine that folds into the
//! adjacent convolution's weights and bias. This crate turns that
//! observation into a servable system, in three layers:
//!
//! 1. **Freeze + fold** — [`FrozenModel`] applies the structural freeze
//!    pass (`bnff_graph::passes::freeze`) to a trained graph at *any*
//!    fusion level, then applies the fold plan numerically
//!    ([`params::fold_params`]): scaled filters, folded biases, residual
//!    [`ChannelAffine`](bnff_graph::op::OpKind::ChannelAffine) nodes only
//!    where a Concat or element-wise sum blocks the fold.
//! 2. **Execute** — [`FrozenExecutor`] runs the frozen graph forward-only
//!    over an [`ExecutionPlan::for_inference`](bnff_graph::plan::ExecutionPlan::for_inference)
//!    memory plan, so every intermediate activation recycles through one
//!    small arena and the same `bnff-parallel`-threaded kernels the trainer
//!    uses keep results bit-identical across `BNFF_THREADS`.
//! 3. **Serve** — [`ServeEngine`] admits single-sample requests into
//!    per-worker bounded shard queues (spilling to siblings, shedding with
//!    [`ServeError::Overloaded`] only when every queue is full), coalesces
//!    them into dynamic micro-batches (`max_batch`/`max_wait` bounded, with
//!    optional deadline expiry), partitions the kernel-thread budget
//!    disjointly across workers, and reports latency percentiles +
//!    throughput ([`metrics::ServeReport`]). The [`loadgen`] module drives
//!    open-loop arrival-rate sweeps against the engine to trace its
//!    latency-vs-throughput curve.
//!
//! Training and serving are separate processes in principle: the trainer
//! writes a model file — a JSON [`Checkpoint`](bnff_train::Checkpoint) or a
//! binary `bnff-artifact` — and the server loads it via
//! [`ServeEngine::builder`]`().model_file(..)` (or [`FrozenModel::load`]),
//! which sniffs the format from the magic bytes.
//!
//! ## Example
//!
//! Every construction path goes through one fluent pipeline — *model
//! source → batching knobs → start*:
//!
//! ```rust
//! use bnff_graph::builder::GraphBuilder;
//! use bnff_graph::op::Conv2dAttrs;
//! use bnff_serve::ServeEngine;
//! use bnff_tensor::{init::Initializer, Shape};
//! use bnff_train::Executor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input("data", Shape::nchw(4, 3, 8, 8))?;
//! let labels = b.input("labels", Shape::vector(4))?;
//! let c = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(4), "block")?;
//! let gap = b.global_avg_pool(c, "gap")?;
//! let fc = b.fully_connected(gap, 2, "fc")?;
//! b.softmax_loss(fc, labels, "loss")?;
//!
//! let exec = Executor::new(b.finish(), 42)?;
//! // Freeze + fold through the builder; `.start()` would spin up workers,
//! // `.build_model()` hands back the frozen model for direct execution.
//! let model = ServeEngine::builder().executor(&exec).build_model()?;
//! // Stamp a single-sample executor and classify one image.
//! let single = model.executor(1)?;
//! let image = Initializer::seeded(1).uniform(Shape::nchw(1, 3, 8, 8), -1.0, 1.0);
//! let scores = single.infer(&image)?;
//! assert_eq!(scores.shape(), &Shape::matrix(1, 2));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assembly;
pub mod builder;
pub mod engine;
pub mod error;
pub mod executor;
pub mod http;
pub mod httpd;
pub mod loadgen;
pub mod metrics;
pub mod model;
pub mod params;

pub use builder::ServeEngineBuilder;
pub use engine::{BatchingConfig, Completion, RequestTrace, ServeEngine};
pub use error::ServeError;
pub use executor::{FrozenExecutor, OpProfile};
pub use httpd::{HttpOptions, HttpServer};
pub use loadgen::{LoadPoint, OpenLoopConfig};
pub use metrics::{MetricsSnapshot, ServeMetrics, ServeReport};
pub use model::FrozenModel;
pub use params::{FrozenParamSet, FrozenParams};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
