//! The batch-assembly state machine, factored out of the engine.
//!
//! A serve worker holding its shard's lock must decide, from the queue it
//! can see, whether to take a batch now, sleep bounded for co-batchers,
//! park until new work arrives, or exit. Getting this handoff wrong is how
//! the previous single-queue engine lost throughput under load: a worker
//! that parks while requests are pending strands them until the next
//! submission's wakeup, and a worker that dwells past `max_wait` turns the
//! batching delay bound into a lie. Keeping the decision a pure function of
//! `(queue length, oldest wait, shutdown flag)` makes every interleaving
//! checkable: the `handoff_schedules` test enumerates operation orders
//! against a virtual clock and asserts the invariants below over all of
//! them, which no amount of sleep-based stress testing can.
//!
//! Invariants (tested exhaustively over schedule permutations):
//!
//! - [`BatchStep::Park`] is returned **only** for an empty queue — pending
//!   work never waits on a wakeup that might not come.
//! - [`BatchStep::Take`] never exceeds `max_batch`, and fires exactly when
//!   the batch is full, the oldest request has waited `max_wait`, or the
//!   engine is shutting down (drain-on-shutdown).
//! - [`BatchStep::WaitFor`] bounds are positive and never exceed the oldest
//!   request's remaining `max_wait` allowance, so repeated waits make
//!   progress and a request's assembly delay is bounded by `max_wait`.
//! - [`BatchStep::Exit`] is returned only when shutdown has been observed
//!   *and* the queue is drained.

use std::time::Duration;

/// What a worker should do next with its shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStep {
    /// Drain this many requests from the queue front and run them as one
    /// coalesced batch.
    Take(usize),
    /// Keep the batch open: sleep at most this long for co-batchers (or an
    /// earlier wakeup), then re-decide.
    WaitFor(Duration),
    /// The queue is empty: park until a submission signals new work.
    Park,
    /// The queue is empty and the engine is shutting down: the worker is
    /// done.
    Exit,
}

/// Decides the next step for a shard whose queue currently holds `queued`
/// requests, the oldest of which has been waiting `oldest_wait`.
///
/// `oldest_wait` is ignored when `queued == 0`; callers pass the elapsed
/// queueing delay of the front (oldest) request otherwise.
#[must_use]
pub fn plan_step(
    queued: usize,
    oldest_wait: Duration,
    shutdown: bool,
    max_batch: usize,
    max_wait: Duration,
) -> BatchStep {
    let max_batch = max_batch.max(1);
    if queued == 0 {
        return if shutdown { BatchStep::Exit } else { BatchStep::Park };
    }
    if queued >= max_batch || shutdown || oldest_wait >= max_wait {
        return BatchStep::Take(queued.min(max_batch));
    }
    BatchStep::WaitFor(max_wait - oldest_wait)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn empty_queue_parks_or_exits() {
        assert_eq!(plan_step(0, Duration::ZERO, false, 8, 2 * MS), BatchStep::Park);
        assert_eq!(plan_step(0, Duration::ZERO, true, 8, 2 * MS), BatchStep::Exit);
        // A stale oldest_wait must not matter for an empty queue.
        assert_eq!(plan_step(0, 100 * MS, false, 8, 2 * MS), BatchStep::Park);
    }

    #[test]
    fn full_queue_takes_at_most_max_batch() {
        assert_eq!(plan_step(8, Duration::ZERO, false, 8, 2 * MS), BatchStep::Take(8));
        assert_eq!(plan_step(13, Duration::ZERO, false, 8, 2 * MS), BatchStep::Take(8));
        assert_eq!(plan_step(3, Duration::ZERO, false, 3, 2 * MS), BatchStep::Take(3));
    }

    #[test]
    fn ripe_or_shutdown_queues_take_partial_batches() {
        assert_eq!(plan_step(3, 2 * MS, false, 8, 2 * MS), BatchStep::Take(3));
        assert_eq!(plan_step(3, 5 * MS, false, 8, 2 * MS), BatchStep::Take(3));
        assert_eq!(plan_step(1, Duration::ZERO, true, 8, 2 * MS), BatchStep::Take(1));
    }

    #[test]
    fn unripe_partial_batches_wait_the_remaining_allowance() {
        match plan_step(3, MS / 2, false, 8, 2 * MS) {
            BatchStep::WaitFor(d) => assert_eq!(d, 2 * MS - MS / 2),
            other => panic!("expected WaitFor, got {other:?}"),
        }
    }

    #[test]
    fn zero_max_batch_is_clamped_not_divided() {
        assert_eq!(plan_step(5, Duration::ZERO, false, 0, 2 * MS), BatchStep::Take(1));
    }

    #[test]
    fn zero_max_wait_never_waits() {
        // max_wait == 0 means "no coalescing delay": any pending request is
        // immediately ripe.
        assert_eq!(plan_step(1, Duration::ZERO, false, 8, Duration::ZERO), BatchStep::Take(1));
    }
}
