//! The forward-only frozen-graph executor.
//!
//! Structurally a sibling of the training executor, minus everything
//! training needs: no backward retention (the memory plan comes from
//! [`ExecutionPlan::for_inference`], so *every* intermediate activation
//! recycles through the arena), no statistics, no loss head. Kernels are
//! the same `bnff-kernels` entry points the trainer uses — including the
//! inference-only `conv2d_forward_relu_into` and `channel_affine_into` —
//! so inference saturates `BNFF_THREADS` cores with thread-count-identical
//! results.

use crate::error::ServeError;
use crate::params::{FrozenParamSet, FrozenParams};
use crate::Result;
use bnff_graph::op::{OpKind, PoolKind};
use bnff_graph::plan::ExecutionPlan;
use bnff_graph::{Graph, Node, NodeId};
use bnff_kernels::affine::channel_affine_into;
use bnff_kernels::concat::concat_forward_into;
use bnff_kernels::conv::{conv2d_forward_into, conv2d_forward_relu_into};
use bnff_kernels::eltwise::eltwise_sum_forward_into;
use bnff_kernels::fc::fc_forward;
use bnff_kernels::pool::{avg_pool_forward_into, global_avg_pool_forward, max_pool_forward_into};
use bnff_kernels::relu::relu_forward_into;
use bnff_tensor::{Shape, Tensor};
use std::sync::{Arc, Mutex};

/// A forward-only executor bound to one frozen graph at one batch size.
#[derive(Debug)]
pub struct FrozenExecutor {
    graph: Graph,
    params: Arc<FrozenParamSet>,
    plan: ExecutionPlan,
    input: NodeId,
    output: NodeId,
    batch: usize,
    /// Recycled arena buffers, one bin per plan slot (kept across calls).
    workspace: Mutex<Vec<Option<Vec<f32>>>>,
}

impl FrozenExecutor {
    /// Creates an executor over a frozen graph and its folded parameters.
    ///
    /// # Errors
    /// Returns an error when the graph cannot be memory-planned.
    pub fn new(
        graph: Graph,
        params: Arc<FrozenParamSet>,
        input: NodeId,
        output: NodeId,
    ) -> Result<Self> {
        let plan = ExecutionPlan::for_inference(&graph)?;
        let batch = graph.node(input)?.output_shape.dim(0).map_err(ServeError::Tensor)?;
        let workspace = Mutex::new(vec![None; plan.slot_count()]);
        Ok(FrozenExecutor { graph, params, plan, input, output, batch, workspace })
    }

    /// The executor's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The inference memory plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The batch size this executor is bound to.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The expected input shape.
    pub fn input_shape(&self) -> Shape {
        self.graph.node(self.input).map(|n| n.output_shape.clone()).unwrap_or(Shape::scalar())
    }

    fn conv_params(&self, node: &Node) -> Result<(&Tensor, Option<&[f32]>)> {
        match self.params.get(node.id) {
            Some(FrozenParams::Conv { weights, bias }) => Ok((weights, bias.as_deref())),
            _ => Err(ServeError::Fold(format!("no frozen conv parameters for '{}'", node.name))),
        }
    }

    fn alloc_output(&self, ws: &mut [Option<Vec<f32>>], id: NodeId, shape: &Shape) -> Tensor {
        if let Some(slot) = self.plan.slot(id) {
            if let Some(mut buf) = ws[slot].take() {
                // Every kernel overwrites its whole output; leftover bytes
                // in a grown buffer are never read.
                buf.resize(shape.volume(), 0.0);
                return Tensor::from_vec(shape.clone(), buf)
                    .expect("arena buffer resized to the shape's volume");
            }
        }
        Tensor::zeros(shape.clone())
    }

    fn release_dead(&self, ws: &mut [Option<Vec<f32>>], values: &mut [Option<Tensor>], pos: usize) {
        for &dead in self.plan.released_after(pos) {
            if let Some(tensor) = values[dead].take() {
                let slot = self
                    .plan
                    .slot(NodeId::new(dead))
                    .expect("released tensors always have a plan slot");
                ws[slot] = Some(tensor.into_vec());
            }
        }
    }

    /// Runs one forward pass, returning the frozen graph's output (the
    /// classifier scores).
    ///
    /// # Errors
    /// Returns an error when the input shape disagrees with the graph or a
    /// kernel fails.
    pub fn infer(&self, data: &Tensor) -> Result<Tensor> {
        self.infer_owned(data.clone())
    }

    /// [`FrozenExecutor::infer`] taking the batch by value, so the input
    /// buffer recycles into the arena instead of being copied — the entry
    /// point the batching engine drives (it builds the stacked batch tensor
    /// anyway).
    ///
    /// # Errors
    /// Returns an error when the input shape disagrees with the graph or a
    /// kernel fails.
    pub fn infer_owned(&self, data: Tensor) -> Result<Tensor> {
        let expected = &self.graph.node(self.input)?.output_shape;
        expected.expect_same(data.shape()).map_err(ServeError::Tensor)?;

        let n = self.graph.node_count();
        let mut values: Vec<Option<Tensor>> = vec![None; n];
        values[self.input.index()] = Some(data);
        let mut ws = self.workspace.lock().unwrap_or_else(std::sync::PoisonError::into_inner);

        for (pos, &id) in self.plan.order().iter().enumerate() {
            let node = self.graph.node(id)?;
            let out = match &node.op {
                OpKind::Input => None, // Pre-seeded.
                OpKind::Conv2d(a) | OpKind::ConvRelu(a) => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (w, b) = self.conv_params(node)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    if matches!(node.op, OpKind::ConvRelu(_)) {
                        conv2d_forward_relu_into(x, w, b, a, &mut out)?;
                    } else {
                        conv2d_forward_into(x, w, b, a, &mut out)?;
                    }
                    Some(out)
                }
                OpKind::ChannelAffine => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (scale, shift) = match self.params.get(id) {
                        Some(FrozenParams::Affine { scale, shift }) => (scale, shift),
                        _ => {
                            return Err(ServeError::Fold(format!(
                                "no frozen affine parameters for '{}'",
                                node.name
                            )))
                        }
                    };
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    channel_affine_into(x, scale, shift, &mut out)?;
                    Some(out)
                }
                OpKind::Relu => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    relu_forward_into(x, &mut out)?;
                    Some(out)
                }
                OpKind::Pool { kind, attrs } => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    match kind {
                        // State-free inference kernel: no argmax retained.
                        PoolKind::Max => max_pool_forward_into(x, attrs, &mut out)?,
                        PoolKind::Average => avg_pool_forward_into(x, attrs, &mut out)?,
                    }
                    Some(out)
                }
                OpKind::GlobalAvgPool => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    Some(global_avg_pool_forward(x)?)
                }
                OpKind::Concat => {
                    let refs = input_values(&self.plan, &values, node)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    concat_forward_into(&refs, &mut out)?;
                    Some(out)
                }
                OpKind::Split { .. } => None, // Alias, resolved by the plan.
                OpKind::EltwiseSum => {
                    let refs = input_values(&self.plan, &values, node)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    eltwise_sum_forward_into(&refs, &mut out)?;
                    Some(out)
                }
                OpKind::FullyConnected { .. } => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (w, b) = match self.params.get(id) {
                        Some(FrozenParams::Fc { weights, bias }) => (weights, bias),
                        _ => {
                            return Err(ServeError::Fold(format!(
                                "no frozen FC parameters for '{}'",
                                node.name
                            )))
                        }
                    };
                    Some(fc_forward(x, w, b)?)
                }
                other => {
                    return Err(ServeError::InvalidArgument(format!(
                        "frozen graphs cannot contain the training operator {other}"
                    )))
                }
            };
            if let Some(out) = out {
                values[id.index()] = Some(out);
            }
            self.release_dead(&mut ws, &mut values, pos);
        }

        values[self.plan.resolve(self.output).index()]
            .take()
            .ok_or_else(|| ServeError::InvalidArgument("frozen graph produced no output".into()))
    }
}

fn input_value<'a>(
    plan: &ExecutionPlan,
    values: &'a [Option<Tensor>],
    node: &Node,
    idx: usize,
) -> Result<&'a Tensor> {
    let input = node.inputs[idx];
    values[plan.resolve(input).index()]
        .as_ref()
        .ok_or_else(|| ServeError::InvalidArgument(format!("missing output of {input}")))
}

fn input_values<'a>(
    plan: &ExecutionPlan,
    values: &'a [Option<Tensor>],
    node: &Node,
) -> Result<Vec<&'a Tensor>> {
    (0..node.inputs.len()).map(|i| input_value(plan, values, node, i)).collect()
}
