//! The forward-only frozen-graph executor.
//!
//! Serving requests used to walk the graph: match on every node's `OpKind`,
//! look parameters up in a hash map, resolve Split aliases and query the
//! memory plan's liveness tables — all request-invariant work. The executor
//! now compiles the frozen graph once, at construction, into a
//! [`LinearProgram`]: a flat instruction tape in topological order whose
//! instructions carry fully-resolved kernel recipes (op kind, shapes,
//! fused-ReLU flag, conv lowering strategy) and pre-resolved register
//! operands. [`FrozenExecutor::infer`] is a tape walker — `for instr in
//! program` dispatching straight into the `*_into` kernels with
//! pre-bound parameter handles; no dispatch decision survives to request
//! time.
//!
//! Kernels are the same `bnff-kernels` entry points the trainer uses, so
//! inference saturates `BNFF_THREADS` cores with thread-count-identical
//! results — which also makes the program's serial hint free to honour:
//! cheap batch-1 programs run under a single thread to skip the fan-out
//! cost without changing a single bit of output.
//!
//! The per-node interpreted walk survives as
//! [`FrozenExecutor::infer_interpreted`] — the reference implementation the
//! tape is tested bit-identical against.
//!
//! ## Per-op profiling
//!
//! Every executor carries an opt-in [`OpProfiler`] with one slot per tape
//! instruction. When enabled ([`FrozenExecutor::enable_profiling`]) the
//! tape walk times each instruction and accumulates per-slot nanoseconds;
//! [`FrozenExecutor::profile`] folds the slots back into per-instruction
//! [`OpProfile`] rows (node, op kind, call count, total/max ns) that the
//! bench harness pairs with `bnff-memsim`'s predicted DRAM bytes. When
//! disabled — the default — the cost is a single relaxed atomic load per
//! forward pass: the instrumented loop is never entered and inference
//! remains bit-identical either way (timing never touches data).

use crate::error::ServeError;
use crate::params::{FrozenParamSet, FrozenParams};
use crate::Result;
use bnff_graph::linear::{Instr, Kernel, LinearProgram};
use bnff_graph::op::{OpKind, PoolKind};
use bnff_graph::plan::ExecutionPlan;
use bnff_graph::{Graph, Node, NodeId};
use bnff_kernels::affine::{
    channel_affine_in_place, channel_affine_into, channel_affine_relu_in_place,
    channel_affine_relu_into,
};
use bnff_kernels::concat::concat_forward_into;
use bnff_kernels::conv::{
    conv2d_forward_gather_into, conv2d_forward_into, conv2d_forward_relu_into,
};
use bnff_kernels::eltwise::eltwise_sum_forward_into;
use bnff_kernels::fc::{fc_forward, fc_forward_into};
use bnff_kernels::pool::{
    avg_pool_forward_into, global_avg_pool_forward, global_avg_pool_forward_into,
    max_pool_forward_into,
};
use bnff_kernels::relu::{relu_forward_inplace, relu_forward_into};
use bnff_obs::OpProfiler;
use bnff_parallel::with_threads;
use bnff_tensor::{Shape, Tensor};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Accumulated timings of one tape instruction (see
/// [`FrozenExecutor::profile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// The graph node the instruction computes.
    pub node: NodeId,
    /// The node's name.
    pub name: String,
    /// The kernel's op-kind label (`"conv"`, `"affine"`, …).
    pub kind: &'static str,
    /// Recorded executions.
    pub count: u64,
    /// Total nanoseconds across executions.
    pub total_ns: u64,
    /// Slowest single execution in nanoseconds.
    pub max_ns: u64,
}

/// A forward-only executor bound to one frozen graph at one batch size.
#[derive(Debug)]
pub struct FrozenExecutor {
    graph: Graph,
    params: Arc<FrozenParamSet>,
    plan: ExecutionPlan,
    program: LinearProgram,
    /// Per-instruction parameter handles, aligned with `program.instrs()` —
    /// bound once at compile time so the request path never touches the
    /// parameter hash map.
    bound: Vec<Option<Arc<FrozenParams>>>,
    input: NodeId,
    output: NodeId,
    batch: usize,
    /// The tape's register file (kept across calls so buffers recycle).
    registers: Mutex<Vec<Option<Tensor>>>,
    /// Recycled arena buffers for the interpreted path, one bin per plan
    /// slot (kept across calls).
    workspace: Mutex<Vec<Option<Vec<f32>>>>,
    /// Opt-in per-instruction timing; one slot per tape instruction. Off
    /// by default — the disabled cost is one relaxed load per pass.
    profiler: OpProfiler,
}

impl FrozenExecutor {
    /// Creates an executor over a frozen graph and its folded parameters:
    /// plans the graph's memory, lowers it to a [`LinearProgram`] and binds
    /// every instruction's parameters. All lowering errors (training-only
    /// operators, missing parameters, register hazards) surface here, not
    /// at request time.
    ///
    /// # Errors
    /// Returns an error when the graph cannot be memory-planned, lowered,
    /// or a parameterised instruction has no folded parameters.
    pub fn new(
        graph: Graph,
        params: Arc<FrozenParamSet>,
        input: NodeId,
        output: NodeId,
    ) -> Result<Self> {
        let plan = ExecutionPlan::for_inference(&graph)?;
        let program = LinearProgram::lower(&graph, &plan, input, output)?;
        let batch = graph.node(input)?.output_shape.dim(0).map_err(ServeError::Tensor)?;
        let bound = bind_params(&program, &params)?;
        let registers = Mutex::new((0..program.reg_count()).map(|_| None).collect());
        let workspace = Mutex::new(vec![None; plan.slot_count()]);
        let profiler = OpProfiler::new(program.instrs().len());
        Ok(FrozenExecutor {
            graph,
            params,
            plan,
            program,
            bound,
            input,
            output,
            batch,
            registers,
            workspace,
            profiler,
        })
    }

    /// Turns per-instruction timing on or off (off by default). Profiling
    /// never changes results — it only reads the clock around kernels.
    pub fn enable_profiling(&self, on: bool) {
        self.profiler.set_enabled(on);
    }

    /// Whether per-instruction timing is currently on.
    pub fn profiling_enabled(&self) -> bool {
        self.profiler.enabled()
    }

    /// Zeroes the accumulated per-instruction timings.
    pub fn reset_profile(&self) {
        self.profiler.reset();
    }

    /// The accumulated per-instruction timings, one row per tape
    /// instruction in execution order. Rows with `count == 0` mean the
    /// instruction never ran while profiling was enabled.
    pub fn profile(&self) -> Vec<OpProfile> {
        self.program
            .instrs()
            .iter()
            .zip(self.profiler.snapshot())
            .map(|(instr, stats)| OpProfile {
                node: instr.op_node,
                name: instr.name.clone(),
                kind: instr.kernel.kind_name(),
                count: stats.count,
                total_ns: stats.total_ns,
                max_ns: stats.max_ns,
            })
            .collect()
    }

    /// The executor's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The inference memory plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The compiled instruction tape.
    pub fn program(&self) -> &LinearProgram {
        &self.program
    }

    /// The batch size this executor is bound to.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The expected input shape.
    pub fn input_shape(&self) -> Shape {
        self.program.input_shape().clone()
    }

    /// Runs one forward pass over the compiled tape, returning the frozen
    /// graph's output (the classifier scores).
    ///
    /// # Errors
    /// Returns an error when the input shape disagrees with the graph or a
    /// kernel fails.
    pub fn infer(&self, data: &Tensor) -> Result<Tensor> {
        self.infer_owned(data.clone())
    }

    /// [`FrozenExecutor::infer`] taking the batch by value, so the input
    /// buffer moves into the register file instead of being copied — the
    /// entry point the batching engine drives (it builds the stacked batch
    /// tensor anyway).
    ///
    /// # Errors
    /// Returns an error when the input shape disagrees with the graph or a
    /// kernel fails.
    pub fn infer_owned(&self, data: Tensor) -> Result<Tensor> {
        if self.program.prefers_serial() {
            // Cheap pass: per-kernel thread fan-out costs more than it
            // buys. Kernels are thread-count bit-identical, so this cannot
            // change the result.
            with_threads(1, || self.run_tape(data))
        } else {
            self.run_tape(data)
        }
    }

    fn run_tape(&self, data: Tensor) -> Result<Tensor> {
        self.program.input_shape().expect_same(data.shape()).map_err(ServeError::Tensor)?;
        let mut regs = self.registers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        regs[self.program.input_reg()] = Some(data);
        // One relaxed load decides the loop; the disabled path is exactly
        // the uninstrumented walk (no clock reads, no per-op branches).
        if self.profiler.enabled() {
            for (i, (instr, params)) in self.program.instrs().iter().zip(&self.bound).enumerate() {
                let began = Instant::now();
                exec_instr(&mut regs, instr, params.as_deref())?;
                self.profiler.record(i, began.elapsed().as_nanos() as u64);
            }
        } else {
            for (instr, params) in self.program.instrs().iter().zip(&self.bound) {
                exec_instr(&mut regs, instr, params.as_deref())?;
            }
        }
        regs[self.program.output_reg()]
            .take()
            .ok_or_else(|| ServeError::InvalidArgument("tape produced no output".into()))
    }

    fn conv_params(&self, node: &Node) -> Result<(&Tensor, Option<&[f32]>)> {
        match self.params.get(node.id) {
            Some(FrozenParams::Conv { weights, bias }) => Ok((weights, bias.as_deref())),
            _ => Err(ServeError::Fold(format!("no frozen conv parameters for '{}'", node.name))),
        }
    }

    fn alloc_output(&self, ws: &mut [Option<Vec<f32>>], id: NodeId, shape: &Shape) -> Tensor {
        if let Some(slot) = self.plan.slot(id) {
            if let Some(mut buf) = ws[slot].take() {
                // Every kernel overwrites its whole output; leftover bytes
                // in a grown buffer are never read.
                buf.resize(shape.volume(), 0.0);
                return Tensor::from_vec(shape.clone(), buf)
                    .expect("arena buffer resized to the shape's volume");
            }
        }
        Tensor::zeros(shape.clone())
    }

    fn release_dead(&self, ws: &mut [Option<Vec<f32>>], values: &mut [Option<Tensor>], pos: usize) {
        for &dead in self.plan.released_after(pos) {
            if let Some(tensor) = values[dead].take() {
                let slot = self
                    .plan
                    .slot(NodeId::new(dead))
                    .expect("released tensors always have a plan slot");
                ws[slot] = Some(tensor.into_vec());
            }
        }
    }

    /// Runs one forward pass by interpreting the graph node by node — the
    /// pre-tape reference implementation. The tape is tested bit-identical
    /// against this walk across the model zoo. The walk deliberately does
    /// *not* honour the tape's serial-execution hint: the hint comes from
    /// the linear IR's compile-time FLOPs analysis, so it is part of what
    /// the `tape_over_interpreted` comparison measures.
    ///
    /// # Errors
    /// Returns an error when the input shape disagrees with the graph or a
    /// kernel fails.
    pub fn infer_interpreted(&self, data: &Tensor) -> Result<Tensor> {
        let expected = &self.graph.node(self.input)?.output_shape;
        expected.expect_same(data.shape()).map_err(ServeError::Tensor)?;

        let n = self.graph.node_count();
        let mut values: Vec<Option<Tensor>> = vec![None; n];
        values[self.input.index()] = Some(data.clone());
        let mut ws = self.workspace.lock().unwrap_or_else(std::sync::PoisonError::into_inner);

        for (pos, &id) in self.plan.order().iter().enumerate() {
            let node = self.graph.node(id)?;
            let out = match &node.op {
                OpKind::Input => None, // Pre-seeded.
                OpKind::Conv2d(a) | OpKind::ConvRelu(a) => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (w, b) = self.conv_params(node)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    if matches!(node.op, OpKind::ConvRelu(_)) {
                        conv2d_forward_relu_into(x, w, b, a, &mut out)?;
                    } else {
                        conv2d_forward_into(x, w, b, a, &mut out)?;
                    }
                    Some(out)
                }
                OpKind::ChannelAffine => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (scale, shift) = match self.params.get(id) {
                        Some(FrozenParams::Affine { scale, shift }) => (scale, shift),
                        _ => {
                            return Err(ServeError::Fold(format!(
                                "no frozen affine parameters for '{}'",
                                node.name
                            )))
                        }
                    };
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    channel_affine_into(x, scale, shift, &mut out)?;
                    Some(out)
                }
                OpKind::Relu => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    relu_forward_into(x, &mut out)?;
                    Some(out)
                }
                OpKind::Pool { kind, attrs } => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    match kind {
                        // State-free inference kernel: no argmax retained.
                        PoolKind::Max => max_pool_forward_into(x, attrs, &mut out)?,
                        PoolKind::Average => avg_pool_forward_into(x, attrs, &mut out)?,
                    }
                    Some(out)
                }
                OpKind::GlobalAvgPool => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    Some(global_avg_pool_forward(x)?)
                }
                OpKind::Concat => {
                    let refs = input_values(&self.plan, &values, node)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    concat_forward_into(&refs, &mut out)?;
                    Some(out)
                }
                OpKind::Split { .. } => None, // Alias, resolved by the plan.
                OpKind::EltwiseSum => {
                    let refs = input_values(&self.plan, &values, node)?;
                    let mut out = self.alloc_output(&mut ws, id, &node.output_shape);
                    eltwise_sum_forward_into(&refs, &mut out)?;
                    Some(out)
                }
                OpKind::FullyConnected { .. } => {
                    let x = input_value(&self.plan, &values, node, 0)?;
                    let (w, b) = match self.params.get(id) {
                        Some(FrozenParams::Fc { weights, bias }) => (weights, bias),
                        _ => {
                            return Err(ServeError::Fold(format!(
                                "no frozen FC parameters for '{}'",
                                node.name
                            )))
                        }
                    };
                    Some(fc_forward(x, w, b)?)
                }
                other => {
                    return Err(ServeError::InvalidArgument(format!(
                        "frozen graphs cannot contain the training operator {other}"
                    )))
                }
            };
            if let Some(out) = out {
                values[id.index()] = Some(out);
            }
            self.release_dead(&mut ws, &mut values, pos);
        }

        values[self.plan.resolve(self.output).index()]
            .take()
            .ok_or_else(|| ServeError::InvalidArgument("frozen graph produced no output".into()))
    }
}

/// Pre-binds every instruction's parameter handle and checks the handle's
/// kind against the kernel recipe, so the tape walker can assume both.
fn bind_params(
    program: &LinearProgram,
    params: &FrozenParamSet,
) -> Result<Vec<Option<Arc<FrozenParams>>>> {
    program
        .instrs()
        .iter()
        .map(|instr| {
            let handle = params.get_shared(instr.op_node);
            let ok = match &instr.kernel {
                Kernel::Conv { .. } => {
                    matches!(handle.as_deref(), Some(FrozenParams::Conv { .. }))
                }
                Kernel::Affine { .. } => {
                    matches!(handle.as_deref(), Some(FrozenParams::Affine { .. }))
                }
                Kernel::FullyConnected => {
                    matches!(handle.as_deref(), Some(FrozenParams::Fc { .. }))
                }
                _ => return Ok(None),
            };
            if ok {
                Ok(handle)
            } else {
                Err(ServeError::Fold(format!(
                    "no frozen parameters for instruction '{}'",
                    instr.name
                )))
            }
        })
        .collect()
}

/// Takes the output register's buffer (or allocates one) shaped for the
/// instruction.
fn take_out(regs: &mut [Option<Tensor>], instr: &Instr) -> Tensor {
    match regs[instr.out].take() {
        Some(t) => {
            let mut buf = t.into_vec();
            // Every kernel overwrites its whole output; leftover values in
            // a grown buffer are never read.
            buf.resize(instr.out_volume, 0.0);
            Tensor::from_vec(instr.out_shape.clone(), buf)
                .expect("register buffer resized to the instruction's volume")
        }
        None => Tensor::zeros(instr.out_shape.clone()),
    }
}

fn reg_ref<'a>(regs: &'a [Option<Tensor>], instr: &Instr, idx: usize) -> Result<&'a Tensor> {
    regs[instr.inputs[idx]].as_ref().ok_or_else(|| {
        ServeError::InvalidArgument(format!(
            "register {} read by '{}' is empty",
            instr.inputs[idx], instr.name
        ))
    })
}

/// Executes one instruction against the register file.
fn exec_instr(
    regs: &mut [Option<Tensor>],
    instr: &Instr,
    params: Option<&FrozenParams>,
) -> Result<()> {
    // The in-place pointwise kernels: the planner recycled the input's
    // register for the output (it proved the input dead), so the kernel
    // sweeps the buffer once in place.
    if instr.inputs.first() == Some(&instr.out) {
        let mut buf = regs[instr.out].take().ok_or_else(|| {
            ServeError::InvalidArgument(format!(
                "register {} read by '{}' is empty",
                instr.out, instr.name
            ))
        })?;
        match (&instr.kernel, params) {
            (Kernel::Affine { fused_relu }, Some(FrozenParams::Affine { scale, shift })) => {
                if *fused_relu {
                    channel_affine_relu_in_place(&mut buf, scale, shift)?;
                } else {
                    channel_affine_in_place(&mut buf, scale, shift)?;
                }
            }
            (Kernel::Relu, _) => relu_forward_inplace(&mut buf),
            _ => {
                return Err(ServeError::InvalidArgument(format!(
                    "instruction '{}' runs in place but is not pointwise",
                    instr.name
                )))
            }
        }
        regs[instr.out] = Some(buf);
        return Ok(());
    }
    let mut out = take_out(regs, instr);
    match (&instr.kernel, params) {
        (
            Kernel::Conv { attrs, fused_relu, gather },
            Some(FrozenParams::Conv { weights, bias }),
        ) => {
            let x = reg_ref(regs, instr, 0)?;
            if *gather {
                conv2d_forward_gather_into(
                    x,
                    weights,
                    bias.as_deref(),
                    attrs,
                    *fused_relu,
                    &mut out,
                )?;
            } else if *fused_relu {
                conv2d_forward_relu_into(x, weights, bias.as_deref(), attrs, &mut out)?;
            } else {
                conv2d_forward_into(x, weights, bias.as_deref(), attrs, &mut out)?;
            }
        }
        (Kernel::Affine { fused_relu }, Some(FrozenParams::Affine { scale, shift })) => {
            let x = reg_ref(regs, instr, 0)?;
            if *fused_relu {
                channel_affine_relu_into(x, scale, shift, &mut out)?;
            } else {
                channel_affine_into(x, scale, shift, &mut out)?;
            }
        }
        (Kernel::Relu, _) => {
            relu_forward_into(reg_ref(regs, instr, 0)?, &mut out)?;
        }
        (Kernel::Pool { kind, attrs }, _) => {
            let x = reg_ref(regs, instr, 0)?;
            match kind {
                PoolKind::Max => max_pool_forward_into(x, attrs, &mut out)?,
                PoolKind::Average => avg_pool_forward_into(x, attrs, &mut out)?,
            }
        }
        (Kernel::GlobalAvgPool, _) => {
            global_avg_pool_forward_into(reg_ref(regs, instr, 0)?, &mut out)?;
        }
        (Kernel::Concat, _) => {
            let refs: Vec<&Tensor> =
                (0..instr.inputs.len()).map(|i| reg_ref(regs, instr, i)).collect::<Result<_>>()?;
            concat_forward_into(&refs, &mut out)?;
        }
        (Kernel::EltwiseSum, _) => {
            let refs: Vec<&Tensor> =
                (0..instr.inputs.len()).map(|i| reg_ref(regs, instr, i)).collect::<Result<_>>()?;
            eltwise_sum_forward_into(&refs, &mut out)?;
        }
        (Kernel::FullyConnected, Some(FrozenParams::Fc { weights, bias })) => {
            fc_forward_into(reg_ref(regs, instr, 0)?, weights, bias, &mut out)?;
        }
        _ => {
            return Err(ServeError::InvalidArgument(format!(
                "instruction '{}' has no parameters bound for its kernel",
                instr.name
            )))
        }
    }
    regs[instr.out] = Some(out);
    Ok(())
}

fn input_value<'a>(
    plan: &ExecutionPlan,
    values: &'a [Option<Tensor>],
    node: &Node,
    idx: usize,
) -> Result<&'a Tensor> {
    let input = node.inputs[idx];
    values[plan.resolve(input).index()]
        .as_ref()
        .ok_or_else(|| ServeError::InvalidArgument(format!("missing output of {input}")))
}

fn input_values<'a>(
    plan: &ExecutionPlan,
    values: &'a [Option<Tensor>],
    node: &Node,
) -> Result<Vec<&'a Tensor>> {
    (0..node.inputs.len()).map(|i| input_value(plan, values, node, i)).collect()
}
