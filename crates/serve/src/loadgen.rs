//! Open- and closed-loop load generation against a [`ServeEngine`].
//!
//! Closed-loop clients (submit, wait, repeat) can never observe
//! overload: their arrival rate falls to whatever the engine sustains, so
//! latency looks flat right up to the cliff. The **open-loop** generator
//! here submits on a fixed wall-clock schedule regardless of completions —
//! the arrival process real traffic presents — so as the offered rate
//! crosses the engine's capacity, queues fill, latency percentiles climb
//! and admission control starts shedding. Sweeping the offered rate
//! ([`sweep`]) therefore traces the engine's whole latency-vs-throughput
//! curve, including the saturated region a closed loop cannot reach.
//!
//! The closed-loop generator ([`closed_loop`]) is kept for the one thing it
//! measures well: peak sustainable throughput (drive `concurrency` ≥
//! `workers × max_batch` outstanding requests and the engine never idles),
//! which is the number the CI scaling gate compares across worker counts.
//!
//! Arrivals are paced on a deterministic uniform grid from an absolute
//! schedule (`start + i·interval`), so a late submission is followed by a
//! catch-up burst rather than a silently lowered offered rate.

use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::Result;
use bnff_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One measured point on a latency-vs-throughput curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// The arrival rate the generator offered (requests/second); `0.0` for
    /// closed-loop runs (arrivals track completions instead of a clock).
    pub offered_rps: f64,
    /// Completions per second of wall clock actually achieved.
    pub achieved_rps: f64,
    /// Requests the generator attempted to submit.
    pub submitted: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed at admission ([`ServeError::Overloaded`]).
    pub shed: usize,
    /// Requests expired in the queue ([`ServeError::DeadlineExceeded`]).
    pub expired: usize,
    /// Median end-to-end latency (ms) over completed requests.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency (ms) over completed requests.
    pub p99_ms: f64,
    /// 99.9th-percentile end-to-end latency (ms) over completed requests.
    pub p999_ms: f64,
    /// Mean coalesced batch size the engine reported for the run.
    pub mean_batch_size: f64,
}

/// Configuration for one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Target arrival rate, requests per second. Must be positive.
    pub offered_rps: f64,
    /// Number of requests to offer.
    pub requests: usize,
}

/// Exact nearest-rank percentile over the run's observed latencies: the
/// load generator sees every latency anyway, so it reports percentiles
/// unbucketed (the engine's own histograms trade exactness for lock-free
/// recording; a finished run has no such constraint).
fn percentile_ms(latencies: &[Duration], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = latencies.iter().map(|l| l.as_secs_f64() * 1e3).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // The epsilon guards the rank against binary-representation slop:
    // p = 99.9 over 1000 samples must rank 999, not ceil(999.0000…1).
    let rank = ((p * sorted.len() as f64) / 100.0 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn drain(
    receivers: Vec<mpsc::Receiver<Result<crate::engine::Completion>>>,
    latencies: &mut Vec<Duration>,
    batch_sizes: &mut Vec<usize>,
    expired: &mut usize,
) -> Result<()> {
    for rx in receivers {
        match rx.recv() {
            Ok(Ok(completion)) => {
                latencies.push(completion.latency);
                batch_sizes.push(completion.batch_size);
            }
            Ok(Err(ServeError::DeadlineExceeded)) => *expired += 1,
            Ok(Err(err)) => return Err(err),
            Err(_) => return Err(ServeError::ShuttingDown),
        }
    }
    Ok(())
}

fn point(
    offered_rps: f64,
    submitted: usize,
    shed: usize,
    expired: usize,
    wall: Duration,
    latencies: &[Duration],
    batch_sizes: &[usize],
) -> LoadPoint {
    let wall_seconds = wall.as_secs_f64().max(f64::MIN_POSITIVE);
    let mean_batch_size = if batch_sizes.is_empty() {
        0.0
    } else {
        batch_sizes.iter().sum::<usize>() as f64 / batch_sizes.len() as f64
    };
    LoadPoint {
        offered_rps,
        achieved_rps: latencies.len() as f64 / wall_seconds,
        submitted,
        completed: latencies.len(),
        shed,
        expired,
        p50_ms: percentile_ms(latencies, 50.0),
        p99_ms: percentile_ms(latencies, 99.0),
        p999_ms: percentile_ms(latencies, 99.9),
        mean_batch_size,
    }
}

/// Drives one open-loop run: `config.requests` arrivals on a uniform grid
/// at `config.offered_rps`, cycling through `samples`. Sheds and expiries
/// are counted, not errors; every other engine failure aborts the run.
///
/// # Errors
/// Returns an error for a non-positive rate, an empty sample set, or an
/// engine failure other than shed-load/deadline.
pub fn open_loop(
    engine: &ServeEngine,
    samples: &[Tensor],
    config: &OpenLoopConfig,
) -> Result<LoadPoint> {
    // NaN must fail too, hence the explicit "not a positive finite" check.
    if !(config.offered_rps.is_finite() && config.offered_rps > 0.0) {
        return Err(ServeError::InvalidArgument("offered_rps must be positive".into()));
    }
    if samples.is_empty() {
        return Err(ServeError::InvalidArgument("open_loop needs at least one sample".into()));
    }
    let interval = Duration::from_secs_f64(1.0 / config.offered_rps);
    let mut receivers = Vec::with_capacity(config.requests);
    let mut shed = 0usize;
    let start = Instant::now();
    for i in 0..config.requests {
        // Absolute schedule: late submissions catch up in a burst instead
        // of quietly lowering the offered rate.
        let due = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        match engine.submit(samples[i % samples.len()].clone()) {
            Ok(rx) => receivers.push(rx),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(err) => return Err(err),
        }
    }
    let mut latencies = Vec::new();
    let mut batch_sizes = Vec::new();
    let mut expired = 0usize;
    drain(receivers, &mut latencies, &mut batch_sizes, &mut expired)?;
    let wall = start.elapsed();
    Ok(point(config.offered_rps, config.requests, shed, expired, wall, &latencies, &batch_sizes))
}

/// Drives a closed loop keeping `concurrency` requests outstanding until
/// `total` have been submitted, then drains. Arrivals track completions, so
/// the achieved rate *is* the engine's sustainable throughput when
/// `concurrency ≥ workers × max_batch`.
///
/// # Errors
/// Returns an error for zero `concurrency`/`total`, an empty sample set, a
/// shed request (a closed loop under total queue capacity should never be
/// shed — see the stress suite), or any engine failure.
pub fn closed_loop(
    engine: &ServeEngine,
    samples: &[Tensor],
    total: usize,
    concurrency: usize,
) -> Result<LoadPoint> {
    if concurrency == 0 || total == 0 {
        return Err(ServeError::InvalidArgument("concurrency and total must be positive".into()));
    }
    if samples.is_empty() {
        return Err(ServeError::InvalidArgument("closed_loop needs at least one sample".into()));
    }
    let mut window: std::collections::VecDeque<mpsc::Receiver<Result<crate::engine::Completion>>> =
        std::collections::VecDeque::with_capacity(concurrency);
    let mut latencies = Vec::with_capacity(total);
    let mut batch_sizes = Vec::with_capacity(total);
    let mut expired = 0usize;
    let start = Instant::now();
    for i in 0..total {
        if window.len() == concurrency {
            let rx = window.pop_front().expect("window is non-empty at capacity");
            match rx.recv() {
                Ok(Ok(completion)) => {
                    latencies.push(completion.latency);
                    batch_sizes.push(completion.batch_size);
                }
                Ok(Err(ServeError::DeadlineExceeded)) => expired += 1,
                Ok(Err(err)) => return Err(err),
                Err(_) => return Err(ServeError::ShuttingDown),
            }
        }
        window.push_back(engine.submit(samples[i % samples.len()].clone())?);
    }
    drain(window.into(), &mut latencies, &mut batch_sizes, &mut expired)?;
    let wall = start.elapsed();
    Ok(point(0.0, total, 0, expired, wall, &latencies, &batch_sizes))
}

/// Sweeps the offered rate over `rates`, starting a **fresh engine per
/// point** from `model` and `config` so one saturated point's backlog
/// cannot leak into the next. Returns one [`LoadPoint`] per rate, in order
/// — the latency-vs-throughput curve.
///
/// # Errors
/// Returns the first engine-start or run error.
pub fn sweep(
    model: &crate::FrozenModel,
    config: &crate::BatchingConfig,
    samples: &[Tensor],
    rates: &[f64],
    requests_per_rate: usize,
) -> Result<Vec<LoadPoint>> {
    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        let engine = ServeEngine::start_inner(model.clone(), config.clone())?;
        let run = open_loop(
            &engine,
            samples,
            &OpenLoopConfig { offered_rps: rate, requests: requests_per_rate },
        )?;
        engine.shutdown();
        points.push(run);
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_math_is_consistent() {
        let latencies = vec![Duration::from_millis(2); 10];
        let batches = vec![4usize; 10];
        let p = point(100.0, 12, 1, 1, Duration::from_secs(2), &latencies, &batches);
        assert_eq!(p.completed, 10);
        assert_eq!(p.submitted, 12);
        assert_eq!(p.shed, 1);
        assert_eq!(p.expired, 1);
        assert!((p.achieved_rps - 5.0).abs() < 1e-9);
        assert_eq!(p.p50_ms, 2.0);
        assert_eq!(p.p999_ms, 2.0);
        assert!((p.mean_batch_size - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_safe() {
        let p = point(50.0, 0, 0, 0, Duration::from_millis(1), &[], &[]);
        assert_eq!(p.completed, 0);
        assert_eq!(p.achieved_rps, 0.0);
        assert_eq!(p.mean_batch_size, 0.0);
    }

    #[test]
    fn load_point_serde_round_trip() {
        let p = point(
            250.0,
            100,
            3,
            2,
            Duration::from_secs(1),
            &[Duration::from_millis(4), Duration::from_millis(9)],
            &[2, 3],
        );
        let json = serde_json::to_string(&p).unwrap();
        let back: LoadPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
