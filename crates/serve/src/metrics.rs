//! Serving metrics: latency percentiles, throughput, queue-pressure and
//! cache-occupancy reporting.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A recorder for per-request latencies plus batching, queue-depth and
/// executor-cache counters.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    latencies_ms: Vec<f64>,
    batches: usize,
    samples_in_batches: usize,
    /// The engine's `max_batch`, for occupancy reporting.
    batch_capacity: usize,
    queue_depth_sum: usize,
    queue_depth_samples: usize,
    queue_depth_max: usize,
    executor_cache_peak: usize,
    shed: usize,
    expired: usize,
    stolen_batches: usize,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one served request's end-to-end latency.
    pub fn record(&mut self, latency: Duration) {
        self.latencies_ms.push(latency.as_secs_f64() * 1e3);
    }

    /// Records one executed batch of `size` coalesced requests.
    pub fn record_batch(&mut self, size: usize) {
        self.batches += 1;
        self.samples_in_batches += size;
    }

    /// Sets the batch capacity (`max_batch`) occupancy is reported against.
    pub fn set_batch_capacity(&mut self, capacity: usize) {
        self.batch_capacity = self.batch_capacity.max(capacity);
    }

    /// Records one observation of the request-queue depth (sampled at
    /// submission and when a worker takes a batch).
    pub fn record_queue_depth(&mut self, depth: usize) {
        self.queue_depth_sum += depth;
        self.queue_depth_samples += 1;
        self.queue_depth_max = self.queue_depth_max.max(depth);
    }

    /// Records a worker's executor-cache size; the report exposes the peak
    /// across all observations.
    pub fn record_executor_cache(&mut self, size: usize) {
        self.executor_cache_peak = self.executor_cache_peak.max(size);
    }

    /// Counts `n` requests shed by admission control (bounded queues full).
    pub fn record_shed(&mut self, n: usize) {
        self.shed += n;
    }

    /// Counts `n` requests expired past their queueing deadline.
    pub fn record_expired(&mut self, n: usize) {
        self.expired += n;
    }

    /// Counts one batch a worker assembled from a sibling's shard.
    pub fn record_stolen_batch(&mut self) {
        self.stolen_batches += 1;
    }

    /// Requests shed by admission control.
    pub fn shed(&self) -> usize {
        self.shed
    }

    /// Requests expired past their queueing deadline.
    pub fn expired(&self) -> usize {
        self.expired
    }

    /// Batches assembled by work-stealing from a sibling shard.
    pub fn stolen_batches(&self) -> usize {
        self.stolen_batches
    }

    /// Number of recorded requests.
    pub fn requests(&self) -> usize {
        self.latencies_ms.len()
    }

    /// Number of executed batches.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Mean samples per executed batch (the dynamic batcher's coalescing
    /// factor).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.samples_in_batches as f64 / self.batches as f64
        }
    }

    /// Mean fraction of `max_batch` each executed batch filled (`0..=1`).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batch_capacity == 0 {
            0.0
        } else {
            self.mean_batch_size() / self.batch_capacity as f64
        }
    }

    /// Mean sampled request-queue depth.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Largest sampled request-queue depth.
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depth_max
    }

    /// Peak per-worker executor-cache size observed.
    pub fn executor_cache_peak(&self) -> usize {
        self.executor_cache_peak
    }

    /// The `p`-th latency percentile in milliseconds (`p` in `[0, 100]`),
    /// by nearest-rank over the recorded requests.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        // The epsilon guards the rank against binary-representation slop:
        // p = 99.9 over 1000 samples must rank 999, not ceil(999.0000…1).
        let rank = ((p * sorted.len() as f64) / 100.0 - 1e-9).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Folds the counters into a summary over `wall` seconds of serving.
    pub fn report(&self, wall: Duration) -> ServeReport {
        let wall_seconds = wall.as_secs_f64().max(f64::MIN_POSITIVE);
        ServeReport {
            requests: self.requests(),
            batches: self.batches(),
            wall_seconds,
            throughput_rps: self.requests() as f64 / wall_seconds,
            p50_ms: self.percentile_ms(50.0),
            p99_ms: self.percentile_ms(99.0),
            p999_ms: self.percentile_ms(99.9),
            shed: self.shed,
            expired: self.expired,
            stolen_batches: self.stolen_batches,
            mean_batch_size: self.mean_batch_size(),
            mean_batch_occupancy: self.mean_batch_occupancy(),
            mean_queue_depth: self.mean_queue_depth(),
            max_queue_depth: self.max_queue_depth(),
            executor_cache_peak: self.executor_cache_peak(),
        }
    }

    /// Merges another recorder's observations into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.latencies_ms.extend_from_slice(&other.latencies_ms);
        self.batches += other.batches;
        self.samples_in_batches += other.samples_in_batches;
        self.batch_capacity = self.batch_capacity.max(other.batch_capacity);
        self.queue_depth_sum += other.queue_depth_sum;
        self.queue_depth_samples += other.queue_depth_samples;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.executor_cache_peak = self.executor_cache_peak.max(other.executor_cache_peak);
        self.shed += other.shed;
        self.expired += other.expired;
        self.stolen_batches += other.stolen_batches;
    }
}

/// A machine-readable serving summary (printed by `serve_synthetic` and
/// appended to `BENCH_ci.json` by the CI serve-smoke step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests served.
    pub requests: usize,
    /// Batches executed.
    pub batches: usize,
    /// Wall-clock seconds the load took.
    pub wall_seconds: f64,
    /// Served requests per second.
    pub throughput_rps: f64,
    /// Median end-to-end request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end request latency in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile end-to-end request latency in milliseconds.
    pub p999_ms: f64,
    /// Requests shed by admission control (bounded queues full).
    pub shed: usize,
    /// Requests expired in the queue past the configured deadline.
    pub expired: usize,
    /// Batches a worker assembled by stealing from a sibling's shard.
    pub stolen_batches: usize,
    /// Mean coalesced batch size.
    pub mean_batch_size: f64,
    /// Mean fraction of `max_batch` each executed batch filled.
    pub mean_batch_occupancy: f64,
    /// Mean sampled request-queue depth.
    pub mean_queue_depth: f64,
    /// Largest sampled request-queue depth.
    pub max_queue_depth: usize,
    /// Peak per-worker executor-cache size (bounded by the engine's
    /// `executor_cache` configuration).
    pub executor_cache_peak: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut rec = LatencyRecorder::new();
        for ms in 1..=100u64 {
            rec.record(Duration::from_millis(ms));
        }
        assert_eq!(rec.percentile_ms(50.0), 50.0);
        assert_eq!(rec.percentile_ms(99.0), 99.0);
        assert_eq!(rec.percentile_ms(100.0), 100.0);
        assert_eq!(rec.requests(), 100);
    }

    #[test]
    fn report_and_merge() {
        let mut a = LatencyRecorder::new();
        a.record(Duration::from_millis(2));
        a.record_batch(4);
        let mut b = LatencyRecorder::new();
        b.record(Duration::from_millis(4));
        b.record_batch(2);
        a.merge(&b);
        let report = a.report(Duration::from_secs(2));
        assert_eq!(report.requests, 2);
        assert_eq!(report.batches, 2);
        assert!((report.throughput_rps - 1.0).abs() < 1e-9);
        assert!((report.mean_batch_size - 3.0).abs() < 1e-9);
        assert!(report.p99_ms >= report.p50_ms);
    }

    #[test]
    fn queue_and_cache_gauges() {
        let mut a = LatencyRecorder::new();
        a.set_batch_capacity(8);
        a.record_batch(4);
        a.record_batch(8);
        a.record_queue_depth(1);
        a.record_queue_depth(5);
        a.record_executor_cache(2);
        let mut b = LatencyRecorder::new();
        b.record_queue_depth(3);
        b.record_executor_cache(3);
        a.merge(&b);
        let report = a.report(Duration::from_secs(1));
        assert!((report.mean_batch_occupancy - 0.75).abs() < 1e-9);
        assert!((report.mean_queue_depth - 3.0).abs() < 1e-9);
        assert_eq!(report.max_queue_depth, 5);
        assert_eq!(report.executor_cache_peak, 3);
    }

    #[test]
    fn quantiles_on_known_distributions() {
        // Uniform 1..=1000 ms: nearest-rank percentiles are exact.
        let mut uniform = LatencyRecorder::new();
        for ms in 1..=1000u64 {
            uniform.record(Duration::from_millis(ms));
        }
        assert_eq!(uniform.percentile_ms(50.0), 500.0);
        assert_eq!(uniform.percentile_ms(99.0), 990.0);
        assert_eq!(uniform.percentile_ms(99.9), 999.0);
        assert_eq!(uniform.percentile_ms(0.0), 1.0);
        assert_eq!(uniform.percentile_ms(100.0), 1000.0);

        // Recording order must not matter: reversed and shuffled insertions
        // give identical quantiles.
        let mut reversed = LatencyRecorder::new();
        for ms in (1..=1000u64).rev() {
            reversed.record(Duration::from_millis(ms));
        }
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(uniform.percentile_ms(p), reversed.percentile_ms(p), "p{p}");
        }

        // A two-point bimodal distribution: 990 fast requests at 1 ms and
        // 10 stragglers at 100 ms. p50 sits in the fast mode, p99/p999 in
        // the slow tail — the shape the load curves are meant to expose.
        let mut bimodal = LatencyRecorder::new();
        for _ in 0..990 {
            bimodal.record(Duration::from_millis(1));
        }
        for _ in 0..10 {
            bimodal.record(Duration::from_millis(100));
        }
        assert_eq!(bimodal.percentile_ms(50.0), 1.0);
        assert_eq!(bimodal.percentile_ms(99.0), 1.0);
        assert_eq!(bimodal.percentile_ms(99.1), 100.0);
        assert_eq!(bimodal.percentile_ms(99.9), 100.0);

        // Quantiles are monotone in p.
        let mut prev = 0.0;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let q = bimodal.percentile_ms(p);
            assert!(q >= prev, "p{p}: {q} < {prev}");
            prev = q;
        }
    }

    #[test]
    fn gauges_are_monotone_under_observation() {
        let mut rec = LatencyRecorder::new();
        rec.set_batch_capacity(8);
        let mut max_depth = 0;
        let mut cache_peak = 0;
        let mut occupancy_partial_then_full = Vec::new();
        for (i, depth) in [3usize, 1, 7, 2, 7, 0].into_iter().enumerate() {
            rec.record_queue_depth(depth);
            assert!(rec.max_queue_depth() >= max_depth, "max depth regressed");
            max_depth = rec.max_queue_depth();
            assert!(max_depth >= depth);
            rec.record_executor_cache(i % 3);
            assert!(rec.executor_cache_peak() >= cache_peak, "cache peak regressed");
            cache_peak = rec.executor_cache_peak();
            rec.record_batch(if i < 3 { 4 } else { 8 });
            occupancy_partial_then_full.push(rec.mean_batch_occupancy());
        }
        // Occupancy climbs as full batches replace partial ones and is
        // always within [0, 1].
        for window in occupancy_partial_then_full.windows(2).skip(2) {
            assert!(window[1] >= window[0], "occupancy fell while batches filled");
        }
        assert!(occupancy_partial_then_full.iter().all(|o| (0.0..=1.0).contains(o)));
        // Counters accumulate monotonically too.
        rec.record_shed(2);
        rec.record_shed(3);
        assert_eq!(rec.shed(), 5);
        rec.record_expired(1);
        assert_eq!(rec.expired(), 1);
        rec.record_stolen_batch();
        rec.record_stolen_batch();
        assert_eq!(rec.stolen_batches(), 2);
    }

    #[test]
    fn serve_report_serde_round_trip() {
        let mut rec = LatencyRecorder::new();
        rec.set_batch_capacity(4);
        for ms in [1u64, 2, 3, 40] {
            rec.record(Duration::from_millis(ms));
        }
        rec.record_batch(4);
        rec.record_queue_depth(9);
        rec.record_executor_cache(2);
        rec.record_shed(6);
        rec.record_expired(2);
        rec.record_stolen_batch();
        let report = rec.report(Duration::from_secs(2));
        let json = serde_json::to_string(&report).unwrap();
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report, "ServeReport changed across the serde shims");
        assert_eq!(back.shed, 6);
        assert_eq!(back.expired, 2);
        assert_eq!(back.stolen_batches, 1);
        assert_eq!(back.p999_ms, report.p999_ms);
    }

    #[test]
    fn merge_accumulates_shed_and_expired() {
        let mut a = LatencyRecorder::new();
        a.record_shed(1);
        a.record_expired(4);
        a.record_stolen_batch();
        let mut b = LatencyRecorder::new();
        b.record_shed(2);
        b.record_stolen_batch();
        a.merge(&b);
        assert_eq!(a.shed(), 3);
        assert_eq!(a.expired(), 4);
        assert_eq!(a.stolen_batches(), 2);
    }

    #[test]
    fn empty_recorder_is_safe() {
        let rec = LatencyRecorder::new();
        assert_eq!(rec.percentile_ms(99.0), 0.0);
        assert_eq!(rec.mean_batch_size(), 0.0);
        assert_eq!(rec.mean_batch_occupancy(), 0.0);
        assert_eq!(rec.mean_queue_depth(), 0.0);
        assert_eq!(rec.max_queue_depth(), 0);
        assert_eq!(rec.executor_cache_peak(), 0);
        let report = rec.report(Duration::from_millis(1));
        assert_eq!(report.requests, 0);
    }
}
